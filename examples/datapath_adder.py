#!/usr/bin/env python3
"""Datapath scenario: depth optimization of adder carry chains.

The paper highlights datapath circuits as the place "where majority logic
is dominant" and its biggest Table I win is the ripple-carry adder
(``my_adder``: 33 → 19 logic levels).  This example builds the 16-bit adder
benchmark as a MIG and as an AIG, runs both flows, and compares the depth
and the mapped delay — the end-to-end story of the paper on one circuit.

Run with ``python examples/datapath_adder.py``.
"""

from repro.aig.aig import Aig
from repro.aig.resyn import resyn2
from repro.bench_circuits import build_benchmark
from repro.core.mig import Mig
from repro.flows import mighty_optimize
from repro.mapping import default_library, map_aig, map_mig
from repro.verify import check_equivalence


def main() -> None:
    library = default_library()

    mig = build_benchmark("my_adder", Mig)
    aig = build_benchmark("my_adder", Aig)
    reference = build_benchmark("my_adder", Mig)
    print(f"my_adder as MIG: {mig.num_gates} nodes, {mig.depth()} levels")
    print(f"my_adder as AIG: {aig.num_gates} nodes, {aig.depth()} levels")

    mighty_optimize(mig, rounds=2, depth_effort=2)
    optimized_aig, _ = resyn2(aig)
    print(f"\nMIGhty flow   : {mig.num_gates} nodes, {mig.depth()} levels")
    print(f"resyn2 flow   : {optimized_aig.num_gates} nodes, {optimized_aig.depth()} levels")
    print(f"MIG function preserved: {check_equivalence(mig, reference).equivalent}")

    mig_netlist = map_mig(mig, library)
    aig_netlist = map_aig(optimized_aig, library)
    print("\nAfter technology mapping (same library, same mapper):")
    print(
        f"  MIG flow: area {mig_netlist.area():.2f} um2, "
        f"delay {mig_netlist.delay():.3f} ns, power {mig_netlist.power():.1f} uW"
    )
    print(
        f"  AIG flow: area {aig_netlist.area():.2f} um2, "
        f"delay {aig_netlist.delay():.3f} ns, power {aig_netlist.power():.1f} uW"
    )
    faster = "MIG" if mig_netlist.delay() <= aig_netlist.delay() else "AIG"
    print(f"\nFastest netlist on this datapath circuit: {faster} flow")


if __name__ == "__main__":
    main()
