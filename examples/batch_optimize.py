#!/usr/bin/env python3
"""Batch-optimize a corpus of networks across worker processes.

Demonstrates the process-parallel layer's public API:

* ``optimize_many`` — shard whole-network ``mighty_optimize`` /
  ``resyn2`` jobs over a process pool and merge the flow engine's
  per-pass metrics into one report;
* the determinism contract — results are bit-identical to a serial run
  (checked below via structural fingerprints), so the worker count is
  purely a wall-clock knob.

Run with::

    PYTHONPATH=src python examples/batch_optimize.py [workers]
"""

import sys

from repro.aig.aig import Aig
from repro.bench_circuits import build_benchmark
from repro.core import Mig
from repro.flows import format_batch_report, optimize_many
from repro.parallel.corpus import structural_fingerprint

CORPUS = ["b9", "count", "alu4", "misex3", "cla", "my_adder"]


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 2

    # A mixed corpus: MIGs take the MIGhty pipeline, AIGs the
    # resyn2-style script (flow="auto" picks per network type).
    corpus = [build_benchmark(name, Mig) for name in CORPUS]
    corpus += [build_benchmark(name, Aig) for name in CORPUS[:2]]

    report = optimize_many(corpus, workers=workers, rounds=1, depth_effort=1)
    print(format_batch_report(report))

    # The same corpus at one worker lands on identical structures:
    # parallelism never changes a result, only the wall clock.
    serial = optimize_many(corpus, workers=1, rounds=1, depth_effort=1)
    identical = [structural_fingerprint(n) for n in report.networks] == [
        structural_fingerprint(n) for n in serial.networks
    ]
    print(
        f"\nbit-identical to the 1-worker run: {identical}"
        f"  (pool wall {report.wall_s:.2f}s vs in-process {serial.wall_s:.2f}s)"
    )


if __name__ == "__main__":
    main()
