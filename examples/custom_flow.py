#!/usr/bin/env python3
"""Compose a custom optimization flow on the pass-manager engine.

The MIGhty flow shipped in :mod:`repro.flows.mighty` is just one pipeline;
the engine lets you assemble your own from the same building blocks:

1. declare a pipeline from named passes (``Balance``, ``DepthOpt``,
   ``SizeOpt``, ``Eliminate``, ``Repeat`` for effort rounds, or your own
   ``Pass`` subclass / ``FunctionPass``),
2. run it on a network — every pass is measured (size / depth / runtime),
3. print or serialise the per-pass metrics trace.

Run with ``python examples/custom_flow.py``.
"""

from repro.bench_circuits import build_benchmark
from repro.core import Mig
from repro.flows import (
    Balance,
    DepthOpt,
    Eliminate,
    FunctionPass,
    MigRewrite,
    Pipeline,
    Repeat,
    SizeOpt,
    format_pass_metrics,
    pass_metrics_to_json,
)
from repro.verify import check_equivalence


def main() -> None:
    mig = build_benchmark("my_adder", Mig)
    reference = build_benchmark("my_adder", Mig)
    print(f"initial network : {mig.num_gates} majority nodes, depth {mig.depth()}")

    # A delay-first flow with a custom probe pass in the middle: two
    # balance-framed depth rounds, then an area phase that interleaves the
    # algebraic size recovery with Boolean cut rewriting (NPN-database
    # matching over 4-feasible cuts — depth-safe, so it composes with the
    # delay rounds without undoing them).
    def probe(net):
        return {"critical_gates": len(net.critical_nodes())}

    flow = Pipeline(
        [
            Balance(),
            Repeat([DepthOpt(effort=2), Balance()], rounds=2, name="delay_rounds"),
            FunctionPass("probe", probe),
            Repeat(
                [SizeOpt(effort=1), MigRewrite(), Eliminate()],
                rounds=1,
                name="area_rounds",
            ),
        ],
        name="custom_delay_flow",
    )

    result = flow.run(mig)
    print(
        f"optimized       : {result.final_size} majority nodes, "
        f"depth {result.final_depth} (was {result.initial_size} / "
        f"{result.initial_depth}) in {result.runtime_s:.2f}s"
    )

    # 3a. Human-readable per-pass trace.
    print()
    print(format_pass_metrics(result.passes, title=f"{flow.name} on my_adder"))

    # 3b. Machine-readable trace (what the benchmark harness persists).
    print()
    print("first two JSON records:")
    print(pass_metrics_to_json(result.passes[:2], flow=flow.name, indent=2))

    # The engine never changes what a flow computes — only how it is run.
    outcome = check_equivalence(mig, reference, num_random_vectors=1024)
    print()
    print(f"equivalent to reference: {outcome.equivalent}")


if __name__ == "__main__":
    main()
