#!/usr/bin/env python3
"""Emerging-technology scenario: how much do native majority cells buy?

The introduction of the paper motivates MIGs with nanotechnologies that
implement majority gates natively.  This example quantifies that argument
within the CMOS flow shipped here: it optimizes a few benchmarks with the
MIGhty flow and maps them twice — once with the MAJ3/MIN3 cells available
and once with a NAND/NOR-only library — then reports the area/delay gap.

Run with ``python examples/emerging_majority_library.py``.
"""

from repro.bench_circuits import build_benchmark
from repro.core.mig import Mig
from repro.flows import mighty_optimize
from repro.mapping import default_library, map_mig, nand_nor_library


def main() -> None:
    maj_library = default_library()
    nand_library = nand_nor_library()
    benchmarks = ["my_adder", "alu4", "count", "C1908"]

    print(f"{'benchmark':<10s} {'with MAJ3 (area/delay)':>26s} {'without MAJ3 (area/delay)':>28s}")
    total_with = total_without = 0.0
    for name in benchmarks:
        mig = build_benchmark(name, Mig)
        mighty_optimize(mig, rounds=1, depth_effort=1)
        with_maj = map_mig(mig, maj_library)
        without_maj = map_mig(mig, nand_library)
        total_with += with_maj.area()
        total_without += without_maj.area()
        print(
            f"{name:<10s} {with_maj.area():>14.2f} / {with_maj.delay():>7.3f}"
            f" {without_maj.area():>16.2f} / {without_maj.delay():>7.3f}"
        )
    saving = 100.0 * (total_without - total_with) / total_without
    print(f"\nArea saved by native majority cells: {saving:.1f}% "
          f"(the emerging-technology argument of Section I)")


if __name__ == "__main__":
    main()
