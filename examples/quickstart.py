#!/usr/bin/env python3
"""Quickstart: build a MIG, optimize it, verify it, map it to cells.

Walks through the whole public API in a few lines:

1. build a small Boolean function as a Majority-Inverter Graph,
2. run the depth and size optimizers (Algorithms 1 and 2 of the paper),
3. run Boolean cut rewriting (NPN-database matching over 4-feasible
   cuts) to catch the simplifications the algebraic axioms cannot see,
4. prove the optimized network is equivalent to the original,
5. map it onto the MAJ/XOR/NAND standard-cell library and print the
   estimated area / delay / power.

Run with ``python examples/quickstart.py``.
"""

from repro.core import Mig, optimize_depth, optimize_size, rewrite_mig
from repro.mapping import default_library, map_mig
from repro.verify import check_equivalence


def main() -> None:
    # 1. Build f = (a·b) ⊕ (c + d) and g = M(a, b, M(c, d, e)).
    mig = Mig()
    a, b, c, d, e = (mig.add_pi(name) for name in "abcde")
    f = mig.xor_(mig.and_(a, b), mig.or_(c, d))
    g = mig.maj(a, b, mig.maj(c, d, e))
    mig.add_po(f, "f")
    mig.add_po(g, "g")
    print(f"initial network : {mig.num_gates} majority nodes, depth {mig.depth()}")

    reference = mig.copy()

    # 2. Optimize: depth first (Algorithm 2), then recover size (Algorithm 1).
    depth_stats = optimize_depth(mig, effort=2)
    size_stats = optimize_size(mig, effort=2)
    print(
        f"optimized       : {mig.num_gates} majority nodes, depth {mig.depth()} "
        f"(depth pass: {depth_stats.initial_depth}→{depth_stats.final_depth}, "
        f"size pass: {size_stats.initial_size}→{size_stats.final_size})"
    )

    # 3. Boolean cut rewriting: match 4-feasible cuts against the NPN
    #    structure database (depth-safe, only size-improving replacements).
    rewrite_stats = rewrite_mig(mig)
    print(
        f"cut rewriting   : {mig.num_gates} majority nodes, depth {mig.depth()} "
        f"({rewrite_stats['rewrites']} rewrites, gain {rewrite_stats['gain']})"
    )

    # 4. Verify the optimizations preserved both output functions.
    result = check_equivalence(mig, reference)
    print(f"equivalence     : {result.equivalent} (checked by {result.method})")

    # 5. Technology mapping and gate-level estimation.
    netlist = map_mig(mig, default_library())
    print(
        f"mapped netlist  : {netlist.num_cells} cells, "
        f"area {netlist.area():.2f} um2, delay {netlist.delay():.3f} ns, "
        f"power {netlist.power():.1f} uW"
    )
    print(f"cell histogram  : {netlist.cell_histogram()}")


if __name__ == "__main__":
    main()
