#!/usr/bin/env python3
"""Reproduce the worked examples of the paper (Fig. 1 and Fig. 2).

* Fig. 1  — MIG representations of f = x⊕y⊕z and g = x·(y + u·v) obtained
  by transposing their optimal AOIGs, and what the MIG optimizers make of
  them (the paper reaches depth 2 for g, Fig. 2(b-c)).
* Fig. 2(a) — the size-optimization walkthrough
  M(x, M(x, z', w), M(x, y, z)) → x.
* Fig. 2(d) — the activity-optimization example with biased inputs.

Run with ``python examples/paper_figures.py``.
"""

from repro.analysis import total_switching_activity
from repro.core import Mig, negate, optimize_depth, optimize_size
from repro.core.activity_opt import optimize_activity
from repro.verify import check_equivalence


def fig1a_xor3() -> None:
    print("Fig. 1(a) / Fig. 2(b): f = x XOR y XOR z")
    mig = Mig()
    x, y, z = (mig.add_pi(n) for n in "xyz")

    def xor(a, b):
        return mig.or_(mig.and_(a, negate(b)), mig.and_(negate(a), b))

    mig.add_po(xor(xor(x, y), z), "f")
    reference = mig.copy()
    print(f"  AOIG transposition: size {mig.num_gates}, depth {mig.depth()}")
    optimize_depth(mig, effort=3)
    optimize_size(mig, effort=2)
    print(f"  MIG optimized     : size {mig.num_gates}, depth {mig.depth()}")
    print(f"  still equivalent  : {check_equivalence(mig, reference).equivalent}")


def fig1b_and_or() -> None:
    print("Fig. 1(b) / Fig. 2(c): g = x(y + uv)  (paper: depth 3 → 2)")
    mig = Mig()
    x, y, u, v = (mig.add_pi(n) for n in "xyuv")
    mig.add_po(mig.and_(x, mig.or_(y, mig.and_(u, v))), "g")
    reference = mig.copy()
    print(f"  AOIG transposition: size {mig.num_gates}, depth {mig.depth()}")
    optimize_depth(mig, effort=3)
    print(f"  MIG optimized     : size {mig.num_gates}, depth {mig.depth()}")
    print(f"  still equivalent  : {check_equivalence(mig, reference).equivalent}")


def fig2a_size() -> None:
    print("Fig. 2(a): h = M(x, M(x, z', w), M(x, y, z))  (paper: 3 nodes → 0)")
    mig = Mig()
    x, y, z, w = (mig.add_pi(n) for n in "xyzw")
    mig.add_po(mig.maj(x, mig.maj(x, negate(z), w), mig.maj(x, y, z)), "h")
    reference = mig.copy()
    print(f"  initial  : size {mig.num_gates}")
    optimize_size(mig, effort=3)
    print(f"  optimized: size {mig.num_gates} "
          f"(expression: {mig.to_expression(mig.po_signals()[0])})")
    print(f"  still equivalent: {check_equivalence(mig, reference).equivalent}")


def fig2d_activity() -> None:
    print("Fig. 2(d): k = M(x, y, M(x', z, w)) with biased inputs")
    mig = Mig()
    x, y, z, w = (mig.add_pi(n) for n in "xyzw")
    mig.add_po(mig.maj(x, y, mig.maj(negate(x), z, w)), "k")
    reference = mig.copy()
    probabilities = {"x": 0.5, "y": 0.1, "z": 0.1, "w": 0.1}
    before = total_switching_activity(mig, probabilities)
    optimize_activity(mig, effort=1, pi_probabilities=probabilities)
    after = total_switching_activity(mig, probabilities)
    print(f"  activity: {before:.3f} → {after:.3f} "
          f"(paper: 0.18 → 0.09 for the same probabilities)")
    print(f"  still equivalent: {check_equivalence(mig, reference).equivalent}")


if __name__ == "__main__":
    fig1a_xor3()
    print()
    fig1b_and_or()
    print()
    fig2a_size()
    print()
    fig2d_activity()
