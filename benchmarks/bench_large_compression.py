"""E5 — the large logic-compression circuit (Section V-A.2).

The paper optimizes a 0.3M-node compression circuit: ABC produces 167k
nodes / 31 levels in 11.3 s, MIGhty 170k nodes (+1.7%) / 28 levels (−9.6%)
in 21.5 s.  This bench runs the scaled-down synthetic compression circuit
through both flows and reports the same three comparisons (relative size,
relative depth, relative runtime).
"""

import os
import time

import pytest

from repro.aig.aig import Aig
from repro.bench_circuits import build_compression_circuit
from repro.aig.resyn import resyn2
from repro.core.mig import Mig
from repro.flows import mighty_optimize


def _num_blocks() -> int:
    return int(os.environ.get("REPRO_BENCH_COMPRESSION_BLOCKS", "192"))


def test_large_compression_circuit(benchmark):
    """MIG vs AIG optimization of the compression circuit."""

    def run():
        mig = build_compression_circuit(_num_blocks(), Mig)
        aig = build_compression_circuit(_num_blocks(), Aig)

        t0 = time.perf_counter()
        optimized_aig, _ = resyn2(aig)
        aig_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        mighty_optimize(mig, rounds=1, depth_effort=1)
        mig_time = time.perf_counter() - t0
        return mig, optimized_aig, mig_time, aig_time

    mig, aig, mig_time, aig_time = benchmark.pedantic(run, iterations=1, rounds=1)
    size_delta = 100.0 * (mig.num_gates - aig.num_gates) / aig.num_gates
    depth_delta = 100.0 * (mig.depth() - aig.depth()) / aig.depth()
    print()
    print("Large compression circuit (paper: MIG +1.7% size, -9.6% levels, ~2x runtime):")
    print(f"  AIG : {aig.num_gates} nodes, {aig.depth()} levels, {aig_time:.1f}s")
    print(f"  MIG : {mig.num_gates} nodes, {mig.depth()} levels, {mig_time:.1f}s")
    print(f"  MIG vs AIG: size {size_delta:+.1f}%, depth {depth_delta:+.1f}%")
    benchmark.extra_info["mig_size"] = mig.num_gates
    benchmark.extra_info["aig_size"] = aig.num_gates
    benchmark.extra_info["mig_depth"] = mig.depth()
    benchmark.extra_info["aig_depth"] = aig.depth()
    # Shape: the MIG result is at least as shallow as the AIG result.
    assert mig.depth() <= aig.depth()
