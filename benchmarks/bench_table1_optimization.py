"""E1 — Table I (top): logic optimization, MIG vs AIG vs decomposed BDD.

Regenerates the size / depth / activity / runtime rows of Table I for every
benchmark of the synthetic MCNC-like suite and prints the formatted table
together with the headline averages (MIG depth −18.6% vs AIG and −23.7% vs
BDD in the paper).

Run with ``pytest benchmarks/bench_table1_optimization.py --benchmark-only``.
"""

import pytest

from repro.flows import (
    compare_optimization,
    format_optimization_table,
    summarize_optimization,
)

from .conftest import flow_depth_effort, flow_rounds, report, selected_benchmarks

_RESULTS = []


@pytest.mark.parametrize("name", selected_benchmarks())
def test_table1_optimization_row(benchmark, name):
    """One Table I (top) row: run the three optimization flows once."""

    def run():
        return compare_optimization(
            name,
            rounds=flow_rounds(),
            depth_effort=flow_depth_effort(),
            include_bdd=True,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.append(result)
    benchmark.extra_info["mig_size"] = result.mig.size
    benchmark.extra_info["mig_depth"] = result.mig.depth
    benchmark.extra_info["aig_size"] = result.aig.size
    benchmark.extra_info["aig_depth"] = result.aig.depth
    if result.bdd is not None:
        benchmark.extra_info["bdd_size"] = result.bdd.size
        benchmark.extra_info["bdd_depth"] = result.bdd.depth
    # The MIG flow must never end up deeper than its own starting point;
    # comparative assertions across flows live in the summary test below.
    assert result.mig.size > 0
    assert result.mig.depth > 0


def test_table1_optimization_summary(benchmark):
    """Print the full table and check the headline shape of the experiment."""
    if not _RESULTS:
        pytest.skip("per-benchmark rows did not run")

    def summarize():
        return summarize_optimization(_RESULTS)

    summary = benchmark.pedantic(summarize, iterations=1, rounds=1)
    print()
    report("Table I (top) — logic optimization\n" + format_optimization_table(_RESULTS))
    benchmark.extra_info["depth_improvement_vs_aig_percent"] = round(
        summary.depth_improvement_vs_aig, 2
    )
    benchmark.extra_info["depth_improvement_vs_bdd_percent"] = round(
        summary.depth_improvement_vs_bdd, 2
    )
    # Shape of the paper's result: the MIG flow is shallower on average than
    # both baselines (paper: -18.6% and -23.7%).
    assert summary.avg_depth["MIG"] <= summary.avg_depth["AIG"]
    assert summary.avg_depth["MIG"] <= summary.avg_depth["BDD"]
