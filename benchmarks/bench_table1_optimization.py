"""E1 — Table I (top): logic optimization, MIG vs AIG vs decomposed BDD.

Regenerates the size / depth / activity / runtime rows of Table I for every
benchmark of the synthetic MCNC-like suite and prints the formatted table
together with the headline averages (MIG depth −18.6% vs AIG and −23.7% vs
BDD in the paper).

Rows travel through the shared corpus runner's row channel
(:class:`repro.parallel.corpus.RowChannel`) instead of a module global,
so the suite is safe under ``pytest-xdist`` and under sharded CI
invocations (one benchmark per process): the summary test aggregates
every row present in the channel, wherever it was computed.

Run with ``pytest benchmarks/bench_table1_optimization.py --benchmark-only``.
"""

import pytest

from repro.flows import (
    compare_optimization,
    format_optimization_table,
    summarize_optimization,
)
from repro.parallel.corpus import _optimization_to_row, optimization_from_row

from .conftest import flow_depth_effort, flow_rounds, report, selected_benchmarks

_SUITE = "table1_optimization"


def _config():
    """Row tag: rows only aggregate with rows of the same flow effort."""
    return {"rounds": flow_rounds(), "depth_effort": flow_depth_effort()}


@pytest.mark.parametrize("name", selected_benchmarks())
def test_table1_optimization_row(benchmark, name, bench_rows):
    """One Table I (top) row: run the three optimization flows once."""

    def run():
        return compare_optimization(
            name,
            rounds=flow_rounds(),
            depth_effort=flow_depth_effort(),
            include_bdd=True,
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    bench_rows.write(_SUITE, name, {"config": _config(), **_optimization_to_row(result)})
    benchmark.extra_info["mig_size"] = result.mig.size
    benchmark.extra_info["mig_depth"] = result.mig.depth
    benchmark.extra_info["aig_size"] = result.aig.size
    benchmark.extra_info["aig_depth"] = result.aig.depth
    if result.bdd is not None:
        benchmark.extra_info["bdd_size"] = result.bdd.size
        benchmark.extra_info["bdd_depth"] = result.bdd.depth
    # The MIG flow must never end up deeper than its own starting point;
    # comparative assertions across flows live in the summary test below.
    assert result.mig.size > 0
    assert result.mig.depth > 0


def test_table1_optimization_summary(benchmark, bench_rows):
    """Print the full table and check the headline shape of the experiment."""
    # Only rows produced at this invocation's effort settings aggregate;
    # a shared REPRO_BENCH_ROWS_DIR may also hold rows of other configs.
    rows = [
        row
        for row in bench_rows.ordered(_SUITE, selected_benchmarks())
        if row.get("config") == _config()
    ]
    if not rows:
        pytest.skip("no per-benchmark rows for this config in the channel")
    results = [optimization_from_row(row) for row in rows]

    def summarize():
        return summarize_optimization(results)

    summary = benchmark.pedantic(summarize, iterations=1, rounds=1)
    print()
    report("Table I (top) — logic optimization\n" + format_optimization_table(results))
    benchmark.extra_info["rows_aggregated"] = len(results)
    benchmark.extra_info["depth_improvement_vs_aig_percent"] = round(
        summary.depth_improvement_vs_aig, 2
    )
    benchmark.extra_info["depth_improvement_vs_bdd_percent"] = round(
        summary.depth_improvement_vs_bdd, 2
    )
    # Shape of the paper's result: the MIG flow is shallower on average than
    # both baselines (paper: -18.6% and -23.7%).
    assert summary.avg_depth["MIG"] <= summary.avg_depth["AIG"]
    assert summary.avg_depth["MIG"] <= summary.avg_depth["BDD"]
