"""E3 — Fig. 3: the (size, depth, activity) optimization-space points.

The paper plots one point per flow (MIG, AIG, decomposed BDD) in a 3-D
space of average size / depth / switching activity.  This bench prints the
three coordinate triples — the data behind the figure — on a representative
subset of the suite (configurable through ``REPRO_BENCH_BENCHMARKS``).
"""

import pytest

from repro.flows import optimization_space_points, run_optimization_experiment

from .conftest import flow_depth_effort, flow_rounds, selected_benchmarks

#: Fig. 3 uses a representative subset by default to keep the bench quick;
#: set REPRO_BENCH_BENCHMARKS to override.
_DEFAULT_SUBSET = ["alu4", "my_adder", "b9", "count", "misex3", "C1908"]


def _subset():
    names = selected_benchmarks()
    if set(names) == set(selected_benchmarks()) and len(names) > 8:
        return _DEFAULT_SUBSET
    return names


def test_fig3_optimization_space(benchmark):
    """Regenerate the Fig. 3 series (one (size, depth, activity) per flow)."""

    def run():
        results = run_optimization_experiment(
            _subset(), rounds=flow_rounds(), depth_effort=flow_depth_effort()
        )
        return results, optimization_space_points(results)

    results, points = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Fig. 3 — optimization space (size, depth, activity):")
    for flow, (size, depth, activity) in points.items():
        print(f"  {flow:4s}: size={size:9.1f}  depth={depth:6.2f}  activity={activity:10.2f}")
        benchmark.extra_info[f"{flow}_size"] = round(size, 1)
        benchmark.extra_info[f"{flow}_depth"] = round(depth, 2)
        benchmark.extra_info[f"{flow}_activity"] = round(activity, 2)
    # Shape: the MIG point dominates on the depth axis (the paper's claim).
    assert points["MIG"][1] <= points["AIG"][1]
    assert points["MIG"][1] <= points["BDD"][1]
