#!/usr/bin/env python3
"""Perf-regression lane for the incremental cut engine (ISSUE 4 criteria).

Three measured lanes, each comparing the incremental
:class:`~repro.network.cuts.CutManager` path against from-scratch
enumeration on the *same* workload with *bit-identical results asserted*:

1. **Repeated-sweep rewriting** (the budget lane): a fixed R-round
   rewrite schedule — the shape of ABC's 10-pass ``resyn2`` script, where
   rewriting re-runs on a converged network at fixed positions — over
   10k+-node random MIG/AIG networks.  The incremental engine re-enumerates
   only touched cones and skips provably converged sweeps, so wall time
   must drop ≥3x (``--smoke`` asserts a noise-tolerant ≥2x floor on the
   reduced workload CI runs).
2. **Incremental re-enumeration**: bursts of sparse random edits (~1% of
   nodes) followed by a sweep, manager vs ``enumerate_cuts``, with the cut
   sets compared cut-for-cut every burst.
3. **Table I realism**: per-benchmark enumeration plus rewrite-round
   timings on the paper's circuits (reported, not asserted — the circuits
   are small enough that Python overhead dominates).

The NPN structure-database cold start (derive vs load the on-disk cache)
is timed alongside.  Results land in ``BENCH_cuts.json`` (override with
``--json`` / ``REPRO_BENCH_CUTS_JSON``) for the CI artifact upload::

    PYTHONPATH=src python benchmarks/bench_cuts.py [--smoke]
"""

import argparse
import json
import os
import random
import sys
import time

from repro.aig.aig import Aig
from repro.aig.rewrite import rewrite_aig_inplace
from repro.bench_circuits import build_benchmark
from repro.core import Mig, rewrite_mig
from repro.core.generation import mutate_network, random_network
from repro.network.cuts import CutManager, enumerate_cuts

#: Fixed sweep count of the repeated-sweep lane: the length of the
#: resyn2-style script, whose rewrite slots run regardless of convergence.
ROUNDS = 10

TABLE1_BENCHMARKS = ["C1355", "C6288", "dalu", "alu4"]


def _dump(net):
    return (
        tuple(net.po_signals()),
        tuple((n, net._fanins[n]) for n in net.topological_order()),
    )


def _cuts_as_pairs(cuts, nodes):
    return {n: [(c.leaves, c.table) for c in cuts[n]] for n in nodes}


def _warmup():
    """Charge the NPN canonical map, structure DB and LRU caches so the
    measured lanes compare enumeration strategies, not cache cold starts."""
    for cls, sweep in ((Mig, rewrite_mig), (Aig, rewrite_aig_inplace)):
        net = random_network(cls, num_pis=10, num_gates=1500, num_pos=20, seed=99,
                             gate_mix="mixed")
        sweep(net)
        sweep(net)


def bench_repeated_sweep(cls, sweep, num_gates, seed, rounds=ROUNDS):
    """One repeated-sweep comparison; returns the JSON record."""
    make = lambda: random_network(  # noqa: E731 - tiny local factory
        cls, num_pis=14, num_gates=num_gates, num_pos=100, seed=seed,
        gate_mix="mixed",
    )
    incremental = make()
    scratch = make()
    size0 = incremental.num_gates

    t0 = time.perf_counter()
    stats = [sweep(incremental) for _ in range(rounds)]
    t_incremental = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(rounds):
        sweep(scratch, incremental=False)
    t_scratch = time.perf_counter() - t0

    assert _dump(incremental) == _dump(scratch), (
        f"incremental result diverged from scratch ({cls.__name__}, seed {seed})"
    )
    return {
        "network": cls.__name__,
        "seed": seed,
        "gates_initial": size0,
        "gates_final": incremental.num_gates,
        "rounds": rounds,
        "rewrites_per_round": [s["rewrites"] for s in stats],
        "converged_skips": sum(s["converged_skip"] for s in stats),
        "time_incremental_s": round(t_incremental, 3),
        "time_scratch_s": round(t_scratch, 3),
        "speedup": round(t_scratch / t_incremental, 2),
    }


def bench_incremental_enumeration(num_gates, seed, bursts=6, edits_per_burst=40):
    """Sparse-edit re-enumeration comparison; returns the JSON record."""
    net = random_network(Mig, num_pis=14, num_gates=num_gates, num_pos=100,
                         seed=seed, gate_mix="mixed")
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    manager.cuts()  # initial full build (not part of the comparison)

    rng = random.Random(seed)
    t_incremental = 0.0
    t_scratch = 0.0
    recomputed = 0
    for burst in range(bursts):
        for edit in range(edits_per_burst):
            mutate_network(net, seed=rng.randrange(1 << 30), in_place=True)
        before = manager.stats["nodes_recomputed"]
        t0 = time.perf_counter()
        incremental_cuts = manager.cuts()
        t_incremental += time.perf_counter() - t0
        recomputed += manager.stats["nodes_recomputed"] - before

        t0 = time.perf_counter()
        scratch_cuts = enumerate_cuts(net, k=4, cut_limit=8)
        t_scratch += time.perf_counter() - t0

        nodes = set(net._topology()) | set(net.pi_nodes())
        assert _cuts_as_pairs(incremental_cuts, nodes) == _cuts_as_pairs(
            scratch_cuts, nodes
        ), f"cut mismatch after burst {burst}"
    return {
        "gates": net.num_gates,
        "bursts": bursts,
        "edits_per_burst": edits_per_burst,
        "nodes_recomputed_total": recomputed,
        "time_incremental_s": round(t_incremental, 3),
        "time_scratch_s": round(t_scratch, 3),
        "speedup": round(t_scratch / t_incremental, 2),
    }


def bench_table1(name):
    """Enumeration + rewrite-round timing on one Table I circuit."""
    mig = build_benchmark(name, Mig)
    t0 = time.perf_counter()
    enumerate_cuts(mig, k=4, cut_limit=6)
    t_enum = time.perf_counter() - t0

    incremental = build_benchmark(name, Mig)
    scratch = build_benchmark(name, Mig)
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        rewrite_mig(incremental)
    t_incremental = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(ROUNDS):
        rewrite_mig(scratch, incremental=False)
    t_scratch = time.perf_counter() - t0
    assert _dump(incremental) == _dump(scratch), name
    return {
        "benchmark": name,
        "gates": mig.num_gates,
        "enumeration_s": round(t_enum, 3),
        "rewrite_rounds_incremental_s": round(t_incremental, 3),
        "rewrite_rounds_scratch_s": round(t_scratch, 3),
        "speedup": round(t_scratch / t_incremental, 2),
    }


def bench_npn_cold_start():
    """Structure-DB cold start: fresh derivation vs on-disk cache load."""
    import tempfile

    from repro.network.npn import (
        get_structure,
        npn_representatives,
        reset_structure_db,
    )

    from repro.network.npn import flush_structure_cache

    reps = npn_representatives()
    # Flush warmup-derived entries to the *default* location first: a reset
    # after redirecting the dir would write them into the "cold" tmp cache
    # and the derive lane would load instead of deriving.
    reset_structure_db()
    previous_dir = os.environ.get("REPRO_NPN_CACHE_DIR")
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_NPN_CACHE_DIR"] = tmp
        try:
            reset_structure_db()
            t0 = time.perf_counter()
            for kind in ("mig", "aig"):
                for rep in reps:
                    get_structure(kind, rep)
            flush_structure_cache()  # derive lane = derivation + persistence
            t_derive = time.perf_counter() - t0
            reset_structure_db()
            t0 = time.perf_counter()
            for kind in ("mig", "aig"):
                for rep in reps:
                    get_structure(kind, rep)
            t_cached = time.perf_counter() - t0
        finally:
            flush_structure_cache()  # before the tmp dir disappears
            if previous_dir is None:
                os.environ.pop("REPRO_NPN_CACHE_DIR", None)
            else:
                os.environ["REPRO_NPN_CACHE_DIR"] = previous_dir
            reset_structure_db()
    return {
        "classes": len(reps),
        "derive_s": round(t_derive, 3),
        "cached_load_s": round(t_cached, 4),
        "speedup": round(t_derive / max(t_cached, 1e-9), 1),
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload with a >=2x budget assertion",
    )
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_CUTS_JSON", "BENCH_cuts.json"),
        help="write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    _warmup()
    report = {"mode": "smoke" if args.smoke else "full", "rounds": ROUNDS}

    # --- lane 1: repeated-sweep rewriting (the budget lane) ----------- #
    # The AIG sweep runs gain-only: the zero-gain canonicalization policy
    # (ABC's rwz) intentionally keeps restructuring converged networks, so
    # repeated rwz rounds never reach a fixpoint — that is a policy
    # property, not an enumeration cost, and it would measure nothing
    # about the cut engine.
    aig_sweep = lambda net, incremental=True: rewrite_aig_inplace(  # noqa: E731
        net, allow_zero_gain=False, incremental=incremental
    )
    sweeps = [(Mig, rewrite_mig, 10000, 1)]
    if not args.smoke:
        sweeps += [(Mig, rewrite_mig, 10000, 3), (Aig, aig_sweep, 18000, 1)]
    report["repeated_sweep"] = []
    for cls, sweep, gates, seed in sweeps:
        record = bench_repeated_sweep(cls, sweep, gates, seed)
        report["repeated_sweep"].append(record)
        print(
            f"repeated-sweep {record['network']:3s} seed {seed}: "
            f"{record['gates_initial']} gates, {ROUNDS} rounds: "
            f"scratch {record['time_scratch_s']}s -> incremental "
            f"{record['time_incremental_s']}s ({record['speedup']}x, "
            f"{record['converged_skips']} sweeps skipped)",
            flush=True,
        )

    # --- lane 2: sparse-edit re-enumeration --------------------------- #
    record = bench_incremental_enumeration(8000 if args.smoke else 10000, seed=5)
    report["incremental_enumeration"] = record
    print(
        f"re-enumeration after sparse edits: scratch {record['time_scratch_s']}s "
        f"-> incremental {record['time_incremental_s']}s ({record['speedup']}x)",
        flush=True,
    )

    # --- lane 3: Table I realism -------------------------------------- #
    names = TABLE1_BENCHMARKS[:2] if args.smoke else TABLE1_BENCHMARKS
    report["table1"] = []
    for name in names:
        record = bench_table1(name)
        report["table1"].append(record)
        print(
            f"table1 {name:8s} {record['gates']:5d} gates: enum "
            f"{record['enumeration_s']}s, {ROUNDS} rewrite rounds scratch "
            f"{record['rewrite_rounds_scratch_s']}s -> incremental "
            f"{record['rewrite_rounds_incremental_s']}s ({record['speedup']}x)",
            flush=True,
        )

    # --- NPN structure-DB cold start ----------------------------------- #
    record = bench_npn_cold_start()
    report["npn_cold_start"] = record
    print(
        f"npn db cold start: derive {record['derive_s']}s vs cached load "
        f"{record['cached_load_s']}s ({record['speedup']}x)",
        flush=True,
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")

    # --- budget assertions --------------------------------------------- #
    # Every lane record must clear a 2x hard floor (a regression to the
    # non-incremental ~1x immediately trips it), and the headline record
    # must demonstrate the >=3x target; the floor is deliberately below
    # the typical 3.3-4.5x measurements because the thinnest lane (an AIG
    # workload with several active rounds) sits near 3x and CI timing
    # noise must not flake the harness.
    lane = report["repeated_sweep"]
    worst = min(record["speedup"] for record in lane)
    headline = max(record["speedup"] for record in lane)
    assert worst >= 2.0, (
        f"repeated-sweep speedup regressed: {worst}x < 2x hard floor"
    )
    if not args.smoke:
        assert headline >= 3.0, (
            f"repeated-sweep headline speedup regressed: {headline}x < 3x target"
        )
    assert report["incremental_enumeration"]["speedup"] >= 3.0, (
        f"re-enumeration speedup regressed: "
        f"{report['incremental_enumeration']['speedup']}x < 3x target"
    )
    print(
        f"budget ok: repeated-sweep speedups {worst}x..{headline}x "
        f"(floor 2x, headline target 3x)"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
