#!/usr/bin/env python3
"""Perf-regression lane for the per-network code generators (ISSUE 6).

Three measured lanes, each comparing the generated kernels of
:mod:`repro.codegen` against the interpreted paths they replaced on the
*same* workload, with *bit-identical results asserted*:

1. **Sweep-signature simulation** (the headline lane): repeated
   word-parallel ``simulate_patterns`` rounds — the inner loop of
   signature sweeping — through the PR 5 memoized closure program
   (``simulate_patterns_interpreted``, the baseline this repo shipped
   before code generation) versus the generated straight-line kernel.
   Kernel generation/compilation time is *included* in the measured
   codegen wall time.
2. **Exhaustive CEC**: the full 2^n-minterm block sweep of
   ``check_equivalence(method="exhaustive")`` over an optimized-vs-original
   MIG pair, interpreted versus compiled (again including compile time);
   per-block PO patterns and the final verdict are asserted identical.
   The pair is deliberately wider than ``EXHAUSTIVE_LIMIT`` (the width
   callers opt into explicitly with ``method="exhaustive"``) so the total
   sweep clears ``_COMPILED_MIN_MINTERMS`` — the regime where
   ``_check_exhaustive`` itself compiles kernels, with one compile
   amortized across the whole block loop.  The lane simulates in blocks
   of 2^11 minterms, narrower than the consumer's 2^16 default: the
   narrow-block regime is dominated by the per-gate dispatch that code
   generation removes and measures it stably, whereas at 2^16-minterm
   blocks both paths are dominated by the same multi-kilobyte big-int
   arithmetic and the record collapses into allocator noise (+/-40% run
   to run) with only ~2x of real headroom left to measure.  (The
   consumer keeps 2^16 blocks because the wide blocks are faster for
   both paths in absolute terms.)
3. **CNF encode**: repeated Tseitin construction of the same unchanged
   network — the shape of repeated SAT calls — as the pre-IR per-gate
   ``gate_truth_table`` re-walk versus the serial-cached
   :func:`repro.codegen.clause_stream`; clause databases and PO literals
   are asserted clause-for-clause identical.  The solver bulk-load path
   behind ``sat_sweep(final_workers=)`` (``ClauseStream.load_into`` vs
   per-clause ``add_clause``) is timed alongside and reported.
4. **Probe batching**: ``sat_sweep`` on a refinement-heavy
   near-equivalent pair (every primary output wrapped in absorption
   blocks that agree with the original except on rare inputs — the
   classic FRAIG false-candidate shape), at ``probe_flush_bits=1`` (one
   sub-word kernel pass per refuted probe, the pre-batching protocol)
   versus the batched default and the full-word 64.  Verdicts are
   asserted identical at every width; the record captures the
   flush-count collapse and the staleness cost (duplicate budgeted SAT
   probes) that makes a small batch the end-to-end optimum.

Results land in ``BENCH_codegen.json`` (override with ``--json`` /
``REPRO_BENCH_CODEGEN_JSON``) for the CI artifact upload::

    PYTHONPATH=src python benchmarks/bench_codegen.py [--smoke]
"""

import argparse
import json
import os
import random
import sys
import time

from repro.codegen import ClauseStream, clause_stream, compile_network_kernel
from repro.core import Mig, rewrite_mig
from repro.core.generation import random_network
from repro.verify.cnf import FALSE_LIT, GateGraph, encode_network
from repro.verify.equivalence import _input_patterns_block
from repro.verify.sat import SatSolver


def _drop_generated(net) -> None:
    """Strip cached codegen artifacts so a lane times a true cold start."""
    for key in ("_codegen_ir", "_codegen_ir_serial", "_codegen_kernel",
                "_codegen_kernel_serial", "_codegen_clauses",
                "_codegen_clauses_serial", "_sim_seen_serial"):
        net.__dict__.pop(key, None)


def _oracle_encode(graph, net):
    """The pre-IR encode walk: per-gate ``gate_truth_table`` dispatch."""
    node_lit = {0: FALSE_LIT}
    for index, node in enumerate(net.pi_nodes()):
        node_lit[node] = graph.pi_lit(index)
    for node in net.topological_order():
        in_lits = tuple(node_lit[f >> 1] ^ (f & 1) for f in net.fanins(node))
        node_lit[node] = graph.add_gate(net.gate_truth_table(node), in_lits)
    return [node_lit[po >> 1] ^ (po & 1) for po in net.po_signals()]


def _warmup():
    """Charge the prime-cover/expression caches and import-time state so
    the lanes compare execution strategies, not cold caches."""
    net = random_network(Mig, num_pis=8, num_gates=400, num_pos=10, seed=99,
                         gate_mix="mixed")
    patterns = [random.Random(0).getrandbits(64) for _ in range(8)]
    net.simulate_patterns_interpreted(patterns, 64)
    compile_network_kernel(net).simulate(patterns, 64)
    clause_stream(net)


def bench_sweep_signatures(num_gates, rounds, num_bits=256, seed=1):
    """Repeated signature-simulation rounds, interpreted vs generated."""
    net = random_network(Mig, num_pis=14, num_gates=num_gates, num_pos=100,
                         seed=seed, gate_mix="mixed")
    rng = random.Random(seed)
    rounds_patterns = [
        [rng.getrandbits(num_bits) for _ in range(net.num_pis)]
        for _ in range(rounds)
    ]

    # Baseline: the PR 5 memoized closure program (compiled once up front,
    # exactly how the pre-codegen simulate_patterns amortized it).
    t0 = time.perf_counter()
    expected = [
        net.simulate_patterns_interpreted(patterns, num_bits)
        for patterns in rounds_patterns
    ]
    t_interpreted = time.perf_counter() - t0

    # Codegen: generation + compilation included in the measured time.
    _drop_generated(net)
    t0 = time.perf_counter()
    kernel = compile_network_kernel(net)
    got = [kernel.simulate(patterns, num_bits) for patterns in rounds_patterns]
    t_codegen = time.perf_counter() - t0

    assert got == expected, "generated kernel diverged from closure program"
    return {
        "gates": net.num_gates,
        "rounds": rounds,
        "pattern_bits": num_bits,
        "time_interpreted_s": round(t_interpreted, 3),
        "time_codegen_s": round(t_codegen, 3),
        "speedup": round(t_interpreted / t_codegen, 2),
    }


def bench_exhaustive_cec(num_pis, num_gates, seed=2):
    """Full 2^n-minterm equivalence sweep, interpreted vs generated."""
    first = random_network(Mig, num_pis=num_pis, num_gates=num_gates,
                           num_pos=40, seed=seed, gate_mix="mixed")
    second = first.copy()
    rewrite_mig(second)  # structurally different, functionally equivalent

    total = 1 << num_pis
    block_bits = min(total, 1 << 11)  # narrow blocks; see module docstring

    _drop_generated(first)
    _drop_generated(second)
    t0 = time.perf_counter()
    kernel_first = first.compiled_kernel()
    kernel_second = second.compiled_kernel()
    t_codegen = time.perf_counter() - t0  # generation + compile, as charged

    # The two paths are timed block-by-block, interleaved, with every block
    # result compared and released before the next block: multi-megabyte
    # big-int workloads are allocation-sensitive, and batching one whole
    # phase while the other phase's results stay pinned on the heap skews
    # the comparison by 2-4x.  Interleaving gives both paths an identical
    # allocator state.
    t_interpreted = 0.0
    verdict = True
    for start in range(0, total, block_bits):
        patterns = _input_patterns_block(num_pis, start, block_bits)
        t0 = time.perf_counter()
        expected_first = first.simulate_patterns_interpreted(patterns, block_bits)
        expected_second = second.simulate_patterns_interpreted(patterns, block_bits)
        t_interpreted += time.perf_counter() - t0
        t0 = time.perf_counter()
        got_first = kernel_first.simulate_auto(patterns, block_bits)
        got_second = kernel_second.simulate_auto(patterns, block_bits)
        t_codegen += time.perf_counter() - t0
        assert got_first == expected_first and got_second == expected_second, (
            "compiled CEC blocks diverged from interpreted"
        )
        verdict = verdict and expected_first == expected_second
    assert verdict, "rewrite broke equivalence (workload bug)"
    return {
        "pis": num_pis,
        "gates_first": first.num_gates,
        "gates_second": second.num_gates,
        "minterms": total,
        "verdict_equivalent": verdict,
        "time_interpreted_s": round(t_interpreted, 3),
        "time_codegen_s": round(t_codegen, 3),
        "speedup": round(t_interpreted / t_codegen, 2),
    }


def bench_cnf_encode(num_gates, rounds, seed=3):
    """Repeated Tseitin construction of one unchanged network."""
    net = random_network(Mig, num_pis=14, num_gates=num_gates, num_pos=100,
                         seed=seed, gate_mix="mixed")

    t0 = time.perf_counter()
    oracle_graphs = []
    for _ in range(rounds):
        graph = GateGraph(net.num_pis)
        pos = _oracle_encode(graph, net)
        oracle_graphs.append((graph, pos))
    t_interpreted = time.perf_counter() - t0

    _drop_generated(net)
    t0 = time.perf_counter()
    streams = [clause_stream(net) for _ in range(rounds)]
    t_codegen = time.perf_counter() - t0

    graph, pos = oracle_graphs[0]
    for stream in streams:
        assert stream is streams[0], "serial cache missed on unchanged network"
    assert streams[0].clause_lists() == graph.clauses
    assert streams[0].po_lits == tuple(pos)

    # Reported alongside: rebuilding a fresh solver from the snapshot (the
    # per-pair cost in sat_sweep's final_workers pool) via the unchecked
    # bulk loader vs the validating per-clause path.
    stream = streams[0]
    load_rounds = max(10, rounds)
    t0 = time.perf_counter()
    for _ in range(load_rounds):
        solver = SatSolver()
        solver.ensure_vars(stream.num_vars)
        for clause in stream.clauses():
            solver.add_clause(clause)
    t_checked = time.perf_counter() - t0
    t0 = time.perf_counter()
    for _ in range(load_rounds):
        solver = SatSolver()
        stream.load_into(solver)
    t_unchecked = time.perf_counter() - t0

    return {
        "gates": net.num_gates,
        "rounds": rounds,
        "clauses": stream.num_clauses,
        "time_interpreted_s": round(t_interpreted, 3),
        "time_codegen_s": round(t_codegen, 3),
        "speedup": round(t_interpreted / t_codegen, 2),
        "solver_load": {
            "rounds": load_rounds,
            "time_checked_s": round(t_checked, 3),
            "time_unchecked_s": round(t_unchecked, 3),
            "speedup": round(t_checked / t_unchecked, 2),
        },
    }


def bench_probe_batching(num_gates, num_pos, layers, rare_width=16, seed=11):
    """``sat_sweep`` probe-flush widths on a refinement-heavy miter.

    The pair: a random MIG versus a copy whose every primary output is
    wrapped in ``layers`` absorption blocks ``g -> g AND (g OR rare)``
    with ``rare`` an AND of ``rare_width`` random PIs — functionally
    identity, but each ``g OR rare`` stage agrees with ``g`` on all but
    a ~2^-rare_width sliver of the input space, so its signature
    collides with ``g`` until a SAT refutation supplies the
    distinguishing pattern.  Each wrapped output therefore forces
    ``layers`` genuine refinements: the workload where flush traffic,
    not solving, used to dominate the encoding phase.
    """
    from repro.verify.sweep import sat_sweep

    first = random_network(Mig, num_pis=24, num_gates=num_gates,
                           num_pos=num_pos, seed=seed, gate_mix="mixed")
    second = first.copy()
    rng = random.Random(seed + 1)
    pis = [(node << 1) for node in second.pi_nodes()]
    for index, po in enumerate(second.po_signals()):
        sig = po
        for _ in range(layers):
            chosen = rng.sample(pis, rare_width)
            rare = chosen[0]
            for pi in chosen[1:]:
                rare = second.and_(rare, pi)
            sig = second.and_(sig, second.or_(sig, rare))
        second.set_po(index, sig)
    second.cleanup()

    from repro.verify.sweep import _DEFAULT_PROBE_FLUSH_BITS

    record = {
        "gates_first": first.num_gates,
        "gates_second": second.num_gates,
        "layers": layers,
        "default_bits": _DEFAULT_PROBE_FLUSH_BITS,
        "widths": {},
    }
    statuses = set()
    for bits in (1, _DEFAULT_PROBE_FLUSH_BITS, 64):
        key = str(bits)
        if key in record["widths"]:
            continue
        t0 = time.perf_counter()
        outcome = sat_sweep(first, second, probe_flush_bits=bits)
        elapsed = time.perf_counter() - t0
        statuses.add(outcome.status)
        record["widths"][key] = {
            "time_s": round(elapsed, 3),
            "status": outcome.status,
            "refinements": outcome.stats["refinements"],
            "batched_flushes": outcome.stats["batched_flushes"],
            "sat_calls": outcome.stats["sat_calls"],
            "merges": outcome.stats["merges"],
        }
    assert statuses == {"equivalent"}, (
        f"probe-flush widths disagreed or workload broke: {statuses}"
    )
    baseline = record["widths"]["1"]
    tuned = record["widths"][str(_DEFAULT_PROBE_FLUSH_BITS)]
    record["speedup"] = round(baseline["time_s"] / tuned["time_s"], 2)
    record["flush_reduction"] = round(
        baseline["batched_flushes"] / max(1, tuned["batched_flushes"]), 2
    )
    return record


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload with a >=2x budget assertion",
    )
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_CODEGEN_JSON", "BENCH_codegen.json"),
        help="write the JSON report to this path",
    )
    args = parser.parse_args(argv)

    _warmup()
    report = {"mode": "smoke" if args.smoke else "full"}

    # --- lane 1: sweep-signature simulation (the headline lane) ------- #
    record = bench_sweep_signatures(
        num_gates=4000 if args.smoke else 10000,
        rounds=600 if args.smoke else 1500,
    )
    report["sweep_signatures"] = record
    print(
        f"sweep-signatures: {record['gates']} gates x {record['rounds']} "
        f"rounds x {record['pattern_bits']} bits: interpreted "
        f"{record['time_interpreted_s']}s -> generated "
        f"{record['time_codegen_s']}s ({record['speedup']}x)",
        flush=True,
    )

    # --- lane 2: exhaustive CEC --------------------------------------- #
    record = bench_exhaustive_cec(
        num_pis=22 if args.smoke else 23,
        num_gates=1200 if args.smoke else 2500,
    )
    report["exhaustive_cec"] = record
    print(
        f"exhaustive-cec: {record['pis']} PIs, {record['gates_first']}/"
        f"{record['gates_second']} gates, {record['minterms']} minterms: "
        f"interpreted {record['time_interpreted_s']}s -> generated "
        f"{record['time_codegen_s']}s ({record['speedup']}x)",
        flush=True,
    )

    # --- lane 3: CNF encode ------------------------------------------- #
    record = bench_cnf_encode(
        num_gates=4000 if args.smoke else 10000,
        rounds=8 if args.smoke else 20,
    )
    report["cnf_encode"] = record
    print(
        f"cnf-encode: {record['gates']} gates x {record['rounds']} rounds "
        f"({record['clauses']} clauses): per-gate re-walk "
        f"{record['time_interpreted_s']}s -> clause stream "
        f"{record['time_codegen_s']}s ({record['speedup']}x); solver load "
        f"checked {record['solver_load']['time_checked_s']}s -> unchecked "
        f"{record['solver_load']['time_unchecked_s']}s "
        f"({record['solver_load']['speedup']}x)",
        flush=True,
    )

    # --- lane 4: probe-flush batching in sat_sweep -------------------- #
    record = bench_probe_batching(
        num_gates=3000 if args.smoke else 8000,
        num_pos=60 if args.smoke else 150,
        layers=2,
    )
    report["probe_batching"] = record
    baseline = record["widths"]["1"]
    tuned = record["widths"][str(record["default_bits"])]
    print(
        f"probe-batching: {record['gates_first']}/{record['gates_second']} "
        f"gates: per-probe flush {baseline['time_s']}s "
        f"({baseline['batched_flushes']} flushes) -> batch "
        f"{record['default_bits']} {tuned['time_s']}s "
        f"({tuned['batched_flushes']} flushes): {record['speedup']}x "
        f"end-to-end, {record['flush_reduction']}x fewer flushes",
        flush=True,
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")

    # --- budget assertions --------------------------------------------- #
    # Every asserted lane must clear the 2x hard floor against the PR 5
    # interpreted baseline (a regression to ~1x trips it immediately), and
    # the headline lane must demonstrate the >=3x target in full mode; the
    # floors sit well below the typical measurements so CI timing noise
    # cannot flake the harness.
    lanes = {
        "sweep_signatures": report["sweep_signatures"]["speedup"],
        "exhaustive_cec": report["exhaustive_cec"]["speedup"],
        "cnf_encode": report["cnf_encode"]["speedup"],
    }
    for name, speedup in lanes.items():
        assert speedup >= 2.0, f"{name} speedup regressed: {speedup}x < 2x floor"
    # The probe-batching lane asserts on flush-count collapse rather than
    # wall clock: the end-to-end gain is real but small enough (~1.1-1.2x)
    # for CI timing noise, while the flush reduction is structural.
    flush_reduction = report["probe_batching"]["flush_reduction"]
    assert flush_reduction >= 2.0, (
        f"probe batching flush reduction regressed: {flush_reduction}x < 2x"
    )
    headline = max(lanes["sweep_signatures"], lanes["exhaustive_cec"])
    if not args.smoke:
        assert headline >= 3.0, (
            f"headline speedup regressed: {headline}x < 3x target"
        )
    print(
        f"budget ok: {', '.join(f'{k} {v}x' for k, v in lanes.items())} "
        f"(floor 2x per lane, headline target 3x)"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
