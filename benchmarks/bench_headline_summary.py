"""E6 — the headline averages quoted in the paper's abstract.

Paper: "MIG optimization reduces the number of logic levels by 18%, on
average, with respect to AIG optimization performed by ABC" and the
synthesis flow "enables an average reduction of {22%, 14%, 11%} in the
estimated {delay, area, power} metrics".

This bench computes both headline numbers on a representative subset and
prints paper-vs-measured.  When ``REPRO_BENCH_TRACE_JSON`` names a file,
the per-pass metrics traces of both optimizing flows are serialised there
(one JSON record per pass, tagged ``<benchmark>/<flow>``) so CI can upload
them as an artifact and speed trajectories stay diffable across PRs.
"""

import json
import os
import time

import pytest

from repro.flows import (
    format_pass_metrics,
    run_optimization_experiment,
    run_synthesis_experiment,
    summarize_optimization,
    summarize_synthesis,
)

from .conftest import flow_depth_effort, flow_rounds

_SUBSET = ["alu4", "my_adder", "b9", "count", "misex3", "C1908", "dalu"]


def test_headline_summary(benchmark):
    """Compute the abstract's headline percentages on a subset of the suite."""

    def run():
        t0 = time.perf_counter()
        rows = run_optimization_experiment(
            _SUBSET, rounds=flow_rounds(), depth_effort=flow_depth_effort()
        )
        opt_wall = time.perf_counter() - t0
        opt = summarize_optimization(rows)
        t0 = time.perf_counter()
        syn = summarize_synthesis(
            run_synthesis_experiment(
                _SUBSET, rounds=flow_rounds(), depth_effort=flow_depth_effort()
            )
        )
        syn_wall = time.perf_counter() - t0
        return opt, syn, rows, opt_wall, syn_wall

    opt, syn, rows, opt_wall, syn_wall = benchmark.pedantic(run, iterations=1, rounds=1)
    trace_path = os.environ.get("REPRO_BENCH_TRACE_JSON")
    if trace_path:
        records = []
        for row in rows:
            for flow, passes in (("mig", row.mig_passes), ("aig", row.aig_passes)):
                for metrics in passes:
                    record = metrics.as_dict()
                    record["flow"] = f"{row.name}/{flow}"
                    records.append(record)
        with open(trace_path, "w") as handle:
            json.dump(records, handle, indent=2, sort_keys=True)
        print(f"\nPer-pass trace written to {trace_path} ({len(records)} records)")
    print()
    print(
        f"Wall-time: optimization experiment {opt_wall:.2f}s, "
        f"synthesis experiment {syn_wall:.2f}s "
        f"(subset of {len(_SUBSET)} benchmarks)"
    )
    benchmark.extra_info["opt_wall_s"] = round(opt_wall, 2)
    benchmark.extra_info["syn_wall_s"] = round(syn_wall, 2)
    # Per-pass trace of the MIGhty flow on the largest subset member, so
    # the CI log shows where the wall-time goes before/after each pass.
    largest = max(rows, key=lambda r: r.mig.size)
    print()
    print(format_pass_metrics(largest.mig_passes, title=f"MIGhty passes on {largest.name}"))
    print()
    print("Headline results (paper → measured):")
    print(f"  depth vs AIG       : -18.6%  → {-opt.depth_improvement_vs_aig:+.1f}%")
    print(f"  depth vs BDD       : -23.7%  → {-opt.depth_improvement_vs_bdd:+.1f}%")
    print(f"  synthesis delay    : -22%    → {-syn.delay_improvement:+.1f}%")
    print(f"  synthesis area     : -14%    → {-syn.area_improvement:+.1f}%")
    print(f"  synthesis power    : -11%    → {-syn.power_improvement:+.1f}%")
    benchmark.extra_info["depth_vs_aig_percent"] = round(-opt.depth_improvement_vs_aig, 2)
    benchmark.extra_info["delay_vs_best_percent"] = round(-syn.delay_improvement, 2)
    # Shape assertions: depth and delay advantages must point the paper's way.
    assert opt.depth_improvement_vs_aig >= 0.0
    assert syn.delay_improvement >= 0.0
