#!/usr/bin/env python3
"""Perf lane for partition-parallel optimization inside one circuit (ISSUE 7).

Four lanes over the scalable generator families of
:mod:`repro.bench_circuits.generator`, exercising
:func:`repro.flows.optimize_large` — windowed decomposition, per-window
optimization in worker processes, SAT self-certification of every
window, and substitution-based stitching:

1. **Windowed rewrite at scale** (the budget lane): the 10^5-gate
   ``rand_3500`` preset (smoke: the 1.3*10^4-gate ``rand_400``),
   optimized at 1 worker (the serial windowed baseline) and at the
   target worker count, plus every intermediate power of two.  The
   stitched results must be **bit-identical at every worker count** —
   same final size, depth, and node-level structural fingerprint (the
   window extension of the :mod:`repro.parallel` determinism contract)
   — and every window must carry an ``equivalent`` certification
   verdict.  Target: **>= 2x wall-clock at 4 workers** — asserted when
   the host actually has that many CPUs (``--force-assert`` overrides),
   reported otherwise; determinism is asserted unconditionally.
2. **Pipelined vs. barrier**: the same circuit through the streamed
   extract→optimize→stitch path (``pipeline=True``, the default) and
   the three-phase barrier path (``pipeline=False``) at the target
   worker count.  Bit-identity between the two paths is asserted
   unconditionally; ``pipeline_speedup`` (barrier wall / pipelined
   wall) and both ``parent_idle_s`` figures land in the JSON, with the
   floor and the idle reduction asserted only where the hardware can
   express overlap (>= 4 CPUs / CPUs >= workers).
3. **Multi-sweep determinism**: ``sweeps=2`` (boundary-shifted
   re-partition between sweeps) at 1 worker and at the target count —
   bit-identity across worker counts asserted unconditionally, the
   second sweep's extra gain reported.
4. **Million-gate headline** (full mode only): the 10^6-gate
   ``rand_42000`` preset through the same API at the target worker
   count — no serial rerun (the speedup claim lives in lane 1); the
   record is the absolute wall clock, gate throughput, window count and
   certification coverage at the scale the ROADMAP names.

Results land in ``BENCH_partition.json`` (override with ``--json`` /
``REPRO_BENCH_PARTITION_JSON``) for the CI artifact upload::

    PYTHONPATH=src python benchmarks/bench_partition.py [--smoke] [--workers N]
"""

import argparse
import json
import os
import sys
import time

from repro.bench_circuits import build_scalable
from repro.flows import optimize_large
from repro.parallel import warm_worker
from repro.parallel.corpus import structural_fingerprint

#: Wall-clock floors: the full lane must clear the ISSUE target at 4
#: workers; the smoke lane runs at 2 workers on noisy CI runners, so its
#: floor only guards against the parallel path regressing to ~1x.
FULL_TARGET = 2.0
SMOKE_FLOOR = 1.2

#: Pipelined-vs-barrier floor.  The streamed path can only hide the
#: parent-side extract and stitch phases, which measure ~3% of the
#: serial wall on these presets — the theoretical ceiling at 4 workers
#: is therefore ~1.12x (1 + (extract+stitch)/pool_wall), so the asserted
#: floor guards the overlap being real, not an aspirational 15%.
PIPELINE_TARGET = 1.05


def _summarize(result) -> dict:
    details = result.details
    certified = [
        record["certified"]["equivalent"]
        for record in details.get("per_window", [])
        if "certified" in record
    ]
    assert certified and all(certified), (
        f"{details.get('certified_windows', 0)}/{details['windows']} windows "
        "certified equivalent — every window must carry a proof"
    )
    return {
        "workers": result.workers,
        "parallel_pool": result.parallel,
        "initial_size": result.initial_size,
        "final_size": result.final_size,
        "initial_depth": result.initial_depth,
        "final_depth": result.final_depth,
        "windows": details["windows"],
        "improved_windows": details["improved_windows"],
        "frontier_pins": details["frontier_pins"],
        "window_gain": details["window_gain"],
        "certified_windows": details["certified_windows"],
        "certified_methods": details["certified_methods"],
        "stitch": details["stitch"],
        "time_s": round(result.runtime_s, 3),
        "optimize_wall_s": details["optimize_wall_s"],
        "pipeline": details.get("pipeline", False),
        "sweeps_run": details.get("sweeps_run", 1),
        "extract_wall_s": details.get("extract_wall_s", 0.0),
        "stitch_wall_s": details.get("stitch_wall_s", 0.0),
        "parent_idle_s": details.get("parent_idle_s", 0.0),
        "commit_queue_peak": details.get("commit_queue_peak", 0),
    }


def bench_windowed_rewrite(name, workers, max_window_gates):
    """Lane 1: serial vs partition-parallel windowed rewrite, one circuit."""
    network = build_scalable(name)
    worker_counts = [1]
    count = 2
    while count <= workers:
        worker_counts.append(count)
        count *= 2
    if workers not in worker_counts:
        worker_counts.append(workers)

    runs = {}
    fingerprints = {}
    for count in worker_counts:
        result = optimize_large(
            network, workers=count, max_window_gates=max_window_gates
        )
        runs[count] = _summarize(result)
        fingerprints[count] = structural_fingerprint(result.network)

    baseline = fingerprints[worker_counts[0]]
    for count, fingerprint in fingerprints.items():
        assert fingerprint == baseline, (
            f"stitched network diverged at {count} workers: the window "
            "determinism contract is broken"
        )

    serial = runs[1]
    fastest = runs[workers]
    return {
        "benchmark": name,
        "gates": serial["initial_size"],
        "max_window_gates": max_window_gates,
        "worker_counts": worker_counts,
        "runs": {str(count): run for count, run in runs.items()},
        "time_serial_s": serial["time_s"],
        "time_parallel_s": fastest["time_s"],
        "speedup": round(serial["time_s"] / fastest["time_s"], 2),
    }


def bench_pipeline_vs_barrier(name, workers, max_window_gates):
    """Lane 2: streamed extract→optimize→stitch vs the barrier path."""
    network = build_scalable(name)
    runs = {}
    fingerprints = {}
    for mode, flag in (("pipelined", True), ("barrier", False)):
        result = optimize_large(
            network,
            workers=workers,
            max_window_gates=max_window_gates,
            pipeline=flag,
        )
        runs[mode] = _summarize(result)
        fingerprints[mode] = structural_fingerprint(result.network)
    assert fingerprints["pipelined"] == fingerprints["barrier"], (
        "pipelined and barrier paths stitched different networks: the "
        "in-order commit contract is broken"
    )
    return {
        "benchmark": name,
        "workers": workers,
        "runs": runs,
        "pipeline_speedup": round(
            runs["barrier"]["time_s"] / runs["pipelined"]["time_s"], 2
        ),
        "parent_idle_s": {
            "pipelined": runs["pipelined"]["parent_idle_s"],
            "barrier": runs["barrier"]["parent_idle_s"],
        },
    }


def bench_multi_sweep(name, workers, max_window_gates):
    """Lane 3: boundary-shifted two-sweep runs, bit-identical across workers."""
    network = build_scalable(name)
    worker_counts = sorted({1, workers})
    runs = {}
    fingerprints = {}
    second_sweep_gain = 0
    for count in worker_counts:
        result = optimize_large(
            network,
            workers=count,
            max_window_gates=max_window_gates,
            sweeps=2,
        )
        runs[count] = _summarize(result)
        fingerprints[count] = structural_fingerprint(result.network)
        per_sweep = result.details.get("per_sweep", [])
        if len(per_sweep) > 1:
            second_sweep_gain = per_sweep[1]["window_gain"]
    baseline = fingerprints[worker_counts[0]]
    for count, fingerprint in fingerprints.items():
        assert fingerprint == baseline, (
            f"two-sweep run diverged at {count} workers: the multi-sweep "
            "determinism contract is broken"
        )
    return {
        "benchmark": name,
        "sweeps": 2,
        "worker_counts": worker_counts,
        "runs": {str(count): run for count, run in runs.items()},
        "sweeps_run": runs[worker_counts[0]]["sweeps_run"],
        "second_sweep_gain": second_sweep_gain,
    }


def bench_million_gate(name, workers, max_window_gates):
    """Lane 4: the million-gate headline — one run at the target workers."""
    t0 = time.perf_counter()
    network = build_scalable(name)
    build_s = time.perf_counter() - t0
    result = optimize_large(
        network, workers=workers, max_window_gates=max_window_gates
    )
    record = _summarize(result)
    record.update(
        {
            "benchmark": name,
            "build_s": round(build_s, 3),
            "gates_per_s": int(record["initial_size"] / result.runtime_s),
        }
    )
    return record


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload (smaller circuit, relaxed floor, no headline)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count of the parallel lanes (default: 2 smoke, 4 full)",
    )
    parser.add_argument(
        "--max-window-gates",
        type=int,
        default=400,
        help="partition bound forwarded to optimize_large",
    )
    parser.add_argument(
        "--force-assert",
        action="store_true",
        help="assert the speedup floor even on hosts with fewer CPUs than workers",
    )
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_PARTITION_JSON", "BENCH_partition.json"),
        help="write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers is not None else (2 if args.smoke else 4)
    cpus = os.cpu_count() or 1

    warm_worker()  # serial and parallel lanes start equally hot
    report = {
        "mode": "smoke" if args.smoke else "full",
        "workers": workers,
        "cpu_count": cpus,
    }

    # --- lane 1: windowed rewrite at scale (the budget lane) ----------- #
    lane_name = "rand_400" if args.smoke else "rand_3500"
    record = bench_windowed_rewrite(lane_name, workers, args.max_window_gates)
    report["windowed_rewrite"] = record
    serial = record["runs"]["1"]
    print(
        f"windowed rewrite ({lane_name}, {record['gates']} gates, "
        f"{serial['windows']} windows, {serial['certified_windows']} certified): "
        f"size {serial['initial_size']} -> {serial['final_size']}, serial "
        f"{record['time_serial_s']}s -> {workers} workers "
        f"{record['time_parallel_s']}s ({record['speedup']}x, stitched "
        f"networks bit-identical at {record['worker_counts']} workers)",
        flush=True,
    )

    # --- lane 2: pipelined vs barrier ---------------------------------- #
    record = bench_pipeline_vs_barrier(lane_name, workers, args.max_window_gates)
    report["pipeline_vs_barrier"] = record
    report["pipeline_speedup"] = record["pipeline_speedup"]
    report["parent_idle_s"] = record["parent_idle_s"]
    idle = record["parent_idle_s"]
    print(
        f"pipelined vs barrier ({lane_name}, {workers} workers): barrier "
        f"{record['runs']['barrier']['time_s']}s -> pipelined "
        f"{record['runs']['pipelined']['time_s']}s "
        f"({record['pipeline_speedup']}x, parent idle {idle['barrier']}s -> "
        f"{idle['pipelined']}s, stitched networks bit-identical)",
        flush=True,
    )

    # --- lane 3: multi-sweep determinism ------------------------------- #
    record = bench_multi_sweep(lane_name, workers, args.max_window_gates)
    report["multi_sweep"] = record
    base_run = record["runs"][str(record["worker_counts"][0])]
    print(
        f"multi-sweep ({lane_name}, sweeps=2, {record['sweeps_run']} run): "
        f"size {base_run['initial_size']} -> {base_run['final_size']} "
        f"(+{record['second_sweep_gain']} gates from the shifted sweep, "
        f"bit-identical at {record['worker_counts']} workers)",
        flush=True,
    )

    # --- lane 4: the million-gate headline (full mode only) ------------ #
    if not args.smoke:
        record = bench_million_gate("rand_42000", workers, args.max_window_gates)
        report["million_gate"] = record
        print(
            f"million-gate headline ({record['benchmark']}, "
            f"{record['initial_size']} gates, {record['windows']} windows): "
            f"size {record['initial_size']} -> {record['final_size']} in "
            f"{record['time_s']}s at {workers} workers "
            f"({record['gates_per_s']} gates/s, {record['certified_windows']} "
            f"windows certified)",
            flush=True,
        )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")

    # --- budget assertion ---------------------------------------------- #
    # Determinism and certification were already asserted in every lane.
    # The wall-clock floor only binds where the hardware can express it: a
    # 4-worker pool on a 1-CPU container time-slices instead of
    # parallelizing, which measures the OS scheduler, not this layer.
    floor = SMOKE_FLOOR if args.smoke else FULL_TARGET
    speedup = report["windowed_rewrite"]["speedup"]
    if cpus >= workers or args.force_assert:
        assert speedup >= floor, (
            f"windowed rewrite speedup regressed: {speedup}x < {floor}x floor "
            f"at {workers} workers"
        )
        print(f"budget ok: {speedup}x >= {floor}x at {workers} workers")
    else:
        print(
            f"budget floor SKIPPED: host has {cpus} CPU(s) < {workers} workers "
            f"(measured {speedup}x; determinism and certification asserted)"
        )

    # Pipelined-vs-barrier floors: the overlap only exists where the pool
    # actually runs concurrently with the parent.  The speedup floor binds
    # on the full-lane geometry (>= 4 workers on >= 4 CPUs); the parent
    # idle reduction binds whenever the host can run the pool in parallel.
    pipeline_speedup = report["pipeline_speedup"]
    idle = report["parent_idle_s"]
    if (cpus >= 4 and workers >= 4) or args.force_assert:
        assert pipeline_speedup >= PIPELINE_TARGET, (
            f"pipelined path regressed: {pipeline_speedup}x < "
            f"{PIPELINE_TARGET}x floor over the barrier path at {workers} workers"
        )
        print(
            f"pipeline budget ok: {pipeline_speedup}x >= {PIPELINE_TARGET}x "
            f"over barrier at {workers} workers"
        )
    else:
        print(
            f"pipeline floor REPORT-ONLY: {pipeline_speedup}x over barrier "
            f"({cpus} CPU(s), {workers} workers; bit-identity asserted)"
        )
    if cpus >= workers or args.force_assert:
        assert idle["pipelined"] < idle["barrier"], (
            f"pipelined path does not reduce parent idle time: "
            f"{idle['pipelined']}s vs {idle['barrier']}s barrier"
        )
        print(
            f"parent idle reduced: {idle['barrier']}s -> {idle['pipelined']}s"
        )
    else:
        print(
            f"parent idle REPORT-ONLY: barrier {idle['barrier']}s, "
            f"pipelined {idle['pipelined']}s on {cpus} CPU(s)"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
