#!/usr/bin/env python3
"""Acceptance sweep for the cut-rewriting engine (ISSUE 2 criteria).

Runs, over every Table I benchmark:

1. AIG cut rewriting: equivalence-verified, size never worse;
2. MIG cut rewriting: equivalence-verified, size/depth never worse;
3. ``mighty`` vs ``mighty + boolean_rewrite``: the combined flow must be
   no worse on every benchmark (size and depth) and strictly better on
   at least three;
4. technology mapping of both network types through the cut+NPN matcher:
   mapped netlists equivalence-verified.

Not part of the tier-1 suite (the largest circuits take minutes in
Python); run manually or from a scheduled job::

    PYTHONPATH=src python benchmarks/acceptance_cut_rewrite.py [names...]
"""

import sys
import time

from repro.aig.aig import Aig
from repro.aig.rewrite import rewrite
from repro.bench_circuits import benchmark_names, build_benchmark
from repro.core import Mig, rewrite_mig
from repro.flows import mighty_optimize
from repro.mapping import map_aig, map_mig
from repro.verify import check_equivalence


def _check(first, second, label):
    result = check_equivalence(first, second, num_random_vectors=512)
    if not result.equivalent:
        raise AssertionError(f"{label}: NOT equivalent ({result.method})")


def main(names):
    strictly_better = []
    for name in names:
        start = time.time()
        # --- 1. AIG cut rewriting -------------------------------------- #
        aig = build_benchmark(name, Aig)
        rewritten = rewrite(aig)
        _check(aig, rewritten, f"{name}/aig-rewrite")
        assert rewritten.num_gates <= aig.num_gates, name
        aig_line = f"aig {aig.num_gates}->{rewritten.num_gates}"

        # --- 2. MIG cut rewriting -------------------------------------- #
        mig = build_benchmark(name, Mig)
        reference = build_benchmark(name, Mig)
        size0, depth0 = mig.num_gates, mig.depth()
        rewrite_mig(mig)
        _check(mig, reference, f"{name}/mig-rewrite")
        assert mig.num_gates <= size0 and mig.depth() <= depth0, name
        mig_line = f"mig {size0}->{mig.num_gates} d{depth0}->{mig.depth()}"

        # --- 3. mighty vs mighty + cut rewriting ----------------------- #
        algebraic = build_benchmark(name, Mig)
        mighty_optimize(algebraic, rounds=1, depth_effort=1)
        combined = build_benchmark(name, Mig)
        mighty_optimize(combined, rounds=1, depth_effort=1, boolean_rewrite=True)
        _check(combined, reference, f"{name}/mighty+rewrite")
        alg = (algebraic.num_gates, algebraic.depth())
        comb = (combined.num_gates, combined.depth())
        assert comb[0] <= alg[0] and comb[1] <= alg[1], (name, alg, comb)
        if comb < alg:
            strictly_better.append(name)
        flow_line = f"mighty {alg[0]}/d{alg[1]} vs +rw {comb[0]}/d{comb[1]}"

        # --- 4. mapping through the cut+NPN matcher -------------------- #
        _check(reference, map_mig(reference), f"{name}/map-mig")
        _check(aig, map_aig(aig), f"{name}/map-aig")

        print(
            f"{name:10s} OK  {aig_line:18s} {mig_line:28s} {flow_line}"
            f"  ({time.time() - start:.1f}s)",
            flush=True,
        )

    print(f"\nstrictly better with boolean_rewrite: {strictly_better}")
    assert len(strictly_better) >= 3, "need >= 3 strictly better benchmarks"
    print("acceptance sweep passed")


if __name__ == "__main__":
    main(sys.argv[1:] or benchmark_names())
