#!/usr/bin/env python3
"""Acceptance sweep for the cut-rewriting engine (ISSUE 2 criteria).

Runs, over every Table I benchmark (the per-benchmark body lives in
:func:`repro.parallel.corpus.rewrite_acceptance_row`):

1. AIG cut rewriting: equivalence-verified, size never worse;
2. MIG cut rewriting: equivalence-verified, size/depth never worse;
3. ``mighty`` vs ``mighty + boolean_rewrite``: the combined flow must be
   no worse on every benchmark (size and depth) and strictly better on
   at least three;
4. technology mapping of both network types through the cut+NPN matcher:
   mapped netlists equivalence-verified.

Benchmarks shard across worker processes through the corpus runner
(``--workers N``, default serial); per-benchmark obligations are checked
inside each task, the cross-benchmark obligation after the merge.
Results are identical at any worker count.

Not part of the tier-1 suite (the largest circuits take minutes in
Python); run manually or from a scheduled job::

    PYTHONPATH=src python benchmarks/acceptance_cut_rewrite.py [--workers N] [names...]
"""

import argparse
import sys

from repro.bench_circuits import benchmark_names
from repro.parallel.corpus import rewrite_acceptance_row, run_corpus


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="benchmark subset (default: all)")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the per-benchmark sweep across N worker processes",
    )
    args = parser.parse_args(argv)
    names = args.names or benchmark_names()

    # Per-row results print after the merge (deterministic order); the
    # largest circuits take minutes, so announce the workload up front.
    print(
        f"sweeping {len(names)} benchmarks across {args.workers} worker(s): "
        f"{', '.join(names)} ...",
        flush=True,
    )
    sweep = run_corpus(rewrite_acceptance_row, names, workers=args.workers)
    strictly_better = []
    for row in sweep.results:
        name = row["benchmark"]
        alg = tuple(row["mighty"])
        comb = tuple(row["mighty_rewrite"])
        if row["strictly_better"]:
            strictly_better.append(name)
        aig_line = f"aig {row['aig_before']}->{row['aig_after']}"
        mig_line = (
            f"mig {row['mig_before']}->{row['mig_after']} "
            f"d{row['mig_depth_before']}->{row['mig_depth_after']}"
        )
        flow_line = f"mighty {alg[0]}/d{alg[1]} vs +rw {comb[0]}/d{comb[1]}"
        print(
            f"{name:10s} OK  {aig_line:18s} {mig_line:28s} {flow_line}"
            f"  ({row['runtime_s']:.1f}s)",
            flush=True,
        )

    print(
        f"\nstrictly better with boolean_rewrite: {strictly_better}"
        f"  ({sweep.workers} workers, wall {sweep.wall_s:.1f}s, "
        f"busy {sweep.busy_s:.1f}s)"
    )
    assert len(strictly_better) >= 3, "need >= 3 strictly better benchmarks"
    print("acceptance sweep passed")


if __name__ == "__main__":
    main(sys.argv[1:])
