"""Shared configuration of the benchmark harness.

Environment knobs
-----------------
``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark names to run (default: the full Table I list).
``REPRO_BENCH_ROUNDS`` / ``REPRO_BENCH_DEPTH_EFFORT``
    Effort of the MIGhty flow (default 1 / 1 — enough to reproduce the
    comparative shape at Python speed; raise for closer-to-paper effort).
``REPRO_BENCH_ROWS_DIR``
    Row-channel directory of the Table I sweeps.  Point separately
    sharded pytest invocations (e.g. one benchmark per CI shard) at one
    directory and the summary test of any shard aggregates every row
    written so far; unset, a per-session temporary directory is used
    (shared across ``pytest-xdist`` workers).  Use a fresh directory per
    logical run — rows persist until deleted; rows are additionally
    tagged with the flow-effort config, and summaries only aggregate
    rows matching their own settings.
"""

import os

import pytest

from repro.bench_circuits import benchmark_names
from repro.parallel.corpus import RowChannel

__all__ = [
    "selected_benchmarks",
    "flow_rounds",
    "flow_depth_effort",
    "report",
]


@pytest.fixture(scope="session")
def bench_rows(tmp_path_factory):
    """Session row channel of the sharded Table I sweeps.

    Rows written here survive process boundaries: xdist workers share
    the session base temp directory, and independent shard invocations
    share an explicit ``REPRO_BENCH_ROWS_DIR``.
    """
    custom = os.environ.get("REPRO_BENCH_ROWS_DIR")
    if custom:
        return RowChannel(custom)
    base = tmp_path_factory.getbasetemp()
    if os.environ.get("PYTEST_XDIST_WORKER"):
        base = base.parent  # the workers' shared session directory
    return RowChannel(base / "table1-rows")

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmarks_report.txt")


def report(text: str) -> None:
    """Print a result table and persist it to ``benchmarks_report.txt``.

    pytest captures stdout of passing tests, so the regenerated tables are
    also appended to a plain-text report at the repository root.
    """
    print(text)
    with open(os.path.abspath(_REPORT_PATH), "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


def selected_benchmarks():
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return benchmark_names()


def flow_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "1"))


def flow_depth_effort() -> int:
    return int(os.environ.get("REPRO_BENCH_DEPTH_EFFORT", "1"))
