"""Shared configuration of the benchmark harness.

Environment knobs
-----------------
``REPRO_BENCH_BENCHMARKS``
    Comma-separated benchmark names to run (default: the full Table I list).
``REPRO_BENCH_ROUNDS`` / ``REPRO_BENCH_DEPTH_EFFORT``
    Effort of the MIGhty flow (default 1 / 1 — enough to reproduce the
    comparative shape at Python speed; raise for closer-to-paper effort).
"""

import os

from repro.bench_circuits import benchmark_names

__all__ = ["selected_benchmarks", "flow_rounds", "flow_depth_effort", "report"]

_REPORT_PATH = os.path.join(os.path.dirname(__file__), "..", "benchmarks_report.txt")


def report(text: str) -> None:
    """Print a result table and persist it to ``benchmarks_report.txt``.

    pytest captures stdout of passing tests, so the regenerated tables are
    also appended to a plain-text report at the repository root.
    """
    print(text)
    with open(os.path.abspath(_REPORT_PATH), "a", encoding="utf-8") as handle:
        handle.write(text + "\n\n")


def selected_benchmarks():
    raw = os.environ.get("REPRO_BENCH_BENCHMARKS", "")
    if raw.strip():
        return [name.strip() for name in raw.split(",") if name.strip()]
    return benchmark_names()


def flow_rounds() -> int:
    return int(os.environ.get("REPRO_BENCH_ROUNDS", "1"))


def flow_depth_effort() -> int:
    return int(os.environ.get("REPRO_BENCH_DEPTH_EFFORT", "1"))
