"""E2 — Table I (bottom): synthesis, MIG+map vs AIG+map vs CST stand-in.

Regenerates the estimated area (µm²) / delay (ns) / power (µW) rows of
Table I (bottom) and prints the formatted table with the headline averages
(paper: MIG flow −22% delay, −14% area, −11% power vs the best
academic/commercial counterpart).

Like the optimization sweep, rows travel through the shared corpus
runner's row channel, keeping the summary aggregation xdist- and
shard-safe.
"""

import pytest

from repro.flows import (
    compare_synthesis,
    format_synthesis_table,
    summarize_synthesis,
)
from repro.parallel.corpus import _synthesis_to_row, synthesis_from_row

from .conftest import flow_depth_effort, flow_rounds, report, selected_benchmarks

_SUITE = "table1_synthesis"


def _config():
    """Row tag: rows only aggregate with rows of the same flow effort."""
    return {"rounds": flow_rounds(), "depth_effort": flow_depth_effort()}


@pytest.mark.parametrize("name", selected_benchmarks())
def test_table1_synthesis_row(benchmark, name, bench_rows):
    """One Table I (bottom) row: three optimization-mapping flows."""

    def run():
        return compare_synthesis(
            name, rounds=flow_rounds(), depth_effort=flow_depth_effort()
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    bench_rows.write(_SUITE, name, {"config": _config(), **_synthesis_to_row(result)})
    benchmark.extra_info["mig_area_um2"] = round(result.mig.area_um2, 2)
    benchmark.extra_info["mig_delay_ns"] = round(result.mig.delay_ns, 3)
    benchmark.extra_info["mig_power_uw"] = round(result.mig.power_uw, 2)
    benchmark.extra_info["aig_delay_ns"] = round(result.aig.delay_ns, 3)
    benchmark.extra_info["cst_delay_ns"] = round(result.cst.delay_ns, 3)
    assert result.mig.area_um2 > 0
    assert result.mig.delay_ns > 0


def test_table1_synthesis_summary(benchmark, bench_rows):
    """Print the full synthesis table and check the headline delay shape."""
    rows = [
        row
        for row in bench_rows.ordered(_SUITE, selected_benchmarks())
        if row.get("config") == _config()
    ]
    if not rows:
        pytest.skip("no per-benchmark rows for this config in the channel")
    results = [synthesis_from_row(row) for row in rows]

    def summarize():
        return summarize_synthesis(results)

    summary = benchmark.pedantic(summarize, iterations=1, rounds=1)
    print()
    report("Table I (bottom) — synthesis\n" + format_synthesis_table(results))
    benchmark.extra_info["rows_aggregated"] = len(results)
    benchmark.extra_info["delay_improvement_percent"] = round(
        summary.delay_improvement, 2
    )
    benchmark.extra_info["area_improvement_percent"] = round(
        summary.area_improvement, 2
    )
    benchmark.extra_info["power_improvement_percent"] = round(
        summary.power_improvement, 2
    )
    # Shape of the paper's result: the MIG-mapped netlists are the fastest on
    # average (paper: -22% estimated delay vs the best counterpart).  On the
    # full synthetic suite this reproduction tracks the claim to within a
    # tolerance (the multiplier-style circuits, where our depth rewriting is
    # weakest, pull the MIG average up — see EXPERIMENTS.md).
    best_counterpart = min(summary.avg_delay["AIG"], summary.avg_delay["CST"])
    assert summary.avg_delay["MIG"] <= 1.2 * best_counterpart
