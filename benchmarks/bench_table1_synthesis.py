"""E2 — Table I (bottom): synthesis, MIG+map vs AIG+map vs CST stand-in.

Regenerates the estimated area (µm²) / delay (ns) / power (µW) rows of
Table I (bottom) and prints the formatted table with the headline averages
(paper: MIG flow −22% delay, −14% area, −11% power vs the best
academic/commercial counterpart).
"""

import pytest

from repro.flows import (
    compare_synthesis,
    format_synthesis_table,
    summarize_synthesis,
)

from .conftest import flow_depth_effort, flow_rounds, report, selected_benchmarks

_RESULTS = []


@pytest.mark.parametrize("name", selected_benchmarks())
def test_table1_synthesis_row(benchmark, name):
    """One Table I (bottom) row: three optimization-mapping flows."""

    def run():
        return compare_synthesis(
            name, rounds=flow_rounds(), depth_effort=flow_depth_effort()
        )

    result = benchmark.pedantic(run, iterations=1, rounds=1)
    _RESULTS.append(result)
    benchmark.extra_info["mig_area_um2"] = round(result.mig.area_um2, 2)
    benchmark.extra_info["mig_delay_ns"] = round(result.mig.delay_ns, 3)
    benchmark.extra_info["mig_power_uw"] = round(result.mig.power_uw, 2)
    benchmark.extra_info["aig_delay_ns"] = round(result.aig.delay_ns, 3)
    benchmark.extra_info["cst_delay_ns"] = round(result.cst.delay_ns, 3)
    assert result.mig.area_um2 > 0
    assert result.mig.delay_ns > 0


def test_table1_synthesis_summary(benchmark):
    """Print the full synthesis table and check the headline delay shape."""
    if not _RESULTS:
        pytest.skip("per-benchmark rows did not run")

    def summarize():
        return summarize_synthesis(_RESULTS)

    summary = benchmark.pedantic(summarize, iterations=1, rounds=1)
    print()
    report("Table I (bottom) — synthesis\n" + format_synthesis_table(_RESULTS))
    benchmark.extra_info["delay_improvement_percent"] = round(
        summary.delay_improvement, 2
    )
    benchmark.extra_info["area_improvement_percent"] = round(
        summary.area_improvement, 2
    )
    benchmark.extra_info["power_improvement_percent"] = round(
        summary.power_improvement, 2
    )
    # Shape of the paper's result: the MIG-mapped netlists are the fastest on
    # average (paper: -22% estimated delay vs the best counterpart).  On the
    # full synthetic suite this reproduction tracks the claim to within a
    # tolerance (the multiplier-style circuits, where our depth rewriting is
    # weakest, pull the MIG average up — see EXPERIMENTS.md).
    best_counterpart = min(summary.avg_delay["AIG"], summary.avg_delay["CST"])
    assert summary.avg_delay["MIG"] <= 1.2 * best_counterpart
