#!/usr/bin/env python3
"""Exact-synthesis acceptance lane: oracle cross-check + DB enrichment.

Two lanes over :mod:`repro.synth.exact` and the top-k structure database:

1. **Oracle lane** — every ≤3-variable NPN class is synthesized exactly
   and the claimed minimum is cross-checked against
   :func:`repro.synth.enumerate_minimum_sizes`, a breadth-first
   reachability oracle that shares no code with the CNF encoding.  The
   MIG frontier is complete at 4 gates; the AIG frontier needs 6 (the
   xor-heavy classes), which the full lane enumerates and the smoke lane
   skips per class (reported, not asserted).
2. **Enrichment lane** — the fast (decomposition) tier derives each
   shard class's Pareto front, then the budget-bounded exact tier
   searches strictly below its bounds.  Per class the lane records fast
   vs enriched front shapes, solver conflicts and wall time, and asserts
   the contract that makes enrichment safe to ship: **no class ever
   regresses above its old single-entry size** (the enriched head is
   never larger than the fast-tier head — UNSAT proves the fast tier
   optimal, UNKNOWN keeps it).  Enriched fronts are registered through
   :func:`repro.network.npn.register_structures` (full semantic
   validation) and written through the on-disk cache, so the CI job can
   cache the derived database as a workflow artifact.

Results land in ``BENCH_exact.json`` (override with ``--json`` /
``REPRO_BENCH_EXACT_JSON``)::

    PYTHONPATH=src python benchmarks/bench_exact.py [--smoke] [--budget N]
"""

import argparse
import json
import os
import sys
import time

from repro.network import npn
from repro.network.npn import npn_representatives, register_structures
from repro.synth import SAT, UNSAT, enumerate_minimum_sizes, synthesize_exact
from repro.synth.exact import _compact_table, _support

#: Exact-tier conflict budget per search: the smoke lane stays tight (CI
#: runners; UNKNOWN is an acceptable outcome), the full lane matches the
#: offline enrichment default.
SMOKE_BUDGET = 500
FULL_BUDGET = 2_000

#: 4-variable classes of the smoke enrichment shard (beyond the 14
#: ≤3-variable classes, which are always included).
SMOKE_4VAR_CLASSES = 10


def _oracle_lane(kind, max_gates, budget):
    """Exact synthesis vs brute force over the ≤3-variable classes."""
    oracle = {n: enumerate_minimum_sizes(kind, n, max_gates) for n in (1, 2, 3)}
    rows = []
    skipped = 0
    for rep in npn_representatives():
        support = _support(rep)
        if len(support) > 3:
            continue
        if support:
            compact = _compact_table(rep, support)
            width = 1 << len(support)
            canon = min(compact, compact ^ ((1 << width) - 1))
            minimum = oracle[len(support)].get(canon)
        else:
            minimum = 0
        if minimum is None:
            # Oracle horizon too shallow for this class (AIG xor-ish
            # classes under --smoke): report, don't assert.
            skipped += 1
            rows.append({"class": f"{rep:#06x}", "oracle": None})
            continue
        t0 = time.perf_counter()
        result = synthesize_exact(rep, kind, budget=budget)
        wall = time.perf_counter() - t0
        assert result.status == SAT and result.optimal, (
            f"{kind} {rep:#06x}: exact synthesis did not prove optimality "
            f"(status={result.status}, budget={budget})"
        )
        assert result.gates == minimum, (
            f"{kind} {rep:#06x}: exact found {result.gates} gates, "
            f"oracle says {minimum}"
        )
        rows.append(
            {
                "class": f"{rep:#06x}",
                "support": len(support),
                "oracle": minimum,
                "gates": result.gates,
                "depth": result.entry.depth,
                "conflicts": result.conflicts,
                "solve_calls": result.solve_calls,
                "wall_s": round(wall, 4),
            }
        )
    checked = [r for r in rows if r["oracle"] is not None]
    return {
        "kind": kind,
        "oracle_max_gates": max_gates,
        "classes_checked": len(checked),
        "classes_beyond_horizon": skipped,
        "total_wall_s": round(sum(r["wall_s"] for r in checked), 3),
        "per_class": rows,
    }


def _enrichment_lane(kind, tables, budget, size_slack):
    """Fast-tier fronts vs exact-enriched fronts over one class shard."""
    rows = []
    improved_size = improved_depth = proven_optimal = 0
    for rep in tables:
        fast = npn._derive_structures(kind, rep)
        t0 = time.perf_counter()
        enriched = npn._exact_enrich(kind, rep, fast, budget, size_slack)
        wall = time.perf_counter() - t0
        # The shipping contract: enrichment never regresses a class above
        # its old single-entry (fast-tier head) size.
        assert enriched[0].size <= fast[0].size, (
            f"{kind} {rep:#06x}: enriched head {enriched[0].size} gates "
            f"exceeds fast-tier head {fast[0].size}"
        )
        assert enriched[-1].depth <= fast[-1].depth, (
            f"{kind} {rep:#06x}: enrichment lost the shallowest entry"
        )
        if enriched != fast:
            register_structures(kind, rep, list(enriched))
        size_gain = fast[0].size - enriched[0].size
        depth_gain = fast[-1].depth - enriched[-1].depth
        improved_size += 1 if size_gain else 0
        improved_depth += 1 if depth_gain else 0
        if fast[0].size > 1 and size_gain == 0:
            # A size search that came back UNSAT proved the fast head
            # minimal; re-run cheaply to classify (the solver is
            # deterministic, so this mirrors the enrichment's outcome).
            probe = synthesize_exact(
                rep, kind, max_gates=fast[0].size - 1, budget=budget
            )
            if probe.status == UNSAT:
                proven_optimal += 1
        rows.append(
            {
                "class": f"{rep:#06x}",
                "fast": [(e.size, e.depth) for e in fast],
                "enriched": [(e.size, e.depth) for e in enriched],
                "size_gain": size_gain,
                "depth_gain": depth_gain,
                "wall_s": round(wall, 4),
            }
        )
    return {
        "kind": kind,
        "classes": len(rows),
        "budget": budget,
        "size_slack": size_slack,
        "improved_size": improved_size,
        "improved_depth": improved_depth,
        "proven_optimal_heads": proven_optimal,
        "total_wall_s": round(sum(r["wall_s"] for r in rows), 3),
        "per_class": rows,
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload (4-gate AIG oracle horizon, small shard)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="exact-tier conflict budget (default: 500 smoke, 2000 full)",
    )
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_EXACT_JSON", "BENCH_exact.json"),
        help="output report path",
    )
    args = parser.parse_args(argv)
    budget = args.budget or (SMOKE_BUDGET if args.smoke else FULL_BUDGET)

    t0 = time.perf_counter()
    report = {
        "mode": "smoke" if args.smoke else "full",
        "budget": budget,
        "oracle": [],
        "enrichment": [],
    }

    # Lane 1: oracle cross-check (AIG horizon 6 only in the full lane —
    # the 6-gate frontier enumeration alone takes ~12 s).
    report["oracle"].append(_oracle_lane("mig", 4, budget))
    report["oracle"].append(_oracle_lane("aig", 4 if args.smoke else 6, budget))
    for lane in report["oracle"]:
        print(
            f"[oracle] {lane['kind']}: {lane['classes_checked']} classes "
            f"match brute force ({lane['classes_beyond_horizon']} beyond "
            f"horizon) in {lane['total_wall_s']}s"
        )

    # Lane 2: enrichment shard.  Smoke: the 14 small-support classes plus
    # the first few 4-variable classes; full: every class.
    reps = npn_representatives()
    if args.smoke:
        small = [t for t in reps if len(_support(t)) <= 3]
        wide = [t for t in reps if len(_support(t)) == 4][:SMOKE_4VAR_CLASSES]
        shard = small + wide
    else:
        shard = list(reps)
    for kind in ("mig", "aig"):
        lane = _enrichment_lane(kind, shard, budget, size_slack=2)
        report["enrichment"].append(lane)
        print(
            f"[enrich] {kind}: {lane['classes']} classes, "
            f"{lane['improved_size']} size-improved, "
            f"{lane['improved_depth']} depth-improved, "
            f"{lane['proven_optimal_heads']} heads proven optimal, "
            f"{lane['total_wall_s']}s"
        )

    # Persist the enriched database through the disk cache so CI can
    # stash it as a workflow artifact (REPRO_NPN_CACHE_DIR names the dir).
    npn.flush_structure_cache()
    cache_files = []
    for kind in ("mig", "aig"):
        path = npn.structure_cache_path(kind)
        if path is not None and path.exists():
            cache_files.append(str(path))
    report["cache_files"] = cache_files
    report["wall_s"] = round(time.perf_counter() - t0, 3)

    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
    print(f"[done] report -> {args.json} ({report['wall_s']}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
