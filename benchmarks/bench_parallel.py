#!/usr/bin/env python3
"""Perf lane for the process-parallel execution layer (ISSUE 5 criteria).

Three lanes, each comparing a sharded run against the identical serial
workload with **bit-identical results asserted** (the determinism
contract of :mod:`repro.parallel` — same sizes, depths, node-level
structural fingerprints and CEC verdicts):

1. **Table I optimization sweep** (the budget lane): the full
   three-flow-per-benchmark experiment — one
   :func:`repro.parallel.corpus.optimization_row` task per benchmark,
   each row carrying structural fingerprints of the optimized networks
   and (with ``--verify``, the default) the CEC verdict of the MIG flow.
   The serial lane's per-task timings feed the shard planner's
   longest-first schedule, so the parallel lane's makespan approaches
   ``max(longest_row, total/workers)``.  Target: **>= 2.5x wall-clock at
   4 workers** — asserted when the host actually has that many CPUs
   (``--force-assert`` overrides), reported otherwise; determinism is
   asserted unconditionally.
2. **optimize_many**: the batch corpus API at 1 vs N workers over the
   Table I MIGs; optimized-network fingerprints and aggregated metric
   totals must match exactly.
3. **Parallel NPN derivation**: the 222x2-class structure database
   derived from first principles, sharded by canonical class, against a
   1-worker run of the same shard tasks; entries compared
   structure-for-structure.

Results land in ``BENCH_parallel.json`` (override with ``--json`` /
``REPRO_BENCH_PARALLEL_JSON``) for the CI artifact upload::

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke] [--workers N]
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.bench_circuits import benchmark_names, build_benchmark
from repro.core import Mig
from repro.flows import optimize_many
from repro.network import npn
from repro.parallel import warm_worker
from repro.parallel.corpus import (
    optimization_row,
    run_corpus,
    structural_fingerprint,
    structural_row,
)

#: Fast benchmark subset of the CI smoke lane (cost spread preserved).
SMOKE_BENCHMARKS = ["C1355", "bigkey", "clma", "count", "b9", "alu4"]

#: Wall-clock floors: the full lane must clear the ISSUE target at 4
#: workers; the smoke lane runs at 2 workers on noisy CI runners, so its
#: floor only guards against the parallel path regressing to ~1x.
FULL_TARGET = 2.5
SMOKE_FLOOR = 1.2


def bench_table1_sweep(names, workers, rounds, depth_effort, verify):
    """Lane 1: serial vs sharded Table I optimization sweep."""
    kwargs = {
        "rounds": rounds,
        "depth_effort": depth_effort,
        "include_bdd": True,
        "verify": verify,
    }
    t0 = time.perf_counter()
    serial_rows = []
    serial_times = []
    for name in names:
        t_task = time.perf_counter()
        serial_rows.append(optimization_row(name, **kwargs))
        serial_times.append(time.perf_counter() - t_task)
    t_serial = time.perf_counter() - t0

    sweep = run_corpus(
        optimization_row, names, workers=workers, costs=serial_times, **kwargs
    )
    t_parallel = sweep.wall_s

    for name, serial, sharded in zip(names, serial_rows, sweep.results):
        assert structural_row(serial) == structural_row(sharded), (
            f"{name}: sharded row diverged from serial\n"
            f"serial:  {structural_row(serial)}\nsharded: {structural_row(sharded)}"
        )
    return {
        "benchmarks": list(names),
        "rounds": rounds,
        "depth_effort": depth_effort,
        "verified_rows": sum(1 for row in serial_rows if "cec" in row),
        "workers": sweep.workers,
        "parallel_pool": sweep.parallel,
        "time_serial_s": round(t_serial, 3),
        "time_parallel_s": round(t_parallel, 3),
        "busy_parallel_s": round(sweep.busy_s, 3),
        "speedup": round(t_serial / t_parallel, 2),
        "slowest_row_s": round(max(serial_times), 3),
    }


def bench_optimize_many(names, workers, rounds, depth_effort):
    """Lane 2: the batch corpus API, 1 vs N workers, fingerprint-checked."""
    def corpus():
        return [build_benchmark(name, Mig) for name in names]

    one = optimize_many(corpus(), workers=1, rounds=rounds, depth_effort=depth_effort)
    many = optimize_many(
        corpus(), workers=workers, rounds=rounds, depth_effort=depth_effort
    )
    fp_one = [structural_fingerprint(n) for n in one.networks]
    fp_many = [structural_fingerprint(n) for n in many.networks]
    assert fp_one == fp_many, "optimize_many results diverged across worker counts"
    t1, tn = one.totals(), many.totals()
    structural_keys = (
        "networks", "initial_size", "final_size", "initial_depth", "final_depth",
    )
    assert all(t1[k] == tn[k] for k in structural_keys), (
        f"optimize_many structural totals diverged: {t1} vs {tn}"
    )
    return {
        "networks": len(names),
        "workers": many.workers,
        "time_1_worker_s": round(one.wall_s, 3),
        "time_n_workers_s": round(many.wall_s, 3),
        "speedup": round(one.wall_s / many.wall_s, 2),
        "total_size": one.totals()["final_size"],
    }


def bench_npn_derivation(workers):
    """Lane 3: sharded vs 1-worker structure-database derivation."""
    previous_dir = os.environ.get("REPRO_NPN_CACHE_DIR")
    npn.reset_structure_db()
    with tempfile.TemporaryDirectory() as tmp:
        os.environ["REPRO_NPN_CACHE_DIR"] = tmp
        try:
            npn.reset_structure_db()
            serial_stats = npn.derive_structures_parallel(workers=1)
            serial_db = dict(npn._DB)
            npn.reset_structure_db()
            # reset re-arms the cache load; drop the file so the parallel
            # lane derives instead of loading the serial lane's save.
            for kind in ("mig", "aig"):
                path = npn.structure_cache_path(kind)
                if path is not None and path.exists():
                    path.unlink()
            npn._DB.clear()
            npn._DB_LOADED.clear()
            parallel_stats = npn.derive_structures_parallel(workers=workers)
            assert dict(npn._DB) == serial_db, (
                "parallel NPN derivation diverged from serial"
            )
        finally:
            if previous_dir is None:
                os.environ.pop("REPRO_NPN_CACHE_DIR", None)
            else:
                os.environ["REPRO_NPN_CACHE_DIR"] = previous_dir
            npn.reset_structure_db()
    return {
        "classes": serial_stats["classes"],
        "entries": len(serial_db),
        "workers": parallel_stats["workers"],
        "time_serial_s": serial_stats["wall_s"],
        "time_parallel_s": parallel_stats["wall_s"],
        "speedup": round(serial_stats["wall_s"] / max(parallel_stats["wall_s"], 1e-9), 2),
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload (benchmark subset, relaxed floor)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count of the parallel lanes (default: 2 smoke, 4 full)",
    )
    parser.add_argument(
        "--no-verify",
        dest="verify",
        action="store_false",
        help="skip the per-row CEC verdicts of the Table I lane",
    )
    parser.add_argument(
        "--force-assert",
        action="store_true",
        help="assert the speedup floor even on hosts with fewer CPUs than workers",
    )
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument("--depth-effort", type=int, default=1)
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_PARALLEL_JSON", "BENCH_parallel.json"),
        help="write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers is not None else (2 if args.smoke else 4)
    names = SMOKE_BENCHMARKS if args.smoke else benchmark_names()
    cpus = os.cpu_count() or 1

    warm_worker()  # serial and parallel lanes start equally hot
    report = {
        "mode": "smoke" if args.smoke else "full",
        "workers": workers,
        "cpu_count": cpus,
    }

    # --- lane 1: sharded Table I optimization sweep (the budget lane) -- #
    record = bench_table1_sweep(
        names, workers, args.rounds, args.depth_effort, args.verify
    )
    report["table1_sweep"] = record
    print(
        f"table1 sweep ({len(names)} benchmarks, {record['verified_rows']} CEC-verified "
        f"rows): serial {record['time_serial_s']}s -> {workers} workers "
        f"{record['time_parallel_s']}s ({record['speedup']}x, slowest row "
        f"{record['slowest_row_s']}s, rows bit-identical)",
        flush=True,
    )

    # --- lane 2: the batch optimize_many API --------------------------- #
    batch_names = names[: 6 if args.smoke else len(names)]
    record = bench_optimize_many(batch_names, workers, args.rounds, args.depth_effort)
    report["optimize_many"] = record
    print(
        f"optimize_many ({record['networks']} networks): 1 worker "
        f"{record['time_1_worker_s']}s -> {workers} workers "
        f"{record['time_n_workers_s']}s ({record['speedup']}x, "
        f"fingerprints identical)",
        flush=True,
    )

    # --- lane 3: parallel NPN structure-database derivation ------------ #
    record = bench_npn_derivation(workers)
    report["npn_derivation"] = record
    print(
        f"npn derivation ({record['classes']}x2 classes): 1 worker "
        f"{record['time_serial_s']}s -> {workers} workers "
        f"{record['time_parallel_s']}s ({record['speedup']}x, entries identical)",
        flush=True,
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")

    # --- budget assertion ---------------------------------------------- #
    # Determinism was already asserted in every lane.  The wall-clock
    # floor only binds where the hardware can express it: a 4-worker pool
    # on a 1-CPU container time-slices instead of parallelizing, which
    # measures the OS scheduler, not this layer.
    floor = SMOKE_FLOOR if args.smoke else FULL_TARGET
    speedup = report["table1_sweep"]["speedup"]
    if cpus >= workers or args.force_assert:
        assert speedup >= floor, (
            f"table1 sweep speedup regressed: {speedup}x < {floor}x floor "
            f"at {workers} workers"
        )
        print(f"budget ok: {speedup}x >= {floor}x at {workers} workers")
    else:
        print(
            f"budget floor SKIPPED: host has {cpus} CPU(s) < {workers} workers "
            f"(measured {speedup}x; determinism asserted)"
        )


if __name__ == "__main__":
    main(sys.argv[1:])
