#!/usr/bin/env python3
"""Acceptance sweep for the SAT-based CEC subsystem (ISSUE 3 criteria).

Two obligations, measured end-to-end through the public
``check_equivalence`` dispatch:

1. **Proofs** — for Table I benchmarks wider than the exhaustive limit
   (>16 primary inputs), the pre/post ``mighty_optimize`` pair must come
   back ``method="sat-sweep"``, equivalent, with no counterexample: an
   actual proof, not a random falsifier.
2. **Refutations** — seeded single-gate mutants of a wide benchmark must
   be refuted with counterexamples that replay to a real PO mismatch
   through ``simulate_patterns`` (independently re-validated here, on top
   of the checker's own internal validation).

Results are written as a JSON report (per-benchmark sizes, sweep
statistics, runtimes; mutant outcome histogram) for the CI artifact
upload.

Smoke mode — what CI runs on every push — restricts the proof sweep to a
fast subset and keeps the full 100-mutant refutation::

    PYTHONPATH=src python benchmarks/acceptance_sat_cec.py --smoke

Full mode sweeps every >16-input Table I benchmark (minutes in Python;
run manually or from a scheduled job)::

    PYTHONPATH=src python benchmarks/acceptance_sat_cec.py [names...]
"""

import argparse
import json
import os
import sys
import time

from repro.bench_circuits import BENCHMARKS, build_benchmark
from repro.core import Mig, mutate_network
from repro.parallel.corpus import cec_prove_row, run_corpus
from repro.verify import check_equivalence

#: Fast >16-input benchmarks for the CI smoke lane.
SMOKE_BENCHMARKS = ["my_adder", "count"]

#: Wide benchmark the mutation refutation runs against (33 PIs).
MUTATION_BENCHMARK = "my_adder"


def wide_benchmark_names():
    """Table I benchmarks beyond the exhaustive limit, in table order."""
    return [spec.name for spec in BENCHMARKS.values() if spec.num_inputs > 16]


def refute_mutants(name, count, seed_base=0):
    """Refute ``count`` seeded mutants of ``name`` with validated cexs."""
    base = build_benchmark(name, Mig)
    refuted = 0
    masked = 0
    methods = {}
    seed = seed_base
    start = time.time()
    while refuted < count:
        mutant, description = mutate_network(base, seed=seed)
        seed += 1
        result = check_equivalence(base, mutant, num_random_vectors=256)
        if result.equivalent:
            # The mutation was masked by don't-cares (proved so by the
            # sweep) — draw another seed; it does not count.
            masked += 1
            continue
        # check_equivalence validates internally; re-validate end-to-end
        # from the public simulation API anyway.
        patterns = [1 if bit else 0 for bit in result.counterexample]
        out_base = base.simulate_patterns(patterns, 1)
        out_mut = mutant.simulate_patterns(patterns, 1)
        if not (out_base[result.failing_output] ^ out_mut[result.failing_output]) & 1:
            raise AssertionError(
                f"{name}: counterexample for mutant seed {seed - 1} "
                f"({description}) does not replay"
            )
        refuted += 1
        methods[result.method] = methods.get(result.method, 0) + 1
        # The dispatch usually refutes mutants in the cheap random stage;
        # every 10th mutant is additionally pushed through the forced SAT
        # backend so the solver's refutation path is exercised end-to-end.
        if refuted % 10 == 0:
            forced = check_equivalence(base, mutant, method="sat-sweep")
            if forced.equivalent or forced.counterexample is None:
                raise AssertionError(
                    f"{name}: sat-sweep failed to refute mutant seed {seed - 1}"
                )
            methods["sat-sweep (forced)"] = methods.get("sat-sweep (forced)", 0) + 1
    return {
        "benchmark": name,
        "refuted": refuted,
        "masked_mutations": masked,
        "seeds_drawn": seed - seed_base,
        "methods": methods,
        "runtime_s": round(time.time() - start, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*", help="benchmark subset (default: all >16-input)")
    parser.add_argument(
        "--smoke",
        action="store_true",
        default=bool(os.environ.get("REPRO_SAT_CEC_SMOKE")),
        help="CI lane: fast benchmark subset, full mutant refutation",
    )
    parser.add_argument("--mutants", type=int, default=100)
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_SAT_CEC_JSON"),
        help="write the JSON report to this path",
    )
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument("--depth-effort", type=int, default=1)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="shard the per-benchmark proof sweep across N worker processes",
    )
    args = parser.parse_args(argv)

    if args.names:
        names = args.names
    elif args.smoke:
        names = SMOKE_BENCHMARKS
    else:
        names = wide_benchmark_names()

    report = {
        "mode": "smoke" if args.smoke else "full",
        "rounds": args.rounds,
        "depth_effort": args.depth_effort,
        "workers": args.workers,
        "benchmarks": [],
        "mutants": None,
    }
    # The proof obligations shard per benchmark through the corpus
    # runner; each worker proves its pairs end-to-end and the records
    # come back in benchmark order, identical at any worker count.
    # Result lines print after the merge, so announce the workload first.
    print(
        f"proving {len(names)} benchmarks across {args.workers} worker(s): "
        f"{', '.join(names)} ...",
        flush=True,
    )
    sweep = run_corpus(
        cec_prove_row,
        names,
        workers=args.workers,
        rounds=args.rounds,
        depth_effort=args.depth_effort,
    )
    for record in sweep.results:
        report["benchmarks"].append(record)
        print(
            f"{record['benchmark']:10s} PROVED sat-sweep  size {record['size_pre']}->"
            f"{record['size_post']}  depth {record['depth_pre']}->"
            f"{record['depth_post']}  (opt {record['optimize_s']}s, "
            f"cec {record['cec_s']}s)",
            flush=True,
        )

    report["mutants"] = refute_mutants(MUTATION_BENCHMARK, args.mutants)
    m = report["mutants"]
    print(
        f"{MUTATION_BENCHMARK:10s} REFUTED {m['refuted']} mutants "
        f"({m['masked_mutations']} masked, methods {m['methods']}, "
        f"{m['runtime_s']}s)",
        flush=True,
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")
    print("acceptance: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
