"""E8a — ablation: which reshape rules matter (Section IV design choices).

The size/depth optimizers rely on the reshape process (Ω.A, Ψ.C, Ψ.R, Ψ.S)
to escape local minima.  This ablation runs the depth-oriented MIG flow
with individual rule families disabled and reports the resulting average
depth and size, quantifying each rule's contribution.
"""

import pytest

from repro.bench_circuits import build_benchmark
from repro.core import ReshapeParams
from repro.core.mig import Mig
from repro.flows import mighty_optimize

_SUBSET = ["alu4", "my_adder", "count", "misex3"]

_CONFIGS = {
    "full": ReshapeParams(),
    "no_relevance": ReshapeParams(use_relevance=False),
    "no_substitution": ReshapeParams(use_substitution=False),
    "no_complementary": ReshapeParams(use_complementary=False),
    "associativity_only": ReshapeParams(
        use_relevance=False, use_substitution=False, use_complementary=False
    ),
}


@pytest.mark.parametrize("config_name", list(_CONFIGS))
def test_reshape_ablation(benchmark, config_name):
    """Average depth/size of the MIG flow with a reshape-rule subset."""
    params = _CONFIGS[config_name]

    def run():
        depths, sizes = [], []
        for name in _SUBSET:
            mig = build_benchmark(name, Mig)
            mighty_optimize(mig, rounds=1, depth_effort=1, reshape_params=params)
            depths.append(mig.depth())
            sizes.append(mig.num_gates)
        return sum(depths) / len(depths), sum(sizes) / len(sizes)

    avg_depth, avg_size = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nreshape ablation [{config_name}]: avg depth {avg_depth:.2f}, avg size {avg_size:.1f}")
    benchmark.extra_info["avg_depth"] = round(avg_depth, 2)
    benchmark.extra_info["avg_size"] = round(avg_size, 1)
    assert avg_depth > 0
