"""E4 — Fig. 4: the (area, power, delay) synthesis-space points.

Prints the three coordinate triples behind Fig. 4 (MIG, AIG and the
commercial-synthesis-tool stand-in after technology mapping).
"""

import pytest

from repro.flows import run_synthesis_experiment, synthesis_space_points

from .conftest import flow_depth_effort, flow_rounds, selected_benchmarks

_DEFAULT_SUBSET = ["alu4", "my_adder", "b9", "count", "misex3", "C1908"]


def _subset():
    names = selected_benchmarks()
    if len(names) > 8:
        return _DEFAULT_SUBSET
    return names


def test_fig4_synthesis_space(benchmark):
    """Regenerate the Fig. 4 series (one (area, delay, power) per flow)."""

    def run():
        results = run_synthesis_experiment(
            _subset(), rounds=flow_rounds(), depth_effort=flow_depth_effort()
        )
        return results, synthesis_space_points(results)

    results, points = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Fig. 4 — synthesis space (area um2, delay ns, power uW):")
    for flow, (area, delay, power) in points.items():
        print(f"  {flow:4s}: area={area:8.2f}  delay={delay:6.3f}  power={power:8.2f}")
        benchmark.extra_info[f"{flow}_area_um2"] = round(area, 2)
        benchmark.extra_info[f"{flow}_delay_ns"] = round(delay, 3)
        benchmark.extra_info[f"{flow}_power_uw"] = round(power, 2)
    # Shape: the MIG point is the fastest of the three flows (tracked to a
    # tolerance on the synthetic suite — see EXPERIMENTS.md for deviations).
    best_counterpart = min(points["AIG"][1], points["CST"][1])
    assert points["MIG"][1] <= 1.15 * best_counterpart
