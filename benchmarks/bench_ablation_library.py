"""E8b — ablation: value of the MAJ3 / MIN3 standard cells (Section V-B).

The paper attributes part of the synthesis gains to "the presence of MAJ-3
and MIN-3 gates in the standard-cell library [which] allows us to natively
recognize and preserve MIG nodes".  This ablation maps the same optimized
MIGs with and without majority cells in the library and compares the
resulting area / delay.
"""

import pytest

from repro.bench_circuits import build_benchmark
from repro.core.mig import Mig
from repro.flows import mighty_optimize
from repro.mapping import default_library, map_mig, nand_nor_library

_SUBSET = ["alu4", "my_adder", "count", "misex3", "C1908"]


@pytest.mark.parametrize(
    "library_name,library_factory",
    [("with_maj_cells", default_library), ("without_maj_cells", nand_nor_library)],
)
def test_library_ablation(benchmark, library_name, library_factory):
    """Map the optimized MIGs with/without MAJ3-MIN3 cells."""
    library = library_factory()

    def run():
        area = delay = 0.0
        for name in _SUBSET:
            mig = build_benchmark(name, Mig)
            mighty_optimize(mig, rounds=1, depth_effort=1)
            netlist = map_mig(mig, library)
            area += netlist.area()
            delay += netlist.delay()
        return area / len(_SUBSET), delay / len(_SUBSET)

    avg_area, avg_delay = benchmark.pedantic(run, iterations=1, rounds=1)
    print(f"\nlibrary ablation [{library_name}]: avg area {avg_area:.2f} um2, avg delay {avg_delay:.3f} ns")
    benchmark.extra_info["avg_area_um2"] = round(avg_area, 2)
    benchmark.extra_info["avg_delay_ns"] = round(avg_delay, 3)
    assert avg_area > 0
