#!/usr/bin/env python3
"""Perf lane for the optimization service (daemon + result cache).

Three lanes over one persistent service state directory:

1. **Cold drain**: submit the corpus to a fresh
   :class:`repro.service.OptimizationService` (per-job submit latency is
   measured — a submit only persists rows, it never optimizes), drain
   the queue at N workers, and assert every result **bit-identical**
   (structural fingerprints) to a direct 1-worker
   :func:`repro.flows.optimize_many` run — the service determinism
   contract.
2. **Cached resubmission**: submit the identical corpus again and assert
   the O(1) path — every job completes *at submit time* from the
   content-addressed cache, the daemon's optimizer-invocation counter
   does not move, and the returned networks carry the same fingerprints.
   A node-id-shuffled rebuild of the corpus is resubmitted too: the
   canonical (id-independent) cache key must hit for those as well.
3. **Restart**: a second service over the same state dir must recover
   with nothing to re-run (completed rows stand) and keep serving
   cache hits.

Results land in ``BENCH_service.json`` (override with ``--json`` /
``REPRO_BENCH_SERVICE_JSON``) for the CI artifact upload::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke] [--workers N]
"""

import argparse
import json
import os
import sys
import tempfile
import time

from repro.bench_circuits import benchmark_names, build_benchmark
from repro.core import Mig
from repro.core.generation import rebuild_shuffled
from repro.flows import optimize_many
from repro.parallel import warm_worker
from repro.parallel.corpus import structural_fingerprint
from repro.service import OptimizationService

#: Fast benchmark subset of the CI smoke lane (cost spread preserved).
SMOKE_BENCHMARKS = ["C1355", "bigkey", "clma", "count", "b9", "alu4"]

#: The cached path must beat the optimizer by a wide margin even on a
#: noisy runner; the hard guarantee (zero optimizer invocations) is
#: asserted exactly, this floor just documents the latency win.
CACHE_SPEEDUP_FLOOR = 5.0


def _corpus(names):
    return [build_benchmark(name, Mig) for name in names]


def bench_cold_drain(service, names, workers, flow_kwargs):
    """Lane 1: fresh submit + drain, bit-identical to direct batch."""
    direct = optimize_many(_corpus(names), workers=1, **flow_kwargs)
    direct_fps = [structural_fingerprint(n) for n in direct.networks]

    submit_times = []
    job_ids = []
    t0 = time.perf_counter()
    for network in _corpus(names):
        t_submit = time.perf_counter()
        job_ids.append(
            service.submit(network, flow="mighty", flow_options=flow_kwargs)
        )
        submit_times.append(time.perf_counter() - t_submit)
    totals = service.serve(workers=workers, stop_when_idle=True)
    wall_s = time.perf_counter() - t0

    fingerprints = []
    first_result_latency = None
    for job_id in job_ids:
        result = service.result(job_id)
        assert result.status == "done", f"{job_id} ended {result.status}"
        assert not result.cached, "cold lane must not hit the cache"
        fingerprints.append(structural_fingerprint(result.network))
        job = service.job(job_id)
        latency = job.finished_at - job.submitted_at
        if first_result_latency is None or latency < first_result_latency:
            first_result_latency = latency
    assert fingerprints == direct_fps, (
        "service results diverged from direct optimize_many"
    )
    return {
        "benchmarks": list(names),
        "jobs": len(job_ids),
        "workers": workers,
        "drained": totals["done"],
        "wall_s": round(wall_s, 3),
        "direct_wall_s": round(direct.wall_s, 3),
        "submit_latency_mean_ms": round(
            1000 * sum(submit_times) / len(submit_times), 3
        ),
        "submit_latency_max_ms": round(1000 * max(submit_times), 3),
        "first_submit_to_result_s": round(first_result_latency, 3),
        "optimizer_invocations": service.optimizer_invocations,
    }, job_ids, fingerprints


def bench_cached_resubmission(service, names, fingerprints, flow_kwargs):
    """Lane 2: identical + id-shuffled resubmissions hit the cache in O(1)."""
    invocations_before = service.optimizer_invocations

    hit_times = []
    new_ids = []
    for network in _corpus(names):
        t_submit = time.perf_counter()
        new_ids.append(
            service.submit(network, flow="mighty", flow_options=flow_kwargs)
        )
        hit_times.append(time.perf_counter() - t_submit)
    assert not service.queued_jobs(), "cached resubmission left queued jobs"

    shuffled_hits = 0
    for index, network in enumerate(_corpus(names)):
        shuffled = rebuild_shuffled(network, seed=97 + index)
        if structural_fingerprint(shuffled) != structural_fingerprint(network):
            shuffled_hits += 1
        job_id = service.submit(shuffled, flow="mighty", flow_options=flow_kwargs)
        new_ids.append(job_id)
    assert not service.queued_jobs(), "shuffled resubmission missed the cache"

    for job_id, fingerprint in zip(new_ids, list(fingerprints) * 2):
        result = service.result(job_id)
        assert result.cached, f"{job_id} did not come from the cache"
        assert structural_fingerprint(result.network) == fingerprint
    assert service.optimizer_invocations == invocations_before, (
        "optimizer ran on the cached path"
    )
    return {
        "resubmitted_jobs": len(new_ids),
        "id_shuffled_jobs": len(names),
        "id_shuffled_with_fresh_ids": shuffled_hits,
        "cache_hit_latency_mean_ms": round(
            1000 * sum(hit_times) / len(hit_times), 3
        ),
        "cache_hit_latency_max_ms": round(1000 * max(hit_times), 3),
        "optimizer_invocations_delta": service.optimizer_invocations
        - invocations_before,
        "cache": service.status()["cache"],
    }


def bench_restart(state_dir, names, flow_kwargs):
    """Lane 3: a restarted daemon re-runs nothing and keeps serving hits."""
    t0 = time.perf_counter()
    revived = OptimizationService(state_dir)
    recover_s = time.perf_counter() - t0
    totals = revived.serve(workers=1, stop_when_idle=True)
    assert totals["ran"] == 0, "restart re-ran completed jobs"
    job_id = revived.submit(
        _corpus(names[:1])[0], flow="mighty", flow_options=flow_kwargs
    )
    assert revived.result(job_id).cached, "restarted daemon lost the cache"
    assert revived.optimizer_invocations == 0
    return {
        "recover_s": round(recover_s, 3),
        "recovered_running": revived.recovered_running,
        "recovered_missing_result": revived.recovered_missing_result,
        "jobs_re_run": totals["ran"],
    }


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced CI workload (benchmark subset)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="daemon drain worker count (default: 2 smoke, 4 full)",
    )
    parser.add_argument("--rounds", type=int, default=1)
    parser.add_argument("--depth-effort", type=int, default=1)
    parser.add_argument(
        "--json",
        default=os.environ.get("REPRO_BENCH_SERVICE_JSON", "BENCH_service.json"),
        help="write the JSON report to this path",
    )
    args = parser.parse_args(argv)
    workers = args.workers if args.workers is not None else (2 if args.smoke else 4)
    names = SMOKE_BENCHMARKS if args.smoke else benchmark_names()
    flow_kwargs = {"rounds": args.rounds, "depth_effort": args.depth_effort}

    warm_worker()  # daemon and direct lanes start equally hot
    report = {
        "mode": "smoke" if args.smoke else "full",
        "workers": workers,
        "cpu_count": os.cpu_count() or 1,
    }

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as state_dir:
        service = OptimizationService(state_dir)

        record, _job_ids, fingerprints = bench_cold_drain(
            service, names, workers, flow_kwargs
        )
        report["cold_drain"] = record
        print(
            f"cold drain ({record['jobs']} jobs, {workers} workers): wall "
            f"{record['wall_s']}s (direct 1-worker {record['direct_wall_s']}s), "
            f"submit latency mean {record['submit_latency_mean_ms']}ms, "
            f"results bit-identical to optimize_many",
            flush=True,
        )

        record = bench_cached_resubmission(service, names, fingerprints, flow_kwargs)
        report["cached_resubmission"] = record
        print(
            f"cached resubmission ({record['resubmitted_jobs']} jobs, "
            f"{record['id_shuffled_jobs']} with shuffled node ids): hit latency "
            f"mean {record['cache_hit_latency_mean_ms']}ms, optimizer "
            f"invocations +{record['optimizer_invocations_delta']}",
            flush=True,
        )

        record = bench_restart(state_dir, names, flow_kwargs)
        report["restart"] = record
        print(
            f"restart: recovered in {record['recover_s']}s, "
            f"{record['jobs_re_run']} jobs re-run, cache intact",
            flush=True,
        )

    # The latency budget: one cache hit vs the mean per-job optimization
    # time of the cold drain.  The zero-invocation guarantee was already
    # asserted exactly in lane 2.
    per_job_s = report["cold_drain"]["direct_wall_s"] / report["cold_drain"]["jobs"]
    hit_s = report["cached_resubmission"]["cache_hit_latency_mean_ms"] / 1000.0
    speedup = per_job_s / max(hit_s, 1e-9)
    report["cache_hit_speedup"] = round(speedup, 1)
    assert speedup >= CACHE_SPEEDUP_FLOOR, (
        f"cache hit ({hit_s * 1000:.1f}ms) not clearly faster than optimizing "
        f"({per_job_s * 1000:.1f}ms/job): {speedup:.1f}x < {CACHE_SPEEDUP_FLOOR}x"
    )
    print(
        f"budget ok: cache hit {hit_s * 1000:.1f}ms vs {per_job_s * 1000:.1f}ms/job "
        f"optimized ({speedup:.1f}x), zero optimizer invocations on the cached path"
    )

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"report written to {args.json}")


if __name__ == "__main__":
    main(sys.argv[1:])
