"""Shared fuzz infrastructure for the whole test-suite.

Every property/fuzz test draws its networks from one seeded generator —
:func:`repro.core.generation.random_network` — instead of hand-rolling
ad-hoc construction loops per test file.  The fixtures are session-scoped
factories (plain functions, no state), which also makes them safe to
combine with ``hypothesis.given``.

``network_forge``
    ``forge(kind="mig"|"aig", gate_mix="aoig"|"maj"|"mixed", num_pis=...,
    num_gates=..., num_pos=..., seed=..., depth_bias=...)`` — a fresh
    seeded random network.

``mutant_forge``
    ``mutate(network, seed)`` — a copy of ``network`` with one seeded
    single-gate fault injected (complemented PO, complemented fanin edge,
    or rewired fanin); returns ``(mutant, description)``.
"""

import pytest

from repro.aig.aig import Aig
from repro.core import Mig, mutate_network, random_network

_NETWORK_CLASSES = {"mig": Mig, "aig": Aig}


def forge_network(
    kind: str = "mig",
    gate_mix: str = "aoig",
    num_pis: int = 6,
    num_gates: int = 30,
    num_pos: int = 3,
    seed: int = 1,
    depth_bias: float = 0.0,
    complemented_edge_probability: float = 0.3,
):
    """Build one seeded random network (module-level for direct import)."""
    try:
        network_cls = _NETWORK_CLASSES[kind]
    except KeyError as exc:
        raise ValueError(f"unknown network kind {kind!r}") from exc
    return random_network(
        network_cls,
        num_pis=num_pis,
        num_gates=num_gates,
        num_pos=num_pos,
        seed=seed,
        gate_mix=gate_mix,
        depth_bias=depth_bias,
        complemented_edge_probability=complemented_edge_probability,
    )


@pytest.fixture(scope="session")
def network_forge():
    """Factory fixture: seeded random MIG/AIG networks for fuzz tests."""
    return forge_network


@pytest.fixture(scope="session")
def mutant_forge():
    """Factory fixture: seeded single-gate mutants for refutation tests."""
    return mutate_network
