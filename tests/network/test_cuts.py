"""Tests for k-feasible cut enumeration over the shared network kernel."""

import pytest

from repro.aig.aig import Aig
from repro.core import Mig, random_aoig_mig, random_mig
from repro.core.signal import CONST_NODE, node_of
from repro.network import mig_to_aig
from repro.network.cuts import cut_cone, enumerate_cuts, mffc_nodes


def _brute_force_table(net, root, leaves):
    """Truth table of ``root`` over ``leaves`` by direct cone evaluation."""
    num_leaves = len(leaves)
    mask = (1 << (1 << num_leaves)) - 1
    values = {CONST_NODE: 0}
    for index, leaf in enumerate(leaves):
        pattern = 0
        block = (1 << (1 << index)) - 1
        period = 1 << (index + 1)
        for start in range(1 << index, 1 << num_leaves, period):
            pattern |= block << start
        values[leaf] = pattern

    def evaluate(node):
        if node not in values:
            values[node] = net._eval_gate(values_proxy, net._fanins[node], mask)
        return values[node]

    class _Proxy:
        def __getitem__(self, node):
            return evaluate(node)

    values_proxy = _Proxy()
    return evaluate(root)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mig_cut_tables_match_cone_simulation(seed):
    mig = random_mig(6, 30, num_pos=4, seed=seed)
    cuts = enumerate_cuts(mig, k=4, cut_limit=8)
    checked = 0
    for node in mig.topological_order():
        for cut in cuts[node]:
            assert 1 <= len(cut.leaves) <= 4
            assert cut.leaves == tuple(sorted(cut.leaves))
            if cut.leaves == (node,):
                assert cut.table == 0b10
                continue
            assert cut.table == _brute_force_table(mig, node, cut.leaves)
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("seed", [4, 5])
def test_aig_cut_tables_match_cone_simulation(seed):
    aig = mig_to_aig(random_aoig_mig(6, 30, num_pos=3, seed=seed))
    cuts = enumerate_cuts(aig, k=4, cut_limit=8)
    for node in aig.topological_order():
        for cut in cuts[node]:
            if cut.leaves == (node,):
                continue
            assert cut.table == _brute_force_table(aig, node, cut.leaves)


def test_every_gate_keeps_its_trivial_cut():
    mig = random_mig(5, 20, num_pos=2, seed=9)
    cuts = enumerate_cuts(mig, k=3, cut_limit=2)
    for node in mig.topological_order():
        assert cuts[node][-1].leaves == (node,)


def test_no_dominated_cuts_are_kept():
    mig = random_mig(6, 40, num_pos=4, seed=11)
    cuts = enumerate_cuts(mig, k=4, cut_limit=8)
    for node in mig.topological_order():
        leaf_sets = [set(c.leaves) for c in cuts[node] if c.leaves != (node,)]
        for i, a in enumerate(leaf_sets):
            for j, b in enumerate(leaf_sets):
                if i != j:
                    assert not a < b, f"cut {a} dominates kept cut {b} at {node}"


def test_cut_limit_bounds_cut_count():
    mig = random_mig(7, 60, num_pos=5, seed=13)
    cuts = enumerate_cuts(mig, k=4, cut_limit=3)
    for node in mig.topological_order():
        assert len(cuts[node]) <= 4  # limit + trivial cut


def test_invalid_k_rejected():
    with pytest.raises(ValueError):
        enumerate_cuts(Mig(), k=5)


def test_cut_cone_stops_at_leaves():
    mig = Mig()
    a, b, c = (mig.add_pi(n) for n in "abc")
    inner = mig.maj(a, b, c)
    root_sig = mig.maj(inner, a, b)
    mig.add_po(root_sig, "f")
    root = node_of(root_sig)
    cone = cut_cone(mig, root, (node_of(inner),))
    assert cone == [root]
    cone_full = cut_cone(mig, root, (node_of(a), node_of(b), node_of(c)))
    assert set(cone_full) == {root, node_of(inner)}


def test_mffc_respects_external_references():
    mig = Mig()
    a, b, c, d = (mig.add_pi(n) for n in "abcd")
    shared = mig.maj(a, b, c)
    root_sig = mig.maj(shared, d, a)
    mig.add_po(root_sig, "f")
    root = node_of(root_sig)
    leaves = (node_of(a), node_of(b), node_of(c), node_of(d))
    # shared is only referenced by root: both nodes are in the MFFC.
    assert mffc_nodes(mig, root, leaves) == {root, node_of(shared)}
    # An external reference to `shared` keeps it alive.
    mig.add_po(shared, "g")
    assert mffc_nodes(mig, root, leaves) == {root}


def test_mffc_stops_at_cut_leaves():
    mig = Mig()
    a, b, c, d = (mig.add_pi(n) for n in "abcd")
    inner = mig.maj(a, b, c)
    mid = mig.maj(inner, d, a)
    root_sig = mig.maj(mid, b, c)
    mig.add_po(root_sig, "f")
    root = node_of(root_sig)
    # Cutting at `inner` keeps its cone out of the MFFC.
    mffc = mffc_nodes(mig, root, (node_of(inner), *(node_of(s) for s in (a, b, c, d))))
    assert node_of(inner) not in mffc
    assert mffc == {root, node_of(mid)}
