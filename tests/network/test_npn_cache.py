"""Tests for the on-disk NPN structure-database cache.

The contract: a database loaded from the cache file is *structurally
identical* to a fresh derivation (same ops, output literal, size and
depth per class), stale or corrupt files are never trusted (semantic
validation replays every entry's program), and disabling the cache falls
back to plain derivation.
"""

import json

import pytest

from repro.network.npn import (
    DbEntry,
    entry_truth_table,
    flush_structure_cache,
    get_structure,
    npn_representatives,
    reset_structure_db,
    structure_cache_path,
)

#: A small spread of classes (the full 222x2 derivation belongs to the
#: benchmarks, not tier-1); slice step chosen to hit constants, literals,
#: and multi-gate classes alike.
_SAMPLE = npn_representatives()[::11]


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NPN_CACHE", raising=False)
    # Flush entries pending from earlier tests *before* redirecting the
    # cache dir — a reset afterwards would write them into tmp_path and
    # pollute the "fresh derivation" side of the round-trip tests.
    reset_structure_db()
    monkeypatch.setenv("REPRO_NPN_CACHE_DIR", str(tmp_path))
    yield tmp_path
    reset_structure_db()


@pytest.mark.parametrize("kind", ["mig", "aig"])
def test_cached_load_is_structurally_identical(cache_dir, kind):
    fresh = {table: get_structure(kind, table) for table in _SAMPLE}
    flush_structure_cache()  # saves are batched; force the pending write
    path = structure_cache_path(kind)
    assert path is not None and path.exists()

    reset_structure_db()
    cached = {table: get_structure(kind, table) for table in _SAMPLE}
    assert cached == fresh  # DbEntry is a NamedTuple: full structural equality

    # The cached-load path must not have re-derived: loading twice from the
    # same file yields the same object graph as the file says, and every
    # entry's program computes its class function.
    for table, entry in cached.items():
        assert entry_truth_table(entry) == table


def test_corrupt_cache_file_falls_back_to_derivation(cache_dir):
    table = _SAMPLE[-1]
    fresh = get_structure("mig", table)
    flush_structure_cache()
    path = structure_cache_path("mig")
    path.write_text("{ not json", encoding="utf-8")
    reset_structure_db()
    assert get_structure("mig", table) == fresh


def test_semantically_wrong_entry_is_rejected(cache_dir):
    table = next(t for t in _SAMPLE if get_structure("mig", t).ops)
    fresh = get_structure("mig", table)
    flush_structure_cache()
    path = structure_cache_path("mig")
    payload = json.loads(path.read_text(encoding="utf-8"))
    # Flip the recorded output polarity of the class's first entry: the
    # program no longer computes the class function, so validation must
    # discard the class's whole list and re-derive it.
    payload["entries"][str(table)][0]["output"] ^= 1
    path.write_text(json.dumps(payload), encoding="utf-8")
    reset_structure_db()
    assert get_structure("mig", table) == fresh


def test_wrong_arity_entry_is_rejected(cache_dir):
    """A table-valid MAJ program in the AIG file must not be trusted —
    the AND builders would crash on 3-fanin ops mid-sweep."""
    table = next(t for t in _SAMPLE if get_structure("mig", t).ops)
    mig_entry = get_structure("mig", table)
    assert any(len(op) == 3 for op in mig_entry.ops)
    fresh_aig = get_structure("aig", table)
    flush_structure_cache()
    path = structure_cache_path("aig")
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["entries"][str(table)] = [
        {
            "ops": [list(op) for op in mig_entry.ops],
            "output": mig_entry.output,
            "size": mig_entry.size,
            "depth": mig_entry.depth,
        }
    ]
    path.write_text(json.dumps(payload), encoding="utf-8")
    reset_structure_db()
    assert get_structure("aig", table) == fresh_aig


def test_cache_can_be_disabled(cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_NPN_CACHE", "0")
    assert structure_cache_path("mig") is None
    table = _SAMPLE[2]
    entry = get_structure("mig", table)
    assert entry_truth_table(entry) == table
    assert not any(cache_dir.iterdir())


def test_entry_truth_table_matches_replay():
    """The pure-table evaluator agrees with an actual network replay."""
    from repro.core.mig import Mig
    from repro.network.npn import replay_structure

    for table in _SAMPLE[:8]:
        entry = get_structure("mig", table)
        mig = Mig()
        inputs = [mig.add_pi(f"v{i}") for i in range(4)]
        mig.add_po(replay_structure(mig, entry, inputs), "f")
        assert mig.truth_tables()[0] == table


def test_validation_rejects_non_canonical_keys(cache_dir):
    table = _SAMPLE[3]
    get_structure("mig", table)
    flush_structure_cache()
    path = structure_cache_path("mig")
    payload = json.loads(path.read_text(encoding="utf-8"))
    # Inject an entry under a non-canonical key: it must be ignored (the
    # canonical map would never look it up, and trusting it would poison
    # `_DB` for lookups that bypass canonicalization).
    payload["entries"]["12345"] = [
        {
            "ops": [],
            "output": 2,
            "size": 0,
            "depth": 0,
        }
    ]
    path.write_text(json.dumps(payload), encoding="utf-8")
    reset_structure_db()
    from repro.network.npn import _DB, _load_structure_cache

    _load_structure_cache("mig")
    assert ("mig", 12345) not in _DB
