"""Property tests for the kernel's incremental topology/level caches.

The :class:`repro.network.base.LogicNetwork` kernel maintains per-node
levels eagerly (worklist repair over the affected cone after every
substitution) and caches the PO-reachable topological order.  These tests
hammer both ``Mig`` and ``Aig`` with randomized build/substitute/cleanup
sequences and assert, after every step, that the cached ``depth()``,
``levels()`` and ``topological_order()`` agree with a from-scratch
recomputation done by an independent reference implementation.
"""

import random

import pytest

from repro.aig.aig import Aig
from repro.core.mig import Mig
from repro.core.signal import make_signal, negate, node_of


# --------------------------------------------------------------------- #
# Independent reference implementations (no kernel caches involved)
# --------------------------------------------------------------------- #
def reference_topological_order(net):
    """PO-reachable gates, fanins first, computed from scratch."""
    order = []
    visited = set(net.pi_nodes()) | {0}

    def visit(root):
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in visited:
                continue
            visited.add(node)
            stack.append((node, True))
            for f in net.fanins(node):
                fn = node_of(f)
                if fn not in visited and not net.is_pi(fn) and not net.is_constant(fn):
                    stack.append((fn, False))

    for po in net.po_signals():
        root = node_of(po)
        if root not in visited:
            visit(root)
    return order


def reference_levels(net):
    """Per-node levels of the PO-reachable cone; everything else is 0."""
    level = [0] * net.num_nodes
    for node in reference_topological_order(net):
        level[node] = 1 + max(level[node_of(f)] for f in net.fanins(node))
    return level


def reference_depth(net):
    if not net.po_signals():
        return 0
    level = reference_levels(net)
    return max(level[node_of(po)] for po in net.po_signals())


def assert_caches_consistent(net):
    assert net.depth() == reference_depth(net)
    assert net.levels() == reference_levels(net)
    # The cached order must be a valid topological order of exactly the
    # reference's reachable gate set.
    order = net.topological_order()
    assert sorted(order) == sorted(reference_topological_order(net))
    position = {node: i for i, node in enumerate(order)}
    for node in order:
        for f in net.fanins(node):
            fn = node_of(f)
            if fn in position:
                assert position[fn] < position[node]
    net.check_integrity()


# --------------------------------------------------------------------- #
# Random network builders
# --------------------------------------------------------------------- #
def random_mig(rng, num_pis=6, num_gates=40):
    mig = Mig()
    signals = [mig.add_pi(f"x{i}") for i in range(num_pis)]
    signals.append(mig.constant(False))
    for _ in range(num_gates):
        a, b, c = rng.sample(signals, 3)
        if rng.random() < 0.4:
            a = negate(a)
        signals.append(mig.maj(a, b, c))
    for _ in range(3):
        mig.add_po(rng.choice(signals))
    return mig


def random_aig(rng, num_pis=6, num_gates=40):
    aig = Aig()
    signals = [aig.add_pi(f"x{i}") for i in range(num_pis)]
    for _ in range(num_gates):
        a, b = rng.sample(signals, 2)
        if rng.random() < 0.4:
            a = negate(a)
        signals.append(aig.and_(a, b))
    for _ in range(3):
        aig.add_po(rng.choice(signals))
    return aig


def random_substitutions(net, rng, steps=30):
    """Apply random substitute / cleanup steps, checking caches each time."""
    for step in range(steps):
        gates = [n for n in net.gates() if not net.is_dead(n)]
        if not gates:
            break
        old = rng.choice(gates)
        target = rng.choice(
            [make_signal(n) for n in gates] + net.pi_signals() + [net.constant(False)]
        )
        if rng.random() < 0.4:
            target = negate(target)
        net.substitute(old, target)
        if step % 7 == 0:
            net.cleanup()
        assert_caches_consistent(net)
    net.cleanup()
    assert_caches_consistent(net)


# --------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------- #
class TestMigLevelCache:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_substitutions(self, seed):
        rng = random.Random(seed)
        mig = random_mig(rng)
        assert_caches_consistent(mig)
        random_substitutions(mig, rng)

    def test_depth_is_o1_between_changes(self):
        rng = random.Random(99)
        mig = random_mig(rng, num_pis=5, num_gates=25)
        mig.depth()
        # Serving from the cache twice must be stable without mutation.
        assert mig.depth() == mig.depth()
        assert mig.levels() == mig.levels()
        assert mig.topological_order() == mig.topological_order()

    def test_node_creation_keeps_caches_valid(self):
        rng = random.Random(7)
        mig = random_mig(rng, num_pis=4, num_gates=12)
        before = mig.levels()
        # A speculative node (not referenced by any PO) must not disturb
        # the snapshot: it is unreachable and sits at level 0.
        x, y = mig.pi_signals()[:2]
        fresh = mig.maj(x, negate(y), mig.constant(False))
        after = mig.levels()
        assert after[: len(before)] == before
        assert_caches_consistent(mig)
        # Registering it as an output makes it reachable.
        mig.add_po(fresh)
        assert_caches_consistent(mig)

    def test_replace_fanins_repairs_levels(self):
        mig = Mig()
        a, b, c, d = (mig.add_pi(n) for n in "abcd")
        inner = mig.maj(a, b, c)
        outer = mig.maj(inner, c, d)
        mig.add_po(outer)
        assert mig.depth() == 2
        mig.replace_fanins(node_of(outer), (a, c, d))
        assert_caches_consistent(mig)
        assert mig.depth() == 1


class TestAigLevelCache:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_substitutions(self, seed):
        rng = random.Random(1000 + seed)
        aig = random_aig(rng)
        assert_caches_consistent(aig)
        random_substitutions(aig, rng)

    def test_substitute_collapses_and_updates_depth(self):
        aig = Aig()
        a, b, c = (aig.add_pi(n) for n in "abc")
        ab = aig.and_(a, b)
        abc = aig.and_(ab, c)
        aig.add_po(abc)
        assert aig.depth() == 2
        # Replacing the inner conjunction by a literal shortens the path.
        assert aig.substitute(node_of(ab), a)
        assert_caches_consistent(aig)
        assert aig.depth() == 1
        assert aig.num_gates == 1

    def test_reachable_accounting_after_substitute(self):
        rng = random.Random(4242)
        aig = random_aig(rng, num_pis=5, num_gates=30)
        random_substitutions(aig, rng, steps=15)
        assert aig.num_gates == len(reference_topological_order(aig))
