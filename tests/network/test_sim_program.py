"""The memoized gate-eval program behind ``simulate_patterns``.

``simulate_patterns`` compiles one pre-bound closure per PO-reachable
gate and reuses the program while the network's mutation serial is
unchanged.  These tests pin the program against the uncompiled reference
path (driving ``_eval_gate`` directly), across in-place mutations,
``assign_from`` resets and pickling.
"""

import pickle
import random

from repro.core import mutate_network


def _reference_simulation(net, pi_patterns, num_bits):
    """The pre-compilation evaluation loop, kept as the oracle."""
    mask = (1 << num_bits) - 1
    values = [0] * len(net._fanins)
    for node, pattern in zip(net._pis, pi_patterns):
        values[node] = pattern & mask
    for node in net._topology():
        values[node] = net._eval_gate(values, net._fanins[node], mask)
    return [net._edge_value(values, po, mask) for po in net._pos]


def _random_patterns(rng, num_pis, num_bits):
    return [rng.getrandbits(num_bits) for _ in range(num_pis)]


class TestSimulationProgram:
    def test_matches_reference_on_both_kinds(self, network_forge):
        rng = random.Random(3)
        for kind in ("mig", "aig"):
            net = network_forge(kind=kind, gate_mix="mixed", num_pis=8,
                                num_gates=60, num_pos=5, seed=17)
            for _ in range(3):
                patterns = _random_patterns(rng, net.num_pis, 64)
                assert net.simulate_patterns(patterns, 64) == _reference_simulation(
                    net, patterns, 64
                )

    def test_program_is_reused_until_mutation(self, network_forge):
        net = network_forge(kind="mig", num_pis=6, num_gates=40, seed=4)
        patterns = _random_patterns(random.Random(1), net.num_pis, 32)
        net.simulate_patterns(patterns, 32)
        program = net._sim_program
        assert program is not None
        net.simulate_patterns(patterns, 32)
        assert net._sim_program is program  # unchanged network: same program

    def test_recompiles_after_in_place_mutation(self, network_forge):
        rng = random.Random(9)
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=7,
                            num_gates=50, num_pos=4, seed=23)
        patterns = _random_patterns(rng, net.num_pis, 64)
        net.simulate_patterns(patterns, 64)  # charge the program
        for step in range(6):
            mutate_network(net, seed=step, in_place=True)
            assert net.simulate_patterns(patterns, 64) == _reference_simulation(
                net, patterns, 64
            ), f"stale program after mutation {step}"

    def test_recompiles_after_assign_from(self, network_forge):
        net = network_forge(kind="mig", num_pis=6, num_gates=40, seed=5)
        other = network_forge(kind="mig", num_pis=6, num_gates=35, seed=6)
        patterns = _random_patterns(random.Random(2), 6, 32)
        net.simulate_patterns(patterns, 32)
        net.assign_from(other)
        assert net.simulate_patterns(patterns, 32) == other.simulate_patterns(
            patterns, 32
        )

    def test_pickle_drops_program_and_resimulates(self, network_forge):
        net = network_forge(kind="aig", gate_mix="mixed", num_pis=7,
                            num_gates=45, seed=8)
        patterns = _random_patterns(random.Random(4), net.num_pis, 64)
        expected = net.simulate_patterns(patterns, 64)
        clone = pickle.loads(pickle.dumps(net))
        assert clone._sim_program is None
        assert clone._mutation_listeners == []
        assert clone.simulate_patterns(patterns, 64) == expected

    def test_truth_tables_unchanged(self, network_forge):
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=5,
                            num_gates=30, num_pos=3, seed=12)
        tables = net.truth_tables()
        clone = net.copy()
        assert clone.truth_tables() == tables
