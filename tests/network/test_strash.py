"""Regression and fuzz tests for structural-hash completeness in the kernel.

In-place fanin rewrites (``_replace_in_node`` during a substitution
cascade) can store a MIG node under a polarity form the builder would not
choose (e.g. a sorted triple with two complemented fanins).  The builder
must still find such nodes — probing only the normalized key would
materialise a functional duplicate, which also breaks the gain accounting
of the cut-rewriting dry run (a "free" strash hit that the replay then
cannot reuse).

The deterministic scenario below pins the original regression; the fuzz
tests generalize it over the shared random-network forge
(``tests/conftest.py``) for both network types.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Mig, mutate_network
from repro.core.signal import negate, node_of
from repro.verify import assert_equivalent


def _parent_with_denormalized_key():
    """Build a MIG whose live parent node sits under a 2-complement key."""
    mig = Mig()
    a, b, c, d, e = (mig.add_pi(n) for n in "abcde")
    inner = mig.maj(a, b, c)
    parent = mig.maj(inner, negate(d), e)
    mig.add_po(parent, "f")
    replacement = mig.maj(a, b, d)
    mig.add_po(replacement, "g")
    # The cascade rewrites `parent` in place to M(repl', d', e) and stores
    # it under the sorted raw tuple, which has two complemented fanins.
    assert mig.substitute(node_of(inner), negate(replacement))
    return mig, node_of(parent)


def test_builder_reuses_node_stored_under_complemented_key():
    mig, parent = _parent_with_denormalized_key()
    stored_keys = [key for key, node in mig._strash.items() if node == parent]
    assert stored_keys, "parent must still be strashed"
    assert any(
        sum(f & 1 for f in key) >= 2 for key in stored_keys
    ), "scenario must exercise a non-normalized stored form"
    before = mig.num_gates
    rebuilt = mig.maj(*mig.fanins(parent))
    assert node_of(rebuilt) == parent, "builder must hit the stored node"
    assert mig.num_gates == before, "no duplicate node may be created"


def test_builder_polarity_of_complemented_hit_is_correct():
    mig, parent = _parent_with_denormalized_key()
    reference = mig.copy()
    fanins = mig.fanins(parent)
    # M(f') built from the complemented fanins must come back as the
    # complement edge of the stored node (majority self-duality).
    rebuilt = mig.maj(*(negate(f) for f in fanins))
    assert rebuilt == negate(parent << 1)
    mig.check_integrity()
    assert_equivalent(mig, reference)


class TestStrashCompletenessFuzz:
    """The regression above, generalized over the shared network forge.

    After arbitrary in-place rewrites (here: seeded mutations, which run
    through ``replace_fanins`` / ``set_po`` and their cascades), rebuilding
    any live gate from its own stored fanins must hit the strash table —
    in either polarity — and never materialise a duplicate node.
    """

    @pytest.mark.parametrize("kind", ["mig", "aig"])
    @settings(max_examples=12, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_rebuilding_live_gates_never_duplicates(self, network_forge, kind, seed):
        net = network_forge(kind=kind, gate_mix="mixed", num_pis=6, num_gates=25, seed=seed)
        # Drive the in-place rewrite machinery a few times.
        for step in range(3):
            net, _ = mutate_network(net, seed=seed * 7 + step)
        net.check_integrity()
        before_gates = net.num_gates
        before_nodes = net.num_nodes
        builder = net.maj if isinstance(net, Mig) else net.and_
        for node in list(net.topological_order()):
            # Rebuilding a live gate from its own stored fanins must hit
            # the strash table (this node, or a live polarity-variant
            # sibling) — never allocate.
            rebuilt = builder(*net.fanins(node))
            assert node_of(rebuilt) < before_nodes, (kind, seed, node)
            if isinstance(net, Mig):
                # Majority self-duality: the all-complemented rebuild must
                # come back as the complement edge of the same node.
                flipped = builder(*(negate(f) for f in net.fanins(node)))
                assert flipped == negate(rebuilt), (kind, seed, node)
        assert net.num_gates == before_gates, "no duplicate node may be created"
        assert net.num_nodes == before_nodes, "no node may be allocated"
