"""Regression tests for structural-hash completeness in the kernel.

In-place fanin rewrites (``_replace_in_node`` during a substitution
cascade) can store a MIG node under a polarity form the builder would not
choose (e.g. a sorted triple with two complemented fanins).  The builder
must still find such nodes — probing only the normalized key would
materialise a functional duplicate, which also breaks the gain accounting
of the cut-rewriting dry run (a "free" strash hit that the replay then
cannot reuse).
"""

from repro.core import Mig
from repro.core.signal import negate, node_of
from repro.verify import assert_equivalent


def _parent_with_denormalized_key():
    """Build a MIG whose live parent node sits under a 2-complement key."""
    mig = Mig()
    a, b, c, d, e = (mig.add_pi(n) for n in "abcde")
    inner = mig.maj(a, b, c)
    parent = mig.maj(inner, negate(d), e)
    mig.add_po(parent, "f")
    replacement = mig.maj(a, b, d)
    mig.add_po(replacement, "g")
    # The cascade rewrites `parent` in place to M(repl', d', e) and stores
    # it under the sorted raw tuple, which has two complemented fanins.
    assert mig.substitute(node_of(inner), negate(replacement))
    return mig, node_of(parent)


def test_builder_reuses_node_stored_under_complemented_key():
    mig, parent = _parent_with_denormalized_key()
    stored_keys = [key for key, node in mig._strash.items() if node == parent]
    assert stored_keys, "parent must still be strashed"
    assert any(
        sum(f & 1 for f in key) >= 2 for key in stored_keys
    ), "scenario must exercise a non-normalized stored form"
    before = mig.num_gates
    rebuilt = mig.maj(*mig.fanins(parent))
    assert node_of(rebuilt) == parent, "builder must hit the stored node"
    assert mig.num_gates == before, "no duplicate node may be created"


def test_builder_polarity_of_complemented_hit_is_correct():
    mig, parent = _parent_with_denormalized_key()
    reference = mig.copy()
    fanins = mig.fanins(parent)
    # M(f') built from the complemented fanins must come back as the
    # complement edge of the stored node (majority self-duality).
    rebuilt = mig.maj(*(negate(f) for f in fanins))
    assert rebuilt == negate(parent << 1)
    mig.check_integrity()
    assert_equivalent(mig, reference)
