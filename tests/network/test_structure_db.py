"""Top-k structure database: Pareto-front invariants and staleness.

Three contracts from the exact-synthesis PR:

* every class's entry list is a strict Pareto front on (size, depth) —
  sizes strictly increase, depths strictly decrease, every entry replays
  to the class function (``get_structure`` stays the size-best head);
* :func:`register_structures` validates semantically before merging and
  bumps the database generation exactly when the front changes;
* ``cut_rewrite``'s convergence skip re-arms when the database changes
  under it (the staleness bugfix: the pre-fix token recorded only the
  network's mutation serial, so a sweep that had converged against the
  old database skipped forever and never saw newly registered
  structures).
"""

import pytest

from repro.core.mig import Mig
from repro.core.signal import CONST_FALSE, CONST_TRUE
from repro.network import npn
from repro.network.npn import (
    DbEntry,
    entry_truth_table,
    get_structure,
    get_structures,
    npn_canonical,
    npn_representatives,
    register_structures,
    replay_structure,
    structure_db_generation,
)
from repro.network.rewrite import cut_rewrite
from repro.synth import SAT, synthesize_exact


@pytest.fixture()
def fresh_db(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_NPN_CACHE", raising=False)
    npn.reset_structure_db()
    monkeypatch.setenv("REPRO_NPN_CACHE_DIR", str(tmp_path))
    yield
    npn.reset_structure_db()


def _xor3_rep():
    xor3 = sum(1 << t for t in range(16) if bin(t & 7).count("1") & 1)
    return npn_canonical(xor3)[0]


@pytest.mark.parametrize("kind", ["mig", "aig"])
def test_topk_fronts_are_strict_pareto_and_replay(fresh_db, kind):
    for rep in npn_representatives()[::5]:
        front = get_structures(kind, rep)
        assert front, f"{rep:#06x}: empty entry list"
        assert front[0] == get_structure(kind, rep)
        for entry in front:
            assert entry_truth_table(entry) == rep
            assert entry.size == len(entry.ops)
            assert entry.depth == npn._entry_depth(entry)
        sizes = [entry.size for entry in front]
        depths = [entry.depth for entry in front]
        assert sizes == sorted(set(sizes)), f"{rep:#06x}: sizes not strictly increasing"
        assert depths == sorted(set(depths), reverse=True), (
            f"{rep:#06x}: depths not strictly decreasing"
        )


def test_register_structures_rejects_wrong_function(fresh_db):
    rep = _xor3_rep()
    entry = get_structure("mig", rep)
    wrong = entry._replace(output=entry.output ^ 1)
    with pytest.raises(ValueError):
        register_structures("mig", rep, [wrong])
    with pytest.raises(ValueError):
        register_structures("mig", rep, [entry._replace(size=entry.size + 1)])
    with pytest.raises(ValueError):
        register_structures("xmg", rep, [entry])
    with pytest.raises(ValueError):  # non-canonical key
        register_structures("mig", 0x6996 if rep != 0x6996 else 0x9669, [entry])


def test_register_structures_merges_dominated_entries_away(fresh_db):
    rep = _xor3_rep()
    front = get_structures("mig", rep)
    generation = structure_db_generation()
    # Re-registering the existing front is a no-op: no generation bump.
    assert register_structures("mig", rep, list(front)) == front
    assert structure_db_generation() == generation


def test_exact_entry_improves_the_fast_tier_front(fresh_db):
    """The fast (decomposition) tier synthesizes xor3 in 6 MAJ gates; the
    exact tier proves 3 is the minimum and the merge must adopt it."""
    rep = _xor3_rep()
    fast = get_structures("mig", rep)
    result = synthesize_exact(rep, "mig")
    assert result.status == SAT and result.optimal
    assert result.gates < fast[0].size
    merged = register_structures("mig", rep, [result.entry])
    assert merged[0].size == result.gates
    assert entry_truth_table(merged[0]) == rep


def _build_xor3_cascade():
    """xor2(xor2(a, b), c) out of explicit AND/OR majorities: 6 gates,
    structurally irredundant, functionally the xor3 class function."""
    net = Mig()
    x = [net.add_pi(f"x{i}") for i in range(3)]
    g0 = net.maj(x[0], x[1], CONST_TRUE)
    g1 = net.maj(x[0], x[1], CONST_FALSE)
    g2 = net.maj(g0, g1 ^ 1, CONST_FALSE)
    g3 = net.maj(g2, x[2], CONST_TRUE)
    g4 = net.maj(g2, x[2], CONST_FALSE)
    net.add_po(net.maj(g3, g4 ^ 1, CONST_FALSE), "f")
    return net


def test_converged_skip_rearms_on_db_update(fresh_db):
    """Regression test for the staleness bug: a sweep that converged
    against the old database must re-run — and rewrite — after a better
    structure is registered.  On the pre-fix code (convergence token =
    mutation serial only) the third sweep reports ``converged_skip`` and
    the network stays at 6 gates."""
    rep = _xor3_rep()
    net = _build_xor3_cascade()
    assert net.num_gates == 6

    first = cut_rewrite(net, "mig")
    assert first["rewrites"] == 0  # fast-tier entry is the network itself
    second = cut_rewrite(net, "mig")
    assert second["converged_skip"] == 1

    result = synthesize_exact(rep, "mig")
    assert result.status == SAT and result.gates == 3
    register_structures("mig", rep, [result.entry])

    third = cut_rewrite(net, "mig")
    assert third["converged_skip"] == 0, "stale convergence token not re-armed"
    assert third["rewrites"] >= 1
    assert net.num_gates == 3
    parity = sum(1 << t for t in range(8) if bin(t).count("1") & 1)
    assert net.truth_tables()[0] == parity


def test_depth_mode_spends_topk_entries_area_mode_does_not(fresh_db):
    """Class 0x180's fast-tier front is [(5, 5), (6, 4)]: an area sweep
    (head entry only) leaves the 5-gate form alone, a depth sweep must
    buy the shallower structure with its ``max_size_growth`` allowance."""
    rep = 0x180
    front = get_structures("mig", rep)
    assert len(front) >= 2, "class no longer has a size/depth tradeoff"

    net = Mig()
    x = [net.add_pi(f"x{i}") for i in range(4)]
    net.add_po(replay_structure(net, front[0], x), "f")
    depth_before = net.depth()
    assert depth_before == front[0].depth

    area = cut_rewrite(net, "mig")
    assert area["rewrites"] == 0 and net.depth() == depth_before

    stats = cut_rewrite(net, "mig", max_level_growth=-1, max_size_growth=1)
    assert stats["rewrites"] >= 1
    assert net.depth() < depth_before
    assert net.num_gates <= front[0].size + 1
