"""Property/fuzz tests for the incremental cut engine (:class:`CutManager`).

The manager's core invariant: after *any* sequence of in-place edits, the
cut list it reports for every live PO-reachable node — leaves *and* truth
tables, in order — equals a from-scratch :func:`enumerate_cuts` of the
current network.  The tests drive that invariant through seeded
single-gate mutation sequences, real rewrite rounds, substitution-heavy
optimizer passes, PO redirects and wholesale ``assign_from`` resets, over
both MIG and AIG forges, and additionally prove the incremental rewrite
path bit-identical to the from-scratch one.
"""

import pytest

from repro.aig.rewrite import rewrite_aig_inplace
from repro.core import rewrite_mig
from repro.core.generation import mutate_network
from repro.network.cuts import CutManager, enumerate_cuts


def _as_pairs(cut_list):
    return [(cut.leaves, cut.table) for cut in cut_list]


def _assert_cuts_match_scratch(net, manager):
    """Incremental cuts == from-scratch cuts on every PO-reachable node."""
    actual = manager.cuts()
    expected = enumerate_cuts(net, k=manager.k, cut_limit=manager.cut_limit)
    nodes = set(net._topology()) | set(net.pi_nodes())
    for node in nodes:
        assert node in actual, f"node {node} missing from incremental cuts"
        assert _as_pairs(actual[node]) == _as_pairs(expected[node]), (
            f"cut mismatch at node {node}"
        )
    for node in actual:
        assert not net._dead[node], f"cache still holds dead node {node}"
        for cut in actual[node]:
            sign = 0
            for leaf in cut.leaves:
                sign |= 1 << (leaf & 63)
            assert cut.sign == sign, f"stale signature at node {node}"


@pytest.mark.parametrize("kind", ["mig", "aig"])
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_cuts_match_scratch_after_mutation_sequences(network_forge, kind, seed):
    net = network_forge(
        kind=kind, gate_mix="mixed", num_pis=7, num_gates=60, num_pos=5, seed=seed
    )
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    _assert_cuts_match_scratch(net, manager)
    for step in range(12):
        mutate_network(net, seed=1000 * seed + step, in_place=True)
        _assert_cuts_match_scratch(net, manager)


@pytest.mark.parametrize("kind", ["mig", "aig"])
@pytest.mark.parametrize("seed", [4, 5])
def test_cuts_match_scratch_after_rewrite_rounds(network_forge, kind, seed):
    net = network_forge(
        kind=kind, gate_mix="mixed", num_pis=8, num_gates=120, num_pos=8, seed=seed
    )
    if kind == "mig":
        manager = CutManager.for_network(net, k=4, cut_limit=6)
        for _ in range(3):
            rewrite_mig(net)
            _assert_cuts_match_scratch(net, manager)
    else:
        manager = CutManager.for_network(net, k=4, cut_limit=8)
        for _ in range(3):
            rewrite_aig_inplace(net)
            _assert_cuts_match_scratch(net, manager)


@pytest.mark.parametrize("seed", [6, 7])
def test_cuts_match_scratch_after_optimizer_passes(network_forge, seed):
    from repro.core.size_opt import optimize_size

    net = network_forge(
        kind="mig", gate_mix="maj", num_pis=7, num_gates=80, num_pos=6, seed=seed
    )
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    manager.cuts()
    optimize_size(net, effort=1)
    _assert_cuts_match_scratch(net, manager)


def test_cuts_match_scratch_after_po_redirect(network_forge):
    from repro.core.signal import make_signal

    net = network_forge(kind="mig", num_pis=6, num_gates=40, num_pos=2, seed=11)
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    manager.cuts()
    # Redirect a PO onto an interior gate: reachability changes, and nodes
    # that fell out of (or came back into) the reachable region must still
    # report from-scratch-identical cuts.
    gates = list(net.topological_order())
    net.set_po(0, make_signal(gates[len(gates) // 2]))
    net.cleanup()
    _assert_cuts_match_scratch(net, manager)
    net.add_po(make_signal(gates[0]), "extra")
    _assert_cuts_match_scratch(net, manager)


def test_manager_resets_on_assign_from(network_forge):
    net = network_forge(kind="mig", num_pis=6, num_gates=40, num_pos=3, seed=21)
    other = network_forge(kind="mig", num_pis=5, num_gates=30, num_pos=2, seed=22)
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    manager.cuts()
    net.assign_from(other)
    _assert_cuts_match_scratch(net, manager)


@pytest.mark.parametrize("kind", ["mig", "aig"])
def test_incremental_rewrite_bit_identical_to_scratch(network_forge, kind):
    """Multi-round incremental rewriting must reproduce the from-scratch
    result exactly: same node ids, same fanins, same PO signals."""

    def dump(net):
        return (
            tuple(net.po_signals()),
            tuple((n, net._fanins[n]) for n in net.topological_order()),
        )

    def sweep(net, incremental):
        if kind == "mig":
            return rewrite_mig(net, incremental=incremental)
        return rewrite_aig_inplace(net, incremental=incremental)

    for seed in (31, 32):
        a = network_forge(
            kind=kind, gate_mix="mixed", num_pis=8, num_gates=150, num_pos=8, seed=seed
        )
        b = network_forge(
            kind=kind, gate_mix="mixed", num_pis=8, num_gates=150, num_pos=8, seed=seed
        )
        for _ in range(4):
            sweep(a, True)
            sweep(b, False)
        assert dump(a) == dump(b)


def test_converged_sweep_is_skipped(network_forge):
    net = network_forge(kind="mig", gate_mix="mixed", num_pis=7, num_gates=80, seed=41)
    stats = rewrite_mig(net)
    while stats["rewrites"] or stats["aliased"]:
        stats = rewrite_mig(net)
    serial = net._mutation_serial
    stats = rewrite_mig(net)
    assert stats["converged_skip"] == 1
    assert stats["cut_nodes_recomputed"] == 0
    assert net._mutation_serial == serial, "skipped sweep must not touch the network"
    # Any structural change re-arms the sweep.
    mutate_network(net, seed=42, in_place=True)
    stats = rewrite_mig(net)
    assert stats["converged_skip"] == 0


def test_reuse_counters_report_incrementality(network_forge):
    net = network_forge(
        kind="mig", gate_mix="mixed", num_pis=8, num_gates=200, num_pos=10, seed=51
    )
    first = rewrite_mig(net)
    assert first["cut_nodes_reused"] == 0 and first["cut_nodes_recomputed"] > 0
    second = rewrite_mig(net)
    if not second["converged_skip"]:
        assert second["cut_nodes_reused"] > 0
        assert second["cut_nodes_recomputed"] < first["cut_nodes_recomputed"]


def test_rebuild_wrappers_release_cut_state(network_forge):
    """One-shot rewrite()/refactor() results must not pin a cut cache."""
    from repro.aig.rewrite import refactor, rewrite

    aig = network_forge(kind="aig", gate_mix="mixed", num_pis=7, num_gates=60, seed=71)
    for wrapper in (rewrite, refactor):
        result = wrapper(aig)
        assert not result.__dict__.get("_cut_managers")
        assert "_dry_probe_cache" not in result.__dict__
        assert not result._mutation_listeners


def test_for_network_shares_and_detach_releases(network_forge):
    net = network_forge(kind="mig", num_pis=6, num_gates=30, seed=61)
    manager = CutManager.for_network(net, k=4, cut_limit=8)
    assert CutManager.for_network(net, k=4, cut_limit=8) is manager
    assert CutManager.for_network(net, k=3, cut_limit=6) is not manager
    manager.detach()
    assert CutManager.for_network(net, k=4, cut_limit=8) is not manager
    # A detached manager no longer receives events.
    mutate_network(net, seed=62, in_place=True)
    assert not manager._dirty
