"""Tests for NPN canonicalization and the rewriting structure database."""

import random

import pytest

from repro.aig.aig import Aig
from repro.core import Mig
from repro.network.npn import (
    IDENTITY_TRANSFORM,
    NUM_NPN_CLASSES,
    NpnTransform,
    apply_transform,
    compose_transforms,
    extend_table,
    get_structure,
    invert_transform,
    npn_canonical,
    npn_representatives,
    replay_structure,
)

_FULL = 0xFFFF


def _random_transform(rng):
    perm = list(range(4))
    rng.shuffle(perm)
    return NpnTransform(tuple(perm), rng.randrange(16), bool(rng.randrange(2)))


class TestTransformAlgebra:
    def test_identity(self):
        for table in (0x0000, 0x1234, 0xCAFE, _FULL):
            assert apply_transform(table, IDENTITY_TRANSFORM) == table

    def test_invert_roundtrips(self):
        rng = random.Random(7)
        for _ in range(200):
            table = rng.randrange(1 << 16)
            transform = _random_transform(rng)
            transformed = apply_transform(table, transform)
            assert apply_transform(transformed, invert_transform(transform)) == table

    def test_compose_equals_sequential_application(self):
        rng = random.Random(8)
        for _ in range(200):
            table = rng.randrange(1 << 16)
            first = _random_transform(rng)
            second = _random_transform(rng)
            assert apply_transform(
                apply_transform(table, first), second
            ) == apply_transform(table, compose_transforms(first, second))

    def test_extend_table_pads_upper_variables(self):
        assert extend_table(0b10, 1) == 0xAAAA
        assert extend_table(0b0110, 2) == 0x6666
        assert extend_table(0b1000, 2) == 0x8888


class TestCanonicalization:
    def test_exactly_222_classes_over_all_functions(self):
        """All 65,536 4-variable functions collapse to 222 NPN classes."""
        representatives = {npn_canonical(table)[0] for table in range(1 << 16)}
        assert len(representatives) == NUM_NPN_CLASSES
        assert representatives == set(npn_representatives())

    def test_every_recorded_transform_roundtrips(self):
        """``apply(table, transform) == canonical`` for all 65,536 tables."""
        for table in range(1 << 16):
            canonical, transform = npn_canonical(table)
            assert apply_transform(table, transform) == canonical
            assert apply_transform(canonical, invert_transform(transform)) == table

    def test_canonical_is_orbit_minimum(self):
        rng = random.Random(9)
        for _ in range(50):
            table = rng.randrange(1 << 16)
            canonical, _ = npn_canonical(table)
            assert canonical <= table
            for _ in range(20):
                other = apply_transform(table, _random_transform(rng))
                assert npn_canonical(other)[0] == canonical
                assert canonical <= other

    def test_known_class_members(self):
        # Constants form one class, projections another, XOR4 its own.
        assert npn_canonical(0)[0] == npn_canonical(_FULL)[0] == 0
        proj = npn_canonical(0xAAAA)[0]
        assert all(npn_canonical(v)[0] == proj for v in (0xCCCC, 0xF0F0, 0xFF00))
        xor2 = 0xAAAA ^ 0xCCCC
        assert npn_canonical(xor2)[0] == npn_canonical(xor2 ^ _FULL)[0]


class TestStructureDatabase:
    @pytest.mark.parametrize("kind,cls", [("mig", Mig), ("aig", Aig)])
    def test_every_class_has_a_correct_structure(self, kind, cls):
        """Replaying the database entry reproduces the canonical function."""
        for representative in npn_representatives():
            entry = get_structure(kind, representative)
            net = cls()
            variables = [net.add_pi(f"v{i}") for i in range(4)]
            net.add_po(replay_structure(net, entry, variables), "f")
            (table,) = net.truth_tables()
            assert table == representative, (kind, hex(representative))
            assert net.num_gates <= entry.size
            assert net.depth() <= entry.depth

    def test_degenerate_entries_have_no_gates(self):
        for kind in ("mig", "aig"):
            assert get_structure(kind, 0).size == 0  # constant
            proj = npn_canonical(0xAAAA)[0]
            assert get_structure(kind, proj).size == 0  # single literal

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            get_structure("xmg", 0x1234)
