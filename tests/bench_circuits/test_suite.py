"""Tests for the synthetic MCNC-like benchmark generators."""

import pytest

from repro.aig.aig import Aig
from repro.bench_circuits import (
    BENCHMARKS,
    benchmark_names,
    build_benchmark,
    build_compression_circuit,
)
from repro.bench_circuits.components import (
    array_multiplier,
    carry_lookahead_adder,
    less_than_comparator,
    min_max_unit,
    parity_tree,
    ripple_adder,
)
from repro.core import Mig
from repro.verify import check_equivalence

SMALL = ["alu4", "misex3", "my_adder", "b9", "count", "C1908"]


class TestSpecs:
    def test_fourteen_table1_benchmarks(self):
        assert len(benchmark_names()) == 14
        assert benchmark_names()[0] == "C1355"

    @pytest.mark.parametrize("name", benchmark_names())
    def test_io_counts_match_table1(self, name):
        spec = BENCHMARKS[name]
        net = build_benchmark(name, Mig)
        assert net.num_pis == spec.num_inputs
        assert net.num_pos == spec.num_outputs
        assert net.num_gates > 0

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_benchmark("does_not_exist")

    @pytest.mark.parametrize("name", SMALL)
    def test_mig_and_aig_builds_are_equivalent(self, name):
        mig = build_benchmark(name, Mig)
        aig = build_benchmark(name, Aig)
        assert check_equivalence(mig, aig, num_random_vectors=512).equivalent

    def test_generators_are_deterministic(self):
        first = build_benchmark("b9", Mig)
        second = build_benchmark("b9", Mig)
        assert first.num_gates == second.num_gates
        assert first.truth_tables() if first.num_pis <= 14 else True
        assert check_equivalence(first, second, num_random_vectors=256).equivalent

    def test_compression_circuit_scales(self):
        small = build_compression_circuit(16, Mig)
        large = build_compression_circuit(64, Mig)
        assert large.num_gates > small.num_gates
        assert small.num_pos == 16
        assert large.num_pos == 64


class TestComponents:
    def test_ripple_adder_correct(self):
        mig = Mig()
        a = [mig.add_pi(f"a{i}") for i in range(4)]
        b = [mig.add_pi(f"b{i}") for i in range(4)]
        cin = mig.add_pi("cin")
        sums, carry = ripple_adder(mig, a, b, cin)
        for s in sums:
            mig.add_po(s, None)
        mig.add_po(carry, "cout")
        tts = mig.truth_tables()
        for x in range(16):
            for y in range(16):
                for c in (0, 1):
                    index = x | (y << 4) | (c << 8)
                    total = x + y + c
                    for bit in range(5):
                        assert ((tts[bit] >> index) & 1) == ((total >> bit) & 1)

    def test_cla_matches_ripple(self):
        mig = Mig()
        a = [mig.add_pi(f"a{i}") for i in range(6)]
        b = [mig.add_pi(f"b{i}") for i in range(6)]
        cin = mig.constant(False)
        ripple_sums, ripple_carry = ripple_adder(mig, a, b, cin)
        cla_sums, cla_carry = carry_lookahead_adder(mig, a, b, cin, block=3)
        for r, c in zip(ripple_sums + [ripple_carry], cla_sums + [cla_carry]):
            mig.add_po(mig.xor_(r, c), None)
        assert all(tt == 0 for tt in mig.truth_tables())

    def test_multiplier_correct(self):
        mig = Mig()
        a = [mig.add_pi(f"a{i}") for i in range(3)]
        b = [mig.add_pi(f"b{i}") for i in range(3)]
        product = array_multiplier(mig, a, b)
        for p in product:
            mig.add_po(p, None)
        tts = mig.truth_tables()
        for x in range(8):
            for y in range(8):
                index = x | (y << 3)
                value = x * y
                for bit in range(6):
                    assert ((tts[bit] >> index) & 1) == ((value >> bit) & 1)

    def test_comparator_and_minmax(self):
        mig = Mig()
        a = [mig.add_pi(f"a{i}") for i in range(3)]
        b = [mig.add_pi(f"b{i}") for i in range(3)]
        lt = less_than_comparator(mig, a, b)
        minimum, maximum = min_max_unit(mig, a, b)
        mig.add_po(lt, "lt")
        for m in minimum + maximum:
            mig.add_po(m, None)
        tts = mig.truth_tables()
        for x in range(8):
            for y in range(8):
                index = x | (y << 3)
                assert ((tts[0] >> index) & 1) == (1 if x < y else 0)
                mn, mx = min(x, y), max(x, y)
                for bit in range(3):
                    assert ((tts[1 + bit] >> index) & 1) == ((mn >> bit) & 1)
                    assert ((tts[4 + bit] >> index) & 1) == ((mx >> bit) & 1)

    def test_parity_tree(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(5)]
        mig.add_po(parity_tree(mig, pis), "p")
        (tt,) = mig.truth_tables()
        for i in range(32):
            assert ((tt >> i) & 1) == (bin(i).count("1") & 1)
