"""Tests of the scalable benchmark generator (parametric 10^5–10^6 families).

Functional correctness is checked exhaustively at small parameters (a
4x4 multiplier really multiplies, a 3-operand tree really sums);
preset-scale properties — determinism, measured gate-count envelopes,
registry resolution alongside the Table I suite — are checked on the
smoke-scale presets so the suite stays fast.
"""

import pytest

from repro.aig.aig import Aig
from repro.bench_circuits import (
    BENCHMARKS,
    SCALABLE_BENCHMARKS,
    benchmark_names,
    build_benchmark,
    build_scalable,
    scalable_names,
)
from repro.bench_circuits.generator import (
    gen_adder_tree,
    gen_multiplier,
    gen_random_logic,
)
from repro.core import Mig
from repro.parallel.corpus import structural_fingerprint

SMOKE_PRESETS = ("mult_48", "adder_tree_64", "rand_400")


def _exhaustive_po_values(net):
    num_pis = net.num_pis
    bits = 1 << num_pis
    patterns = []
    for i in range(num_pis):
        block = (1 << (1 << i)) - 1
        pattern = 0
        period = 1 << (i + 1)
        for start in range(1 << i, bits, period):
            pattern |= block << start
        patterns.append(pattern)
    return net.simulate_patterns(patterns, bits), bits


class TestFamilies:
    def test_multiplier_multiplies(self):
        width = 4
        net = Mig()
        gen_multiplier(net, width)
        assert net.num_pis == 2 * width
        assert net.num_pos == 2 * width
        values, bits = _exhaustive_po_values(net)
        for minterm in range(bits):
            a = minterm & ((1 << width) - 1)
            b = minterm >> width
            product = sum(
                ((values[j] >> minterm) & 1) << j for j in range(2 * width)
            )
            assert product == a * b, f"{a}*{b} -> {product}"

    def test_adder_tree_sums(self):
        width, operands = 3, 3
        net = Mig()
        gen_adder_tree(net, width, operands)
        assert net.num_pis == width * operands
        values, bits = _exhaustive_po_values(net)
        mask = (1 << width) - 1
        for minterm in range(bits):
            total = sum((minterm >> (width * j)) & mask for j in range(operands))
            got = sum(
                ((values[j] >> minterm) & 1) << j for j in range(net.num_pos)
            )
            assert got == total, f"minterm {minterm}: {got} != {total}"

    def test_adder_tree_rejects_single_operand(self):
        with pytest.raises(ValueError):
            gen_adder_tree(Mig(), 4, 1)

    def test_random_logic_is_seeded(self):
        first, second = Mig(), Mig()
        gen_random_logic(first, 20, seed=5)
        gen_random_logic(second, 20, seed=5)
        assert structural_fingerprint(first) == structural_fingerprint(second)
        third = Mig()
        gen_random_logic(third, 20, seed=6)
        assert structural_fingerprint(third) != structural_fingerprint(first)

    def test_random_logic_is_fully_live(self):
        net = Mig()
        gen_random_logic(net, 30)
        before = net.num_gates
        net.cleanup()
        assert net.num_gates == before


class TestPresets:
    @pytest.mark.parametrize("name", SMOKE_PRESETS)
    def test_preset_is_deterministic(self, name):
        assert structural_fingerprint(build_scalable(name)) == (
            structural_fingerprint(build_scalable(name))
        )

    @pytest.mark.parametrize("name", SMOKE_PRESETS)
    def test_preset_size_envelope(self, name):
        spec = SCALABLE_BENCHMARKS[name]
        net = build_scalable(name)
        assert net.name == name
        ratio = net.num_gates / spec.approx_gates
        assert 0.8 <= ratio <= 1.2, (
            f"{name}: {net.num_gates} gates drifted from measured "
            f"{spec.approx_gates} ({ratio:.2f}x)"
        )

    def test_presets_build_as_both_network_classes(self):
        mig = build_scalable("adder_tree_64", Mig)
        aig = build_scalable("adder_tree_64", Aig)
        assert isinstance(aig, Aig)
        assert mig.num_pis == aig.num_pis
        assert mig.num_pos == aig.num_pos

    def test_scale_lanes_are_registered(self):
        names = scalable_names()
        assert set(names) == set(SCALABLE_BENCHMARKS)
        # One >=10^5 and one >=10^6 preset per the ROADMAP million-gate item.
        sizes = [SCALABLE_BENCHMARKS[name].approx_gates for name in names]
        assert any(size >= 100_000 for size in sizes)
        assert any(size >= 1_000_000 for size in sizes)


class TestRegistry:
    def test_build_benchmark_resolves_scalable_names(self):
        net = build_benchmark("rand_400")
        assert net.name == "rand_400"

    def test_table1_names_unchanged(self):
        # Corpus sweeps iterate benchmark_names(); the scalable presets
        # must not leak into the Table I set.
        assert benchmark_names() == list(BENCHMARKS)
        assert not set(scalable_names()) & set(benchmark_names())

    def test_unknown_name_lists_both_registries(self):
        with pytest.raises(KeyError) as excinfo:
            build_benchmark("no_such_circuit")
        message = str(excinfo.value)
        assert "rand_400" in message
