"""Tests for the standard-cell library, the mapper and the estimation."""

import pytest

from repro.aig.aig import Aig
from repro.bench_circuits import build_benchmark
from repro.core import Mig, random_aoig_mig, random_mig
from repro.mapping import default_library, map_aig, map_mig, map_network, nand_nor_library
from repro.network import mig_to_aig
from repro.verify import assert_equivalent, check_equivalence


class TestLibrary:
    def test_default_library_contents(self):
        library = default_library()
        for name in ("INV", "NAND2", "NOR2", "XOR2", "XNOR2", "MAJ3", "MIN3"):
            assert name in library
        assert library.has_majority_cells
        assert not nand_nor_library().has_majority_cells

    def test_cell_evaluation(self):
        library = default_library()
        mask = 0b1111
        assert library["NAND2"].evaluate([0b1100, 0b1010], mask) == 0b0111
        assert library["XOR2"].evaluate([0b1100, 0b1010], mask) == 0b0110
        assert library["MAJ3"].evaluate([0b1100, 0b1010, 0b1111], mask) == 0b1110
        assert library["MIN3"].evaluate([0b1100, 0b1010, 0b1111], mask) == 0b0001

    def test_unknown_cell_rejected(self):
        library = default_library()
        netlist = map_mig(random_mig(4, 5, num_pos=1, seed=1), library)
        with pytest.raises(ValueError):
            netlist.add_cell("NAND17", "out", ["a"])


class TestMappingCorrectness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mig_mapping_preserves_function(self, seed):
        mig = random_mig(7, 40, num_pos=5, seed=seed)
        netlist = map_mig(mig)
        assert_equivalent(mig, netlist)

    @pytest.mark.parametrize("seed", [4, 5])
    def test_aig_mapping_preserves_function(self, seed):
        aig = mig_to_aig(random_aoig_mig(7, 40, num_pos=4, seed=seed))
        netlist = map_aig(aig)
        assert_equivalent(aig, netlist)

    def test_xor_pattern_uses_xor_cells(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.xor_(a, b), "f")
        netlist = map_mig(mig)
        histogram = netlist.cell_histogram()
        assert histogram.get("XOR2", 0) + histogram.get("XNOR2", 0) == 1
        assert_equivalent(mig, netlist)

    def test_xor_match_absorbs_interior_cells(self):
        # Regression: the seed mapper emitted the matched cone's interior
        # AND/OR cells before the XOR match and left them dangling.
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.xor_(a, b), "f")
        netlist = map_mig(mig)
        assert netlist.num_cells == 1
        assert netlist.instances[0].cell in ("XOR2", "XNOR2")

    def test_aig_majority_cone_matches_majority_cell(self):
        # Cut + NPN matching recognises the 4-node AND/OR majority cone in
        # an AIG and maps it onto a single MAJ3/MIN3 cell — something the
        # hand-written XOR-only pattern matcher could never do.
        aig = Aig()
        a, b, c = (aig.add_pi(n) for n in "abc")
        aig.add_po(aig.maj_(a, b, c), "m")
        netlist = map_aig(aig)
        histogram = netlist.cell_histogram()
        assert histogram.get("MAJ3", 0) + histogram.get("MIN3", 0) == 1
        assert "AND2" not in histogram and "OR2" not in histogram
        assert_equivalent(aig, netlist)

    def test_shared_interior_blocks_absorption(self):
        # A cone whose interior drives other logic must not be absorbed.
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        x = mig.xor_(a, b)
        # Re-use the OR(a, b) interior node of the XOR cone elsewhere.
        mig.add_po(x, "f")
        mig.add_po(mig.or_(a, b), "g")
        netlist = map_mig(mig)
        assert_equivalent(mig, netlist)

    def test_majority_node_uses_majority_cell(self):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        mig.add_po(mig.maj(a, b, c), "m")
        netlist = map_mig(mig)
        histogram = netlist.cell_histogram()
        assert histogram.get("MAJ3", 0) + histogram.get("MIN3", 0) == 1

    def test_mapping_without_majority_cells(self):
        mig = build_benchmark("alu4", Mig)
        netlist = map_mig(mig, nand_nor_library())
        assert "MAJ3" not in netlist.cell_histogram()
        assert check_equivalence(mig, netlist).equivalent

    def test_map_network_dispatch(self):
        mig = random_mig(5, 10, num_pos=2, seed=9)
        aig = mig_to_aig(mig)
        assert map_network(mig).num_cells > 0
        assert map_network(aig).num_cells > 0
        with pytest.raises(TypeError):
            map_network("not a network")

    def test_benchmark_mapping_roundtrip(self):
        mig = build_benchmark("my_adder", Mig)
        netlist = map_mig(mig)
        assert check_equivalence(mig, netlist, num_random_vectors=512).equivalent


class TestEstimation:
    def test_area_delay_power_positive(self):
        mig = build_benchmark("alu4", Mig)
        netlist = map_mig(mig)
        assert netlist.area() > 0
        assert netlist.delay() > 0
        assert netlist.power() > 0

    def test_delay_scales_with_depth(self):
        shallow = Mig()
        a, b = shallow.add_pi("a"), shallow.add_pi("b")
        shallow.add_po(shallow.and_(a, b), "f")
        deep = Mig()
        pis = [deep.add_pi(f"x{i}") for i in range(8)]
        chain = pis[0]
        for p in pis[1:]:
            chain = deep.and_(chain, p)
        deep.add_po(chain, "f")
        assert map_mig(deep).delay() > map_mig(shallow).delay()

    def test_power_depends_on_input_probabilities(self):
        mig = build_benchmark("count", Mig)
        netlist = map_mig(mig)
        active = netlist.power({name: 0.5 for name in netlist.pi_names})
        quiet = netlist.power({name: 0.999 for name in netlist.pi_names})
        assert quiet < active

    def test_cell_histogram_counts_all_instances(self):
        mig = build_benchmark("misex3", Mig)
        netlist = map_mig(mig)
        assert sum(netlist.cell_histogram().values()) == netlist.num_cells
