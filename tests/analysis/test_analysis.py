"""Tests for activity / probability analysis and the metrics helpers."""

import pytest

from repro.analysis import (
    NetworkMetrics,
    estimate_activity_by_simulation,
    geometric_improvement,
    measure_aig,
    measure_mig,
    node_switching_activities,
    signal_probabilities,
    total_switching_activity,
)
from repro.core import Mig, random_aoig_mig
from repro.core.signal import node_of
from repro.network import mig_to_aig


class TestProbabilities:
    def test_and_or_probabilities(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f_and = mig.and_(a, b)
        f_or = mig.or_(a, b)
        mig.add_po(f_and, "and")
        mig.add_po(f_or, "or")
        probs = signal_probabilities(mig)
        assert probs[node_of(f_and)] == pytest.approx(0.25)
        assert probs[node_of(f_or)] == pytest.approx(0.75)

    def test_majority_probability(self):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        m = mig.maj(a, b, c)
        mig.add_po(m, "m")
        probs = signal_probabilities(mig)
        assert probs[node_of(m)] == pytest.approx(0.5)

    def test_biased_inputs(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        f = mig.and_(a, b)
        mig.add_po(f, "f")
        probs = signal_probabilities(mig, {"a": 0.1, "b": 0.1})
        assert probs[node_of(f)] == pytest.approx(0.01)

    def test_invalid_probability(self):
        mig = Mig()
        a = mig.add_pi("a")
        mig.add_po(a, "f")
        with pytest.raises(ValueError):
            signal_probabilities(mig, {"a": -0.2})


class TestActivity:
    def test_total_activity_matches_per_node_sum(self):
        mig = random_aoig_mig(7, 30, num_pos=4, seed=5)
        per_node = node_switching_activities(mig)
        assert total_switching_activity(mig) == pytest.approx(sum(per_node.values()))

    def test_analytic_close_to_simulation(self):
        mig = random_aoig_mig(8, 40, num_pos=5, seed=8)
        analytic = total_switching_activity(mig)
        simulated = estimate_activity_by_simulation(mig, num_vectors=4096, seed=3)
        # Reconvergence breaks exact agreement, but both models must agree on
        # the order of magnitude (within 25% on these random networks).
        assert simulated == pytest.approx(analytic, rel=0.25)

    def test_constant_inputs_kill_activity(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.and_(a, b), "f")
        assert total_switching_activity(mig, {"a": 1.0, "b": 0.0}) == pytest.approx(0.0)


class TestMetrics:
    def test_measure_mig_and_aig(self):
        mig = random_aoig_mig(7, 30, num_pos=4, seed=2)
        aig = mig_to_aig(mig)
        m = measure_mig(mig, runtime_s=1.5)
        a = measure_aig(aig)
        assert m.size == mig.num_gates
        assert m.depth == mig.depth()
        assert m.runtime_s == 1.5
        assert a.size == aig.num_gates
        assert m.figure_of_merit == pytest.approx(m.size * m.depth * m.activity)
        assert len(m.as_row()) == 6

    def test_geometric_improvement(self):
        assert geometric_improvement(100.0, 80.0) == pytest.approx(20.0)
        assert geometric_improvement(100.0, 120.0) == pytest.approx(-20.0)
        assert geometric_improvement(0.0, 10.0) == 0.0
