"""Integration tests for the experiment flows (MIGhty, baselines, synthesis)."""

import pytest

from repro.bench_circuits import build_benchmark
from repro.core import Mig
from repro.flows import (
    compare_optimization,
    compare_synthesis,
    format_optimization_table,
    format_synthesis_table,
    mighty_optimize,
    optimization_space_points,
    run_bdd_optimization,
    summarize_optimization,
    summarize_synthesis,
    synthesis_space_points,
)
from repro.verify import check_equivalence

SMALL = ["alu4", "my_adder", "count"]


class TestMightyFlow:
    @pytest.mark.parametrize("name", SMALL)
    def test_flow_preserves_function(self, name):
        mig = build_benchmark(name, Mig)
        reference = build_benchmark(name, Mig)
        result = mighty_optimize(mig, rounds=1, depth_effort=1)
        assert check_equivalence(mig, reference, num_random_vectors=1024).equivalent
        assert result.final_depth == mig.depth()
        assert result.final_size == mig.num_gates

    def test_flow_never_deepens(self):
        for name in SMALL:
            mig = build_benchmark(name, Mig)
            before = mig.depth()
            mighty_optimize(mig, rounds=1, depth_effort=1)
            assert mig.depth() <= before

    @pytest.mark.parametrize("name", SMALL)
    def test_boolean_rewrite_never_worse_than_algebraic(self, name):
        """mighty + cut rewriting dominates the purely algebraic flow."""
        algebraic = build_benchmark(name, Mig)
        mighty_optimize(algebraic, rounds=1, depth_effort=1, boolean_rewrite=False)
        combined = build_benchmark(name, Mig)
        reference = build_benchmark(name, Mig)
        result = mighty_optimize(
            combined, rounds=1, depth_effort=1, boolean_rewrite=True
        )
        assert check_equivalence(combined, reference, num_random_vectors=1024).equivalent
        assert combined.depth() <= algebraic.depth()
        assert combined.num_gates <= algebraic.num_gates
        assert "mig_rewrite" in [m.name for m in result.pass_metrics]


class TestOptimizationExperiment:
    def test_compare_optimization_row(self):
        row = compare_optimization("alu4", rounds=1, depth_effort=1)
        assert row.mig.size > 0 and row.aig.size > 0
        assert row.bdd is not None
        assert row.mig.depth <= row.bdd.depth

    def test_bdd_flow_skips_very_wide_networks(self):
        mig = build_benchmark("s38417", Mig)
        assert run_bdd_optimization(mig) is None

    def test_summary_and_table_formatting(self):
        rows = [
            compare_optimization(name, rounds=1, depth_effort=1) for name in SMALL
        ]
        summary = summarize_optimization(rows)
        assert summary.avg_depth["MIG"] > 0
        table = format_optimization_table(rows)
        assert "Average" in table and "MIG depth vs AIG" in table
        points = optimization_space_points(rows)
        assert set(points) == {"MIG", "AIG", "BDD"}


class TestSynthesisExperiment:
    def test_compare_synthesis_row(self):
        row = compare_synthesis("alu4", rounds=1, depth_effort=1)
        for metrics in (row.mig, row.aig, row.cst):
            assert metrics.area_um2 > 0
            assert metrics.delay_ns > 0
            assert metrics.power_uw > 0

    def test_summary_and_table_formatting(self):
        rows = [compare_synthesis(name, rounds=1, depth_effort=1) for name in SMALL]
        summary = summarize_synthesis(rows)
        assert summary.avg_delay["MIG"] > 0
        table = format_synthesis_table(rows)
        assert "Average" in table and "MIG vs best counterpart" in table
        points = synthesis_space_points(rows)
        assert set(points) == {"MIG", "AIG", "CST"}

    def test_mig_flow_wins_delay_on_adder(self):
        row = compare_synthesis("my_adder", rounds=1, depth_effort=1)
        # The paper's flagship datapath result: the MIG flow yields the
        # fastest mapped netlist on the adder benchmark.
        assert row.mig.delay_ns <= row.aig.delay_ns
        assert row.mig.delay_ns <= row.cst.delay_ns
