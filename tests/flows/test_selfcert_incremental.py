"""End-to-end self-certification with the incremental cut engine active.

Fuzzed MIGs run through ``mighty_optimize(boolean_rewrite=True,
verify=True)``: every top-level pass — including the ``mig_rewrite``
sweeps that now enumerate cuts through the shared incremental
:class:`~repro.network.cuts.CutManager` — is equivalence-checked against
its input network by the verify dispatch (exhaustive simulation at small
widths, simulation-guided SAT sweeping above 16 inputs).  A
non-function-preserving pass raises ``PassVerificationError``, so a green
run *is* the certificate.
"""

import pytest

from repro.flows import mighty_optimize


def _assert_certified(result, expect_rewrite_counters):
    verified = [m for m in result.pass_metrics if "verify" in m.details]
    assert verified, "verify=True must annotate pass metrics"
    assert all(m.details["verify"]["equivalent"] for m in verified)
    if expect_rewrite_counters:
        rewrite_metrics = [m for m in result.pass_metrics if m.name == "mig_rewrite"]
        assert rewrite_metrics, "boolean_rewrite=True must run mig_rewrite passes"
        # The incremental engine's reuse counters must surface through the
        # flow metrics.  (Whether a given sweep actually reuses anything
        # depends on how much the interleaved algebraic passes restructured
        # — a Balance that adopts its rebuilt candidate resets the cache —
        # so reuse *amounts* are asserted by the dedicated property tests,
        # not here.)
        for m in rewrite_metrics:
            details = m.details
            assert "cut_nodes_recomputed" in details and "cut_nodes_reused" in details
            assert "converged_skip" in details


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_mighty_selfcert_small_width(network_forge, seed):
    """<=16 inputs: per-pass certification via exhaustive simulation."""
    mig = network_forge(
        kind="mig", gate_mix="mixed", num_pis=8, num_gates=80, num_pos=6, seed=seed
    )
    result = mighty_optimize(mig, rounds=2, boolean_rewrite=True, verify=True)
    _assert_certified(result, expect_rewrite_counters=True)


def test_mighty_selfcert_sat_sweep_width(network_forge):
    """>16 inputs: per-pass certification must go through SAT sweeping."""
    mig = network_forge(
        kind="mig", gate_mix="aoig", num_pis=18, num_gates=120, num_pos=6, seed=7
    )
    result = mighty_optimize(mig, rounds=1, boolean_rewrite=True, verify=True)
    _assert_certified(result, expect_rewrite_counters=True)
    methods = {
        m.details["verify"]["method"]
        for m in result.pass_metrics
        if "verify" in m.details
    }
    assert any("sat" in method for method in methods), methods


def test_mutant_network_is_caught_by_selfcert(network_forge, mutant_forge):
    """Sanity of the certificate itself: a broken 'pass' must be refuted."""
    from repro.flows.engine import FunctionPass, PassVerificationError, Pipeline
    from repro.verify import check_equivalence

    mig = network_forge(kind="mig", num_pis=7, num_gates=50, num_pos=4, seed=9)

    def broken_pass(network):
        mutant, _ = mutant_forge(network, seed=13)
        if check_equivalence(network, mutant).equivalent:  # rare masked fault
            pytest.skip("mutation was functionally masked; seed draw unlucky")
        network.assign_from(mutant)

    pipeline = Pipeline([FunctionPass("broken", broken_pass)], verify=True)
    with pytest.raises(PassVerificationError):
        pipeline.run(mig)
