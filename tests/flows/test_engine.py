"""Tests for the pass-manager flow engine."""

import json

import pytest

from repro.bench_circuits import build_benchmark
from repro.core.mig import Mig
from repro.core.signal import negate
from repro.flows import (
    Balance,
    Cleanup,
    DepthOpt,
    Eliminate,
    FunctionPass,
    PassMetrics,
    PassVerificationError,
    Pipeline,
    Repeat,
    SizeOpt,
    format_pass_metrics,
    mighty_optimize,
    mighty_pipeline,
    pass_metrics_to_json,
)
from repro.verify import check_equivalence


def small_mig(name="alu4"):
    return build_benchmark(name, Mig)


class TestPipeline:
    def test_passes_run_in_order_with_metrics(self):
        mig = small_mig()
        result = Pipeline([Balance(), Eliminate(), Cleanup()], name="demo").run(mig)
        assert result.name == "demo"
        assert result.pass_names() == ["balance", "eliminate", "cleanup"]
        # Balance accepts only (depth, size)-lexicographic improvements and
        # the other passes never deepen, so depth is monotone here.
        assert result.final_depth <= result.initial_depth
        for metrics in result.passes:
            assert metrics.runtime_s >= 0.0
            assert metrics.size_after >= 0
        # Metrics chain: each pass starts where the previous one ended.
        for prev, cur in zip(result.passes, result.passes[1:]):
            assert cur.size_before == prev.size_after
            assert cur.depth_before == prev.depth_after

    def test_pipeline_preserves_function(self):
        mig = small_mig()
        reference = small_mig()
        Pipeline([Balance(), DepthOpt(effort=1), SizeOpt(effort=1), Eliminate()]).run(mig)
        assert check_equivalence(mig, reference, num_random_vectors=512).equivalent

    def test_function_pass(self):
        mig = small_mig()
        seen = []
        result = Pipeline(
            [FunctionPass("probe", lambda net: seen.append(net.num_gates))]
        ).run(mig)
        assert seen == [mig.num_gates]
        assert result.pass_names() == ["probe"]

    def test_measure_activity_opt_in(self):
        mig = small_mig("count")
        result = Pipeline([Eliminate()], measure_activity=True).run(mig)
        assert result.passes[0].activity_before is not None
        assert result.passes[0].activity_after is not None
        # Without the flag the engine skips the (expensive) measurement.
        result = Pipeline([Eliminate()]).run(small_mig("count"))
        assert result.passes[0].activity_before is None


class TestRepeat:
    def test_repeat_stops_when_no_improvement(self):
        mig = small_mig()
        result = Pipeline(
            [Repeat([Eliminate()], rounds=10, name="rounds")]
        ).run(mig)
        summary = result.passes[-1]
        assert summary.name == "rounds"
        # Elimination converges long before ten rounds.
        assert summary.details["rounds"] < 10

    def test_repeat_metrics_are_flattened(self):
        mig = small_mig()
        result = Pipeline([Repeat([Eliminate(), Cleanup()], rounds=1)]).run(mig)
        names = result.pass_names()
        assert names[:2] == ["eliminate", "cleanup"]
        assert names[-1] == "repeat"


class TestVerifyHook:
    def test_passes_self_certify(self):
        mig = small_mig()
        result = Pipeline(
            [Balance(), Eliminate()], name="certified", verify=True
        ).run(mig)
        for metrics in result.passes:
            verdict = metrics.details["verify"]
            assert verdict["equivalent"] is True
            assert verdict["method"] in ("exhaustive", "sat-sweep")

    def test_broken_pass_raises(self):
        def corrupt(net):
            net.set_po(0, negate(net.po_signals()[0]))

        mig = small_mig()
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline([FunctionPass("corrupt", corrupt)], verify=True).run(mig)
        assert excinfo.value.pass_name == "corrupt"
        assert excinfo.value.result.counterexample is not None

    def test_custom_verifier_callable(self):
        calls = []

        def checker(reference, network):
            calls.append((reference.num_gates, network.num_gates))
            return check_equivalence(reference, network, method="exhaustive")

        mig = small_mig()
        result = Pipeline([Eliminate()], verify=checker).run(mig)
        assert len(calls) == 1
        assert result.passes[0].details["verify"]["method"] == "exhaustive"

    def test_uncertified_verifier_verdict_is_rejected(self):
        """A verifier that can only say "random simulation found nothing"
        has not certified the pass — the pipeline must refuse to continue,
        exactly like a proven mismatch."""

        def checker(reference, network):
            return check_equivalence(reference, network, method="random")

        mig = small_mig()
        with pytest.raises(PassVerificationError) as excinfo:
            Pipeline([Eliminate()], verify=checker).run(mig)
        assert "NOT be certified" in str(excinfo.value)
        assert excinfo.value.result.equivalent is True

    def test_composite_passes_are_verified_as_a_unit(self):
        mig = small_mig()
        result = Pipeline(
            [Repeat([Eliminate()], rounds=2, name="rounds")], verify=True
        ).run(mig)
        summary = result.passes[-1]
        assert summary.name == "rounds"
        assert summary.details["verify"]["equivalent"] is True
        # Inner passes of the composite carry no verdict of their own.
        assert all("verify" not in m.details for m in result.passes[:-1])

    def test_mighty_self_certifies(self):
        mig = small_mig("count")
        result = mighty_optimize(mig, rounds=1, depth_effort=1, verify=True)
        verified = [
            m.details["verify"]
            for m in result.pass_metrics
            if "verify" in m.details
        ]
        assert verified, "verify= must annotate the top-level passes"
        assert all(v["equivalent"] for v in verified)


class TestBalanceAcceptance:
    def test_tie_is_rejected(self):
        """A balanced candidate that merely ties must not replace the network."""
        mig = small_mig()
        # Balance to a fixpoint first.
        Pipeline([Balance()]).run(mig)
        result = Pipeline([Balance()]).run(mig)
        assert result.passes[0].details == {"accepted": False}

    def test_improvement_is_accepted(self):
        mig = build_benchmark("my_adder", Mig)
        result = Pipeline([Balance()]).run(mig)
        metrics = result.passes[0]
        if metrics.details["accepted"]:
            assert (metrics.depth_after, metrics.size_after) < (
                metrics.depth_before,
                metrics.size_before,
            )


class TestMightyPipeline:
    def test_mighty_is_declarative(self):
        pipeline = mighty_pipeline(rounds=1, depth_effort=1)
        assert pipeline.name == "mighty"
        assert [p.name for p in pipeline.passes] == ["balance", "mighty_round"]

    def test_mighty_reports_pass_metrics(self):
        mig = small_mig()
        result = mighty_optimize(mig, rounds=1, depth_effort=1)
        names = [m.name for m in result.pass_metrics]
        assert names[0] == "balance"
        assert "depth_opt" in names and "size_opt" in names
        assert result.final_size == mig.num_gates
        assert result.final_depth == mig.depth()


class TestSerialisation:
    def _trace(self):
        mig = small_mig()
        return mighty_optimize(mig, rounds=1, depth_effort=1).pass_metrics

    def test_format_pass_metrics(self):
        table = format_pass_metrics(self._trace(), title="alu4 / MIGhty")
        assert "alu4 / MIGhty" in table
        assert "depth_opt" in table and "balance" in table

    def test_pass_metrics_to_json_roundtrip(self):
        trace = self._trace()
        records = json.loads(pass_metrics_to_json(trace, flow="MIG"))
        assert len(records) == len(trace)
        assert all(r["flow"] == "MIG" for r in records)
        assert records[0]["pass"] == "balance"
        assert {"size_before", "size_after", "depth_before", "depth_after", "runtime_s"} <= set(records[0])

    def test_pass_metrics_dataclass_helpers(self):
        metrics = PassMetrics(
            name="demo",
            size_before=10,
            size_after=8,
            depth_before=4,
            depth_after=3,
            runtime_s=0.1,
        )
        assert metrics.size_delta == -2
        assert metrics.depth_delta == -1
        assert metrics.as_dict()["pass"] == "demo"
