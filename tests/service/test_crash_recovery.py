"""Crash-recovery battery for the optimization daemon.

A "crash" here is a persisted-state snapshot: the daemon writes every
transition through :class:`repro.parallel.corpus.RowChannel`, so killing
it at any point is equivalent to simply *not* making the writes that
would have come next.  Each test arranges the on-disk state a kill
would leave behind, constructs a fresh :class:`OptimizationService`
over the same directory, and asserts the recovery contract: queued
jobs survive, in-flight jobs re-queue, ``done``-without-result jobs
re-queue, completed rows never re-run, and torn files never crash the
daemon.
"""

import time

import pytest

from repro.service import JobStatus, OptimizationService, result_cache_key
from repro.service.daemon import JOBS_SUITE, RESULTS_SUITE


def _corpus(forge, n=2, num_gates=12):
    return [
        forge(kind="mig", seed=seed + 1, num_gates=num_gates, num_pis=4)
        for seed in range(n)
    ]


class TestRestartRecovery:
    def test_queued_jobs_survive_restart(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        job_ids = service.submit_many(_corpus(network_forge, 2))
        del service  # daemon killed before any drain cycle

        revived = OptimizationService(tmp_path)
        assert [job.job_id for job in revived.queued_jobs()] == job_ids
        summary = revived.run_pending(workers=1)
        assert summary["done"] == 2 and summary["failed"] == 0
        for job_id in job_ids:
            assert revived.result(job_id).status == JobStatus.DONE

    def test_running_jobs_requeued_on_restart(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        job_ids = service.submit_many(_corpus(network_forge, 2))
        # Simulate a kill mid-drain: the first job was marked running
        # (attempts bumped) but its worker never reported back.
        job = service.job(job_ids[0])
        job.status = JobStatus.RUNNING
        job.started_at = time.time()
        job.attempts = 1
        service.rows.write(JOBS_SUITE, job.job_id, job.to_row())
        del service

        revived = OptimizationService(tmp_path)
        assert revived.recovered_running == 1
        recovered = revived.job(job_ids[0])
        assert recovered.status == JobStatus.QUEUED
        assert recovered.started_at is None
        assert recovered.attempts == 1  # the lost run stays on the record
        summary = revived.run_pending(workers=1)
        assert summary["done"] == 2
        assert revived.job(job_ids[0]).attempts == 2

    def test_done_without_result_is_requeued(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        job_ids = service.submit_many(_corpus(network_forge, 2))
        assert service.run_pending(workers=1)["done"] == 2
        baseline = service.result(job_ids[0]).result_fingerprint
        # Simulate the torn half of a crash: the job row says done but
        # the result row never landed.
        service.rows.delete(RESULTS_SUITE, job_ids[0])
        del service

        revived = OptimizationService(tmp_path)
        assert revived.recovered_missing_result == 1
        assert revived.job(job_ids[0]).status == JobStatus.QUEUED
        assert revived.job(job_ids[1]).status == JobStatus.DONE
        summary = revived.run_pending(workers=1)
        # Only the unsubstantiated job re-runs; the completed row stands.
        assert summary["ran"] == 1 and summary["done"] == 1
        assert revived.optimizer_invocations == 1
        assert revived.result(job_ids[0]).result_fingerprint == baseline

    def test_completed_rows_never_rerun(self, tmp_path, monkeypatch, network_forge):
        corpus = _corpus(network_forge, 2)
        service = OptimizationService(tmp_path)
        job_ids = service.submit_many(corpus)
        assert service.run_pending(workers=1)["done"] == 2
        fingerprints = [service.result(j).result_fingerprint for j in job_ids]
        del service

        # From here on any optimization pass is a contract violation.
        def _boom(*args, **kwargs):
            raise AssertionError("optimizer invoked for completed/cached work")

        monkeypatch.setattr("repro.flows.mighty.mighty_optimize", _boom)

        revived = OptimizationService(tmp_path)
        assert revived.run_pending(workers=1)["ran"] == 0
        # Resubmitting the same circuits completes at submit time from
        # the persistent result cache.
        new_ids = revived.submit_many(corpus)
        assert not revived.queued_jobs()
        for new_id, fingerprint in zip(new_ids, fingerprints):
            result = revived.result(new_id)
            assert result.cached is True
            assert result.result_fingerprint == fingerprint
        assert revived.optimizer_invocations == 0


class TestTornFiles:
    def test_torn_rows_are_tolerated(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        job_id = service.submit(_corpus(network_forge, 1)[0])
        jobs_dir = service.rows._suite_dir(JOBS_SUITE)
        results_dir = service.rows._suite_dir(RESULTS_SUITE)
        results_dir.mkdir(parents=True, exist_ok=True)
        (jobs_dir / "torn.json").write_text('{"job_id": "jXXXXXX", "st')
        (jobs_dir / "empty.json").write_text("")
        (jobs_dir / "foreign.json").write_text("[1, 2, 3]")
        (results_dir / "torn.json").write_text('{"job_id":')
        del service

        revived = OptimizationService(tmp_path)
        status = revived.status()
        assert status["jobs"] == 1  # torn rows are not jobs
        assert revived.run_pending(workers=1)["done"] == 1
        assert revived.result(job_id).status == JobStatus.DONE

    def test_torn_cache_entry_degrades_to_miss(self, tmp_path, network_forge):
        network = _corpus(network_forge, 1)[0]
        service = OptimizationService(tmp_path)
        key = result_cache_key(network, "mighty")
        cache_path = service.cache.path_for(key)
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        cache_path.write_text('{"key": "' + key)  # torn mid-write
        job_id = service.submit(network, flow="mighty")
        # The torn entry must read as a miss, so the job really runs.
        assert service.job(job_id).status == JobStatus.QUEUED
        assert service.run_pending(workers=1)["done"] == 1
        assert service.optimizer_invocations == 1
        # ... and the entry is rewritten whole: resubmission now hits.
        resubmitted = service.submit(network, flow="mighty")
        assert service.result(resubmitted).cached is True


class TestLifecycleEdges:
    def test_expired_jobs_never_run(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        job_id = service.submit(_corpus(network_forge, 1)[0], deadline_s=1e-6)
        time.sleep(0.01)
        summary = service.run_pending(workers=1)
        assert summary["expired"] == 1 and summary["ran"] == 0
        job = service.job(job_id)
        assert job.status == JobStatus.EXPIRED
        assert "deadline" in job.error
        with pytest.raises(KeyError):
            service.result(job_id)
        assert service.optimizer_invocations == 0

    def test_failed_job_does_not_poison_the_drain(self, tmp_path, network_forge):
        service = OptimizationService(tmp_path)
        good, poisoned = _corpus(network_forge, 2)
        good_id = service.submit(good, flow="mighty")
        bad_id = service.submit(
            poisoned, flow="mighty", flow_options={"rounds": "boom"}
        )
        summary = service.run_pending(workers=1)
        assert summary["done"] == 1 and summary["failed"] == 1
        assert service.result(good_id).status == JobStatus.DONE
        failed = service.result(bad_id)
        assert failed.status == JobStatus.FAILED
        assert failed.error and failed.network is None
        # Failures are never cached: resubmitting re-queues for real.
        retry_id = service.submit(poisoned, flow="mighty", flow_options={"rounds": "boom"})
        assert service.job(retry_id).status == JobStatus.QUEUED
