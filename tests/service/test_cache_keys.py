"""Property battery for the service cache-key contract.

The contract (see :mod:`repro.service`): the content address
``result_cache_key(network, flow, options)`` must be *stable* across
node renamings — structurally identical networks built in different
orders hit the same entry — and *sound* across everything else: network
kind, PI arity, PI/PO names and order, complement bits, gate structure
and sharing, and every flow option must separate keys.  A collision
here would silently serve one circuit's optimization result for a
different circuit, so the fuzz lanes are deliberately adversarial.
"""

import pytest

from repro.aig.aig import Aig
from repro.core import Mig
from repro.core.generation import rebuild_shuffled
from repro.parallel.corpus import canonical_fingerprint, structural_fingerprint
from repro.service import canonical_flow_config, result_cache_key
from repro.verify import check_equivalence

KINDS = ("mig", "aig")


# --------------------------------------------------------------------- #
# Stability: same structure, different ids -> same key
# --------------------------------------------------------------------- #
class TestCanonicalStability:
    def test_shuffled_rebuild_hits_same_key(self, network_forge):
        """Node ids / construction order never split the cache."""
        ids_differed = 0
        for kind in KINDS:
            for mix in ("aoig", "mixed"):
                for seed in range(4):
                    net = network_forge(
                        kind=kind, gate_mix=mix, seed=seed + 1, num_gates=40
                    )
                    shuffled = rebuild_shuffled(net, seed=seed + 101)
                    assert canonical_fingerprint(shuffled) == canonical_fingerprint(
                        net
                    ), (kind, mix, seed)
                    assert result_cache_key(shuffled, "mighty") == result_cache_key(
                        net, "mighty"
                    )
                    if structural_fingerprint(shuffled) != structural_fingerprint(net):
                        ids_differed += 1
        # The property is vacuous if every rebuild kept the original ids.
        assert ids_differed >= 8

    def test_rebuilt_networks_stay_equivalent(self, network_forge):
        """The rebuild helper itself must not change logic."""
        for kind in KINDS:
            net = network_forge(kind=kind, gate_mix="mixed", seed=5, num_gates=35)
            shuffled = rebuild_shuffled(net, seed=77)
            assert check_equivalence(net, shuffled).equivalent

    def test_fingerprint_is_deterministic(self, network_forge):
        net = network_forge(kind="mig", seed=3, num_gates=30)
        assert canonical_fingerprint(net) == canonical_fingerprint(net)
        assert result_cache_key(net, "mighty", {"rounds": 2}) == result_cache_key(
            net, "mighty", {"rounds": 2}
        )


# --------------------------------------------------------------------- #
# Soundness: anything semantically different -> different key
# --------------------------------------------------------------------- #
def _passthrough(cls, num_pis: int):
    net = cls()
    sigs = [net.add_pi(f"x{i}") for i in range(num_pis)]
    net.add_po(sigs[0], "y0")
    return net


class TestKeySoundness:
    def test_network_kind_never_collides(self):
        """A MIG and an AIG with identical shape must key apart."""
        mig = _passthrough(Mig, 3)
        aig = _passthrough(Aig, 3)
        assert canonical_fingerprint(mig) != canonical_fingerprint(aig)
        assert result_cache_key(mig, "mighty") != result_cache_key(aig, "mighty")

    def test_pi_arity_covered_even_when_unreferenced(self):
        """An extra dangling PI is a different interface, so a new key."""
        assert canonical_fingerprint(_passthrough(Mig, 3)) != canonical_fingerprint(
            _passthrough(Mig, 4)
        )

    def test_pi_and_po_names_covered(self):
        a = _passthrough(Mig, 3)
        b = Mig()
        sigs = [b.add_pi(f"z{i}") for i in range(3)]
        b.add_po(sigs[0], "y0")
        assert canonical_fingerprint(a) != canonical_fingerprint(b)
        c = Mig()
        sigs = [c.add_pi(f"x{i}") for i in range(3)]
        c.add_po(sigs[0], "renamed")
        assert canonical_fingerprint(a) != canonical_fingerprint(c)

    def test_po_order_and_polarity_covered(self):
        def build(order_swap: bool, negate_first: bool):
            net = Mig()
            a, b, c = (net.add_pi(n) for n in "abc")
            t = net.maj(a, b, c)
            first = net.not_(t) if negate_first else t
            pos = [(first, "y0"), (a, "y1")]
            if order_swap:
                pos = [(pos[1][0], "y0"), (pos[0][0], "y1")]
            for sig, name in pos:
                net.add_po(sig, name)
            return net

        base = build(False, False)
        assert canonical_fingerprint(base) != canonical_fingerprint(build(True, False))
        assert canonical_fingerprint(base) != canonical_fingerprint(build(False, True))

    def test_sharing_pattern_covered(self):
        """A shared cone and a structurally different cone key apart."""

        def with_sharing():
            net = Mig()
            a, b, c, d = (net.add_pi(n) for n in "abcd")
            t = net.maj(a, b, c)
            net.add_po(net.maj(t, c, d), "y0")
            net.add_po(net.maj(t, a, d), "y1")
            return net

        def without_sharing():
            net = Mig()
            a, b, c, d = (net.add_pi(n) for n in "abcd")
            net.add_po(net.maj(net.maj(a, b, c), c, d), "y0")
            net.add_po(net.maj(net.maj(a, b, d), a, d), "y1")
            return net

        assert canonical_fingerprint(with_sharing()) != canonical_fingerprint(
            without_sharing()
        )

    def test_flow_and_options_never_collide(self, network_forge):
        net = network_forge(kind="mig", seed=2, num_gates=25)
        keys = {
            result_cache_key(net, "mighty"),
            result_cache_key(net, "mighty", {"rounds": 2}),
            result_cache_key(net, "mighty", {"rounds": 2, "depth_effort": 1}),
            result_cache_key(net, "mighty", {"boolean_rewrite": False}),
            result_cache_key(net, "large"),
            result_cache_key(net, "large", {"max_window_gates": 100}),
        }
        assert len(keys) == 6

    def test_collision_fuzz_across_corpus(self, network_forge):
        """Distinct structures across a varied corpus never share a key."""
        nets = []
        for kind in KINDS:
            for seed in range(5):
                nets.append(
                    network_forge(
                        kind=kind,
                        gate_mix=("aoig", "maj", "mixed")[seed % 3],
                        num_pis=4 + seed % 3,
                        num_gates=15 + 7 * seed,
                        seed=seed + 1,
                    )
                )
        by_key = {}
        for net in nets:
            for options in (None, {"rounds": 2}):
                key = result_cache_key(net, "mighty", options)
                if key in by_key:
                    other_net, other_options = by_key[key]
                    assert other_options == options
                    assert canonical_fingerprint(other_net) == canonical_fingerprint(
                        net
                    ), "cache-key collision between distinct structures"
                by_key[key] = (net, options)
        assert len(by_key) == len(nets) * 2


# --------------------------------------------------------------------- #
# Pipeline / multi-sweep knobs participate in the key
# --------------------------------------------------------------------- #
class TestLargeFlowKnobKeys:
    def test_sweeps_and_pipeline_knobs_split_keys(self, network_forge):
        """A ``sweeps=2`` request must never resolve from a ``sweeps=1``
        cache entry (different computation), and the pipeline/lookahead
        knobs key apart too — the key is syntactic over the flow config."""
        net = network_forge(kind="mig", seed=2, num_gates=25)
        keys = {
            result_cache_key(net, "large"),
            result_cache_key(net, "large", {"sweeps": 1}),
            result_cache_key(net, "large", {"sweeps": 2}),
            result_cache_key(net, "large", {"sweeps": 2, "pipeline": False}),
            result_cache_key(net, "large", {"pipeline": False}),
            result_cache_key(net, "large", {"lookahead": 4}),
        }
        assert len(keys) == 6

    def test_submit_forwards_sweep_knobs_into_cache_key(
        self, network_forge, tmp_path
    ):
        """The service path: ``service_optimize_large(..., sweeps=N)``
        lands ``sweeps`` in the job's flow options, and the stored
        ``cache_key`` is exactly ``result_cache_key`` over them."""
        from repro.service import OptimizationService

        net = network_forge(kind="mig", seed=2, num_gates=25)
        service = OptimizationService(tmp_path / "svc")
        options = {"sweeps": 2, "pipeline": False, "max_window_gates": 50}
        job_id = service.submit(net, flow="large", flow_options=options)
        job = service.job(job_id)
        assert job.flow_options == options
        assert job.cache_key == result_cache_key(net, "large", options)
        assert job.cache_key != result_cache_key(
            net, "large", {**options, "sweeps": 1}
        )


# --------------------------------------------------------------------- #
# Flow-config canonicalization
# --------------------------------------------------------------------- #
class TestFlowConfig:
    def test_dict_order_is_normalized(self):
        assert canonical_flow_config(
            "mighty", {"rounds": 2, "depth_effort": 1}
        ) == canonical_flow_config("mighty", {"depth_effort": 1, "rounds": 2})

    def test_value_and_flow_sensitivity(self):
        assert canonical_flow_config("mighty", {"rounds": 1}) != canonical_flow_config(
            "mighty", {"rounds": 2}
        )
        assert canonical_flow_config("mighty") != canonical_flow_config("resyn2")

    def test_non_json_options_rejected(self):
        with pytest.raises(ValueError):
            canonical_flow_config("mighty", {"hook": object()})
