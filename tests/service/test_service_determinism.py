"""Service-vs-batch determinism battery.

The contract under test (see :mod:`repro.service`): routing a corpus
through the daemon — submit, drain at any worker count, read results
back through the persistence layer — returns networks **bit-identical**
(node ids, fanins, primary outputs, hence structural fingerprints) to
calling :func:`repro.flows.optimize_many` directly, and the cached
resubmission path returns those same bits without any optimization
pass running.
"""

import pytest

from repro.core.generation import rebuild_shuffled
from repro.flows import (
    optimize_large,
    optimize_many,
    service_optimize_large,
    service_optimize_many,
)
from repro.parallel.corpus import structural_fingerprint
from repro.service import JobStatus, OptimizationService

WORKER_COUNTS = (1, 2, 4)


def _corpus(forge):
    """A small mixed MIG/AIG corpus with uneven sizes (exercises LPT)."""
    return [
        forge(kind="mig", gate_mix="aoig", seed=11, num_gates=30, num_pis=5),
        forge(kind="aig", gate_mix="aoig", seed=12, num_gates=35, num_pis=5),
        forge(kind="mig", gate_mix="mixed", seed=13, num_gates=22, num_pis=4),
        forge(kind="aig", gate_mix="mixed", seed=14, num_gates=27, num_pis=6),
    ]


def _assert_items_bit_identical(items, reference_items):
    assert len(items) == len(reference_items)
    for item, reference in zip(items, reference_items):
        assert structural_fingerprint(item.network) == structural_fingerprint(
            reference.network
        ), item.name
        assert item.initial_size == reference.initial_size
        assert item.final_size == reference.final_size
        assert item.initial_depth == reference.initial_depth
        assert item.final_depth == reference.final_depth


class TestServiceDeterminism:
    def test_bit_identical_to_batch_at_every_worker_count(
        self, tmp_path, network_forge
    ):
        corpus = _corpus(network_forge)
        direct = optimize_many(corpus, workers=1)
        for workers in WORKER_COUNTS:
            service = OptimizationService(tmp_path / f"w{workers}")
            report = service_optimize_many(corpus, workers=workers, service=service)
            _assert_items_bit_identical(report.items, direct.items)
            # Everything really ran (fresh cache): no +cached items.
            assert all(not item.flow.endswith("+cached") for item in report.items)
            assert service.optimizer_invocations == len(corpus)

    def test_cached_resubmission_is_bit_identical_and_pass_free(
        self, tmp_path, network_forge, monkeypatch
    ):
        corpus = _corpus(network_forge)
        direct = optimize_many(corpus, workers=1)
        service = OptimizationService(tmp_path)
        first = service_optimize_many(corpus, workers=2, service=service)
        _assert_items_bit_identical(first.items, direct.items)

        # Any further optimization pass is a contract violation.
        def _boom(*args, **kwargs):
            raise AssertionError("optimizer invoked on the cached path")

        monkeypatch.setattr("repro.flows.mighty.mighty_optimize", _boom)
        monkeypatch.setattr("repro.aig.resyn.resyn2", _boom)

        invocations = service.optimizer_invocations
        again = service_optimize_many(corpus, workers=1, service=service)
        _assert_items_bit_identical(again.items, direct.items)
        assert all(item.flow.endswith("+cached") for item in again.items)
        assert service.optimizer_invocations == invocations

    def test_shuffled_rebuilds_hit_the_cache(self, tmp_path, network_forge):
        """Same structure under fresh node ids resolves from the cache."""
        corpus = _corpus(network_forge)
        service = OptimizationService(tmp_path)
        job_ids = service.submit_many(corpus)
        service.run_pending(workers=2)
        fingerprints = [service.result(j).result_fingerprint for j in job_ids]

        shuffled = [rebuild_shuffled(net, seed=31 + i) for i, net in enumerate(corpus)]
        new_ids = service.submit_many(shuffled)
        assert not service.queued_jobs()  # all completed at submit time
        for new_id, fingerprint in zip(new_ids, fingerprints):
            result = service.result(new_id)
            assert result.status == JobStatus.DONE and result.cached is True
            # Bit-identical to the *original* run, ids and all: the cache
            # returns the stored network, not a re-derived one.
            assert result.result_fingerprint == fingerprint
            assert structural_fingerprint(result.network) == fingerprint

    def test_service_optimize_large_parity(self, tmp_path, network_forge):
        network = network_forge(
            kind="mig", gate_mix="mixed", seed=21, num_gates=60, num_pis=6
        )
        direct = optimize_large(network, workers=1, max_window_gates=25)
        service = OptimizationService(tmp_path)
        for workers in (1, 2):
            result = service_optimize_large(
                network, workers=workers, service=service, max_window_gates=25
            )
            assert structural_fingerprint(result.network) == structural_fingerprint(
                direct.network
            )
            assert result.final_size == direct.final_size
            assert result.final_depth == direct.final_depth
        # One real run, one cache hit (identical submit, identical key).
        assert service.optimizer_invocations == 1

    def test_failed_jobs_surface_as_errors(self, tmp_path, network_forge):
        """The batch wrapper never silently drops a corpus item."""
        corpus = _corpus(network_forge)[:1]
        with pytest.raises(RuntimeError, match="failed"):
            service_optimize_many(
                corpus,
                workers=1,
                flow="mighty",
                state_dir=tmp_path,
                rounds="boom",
            )
