"""Tests for the structural Verilog reader / writers."""

import pytest

from repro.bench_circuits import benchmark_names, build_benchmark
from repro.core import Mig, random_aoig_mig, random_mig
from repro.flows import mighty_optimize
from repro.io import read_verilog, write_mig_verilog, write_netlist_verilog
from repro.mapping import map_mig
from repro.verify import check_equivalence


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mig_verilog_roundtrip(self, seed):
        mig = random_mig(7, 35, num_pos=4, seed=seed)
        text = write_mig_verilog(mig)
        parsed = read_verilog(text)
        assert parsed.pi_names() == mig.pi_names()
        assert parsed.po_names() == mig.po_names()
        assert check_equivalence(mig, parsed).equivalent

    def test_benchmark_roundtrip(self):
        mig = build_benchmark("alu4", Mig)
        parsed = read_verilog(write_mig_verilog(mig))
        assert check_equivalence(mig, parsed).equivalent

    @pytest.mark.parametrize("name", benchmark_names())
    def test_bench_suite_roundtrip_property(self, name):
        """write → read → equivalent, for every circuit of the suite."""
        mig = build_benchmark(name, Mig)
        parsed = read_verilog(write_mig_verilog(mig))
        assert parsed.pi_names() == mig.pi_names()
        assert parsed.po_names() == mig.po_names()
        result = check_equivalence(mig, parsed, num_random_vectors=256)
        assert result.equivalent, (
            f"{name}: round-trip not equivalent "
            f"(output {result.failing_output}, cex {result.counterexample})"
        )

    def test_optimized_network_roundtrip(self):
        """Polarity-normalized (complement-heavy) structures survive too."""
        mig = build_benchmark("count", Mig)
        mighty_optimize(mig, rounds=1, depth_effort=1)
        parsed = read_verilog(write_mig_verilog(mig))
        assert check_equivalence(mig, parsed, num_random_vectors=512).equivalent

    def test_constants_and_inverters(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        mig.add_po(mig.not_(mig.and_(a, mig.constant(True))), "f")
        mig.add_po(mig.or_(b, mig.constant(False)), "g")
        parsed = read_verilog(write_mig_verilog(mig))
        assert check_equivalence(mig, parsed).equivalent


class TestReader:
    def test_reads_handwritten_module(self):
        text = """
        module adder1 (a, b, cin, s, cout);
          input a, b, cin;
          output s, cout;
          wire axb;
          assign axb = a ^ b;
          assign s = axb ^ cin;
          assign cout = (a & b) | (axb & cin);
        endmodule
        """
        mig = read_verilog(text)
        assert mig.pi_names() == ["a", "b", "cin"]
        assert mig.po_names() == ["s", "cout"]
        tts = mig.truth_tables()
        for i in range(8):
            a, b, c = i & 1, (i >> 1) & 1, (i >> 2) & 1
            assert ((tts[0] >> i) & 1) == ((a + b + c) & 1)
            assert ((tts[1] >> i) & 1) == (1 if a + b + c >= 2 else 0)

    @pytest.mark.parametrize(
        "expression",
        [
            "a ^ b & c | d",
            "~a ^ ~b",
            "a | b ^ c & d | ~c",
            "a ^ b ^ c",
            "~(a | b) ^ c & d",
            "a & ~b & c ^ d",
            "a ^ b | c",
            "~a & b ^ c",
        ],
    )
    def test_operator_precedence_matches_verilog(self, expression):
        """``~`` > ``&`` > ``^`` > ``|``, like Verilog (and Python bitwise)."""
        text = (
            "module m (a, b, c, d, y); input a, b, c, d; output y; "
            f"assign y = {expression}; endmodule"
        )
        (table,) = read_verilog(text).truth_tables()
        for minterm in range(16):
            env = {
                "a": minterm & 1,
                "b": (minterm >> 1) & 1,
                "c": (minterm >> 2) & 1,
                "d": (minterm >> 3) & 1,
            }
            expected = eval(expression, {"__builtins__": {}}, env) & 1
            assert ((table >> minterm) & 1) == expected, (expression, minterm)

    def test_rejects_undefined_net(self):
        text = "module m (a, y); input a; output y; assign y = a & ghost; endmodule"
        with pytest.raises(ValueError):
            read_verilog(text)

    def test_rejects_missing_module(self):
        with pytest.raises(ValueError):
            read_verilog("assign y = a;")

    def test_rejects_unassigned_output(self):
        text = "module m (a, y); input a; output y; endmodule"
        with pytest.raises(ValueError):
            read_verilog(text)


class TestNetlistWriter:
    def test_netlist_verilog_mentions_cells(self):
        mig = random_aoig_mig(6, 20, num_pos=3, seed=4)
        netlist = map_mig(mig)
        text = write_netlist_verilog(netlist)
        assert "module" in text and "endmodule" in text
        histogram = netlist.cell_histogram()
        for cell in histogram:
            assert cell in text
