"""Exact-synthesis correctness: SAT results vs an independent oracle.

The load-bearing property is *optimality*: `synthesize_exact` claims its
program is minimum-size, and these tests cross-check that claim against
:func:`repro.synth.enumerate_minimum_sizes` — a breadth-first reachability
oracle that shares no code with the CNF encoding.  MIG is checked over
every ≤3-variable NPN class; AIG over every class whose true optimum is
within the oracle horizon that tier-1 can afford (the full 6-gate AIG
frontier takes ~12 s to enumerate and lives in ``benchmarks/bench_exact``).
"""

import pytest

from repro.network.npn import entry_truth_table, npn_representatives
from repro.synth import (
    SAT,
    UNKNOWN,
    UNSAT,
    enumerate_minimum_sizes,
    synthesize_depth_optimal,
    synthesize_exact,
)
from repro.synth.exact import _compact_table, _support

#: 4-var NPN representatives whose true support fits in 3 variables —
#: the classes whose optimality the brute-force oracle can certify.
_SMALL_REPS = [t for t in npn_representatives() if len(_support(t)) <= 3]

#: Oracle search depth affordable in tier-1 (the MIG frontier is complete
#: at 4 gates; the AIG frontier is not — xor-heavy classes need up to 6).
_ORACLE_GATES = 4


def _oracle(kind):
    """``{num_vars: {canonical_compact_table: minimum}}`` for 1..3 vars."""
    return {n: enumerate_minimum_sizes(kind, n, _ORACLE_GATES) for n in (1, 2, 3)}


def _oracle_minimum(oracle, table):
    support = _support(table)
    if not support:
        return 0  # constants: the trivial entry, no gates
    compact = _compact_table(table, support)
    width = 1 << len(support)
    canon = min(compact, compact ^ ((1 << width) - 1))
    return oracle[len(support)].get(canon)


@pytest.mark.parametrize("kind", ["mig", "aig"])
def test_exact_matches_brute_force_on_small_classes(kind):
    oracle = _oracle(kind)
    checked = 0
    for rep in _SMALL_REPS:
        minimum = _oracle_minimum(oracle, rep)
        if minimum is None:
            # True optimum beyond the tier-1 oracle horizon (AIG xor-ish
            # classes); bench_exact covers these with the 6-gate frontier.
            assert kind == "aig"
            continue
        result = synthesize_exact(rep, kind)
        assert result.status == SAT
        assert result.optimal, f"{rep:#06x}: linear search must prove optimality"
        assert result.gates == minimum, (
            f"{rep:#06x}: exact found {result.gates} gates, oracle says {minimum}"
        )
        assert entry_truth_table(result.entry) == rep
        checked += 1
    assert checked >= 11  # all 14 small classes on MIG; AIG skips 3


@pytest.mark.parametrize("kind", ["mig", "aig"])
def test_trivial_classes_need_no_gates(kind):
    for table in (0x0000, 0xFFFF, 0xAAAA, 0x5555):
        result = synthesize_exact(table, kind)
        assert result.status == SAT and result.optimal
        assert result.gates == 0
        assert entry_truth_table(result.entry) == table


def test_unsat_below_the_minimum():
    xor3 = sum(1 << t for t in range(16) if bin(t & 7).count("1") & 1)
    result = synthesize_exact(xor3, "mig", max_gates=2)
    assert result.status == UNSAT
    assert result.entry is None
    # ... and the minimum itself is reachable: 3 MAJ gates.
    assert synthesize_exact(xor3, "mig", max_gates=3).gates == 3


def test_exhausted_budget_reports_unknown():
    xor4 = sum(1 << t for t in range(16) if bin(t).count("1") & 1)
    result = synthesize_exact(xor4, "mig", budget=1)
    assert result.status == UNKNOWN
    assert result.entry is None
    assert not result.optimal


def test_depth_optimal_synthesis_replays_and_is_shallower():
    # mux(s, a, b): size-optimal MIG is 3 gates; a depth-2 form exists.
    mux = 0
    for t in range(16):
        s, a, b = (t >> 0) & 1, (t >> 1) & 1, (t >> 2) & 1
        if (a if s else b):
            mux |= 1 << t
    size_opt = synthesize_exact(mux, "mig")
    assert size_opt.status == SAT
    depth_opt = synthesize_depth_optimal(mux, "mig")
    assert depth_opt.status == SAT
    assert entry_truth_table(depth_opt.entry) == mux
    assert depth_opt.entry.depth <= size_opt.entry.depth
    assert depth_opt.entry.depth == 2


def test_rejects_unknown_kind():
    with pytest.raises(ValueError):
        synthesize_exact(0x8000, "xmg")
    with pytest.raises(ValueError):
        enumerate_minimum_sizes("xmg", 2, 2)
