"""Determinism and unit tests of the process-parallel execution layer.

The contract under test (see :mod:`repro.parallel`): sharded execution
is **bit-identical to serial** at any worker count — same node ids,
fanins, primary outputs, sizes, depths and verdicts — so parallelism is
a pure wall-clock property.  Worker counts 1, 2 and 4 are exercised
explicitly (1 is the in-process fallback, 2 and 4 real pools).
"""

import pickle

import pytest

from repro.core import Mig
from repro.flows import mighty_optimize, optimize_many
from repro.parallel import default_workers, parallel_map, plan_shards
from repro.parallel.corpus import (
    RowChannel,
    optimization_from_row,
    optimization_row,
    run_corpus,
    structural_fingerprint,
    structural_row,
)

WORKER_COUNTS = (1, 2, 4)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x


def _noop_warmup():
    """Cheap warm-up for executor unit tests (skips the NPN preload)."""


def _nested_map(x):
    """A task that itself calls parallel_map (nested-pool guard test)."""
    report = parallel_map(
        _square, [x, x + 1], workers=4, warmup=_noop_warmup
    )
    return (report.parallel, report.results)


# --------------------------------------------------------------------- #
# Shard planner / executor
# --------------------------------------------------------------------- #
class TestPlanner:
    def test_covers_every_index_exactly_once(self):
        for n in (1, 2, 7, 16):
            for workers in (1, 2, 4):
                plan = plan_shards(n, workers=workers)
                flat = [i for shard in plan for i in shard]
                assert sorted(flat) == list(range(n))

    def test_plan_is_deterministic(self):
        assert plan_shards(13, workers=3) == plan_shards(13, workers=3)
        costs = [5.0, 1.0, 9.0, 2.0]
        assert plan_shards(4, 2, costs=costs) == plan_shards(4, 2, costs=costs)

    def test_costs_give_longest_first_order(self):
        plan = plan_shards(4, workers=2, costs=[5.0, 1.0, 9.0, 2.0])
        assert plan[0] == [2]  # the 9.0-cost item is submitted first
        assert [i for shard in plan for i in shard] == [2, 0, 3, 1]

    def test_cost_ties_break_by_index(self):
        plan = plan_shards(3, workers=2, costs=[1.0, 1.0, 1.0], chunk_size=1)
        assert [i for shard in plan for i in shard] == [0, 1, 2]

    def test_empty_and_mismatched_costs(self):
        assert plan_shards(0) == []
        with pytest.raises(ValueError):
            plan_shards(3, costs=[1.0])


class TestParallelMap:
    def test_results_in_input_order_at_every_worker_count(self):
        items = list(range(11))
        expected = [x * x for x in items]
        for workers in WORKER_COUNTS:
            report = parallel_map(
                _square, items, workers=workers, warmup=_noop_warmup
            )
            assert report.results == expected
            assert report.parallel == (workers > 1)
            assert [t.index for t in report.tasks] == items

    def test_costs_do_not_change_results(self):
        items = list(range(8))
        report = parallel_map(
            _square,
            items,
            workers=2,
            costs=[8, 7, 6, 5, 4, 3, 2, 1][::-1],
            warmup=_noop_warmup,
        )
        assert report.results == [x * x for x in items]

    def test_exceptions_propagate_with_label(self):
        for workers in (1, 2):
            with pytest.raises(RuntimeError, match="bad3"):
                parallel_map(
                    _fail_on_three,
                    [1, 2, 3, 4],
                    workers=workers,
                    labels=["bad1", "bad2", "bad3", "bad4"],
                    warmup=_noop_warmup,
                )

    def test_task_records_carry_runtimes(self):
        report = parallel_map(_square, [1, 2, 3], workers=2, warmup=_noop_warmup)
        assert len(report.tasks) == 3
        assert all(t.runtime_s >= 0 for t in report.tasks)
        assert report.busy_s >= 0
        assert report.as_dict()["workers"] == 2

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_no_nested_pools_inside_workers(self):
        # A task calling parallel_map from inside a pool worker must fall
        # back to the in-process path (and still compute correctly)
        # instead of spawning workers**2 processes.
        report = parallel_map(
            _nested_map, [10, 20], workers=2, warmup=_noop_warmup
        )
        assert report.parallel  # the outer map did use a pool
        assert report.results == [
            (False, [100, 121]),
            (False, [400, 441]),
        ]

    def test_on_result_streams_every_record_once(self):
        # The service layer's streaming hook: every (index, result) pair
        # arrives exactly once, before parallel_map returns, and matches
        # the final in-order report at every worker count.
        items = list(range(9))
        for workers in WORKER_COUNTS:
            seen = {}

            def _on_result(index, result, runtime_s, pid):
                assert index not in seen  # exactly once per item
                assert runtime_s >= 0 and isinstance(pid, int)
                seen[index] = result

            report = parallel_map(
                _square,
                items,
                workers=workers,
                on_result=_on_result,
                warmup=_noop_warmup,
            )
            assert sorted(seen) == items
            assert [seen[i] for i in items] == report.results

    def test_on_result_serial_order_and_failure_cutoff(self):
        # In-process fallback streams in submission order, and a failing
        # task stops the stream with the error (fail-fast preserved).
        streamed = []
        parallel_map(
            _square,
            [3, 1, 2],
            workers=1,
            on_result=lambda i, r, t, p: streamed.append((i, r)),
            warmup=_noop_warmup,
        )
        assert streamed == [(0, 9), (1, 1), (2, 4)]
        streamed.clear()
        with pytest.raises(RuntimeError, match="three"):
            parallel_map(
                _fail_on_three,
                [1, 3, 2],
                workers=1,
                labels=["one", "three", "two"],
                on_result=lambda i, r, t, p: streamed.append(i),
                warmup=_noop_warmup,
            )
        assert streamed == [0]  # nothing after the failing task


# --------------------------------------------------------------------- #
# optimize_many: bit-identical across worker counts, totals consistent
# --------------------------------------------------------------------- #
def _corpus(network_forge):
    nets = [
        network_forge(kind="mig", gate_mix="mixed", num_pis=7, num_gates=45,
                      num_pos=3, seed=seed)
        for seed in (11, 12, 13)
    ]
    nets.append(
        network_forge(kind="aig", gate_mix="mixed", num_pis=7, num_gates=45,
                      num_pos=3, seed=14)
    )
    return nets


class TestOptimizeMany:
    def test_bit_identical_across_worker_counts(self, network_forge):
        corpus = _corpus(network_forge)
        before = [structural_fingerprint(n) for n in corpus]
        runs = {
            workers: optimize_many(
                corpus, workers=workers, rounds=1, depth_effort=1
            )
            for workers in WORKER_COUNTS
        }
        baseline = [structural_fingerprint(n) for n in runs[1].networks]
        for workers, report in runs.items():
            assert [
                structural_fingerprint(n) for n in report.networks
            ] == baseline, f"workers={workers} diverged"
        # The input corpus was never mutated, even by the in-process run.
        assert [structural_fingerprint(n) for n in corpus] == before

    def test_matches_in_place_serial_runs(self, network_forge):
        corpus = _corpus(network_forge)[:3]  # the MIG items
        report = optimize_many(corpus, workers=2, rounds=1, depth_effort=1)
        for net, item in zip(corpus, report.items):
            reference = pickle.loads(pickle.dumps(net))
            result = mighty_optimize(reference, rounds=1, depth_effort=1)
            assert structural_fingerprint(reference) == structural_fingerprint(
                item.network
            )
            assert (result.final_size, result.final_depth) == (
                item.final_size, item.final_depth,
            )

    def test_metric_aggregation_totals_match_per_network_runs(self, network_forge):
        corpus = _corpus(network_forge)[:3]
        report = optimize_many(corpus, workers=2, rounds=1, depth_effort=1)
        expected_results = [
            mighty_optimize(pickle.loads(pickle.dumps(net)), rounds=1, depth_effort=1)
            for net in corpus
        ]
        totals = report.totals()
        assert totals["networks"] == len(corpus)
        assert totals["initial_size"] == sum(r.initial_size for r in expected_results)
        assert totals["final_size"] == sum(r.final_size for r in expected_results)
        assert totals["initial_depth"] == sum(r.initial_depth for r in expected_results)
        assert totals["final_depth"] == sum(r.final_depth for r in expected_results)
        # The merged per-pass trace aggregates exactly the per-network traces.
        merged = {m["pass"]: m for m in report.merged_pass_metrics()}
        expected_runs: dict = {}
        expected_size_delta: dict = {}
        for result in expected_results:
            for m in result.pass_metrics:
                expected_runs[m.name] = expected_runs.get(m.name, 0) + 1
                expected_size_delta[m.name] = (
                    expected_size_delta.get(m.name, 0) + m.size_delta
                )
        assert {name: m["runs"] for name, m in merged.items()} == expected_runs
        assert {
            name: m["size_delta"] for name, m in merged.items()
        } == expected_size_delta

    def test_rejects_unknown_flow(self, network_forge):
        with pytest.raises(ValueError):
            optimize_many([network_forge()], flow="no-such-flow")
        with pytest.raises(ValueError):
            optimize_many(
                [network_forge(kind="aig")], flow="resyn2", rounds=2
            )


# --------------------------------------------------------------------- #
# Parallel NPN structure-database derivation
# --------------------------------------------------------------------- #
class TestParallelNpnDerivation:
    def test_structurally_equal_to_serial(self, tmp_path, monkeypatch):
        from repro.network import npn

        monkeypatch.setenv("REPRO_NPN_CACHE_DIR", str(tmp_path))
        npn.reset_structure_db()
        try:
            stats = npn.derive_structures_parallel(workers=2, kinds=("mig",))
            assert stats["entries_merged"] == stats["classes"] == 222
            # Spot-check one shard's worth of classes against fresh serial
            # derivations (the full 222 would re-derive everything twice).
            for rep in npn.npn_representatives()[:24]:
                assert npn._DB[("mig", rep)] == npn._derive_structures("mig", rep)
            # The merged database was written through the disk cache: a
            # reset + reload round-trips every entry without deriving.
            derived = {
                key: entry for key, entry in npn._DB.items() if key[0] == "mig"
            }
            npn.reset_structure_db()
            for rep in npn.npn_representatives():
                assert npn.get_structures("mig", rep) == derived[("mig", rep)]
        finally:
            npn.reset_structure_db()  # drop tmp-cache state for later tests


# --------------------------------------------------------------------- #
# Sharded corpus rows and the row channel
# --------------------------------------------------------------------- #
class TestCorpusRunner:
    def test_optimization_rows_identical_serial_vs_sharded(self):
        names = ["b9", "alu4"]
        kwargs = {"rounds": 1, "depth_effort": 1, "include_bdd": False}
        serial = [optimization_row(name, **kwargs) for name in names]
        sharded = run_corpus(optimization_row, names, workers=2, **kwargs)
        assert [structural_row(r) for r in serial] == [
            structural_row(r) for r in sharded.results
        ]

    def test_row_roundtrip_preserves_metrics(self):
        row = optimization_row("b9", rounds=1, depth_effort=1, include_bdd=False)
        rebuilt = optimization_from_row(row)
        assert rebuilt.name == "b9"
        assert rebuilt.mig.size == row["mig"]["size"]
        assert rebuilt.aig.depth == row["aig"]["depth"]
        assert rebuilt.bdd is None

    def test_row_channel_atomic_and_ordered(self, tmp_path):
        channel = RowChannel(tmp_path)
        channel.write("suite", "beta", {"name": "beta", "v": 2})
        channel.write("suite", "alpha", {"name": "alpha", "v": 1})
        channel.write("suite", "alpha", {"name": "alpha", "v": 3})  # overwrite
        # A torn/foreign file must be skipped, not crash the summary.
        (tmp_path / "suite" / "torn.json").write_text("{not json")
        rows = channel.read_all("suite")
        assert rows == {"alpha": {"name": "alpha", "v": 3},
                        "beta": {"name": "beta", "v": 2}}
        ordered = channel.ordered("suite", ["beta", "missing", "alpha"])
        assert [r["name"] for r in ordered] == ["beta", "alpha"]
        # Rows not named in the canonical order still surface (sorted).
        channel.write("suite", "zeta", {"name": "zeta"})
        ordered = channel.ordered("suite", ["beta"])
        assert [r["name"] for r in ordered] == ["beta", "alpha", "zeta"]

    def test_row_channel_single_row_read_and_delete(self, tmp_path):
        channel = RowChannel(tmp_path)
        channel.write("suite", "alpha", {"name": "alpha", "v": 1})
        assert channel.read("suite", "alpha") == {"name": "alpha", "v": 1}
        assert channel.read("suite", "missing") is None
        # A torn row reads as absent, same as read_all skips it.
        (tmp_path / "suite" / "torn.json").write_text("{not json")
        assert channel.read("suite", "torn") is None
        assert channel.delete("suite", "alpha") is True
        assert channel.delete("suite", "alpha") is False  # idempotent
        assert channel.read("suite", "alpha") is None


# --------------------------------------------------------------------- #
# Parallel per-PO final SAT calls (verify/sweep.py)
# --------------------------------------------------------------------- #
class TestSweepFinalWorkers:
    def test_verdicts_identical_across_worker_counts(self, network_forge, mutant_forge):
        from repro.verify.sweep import sat_sweep

        base = network_forge(kind="mig", gate_mix="mixed", num_pis=17,
                             num_gates=120, num_pos=8, seed=21)
        optimized = pickle.loads(pickle.dumps(base))
        mighty_optimize(optimized, rounds=1, depth_effort=1)
        mutant, _ = mutant_forge(base, seed=5)

        for first, second in ((base, optimized), (base, mutant)):
            serial = sat_sweep(first, second)
            runs = {
                workers: sat_sweep(first, second, final_workers=workers)
                for workers in WORKER_COUNTS
            }
            for workers, outcome in runs.items():
                assert outcome.status == serial.status, f"workers={workers}"
                assert outcome.failing_output == runs[1].failing_output
                assert outcome.counterexample == runs[1].counterexample
                if outcome.counterexample is not None:
                    replay_first = first.simulate(outcome.counterexample)
                    replay_second = second.simulate(outcome.counterexample)
                    index = outcome.failing_output
                    assert replay_first[index] != replay_second[index]
