"""Property tests of the partition-parallel layer (windows inside one circuit).

The contract under test (the window extension of the :mod:`repro.parallel`
determinism contract): a partition covers every live gate exactly once in
dependency order, windows extract into standalone sub-networks that stitch
back without changing function, and :func:`repro.flows.optimize_large`
produces **bit-identical stitched networks at 1, 2 and 4 workers** — node
ids, fanins, primary outputs and structural fingerprints — with every
window carrying a SAT certification verdict.
"""

import pytest

from repro.core.signal import CONST_NODE, make_signal, node_of
from repro.flows import PartitionedRewrite, Pipeline, optimize_large, partitioned_rewrite
from repro.parallel import (
    PartitionSpec,
    extract_window,
    partition_network,
    release_pins,
    stitch_window,
)
from repro.parallel.corpus import structural_fingerprint
from repro.verify.equivalence import check_equivalence

WORKER_COUNTS = (1, 2, 4)
KINDS = ("mig", "aig")
STRATEGIES = ("topo", "levels")


def _forged(network_forge, kind, seed=3, num_gates=220):
    return network_forge(
        kind=kind,
        gate_mix="mixed" if kind == "mig" else "aoig",
        num_pis=8,
        num_gates=num_gates,
        num_pos=6,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# Partition properties
# --------------------------------------------------------------------- #
class TestPartition:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_windows_cover_live_gates_exactly_once(
        self, network_forge, kind, strategy
    ):
        net = _forged(network_forge, kind)
        net.cleanup()
        windows = partition_network(
            net, PartitionSpec(max_window_gates=40, strategy=strategy)
        )
        seen = [gate for window in windows for gate in window.gates]
        assert sorted(seen) == sorted(net.topological_order())
        assert len(seen) == len(set(seen))

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_window_size_bound_holds(self, network_forge, strategy):
        net = _forged(network_forge, "mig")
        net.cleanup()
        bound = 25
        windows = partition_network(
            net, PartitionSpec(max_window_gates=bound, strategy=strategy)
        )
        assert windows
        assert all(window.num_gates <= bound for window in windows)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fanins_resolve_in_same_or_earlier_window(
        self, network_forge, kind, strategy
    ):
        net = _forged(network_forge, kind)
        net.cleanup()
        windows = partition_network(
            net, PartitionSpec(max_window_gates=40, strategy=strategy)
        )
        window_of = {
            gate: window.index for window in windows for gate in window.gates
        }
        pis = set(net.pi_nodes())
        for window in windows:
            members = set(window.gates)
            inputs = set(window.inputs)
            for gate in window.gates:
                for fanin in net.fanins(gate):
                    node = node_of(fanin)
                    if node == CONST_NODE or node in members:
                        continue
                    # Out-of-window fanins must be declared frontier pins
                    # and come from a PI or a strictly earlier window.
                    assert node in inputs
                    assert node in pis or window_of[node] < window.index

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_outputs_are_externally_referenced(self, network_forge, strategy):
        net = _forged(network_forge, "mig")
        net.cleanup()
        windows = partition_network(
            net, PartitionSpec(max_window_gates=40, strategy=strategy)
        )
        window_of = {
            gate: window.index for window in windows for gate in window.gates
        }
        po_nodes = {node_of(po) for po in net.po_signals()}
        referenced = {}
        for window in windows:
            for gate in window.gates:
                for fanin in net.fanins(gate):
                    node = node_of(fanin)
                    if node in window_of and window_of[node] < window.index:
                        referenced.setdefault(node, True)
        for window in windows:
            outputs = set(window.outputs)
            assert outputs <= set(window.gates)
            for gate in window.gates:
                external = gate in po_nodes or gate in referenced
                assert (gate in outputs) == external

    def test_partition_is_deterministic(self, network_forge):
        net = _forged(network_forge, "mig")
        net.cleanup()
        spec = PartitionSpec(max_window_gates=30, strategy="levels")
        first = partition_network(net, spec)
        second = partition_network(net, spec)
        assert [(w.gates, w.inputs, w.outputs) for w in first] == [
            (w.gates, w.inputs, w.outputs) for w in second
        ]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PartitionSpec(max_window_gates=0)
        with pytest.raises(ValueError):
            PartitionSpec(strategy="bogus")
        with pytest.raises(ValueError):
            PartitionSpec(offset=-1)


# --------------------------------------------------------------------- #
# Boundary-shifted partitions (multi-sweep re-partitioning)
# --------------------------------------------------------------------- #
class TestOffsets:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("offset", (0, 13, 25, 39))
    def test_offset_keeps_coverage_and_bound(
        self, network_forge, strategy, offset
    ):
        net = _forged(network_forge, "mig")
        net.cleanup()
        bound = 40
        windows = partition_network(
            net,
            PartitionSpec(max_window_gates=bound, strategy=strategy, offset=offset),
        )
        seen = [gate for window in windows for gate in window.gates]
        assert sorted(seen) == sorted(net.topological_order())
        assert len(seen) == len(set(seen))
        assert all(window.num_gates <= bound for window in windows)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_offset_multiple_of_bound_is_identity(self, network_forge, strategy):
        net = _forged(network_forge, "mig")
        net.cleanup()
        base = partition_network(
            net, PartitionSpec(max_window_gates=40, strategy=strategy)
        )
        shifted = partition_network(
            net,
            PartitionSpec(max_window_gates=40, strategy=strategy, offset=80),
        )
        assert [w.gates for w in base] == [w.gates for w in shifted]

    def test_offset_moves_boundaries(self, network_forge):
        """The whole point of the knob: frontier gates of the unshifted
        decomposition become interior gates of the shifted one."""
        net = _forged(network_forge, "mig")
        net.cleanup()
        bound = 40
        base = partition_network(net, PartitionSpec(max_window_gates=bound))
        shifted = partition_network(
            net, PartitionSpec(max_window_gates=bound, offset=13)
        )
        base_last = {window.gates[-1] for window in base}
        shifted_last = {window.gates[-1] for window in shifted}
        # The final boundary (end of the order) coincides; earlier ones move.
        assert base_last != shifted_last
        assert shifted[0].num_gates == bound - 13

    def test_offset_partition_is_deterministic(self, network_forge):
        net = _forged(network_forge, "mig")
        net.cleanup()
        spec = PartitionSpec(max_window_gates=30, strategy="levels", offset=17)
        first = partition_network(net, spec)
        second = partition_network(net, spec)
        assert [(w.gates, w.inputs, w.outputs) for w in first] == [
            (w.gates, w.inputs, w.outputs) for w in second
        ]

    def test_sweep_offset_rule(self):
        from repro.flows.partitioned import sweep_offset

        assert sweep_offset(0, 400) == 0
        offsets = [sweep_offset(k, 400) for k in range(4)]
        # Consecutive sweeps land on distinct, in-range phases.
        assert all(0 <= o < 400 for o in offsets)
        assert len(set(offsets[:3])) == 3
        # Degenerate bound cannot express a shift.
        assert sweep_offset(2, 1) == 0


# --------------------------------------------------------------------- #
# Extract / stitch round-trip
# --------------------------------------------------------------------- #
class TestExtractStitch:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_identity_stitch_preserves_structure(
        self, network_forge, kind, strategy
    ):
        """Stitching unoptimized windows back must be a structural no-op."""
        net = _forged(network_forge, kind)
        net.cleanup()
        before = structural_fingerprint(net)
        windows = partition_network(
            net, PartitionSpec(max_window_gates=40, strategy=strategy)
        )
        subs = [extract_window(net, window) for window in windows]
        repl = {}
        all_stats = []
        for window, sub in zip(windows, subs):
            stats = stitch_window(net, window, sub, repl)
            all_stats.append(stats)
            assert stats.substituted == 0
            assert stats.skipped_cycles == 0
        release_pins(net, all_stats)
        net.cleanup()
        assert structural_fingerprint(net) == before
        net.check_integrity()

    @pytest.mark.parametrize("kind", KINDS)
    def test_extracted_window_matches_cone_function(self, network_forge, kind):
        net = _forged(network_forge, kind, num_gates=120)
        net.cleanup()
        windows = partition_network(net, PartitionSpec(max_window_gates=50))
        window = windows[-1]
        sub = extract_window(net, window)
        assert sub.num_pis == len(window.inputs)
        assert sub.num_pos == len(window.outputs)
        assert sub.name == f"{net.name}.w{window.index}"
        # The sub-network simulates exactly like the parent's window cone:
        # feed the parent's node values at the frontier pins and compare
        # the window outputs.
        import random

        rng = random.Random(9)
        bits = 64
        parent_patterns = [rng.getrandbits(bits) for _ in range(net.num_pis)]
        # simulate_patterns returns PO values; the frontier check needs
        # per-node values, so replay the generic evaluator directly.
        mask = (1 << bits) - 1
        node_value = [0] * len(net._fanins)
        for node, pattern in zip(net.pi_nodes(), parent_patterns):
            node_value[node] = pattern & mask
        for node in net.topological_order():
            node_value[node] = net._eval_gate(node_value, net.fanins(node), mask)
        sub_inputs = [node_value[pin] for pin in window.inputs]
        got = sub.simulate_patterns(sub_inputs, bits)
        expected = [node_value[output] for output in window.outputs]
        assert got == expected


# --------------------------------------------------------------------- #
# Kernel pin API
# --------------------------------------------------------------------- #
class TestPins:
    def test_pinned_node_survives_cleanup(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=40)
        net.cleanup()
        victim = net.topological_order()[-1]
        # Retarget every PO away from the victim so only the pin holds it.
        replacement = net.constant(False)
        net.pin_node(victim)
        for index, po in enumerate(net.po_signals()):
            if node_of(po) == victim:
                net.set_po(index, replacement)
        net.cleanup()
        assert not net._dead[victim]
        net.unpin_node(victim)
        net.cleanup()
        assert net._dead[victim]
        net.check_integrity()

    def test_pin_dead_node_raises(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=40)
        victim = net.topological_order()[-1]
        replacement = net.constant(False)
        for index, po in enumerate(net.po_signals()):
            if node_of(po) == victim:
                net.set_po(index, replacement)
        net.cleanup()
        if net._dead[victim]:
            with pytest.raises(ValueError):
                net.pin_node(victim)

    def test_substitute_keeps_pinned_replacement_target(self, network_forge):
        """The stitch-phase invariant: a pinned node never dies, even when
        substitution cascades rewire the region around it."""
        net = _forged(network_forge, "mig", num_gates=80)
        net.cleanup()
        order = net.topological_order()
        target = order[-1]
        net.pin_node(target)
        replaced = 0
        for gate in order:
            if gate == target:
                continue
            if net.substitute(gate, make_signal(target)):
                replaced += 1
                break
        net.cleanup()
        assert not net._dead[target]
        net.unpin_node(target)
        net.cleanup()
        net.check_integrity()


# --------------------------------------------------------------------- #
# optimize_large determinism + correctness
# --------------------------------------------------------------------- #
class TestOptimizeLarge:
    @pytest.mark.parametrize("kind", KINDS)
    def test_bit_identical_across_worker_counts(self, network_forge, kind):
        net = _forged(network_forge, kind, num_gates=260)
        results = [
            optimize_large(net, workers=count, max_window_gates=60)
            for count in WORKER_COUNTS
        ]
        fingerprints = [structural_fingerprint(r.network) for r in results]
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]
        base = results[0]
        for result in results[1:]:
            assert result.final_size == base.final_size
            assert result.final_depth == base.final_depth
            assert result.network.po_signals() == base.network.po_signals()
            assert sorted(result.network.topological_order()) == sorted(
                base.network.topological_order()
            )
            for gate in base.network.topological_order():
                assert result.network.fanins(gate) == base.network.fanins(gate)

    @pytest.mark.parametrize("kind", KINDS)
    def test_stitched_network_is_equivalent_and_certified(
        self, network_forge, kind
    ):
        net = _forged(network_forge, kind, num_gates=260)
        result = optimize_large(net, workers=1, max_window_gates=60)
        details = result.details
        assert details["windows"] > 1
        assert details["certified_windows"] == details["windows"]
        for record in details["per_window"]:
            assert record["certified"]["equivalent"] is True
        result.network.check_integrity()
        verdict = check_equivalence(net, result.network)
        assert verdict.equivalent, verdict
        # The input network is untouched (optimize_large works on a copy).
        assert net.num_gates == result.initial_size

    def test_original_left_untouched_and_ids_preserved(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=150)
        net.cleanup()
        before = structural_fingerprint(net)
        result = optimize_large(net, workers=1, max_window_gates=50)
        assert structural_fingerprint(net) == before
        result.network.check_integrity()

    def test_pass_metrics_flow_through_engine(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=150)
        pipeline = Pipeline(
            [PartitionedRewrite(max_window_gates=50, workers=1)],
            name="windowed",
        )
        flow = pipeline.run(net)
        metrics = flow.passes[0]
        assert metrics.name == "partitioned_rewrite"
        details = metrics.details
        assert set(details) >= {
            "windows",
            "frontier_pins",
            "window_gain",
            "certified_windows",
            "per_window",
            "stitch",
        }
        assert len(details["per_window"]) == details["windows"]
        for record in details["per_window"]:
            assert {"window", "gates", "pins", "gain", "improved"} <= set(record)

    def test_flow_kwargs_rejected_for_resyn2(self, network_forge):
        net = _forged(network_forge, "aig", num_gates=80)
        with pytest.raises(ValueError):
            partitioned_rewrite(
                net, max_window_gates=40, flow="resyn2", flow_kwargs={"rounds": 2}
            )

    def test_empty_network_short_circuits(self, network_forge):
        from repro.core import Mig

        net = Mig()
        net.add_po(net.add_pi("a"), "o")
        result = optimize_large(net, workers=1)
        assert result.windows == 0
        assert result.final_size == 0
