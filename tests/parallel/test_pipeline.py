"""Tests of the streamed partition pipeline and multi-sweep rewriting.

Three layers under test:

* :class:`repro.parallel.executor.OrderedCommitQueue` — the reorder
  buffer that turns completion-order result streams back into strict
  index-order commits (with a hold gate for the extraction phase);
* :func:`repro.parallel.executor.parallel_map_stream` — the lazy
  bounded-lookahead producer/consumer over the process pool, equivalent
  to :func:`parallel_map` in results and report shape;
* the pipelined :func:`repro.flows.partitioned.partitioned_rewrite` —
  bit-identical to the barrier path at 1/2/4 workers, pin-leak-free on
  every failure path, instrumented with per-phase metrics, and the
  boundary-shifted multi-sweep mode on top of it.
"""

import pickle

import pytest

from repro.flows.partitioned import partitioned_rewrite, sweep_offset
from repro.parallel import PartitionSpec, partition_network
from repro.parallel.corpus import structural_fingerprint
from repro.parallel.executor import (
    OrderedCommitQueue,
    parallel_map,
    parallel_map_stream,
)
from repro.verify.equivalence import check_equivalence

WORKER_COUNTS = (1, 2, 4)
KINDS = ("mig", "aig")


def _forged(network_forge, kind, seed=3, num_gates=220):
    return network_forge(
        kind=kind,
        gate_mix="mixed" if kind == "mig" else "aoig",
        num_pis=8,
        num_gates=num_gates,
        num_pos=6,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# OrderedCommitQueue
# --------------------------------------------------------------------- #
class TestOrderedCommitQueue:
    def test_in_order_offers_commit_immediately(self):
        committed = []
        queue = OrderedCommitQueue(lambda i, v: committed.append((i, v)))
        for index in range(4):
            queue.offer(index, index * 10)
            assert committed[-1] == (index, index * 10)
        assert queue.peak == 1
        assert queue.committed == 4
        assert queue.buffered == 0

    def test_out_of_order_offers_buffer_until_gap_fills(self):
        committed = []
        queue = OrderedCommitQueue(lambda i, v: committed.append(i))
        queue.offer(2, "c")
        queue.offer(1, "b")
        assert committed == []
        assert queue.buffered == 2
        queue.offer(0, "a")
        assert committed == [0, 1, 2]
        assert queue.peak == 3
        assert queue.next_index == 3

    def test_hold_gates_commits_until_release(self):
        committed = []
        queue = OrderedCommitQueue(lambda i, v: committed.append(i))
        queue.hold()
        queue.offer(0, "a")
        queue.offer(1, "b")
        assert committed == []
        assert queue.buffered == 2
        queue.release()
        assert committed == [0, 1]
        # Post-release offers flow straight through again.
        queue.offer(2, "c")
        assert committed == [0, 1, 2]

    def test_duplicate_or_stale_offer_raises(self):
        queue = OrderedCommitQueue(lambda i, v: None)
        queue.offer(0, "a")
        with pytest.raises(ValueError):
            queue.offer(0, "again")  # already committed
        queue.offer(2, "c")
        with pytest.raises(ValueError):
            queue.offer(2, "again")  # still buffered

    def test_start_index(self):
        committed = []
        queue = OrderedCommitQueue(lambda i, v: committed.append(i), start=5)
        queue.offer(6, "b")
        assert committed == []
        queue.offer(5, "a")
        assert committed == [5, 6]


# --------------------------------------------------------------------- #
# parallel_map_stream
# --------------------------------------------------------------------- #
def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


#: Event log for the serial-laziness test (in-process fallback only).
_EVENTS = []


def _record_run(x):
    _EVENTS.append(("run", x))
    return x


class TestParallelMapStream:
    @pytest.mark.parametrize("workers", (1, 2))
    def test_matches_parallel_map_results(self, workers):
        items = list(range(9))
        stream = parallel_map_stream(_square, iter(items), workers=workers)
        batch = parallel_map(_square, items, workers=workers)
        assert stream.results == batch.results
        assert stream.num_shards == len(items)
        assert stream.parallel == (workers > 1)
        assert len(stream.tasks) == len(items)
        assert [t.index for t in stream.tasks] == list(range(len(items)))

    def test_on_result_streams_every_item(self):
        seen = []
        parallel_map_stream(
            _square,
            iter(range(5)),
            workers=2,
            on_result=lambda i, r, runtime, pid: seen.append((i, r)),
        )
        assert sorted(seen) == [(i, i * i) for i in range(5)]

    def test_serial_fallback_pulls_producer_lazily(self):
        """The producer is consumed one item per finished task — the point
        of the streamed path (no upfront materialization)."""
        _EVENTS.clear()

        def produce():
            for i in range(4):
                _EVENTS.append(("yield", i))
                yield i

        parallel_map_stream(_record_run, produce(), workers=1)
        assert _EVENTS == [
            ("yield", 0), ("run", 0),
            ("yield", 1), ("run", 1),
            ("yield", 2), ("run", 2),
            ("yield", 3), ("run", 3),
        ]

    def test_producer_epilogue_runs_after_last_result(self):
        """Code after the generator's final yield sees every prior task
        finished in serial mode — the pipelined stitcher's release hook
        relies on a deterministic position of this epilogue."""
        _EVENTS.clear()

        def produce():
            for i in range(3):
                yield i
            _EVENTS.append(("epilogue", None))

        parallel_map_stream(_record_run, produce(), workers=1)
        assert _EVENTS.index(("epilogue", None)) == len(_EVENTS) - 1

    @pytest.mark.parametrize("workers", (1, 2))
    def test_task_failure_propagates(self, workers):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map_stream(_boom_on_three, iter(range(6)), workers=workers)

    def test_serial_failure_stops_pulling_producer(self):
        pulled = []

        def produce():
            for i in range(6):
                pulled.append(i)
                yield i

        with pytest.raises(RuntimeError):
            parallel_map_stream(_boom_on_three, produce(), workers=1)
        assert pulled == [0, 1, 2, 3]

    def test_labels_fall_back_past_list_end(self):
        report = parallel_map_stream(
            _square, iter(range(3)), workers=1, labels=["first"]
        )
        assert [t.label for t in report.tasks] == ["first", "task1", "task2"]


# --------------------------------------------------------------------- #
# Pipelined partitioned_rewrite: determinism + failure paths + metrics
# --------------------------------------------------------------------- #
class TestPipelinedRewrite:
    @pytest.mark.parametrize("kind", KINDS)
    def test_bit_identical_to_barrier_at_all_worker_counts(self, network_forge, kind):
        net = _forged(network_forge, kind, num_gates=220)
        fingerprints = {}
        for pipeline in (True, False):
            for workers in WORKER_COUNTS:
                work = pickle.loads(pickle.dumps(net))
                details = partitioned_rewrite(
                    work, max_window_gates=60, workers=workers, pipeline=pipeline
                )
                work.check_integrity()
                assert details["pipeline"] is pipeline
                fingerprints[(pipeline, workers)] = structural_fingerprint(work)
        assert len(set(fingerprints.values())) == 1, fingerprints

    def test_per_phase_metrics_present(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=220)
        details = partitioned_rewrite(net, max_window_gates=60, workers=1)
        assert details["extract_wall_s"] > 0
        assert details["stitch_wall_s"] > 0
        assert details["parent_idle_s"] >= 0
        assert 1 <= details["commit_queue_peak"] <= details["windows"]
        assert details["sweeps"] == 1
        assert details["sweeps_run"] == 1
        assert len(details["per_sweep"]) == 1
        sweep = details["per_sweep"][0]
        assert sweep["offset"] == 0
        assert sweep["windows"] == details["windows"]

    def test_barrier_queue_peak_is_window_count(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=220)
        details = partitioned_rewrite(
            net, max_window_gates=60, workers=1, pipeline=False
        )
        assert details["commit_queue_peak"] == details["windows"]

    @pytest.mark.parametrize("pipeline", (True, False))
    def test_failed_window_task_leaks_no_pins(self, network_forge, pipeline):
        """Satellite regression: a worker failure mid-run must unwind every
        stitch-phase pin — the network stays integrity-clean (pin leaks
        are refcount mismatches) and structurally untouched."""
        net = _forged(network_forge, "mig", num_gates=220)
        net.cleanup()
        before = structural_fingerprint(net)
        serial = net._mutation_serial
        with pytest.raises(RuntimeError, match="unknown window flow"):
            partitioned_rewrite(
                net,
                max_window_gates=60,
                workers=1,
                flow="bogus",
                pipeline=pipeline,
            )
        net.check_integrity()
        assert structural_fingerprint(net) == before
        assert net._mutation_serial == serial

    def test_mid_stitch_failure_leaks_no_pins(self, network_forge, monkeypatch):
        """A stitch that dies after partially committing must still unwind
        to zero pins, and the half-committed network stays verifiable
        (every completed stitch is function-preserving)."""
        import repro.flows.partitioned as mod
        from repro.parallel.window import stitch_window as real_stitch

        net = _forged(network_forge, "mig", num_gates=220)
        net.cleanup()
        reference = pickle.loads(pickle.dumps(net))
        calls = []

        def exploding_stitch(parent, window, optimized, repl, stats=None):
            result = real_stitch(parent, window, optimized, repl, stats=stats)
            calls.append(window.index)
            if len(calls) == 1:
                raise RuntimeError("stitch died after committing a window")
            return result

        monkeypatch.setattr(mod, "stitch_window", exploding_stitch)
        with pytest.raises(RuntimeError, match="stitch died"):
            partitioned_rewrite(net, max_window_gates=60, workers=1)
        assert calls  # at least one window actually stitched before the raise
        net.check_integrity()
        verdict = check_equivalence(reference, net)
        assert verdict.equivalent, verdict

    def test_sweeps_validation(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=60)
        with pytest.raises(ValueError):
            partitioned_rewrite(net, sweeps=0)


# --------------------------------------------------------------------- #
# Boundary-shifted multi-sweep battery
# --------------------------------------------------------------------- #
class TestMultiSweep:
    @pytest.mark.parametrize("kind", KINDS)
    def test_sweeps_bit_identical_across_worker_counts(self, network_forge, kind):
        net = _forged(network_forge, kind, num_gates=220)
        fingerprints = []
        for workers in WORKER_COUNTS:
            work = pickle.loads(pickle.dumps(net))
            details = partitioned_rewrite(
                work, max_window_gates=60, workers=workers, sweeps=2
            )
            work.check_integrity()
            assert details["sweeps_run"] >= 1
            fingerprints.append(structural_fingerprint(work))
        assert len(set(fingerprints)) == 1

    def test_sweep_boundaries_differ_between_sweeps(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=220)
        net.cleanup()
        bound = 60
        decompositions = [
            partition_network(
                net,
                PartitionSpec(
                    max_window_gates=bound, offset=sweep_offset(k, bound)
                ),
            )
            for k in range(2)
        ]
        boundaries = [
            {window.gates[-1] for window in windows}
            for windows in decompositions
        ]
        assert boundaries[0] != boundaries[1]

    def test_every_sweep_window_is_certified(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=220)
        details = partitioned_rewrite(
            net, max_window_gates=60, workers=1, sweeps=2
        )
        assert details["certified_windows"] == details["windows"]
        sweeps_seen = {record["sweep"] for record in details["per_window"]}
        assert sweeps_seen == set(range(details["sweeps_run"]))
        for record in details["per_window"]:
            assert record["certified"]["equivalent"] is True
            assert record["certified"]["certified"] is True

    def test_converged_sweep_leaves_mutation_serial_untouched(self, network_forge):
        """Once no sweep improves anything, a multi-sweep call must be a
        structural no-op: early exit after one sweep, zero substitutions,
        mutation serial unchanged."""
        net = _forged(network_forge, "mig", num_gates=150)
        for _ in range(10):  # drive to the sweep-0 fixpoint
            details = partitioned_rewrite(net, max_window_gates=50, workers=1)
            if details["improved_windows"] == 0:
                break
        else:
            pytest.fail("partitioned_rewrite did not converge in 10 rounds")
        net.cleanup()
        before = structural_fingerprint(net)
        serial = net._mutation_serial
        details = partitioned_rewrite(
            net, max_window_gates=50, workers=1, sweeps=3
        )
        assert details["converged"] is True
        assert details["sweeps_run"] == 1
        assert details["stitch"]["substituted"] == 0
        assert net._mutation_serial == serial
        assert structural_fingerprint(net) == before
        net.check_integrity()

    def test_multi_sweep_never_worse_than_single(self, network_forge):
        net = _forged(network_forge, "mig", num_gates=260)
        single = pickle.loads(pickle.dumps(net))
        multi = pickle.loads(pickle.dumps(net))
        partitioned_rewrite(single, max_window_gates=60, workers=1)
        details = partitioned_rewrite(
            multi, max_window_gates=60, workers=1, sweeps=3
        )
        assert multi.num_gates <= single.num_gates
        assert details["window_gain"] >= 0
        verdict = check_equivalence(net, multi)
        assert verdict.equivalent, verdict
