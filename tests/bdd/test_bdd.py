"""Tests for the BDD manager and the BDS-style decomposition baseline."""

import pytest

from repro.bdd import BddManager, build_output_bdds, decompose_to_mig
from repro.bdd.bdd import structural_variable_order
from repro.bench_circuits import build_benchmark
from repro.core import Mig, random_aoig_mig
from repro.verify import assert_equivalent, check_equivalence


class TestBddManager:
    def test_terminals_and_vars(self):
        manager = BddManager()
        assert manager.zero() != manager.one()
        x = manager.var(0)
        assert manager.variable_of(x) == 0
        assert manager.low(x) == manager.zero()
        assert manager.high(x) == manager.one()

    def test_canonicity(self):
        manager = BddManager()
        x, y = manager.var(0), manager.var(1)
        f1 = manager.and_(x, y)
        f2 = manager.and_(y, x)
        assert f1 == f2
        assert manager.or_(x, manager.not_(x)) == manager.one()
        assert manager.and_(x, manager.not_(x)) == manager.zero()

    def test_ite_and_operators(self):
        manager = BddManager()
        x, y, z = manager.var(0), manager.var(1), manager.var(2)
        maj = manager.maj_(x, y, z)
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    expected = (a + b + c) >= 2
                    assert manager.evaluate(maj, [a, b, c]) == expected

    def test_xor(self):
        manager = BddManager()
        x, y = manager.var(0), manager.var(1)
        f = manager.xor_(x, y)
        for a in (False, True):
            for b in (False, True):
                assert manager.evaluate(f, [a, b]) == (a ^ b)

    def test_size_and_support(self):
        manager = BddManager()
        x, y, z = manager.var(0), manager.var(1), manager.var(2)
        f = manager.and_(x, manager.or_(y, z))
        assert manager.size([f]) == 3
        assert manager.support(f) == [0, 1, 2]

    def test_node_limit(self):
        manager = BddManager(max_nodes=4)
        with pytest.raises(MemoryError):
            for i in range(10):
                manager.var(i)


class TestBuildOutputBdds:
    def test_matches_network_truth_table(self):
        mig = random_aoig_mig(6, 25, num_pos=3, seed=3)
        manager = BddManager()
        roots = build_output_bdds(manager, mig)
        tts = mig.truth_tables()
        order = structural_variable_order(mig)
        level_of_pi = [0] * mig.num_pis
        for level, pi_index in enumerate(order):
            level_of_pi[pi_index] = level
        for root, table in zip(roots, tts):
            for i in range(1 << mig.num_pis):
                assignment_by_level = [False] * mig.num_pis
                for pi_index in range(mig.num_pis):
                    assignment_by_level[level_of_pi[pi_index]] = bool((i >> pi_index) & 1)
                assert manager.evaluate(root, assignment_by_level) == bool(
                    (table >> i) & 1
                )

    def test_structural_order_covers_all_pis(self):
        mig = build_benchmark("my_adder", Mig)
        order = structural_variable_order(mig)
        assert sorted(order) == list(range(mig.num_pis))


class TestDecomposition:
    def test_decomposition_preserves_function(self):
        for seed in (2, 5):
            mig = random_aoig_mig(7, 40, num_pos=4, seed=seed)
            decomposed, stats = decompose_to_mig(mig)
            assert_equivalent(mig, decomposed)
            assert stats.bdd_nodes > 0
            assert stats.network_size == decomposed.num_gates

    def test_adder_does_not_blow_up(self):
        mig = build_benchmark("my_adder", Mig)
        decomposed, stats = decompose_to_mig(mig)
        # With the interleaved structural order the 16-bit adder BDD is small.
        assert stats.bdd_nodes < 5_000
        assert check_equivalence(mig, decomposed, num_random_vectors=512).equivalent

    def test_po_names_preserved(self):
        mig = random_aoig_mig(6, 20, num_pos=3, seed=11)
        decomposed, _ = decompose_to_mig(mig)
        assert decomposed.po_names() == mig.po_names()
        assert decomposed.pi_names() == mig.pi_names()
