"""Tests for the Tseitin CNF encoder and miter construction (verify/cnf.py)."""

import pytest

from repro.aig.aig import Aig
from repro.core import Mig
from repro.mapping import map_mig
from repro.verify.cnf import (
    FALSE_LIT,
    TRUE_LIT,
    GateGraph,
    build_miter,
    encode_network,
)
from repro.verify.sat import SAT, UNSAT, SatSolver


def _models_match_simulation(network, num_pis):
    """Every SAT model under fully-constrained PIs equals the simulator."""
    graph = GateGraph(num_pis)
    po_lits = encode_network(graph, network)
    solver = SatSolver()
    graph.load_into(solver)
    for minterm in range(1 << num_pis):
        bits = [(minterm >> i) & 1 for i in range(num_pis)]
        assumptions = [graph.pi_lit(i) ^ (1 - bits[i]) for i in range(num_pis)]
        assert solver.solve(assumptions) == SAT
        expected = [
            bool(v & 1) for v in network.simulate_patterns(bits, 1)
        ]
        got = [
            bool(lit & 1) if (lit >> 1) == 0 else solver.model_value(lit)
            for lit in po_lits
        ]
        assert got == expected, (minterm, got, expected)


class TestEncoding:
    @pytest.mark.parametrize("kind,gate_mix", [
        ("mig", "aoig"), ("mig", "mixed"), ("mig", "maj"), ("aig", "mixed"),
    ])
    def test_cnf_models_equal_simulation(self, network_forge, kind, gate_mix):
        net = network_forge(kind=kind, gate_mix=gate_mix, num_pis=5, num_gates=25, seed=3)
        _models_match_simulation(net, 5)

    def test_mapped_netlist_encoding(self, network_forge):
        mig = network_forge(kind="mig", gate_mix="mixed", num_pis=5, num_gates=20, seed=9)
        netlist = map_mig(mig)
        _models_match_simulation(netlist, 5)

    def test_gate_graph_simulation_matches_network(self, network_forge):
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=6, num_gates=30, seed=4)
        graph = GateGraph(6)
        po_lits = encode_network(graph, net)
        patterns = [net.truth_tables(), None]  # network ground truth
        pi_patterns = []
        num_bits = 1 << 6
        for i in range(6):
            block = (1 << (1 << i)) - 1
            pattern = 0
            for start in range(1 << i, num_bits, 1 << (i + 1)):
                pattern |= block << start
            pi_patterns.append(pattern)
        values = graph.simulate(pi_patterns, num_bits)
        mask = (1 << num_bits) - 1
        got = [graph.lit_value(values, lit, mask) for lit in po_lits]
        assert got == patterns[0]

    def test_structural_sharing_across_networks(self, network_forge):
        # Encoding the same network twice must not add a second gate set.
        net = network_forge(kind="mig", gate_mix="aoig", num_pis=6, num_gates=30, seed=5)
        graph = GateGraph(6)
        first = encode_network(graph, net)
        gates_after_first = len(graph.gates)
        second = encode_network(graph, net)
        assert len(graph.gates) == gates_after_first
        assert first == second

    def test_constant_folding(self):
        graph = GateGraph(2)
        a = graph.pi_lit(0)
        # AND(a, 0) = 0, AND(a, 1) = a, XOR(a, a) = 0, XOR(a, a') = 1.
        assert graph.add_gate(0x8, (a, FALSE_LIT)) == FALSE_LIT
        assert graph.add_gate(0x8, (a, TRUE_LIT)) == a
        assert graph.add_gate(0x6, (a, a)) == FALSE_LIT
        assert graph.add_gate(0x6, (a, a ^ 1)) == TRUE_LIT
        assert not graph.gates

    def test_output_phase_sharing(self):
        # AND and NAND of the same inputs share one variable.
        graph = GateGraph(2)
        a, b = graph.pi_lit(0), graph.pi_lit(1)
        and_lit = graph.add_gate(0x8, (a, b))
        nand_lit = graph.add_gate(0x7, (a, b))
        assert nand_lit == and_lit ^ 1
        assert len(graph.gates) == 1

    def test_three_input_tt_colliding_with_xor2_value(self):
        # Regression: eval_gate's 2-input fast paths used to dispatch on
        # the truth-table value alone, so a genuine 3-input function whose
        # normalized tt equals 0x6 (or 0x8) was evaluated as a 2-input
        # gate, silently ignoring its third input.
        graph = GateGraph(3)
        lits = [graph.pi_lit(i) for i in range(3)]
        in_lits = [lits[0] ^ 1, lits[2], lits[1]]
        out = graph.add_gate(0x21, in_lits)
        solver = SatSolver()
        graph.load_into(solver)
        for minterm in range(8):
            bits = [(minterm >> i) & 1 for i in range(3)]
            values = graph.simulate(bits, 1)
            ins = [bits[0] ^ 1, bits[2], bits[1]]
            expected = (0x21 >> (ins[0] | (ins[1] << 1) | (ins[2] << 2))) & 1
            assert graph.lit_value(values, out, 1) == expected, minterm
            # CNF semantics must agree with the simulator.
            assumptions = [graph.pi_lit(i) ^ (1 - bits[i]) for i in range(3)]
            assert solver.solve(assumptions) == SAT
            assert solver.model_value(out) == bool(expected), minterm

    def test_pi_count_mismatch_rejected(self, network_forge):
        net = network_forge(num_pis=5, num_gates=10, seed=1)
        with pytest.raises(ValueError):
            encode_network(GateGraph(4), net)


class TestMiter:
    def test_miter_of_copy_is_unsat(self, network_forge):
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=6, num_gates=30, seed=7)
        miter = build_miter(net, net.copy())
        solver = SatSolver()
        miter.graph.load_into(solver)
        assert solver.solve([miter.output]) == UNSAT

    def test_miter_across_representations(self, network_forge):
        from repro.network import mig_to_aig

        mig = network_forge(kind="mig", gate_mix="aoig", num_pis=6, num_gates=25, seed=8)
        miter = build_miter(mig, mig_to_aig(mig))
        solver = SatSolver()
        miter.graph.load_into(solver)
        assert solver.solve([miter.output]) == UNSAT

    def test_miter_finds_distinguishing_input(self):
        first = Mig()
        a, b = first.add_pi("a"), first.add_pi("b")
        first.add_po(first.and_(a, b), "f")
        second = Mig()
        a, b = second.add_pi("a"), second.add_pi("b")
        second.add_po(second.or_(a, b), "f")
        miter = build_miter(first, second)
        solver = SatSolver()
        miter.graph.load_into(solver)
        assert solver.solve([miter.output]) == SAT
        assignment = [
            solver.model_value(miter.graph.pi_lit(i)) for i in range(2)
        ]
        # AND and OR differ exactly when inputs disagree.
        assert assignment[0] != assignment[1]

    def test_interface_mismatch_rejected(self, network_forge):
        first = network_forge(num_pis=5, num_gates=10, seed=1)
        second = network_forge(num_pis=6, num_gates=10, seed=1)
        with pytest.raises(ValueError):
            build_miter(first, second)
