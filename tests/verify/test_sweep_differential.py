"""Differential tests: all complete CEC backends must agree (verify/sweep.py).

On narrow (≤16-input) fuzzed networks the ``exhaustive`` backend is ground
truth, so ``sat-sweep`` and ``bdd`` are checked against it both ways:

* equivalent pairs (a network vs its Boolean-rewritten self) must be
  *proved* by every backend;
* seeded single-gate mutants that ground truth refutes must be refuted by
  every backend, each with a counterexample that replays to a real PO
  mismatch through ``simulate_patterns``.
"""

import pytest

from repro.aig.rewrite import rewrite as aig_rewrite
from repro.core import rewrite_mig
from repro.verify import check_equivalence
from repro.verify.sweep import sat_sweep

COMPLETE_BACKENDS = ("exhaustive", "sat-sweep", "bdd")


def _replays(first, second, result):
    """The advertised counterexample must reproduce a PO mismatch."""
    assert result.counterexample is not None, result
    assert result.failing_output is not None, result
    patterns = [1 if bit else 0 for bit in result.counterexample]
    out_first = first.simulate_patterns(patterns, 1)
    out_second = second.simulate_patterns(patterns, 1)
    index = result.failing_output
    assert (out_first[index] ^ out_second[index]) & 1, (
        "counterexample does not replay",
        result,
    )


def _equivalent_pair(network_forge, kind, seed):
    net = network_forge(
        kind=kind, gate_mix="mixed", num_pis=8, num_gates=45, num_pos=4, seed=seed
    )
    optimized = net.copy()
    if kind == "mig":
        rewrite_mig(optimized)
    else:
        optimized = aig_rewrite(optimized)
    return net, optimized


class TestBackendsAgreeOnEquivalentPairs:
    @pytest.mark.parametrize("kind", ["mig", "aig"])
    @pytest.mark.parametrize("seed", [2, 11, 23, 31])
    def test_all_backends_prove(self, network_forge, kind, seed):
        net, optimized = _equivalent_pair(network_forge, kind, seed)
        for backend in COMPLETE_BACKENDS:
            result = check_equivalence(net, optimized, method=backend)
            assert result.equivalent, (backend, kind, seed)
            assert result.method == backend


class TestBackendsRefuteMutants:
    @pytest.mark.parametrize("kind", ["mig", "aig"])
    @pytest.mark.parametrize("seed", [1, 5, 9, 14, 27])
    def test_every_backend_refutes_with_replayable_counterexample(
        self, network_forge, mutant_forge, kind, seed
    ):
        net = network_forge(
            kind=kind, gate_mix="mixed", num_pis=7, num_gates=35, num_pos=3, seed=seed
        )
        # Draw mutation seeds until ground truth (exhaustive simulation)
        # confirms a real functional change — a mutation can be masked by
        # downstream don't-cares.
        mutant = None
        for mutation_seed in range(seed * 100, seed * 100 + 50):
            candidate, _ = mutant_forge(net, seed=mutation_seed)
            if not check_equivalence(net, candidate, method="exhaustive").equivalent:
                mutant = candidate
                break
        assert mutant is not None, "no effective mutant in 50 seeds"

        for backend in COMPLETE_BACKENDS:
            result = check_equivalence(net, mutant, method=backend)
            assert not result.equivalent, (backend, kind, seed)
            assert result.method == backend
            _replays(net, mutant, result)

    def test_auto_dispatch_agrees_with_ground_truth(
        self, network_forge, mutant_forge
    ):
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=7, num_gates=30, seed=3)
        mutant, _ = mutant_forge(net, seed=8)
        truth = check_equivalence(net, mutant, method="exhaustive").equivalent
        auto = check_equivalence(net, mutant)
        assert auto.equivalent == truth
        if not auto.equivalent:
            _replays(net, mutant, auto)


class TestSweepOnWideNetworks:
    """>16 inputs: exhaustive is out; the sweep must prove and refute."""

    @pytest.mark.parametrize("kind", ["mig", "aig"])
    def test_sweep_proves_wide_rewrite_pair(self, network_forge, kind):
        net = network_forge(
            kind=kind, gate_mix="mixed", num_pis=20, num_gates=90, num_pos=5, seed=6
        )
        optimized = net.copy()
        if kind == "mig":
            rewrite_mig(optimized)
        else:
            optimized = aig_rewrite(optimized)
        outcome = sat_sweep(net, optimized)
        assert outcome.proved, outcome.stats

    def test_sweep_refutes_wide_mutant(self, network_forge, mutant_forge):
        net = network_forge(
            kind="mig", gate_mix="mixed", num_pis=20, num_gates=90, num_pos=5, seed=6
        )
        for mutation_seed in range(40):
            mutant, _ = mutant_forge(net, seed=mutation_seed)
            result = check_equivalence(net, mutant)
            if result.equivalent:
                continue  # masked mutation: fine, draw another
            _replays(net, mutant, result)
            return
        pytest.fail("no refutable mutant in 40 seeds")

    def test_sweep_result_reported_through_dispatch(self, network_forge):
        net = network_forge(kind="mig", gate_mix="aoig", num_pis=18, num_gates=60, seed=12)
        result = check_equivalence(net, net.copy())
        assert result.equivalent
        assert result.method == "sat-sweep"
