"""Uncertified all-clears must never pass as certification.

The bugfix contract: an ``EquivalenceResult`` whose ``certified`` flag is
false (the complete backends ran out of budget, or the caller picked the
random backend) means "no mismatch found", *not* "proven equivalent" —
and every certifying consumer (``assert_equivalent``, the flow engine's
verify hook, window certification in the partitioned flow) must reject
it exactly like a proven mismatch.  Each test here forces the uncertified
path with a starved budget (or the explicitly sampling backend) and
asserts the rejection.
"""

import pytest

from repro.flows.batch import optimize_large
from repro.flows.mighty import mighty_optimize
from repro.flows.partitioned import partitioned_rewrite
from repro.verify.equivalence import assert_equivalent, check_equivalence

#: SAT-sweep options guaranteed to exhaust on any non-trivial miter.
_STARVED = {
    "merge_conflict_budget": 1,
    "output_conflict_budget": 1,
    "initial_patterns": 8,
    "max_refinements": 2,
}


def _wide_pair(forge):
    """An (original, optimized) pair too wide for exhaustive simulation,
    restructured enough that a starved SAT sweep cannot prove it."""
    net = forge(kind="mig", num_pis=20, num_gates=120, num_pos=4, seed=3)
    opt = net.copy()
    mighty_optimize(opt, rounds=1, depth_effort=1)
    assert opt.num_gates < net.num_gates
    return net, opt


def test_budget_exhausted_auto_dispatch_is_uncertified(network_forge):
    net, opt = _wide_pair(network_forge)
    result = check_equivalence(net, opt, sat_options=_STARVED)
    assert result.equivalent is True
    assert result.method == "random-simulation"
    assert result.certified is False


def test_random_backend_is_always_uncertified(network_forge):
    net = network_forge(kind="mig", num_pis=6, num_gates=20, num_pos=2, seed=5)
    result = check_equivalence(net, net.copy(), method="random")
    assert result.equivalent is True and result.certified is False
    # Complete backends certify.
    assert check_equivalence(net, net.copy(), method="exhaustive").certified is True


def test_assert_equivalent_rejects_uncertified_verdict(network_forge):
    net, opt = _wide_pair(network_forge)
    with pytest.raises(AssertionError, match="NOT certified"):
        assert_equivalent(net, opt, sat_options=_STARVED)
    # An explicitly requested sampling check is exactly what the caller
    # asked for — no certification claim, no rejection.
    assert_equivalent(net, opt, method="random")


def test_partitioned_rewrite_rejects_uncertified_window(network_forge):
    net = network_forge(kind="mig", num_pis=12, num_gates=120, num_pos=4, seed=3)
    with pytest.raises(RuntimeError, match="NOT be certified"):
        partitioned_rewrite(
            net.copy(),
            max_window_gates=60,
            workers=1,
            certify_options={"method": "random"},
        )


def test_optimize_large_threads_certify_options(network_forge):
    net = network_forge(kind="mig", num_pis=12, num_gates=120, num_pos=4, seed=3)
    with pytest.raises(RuntimeError, match="NOT be certified"):
        optimize_large(
            net.copy(),
            max_window_gates=60,
            workers=1,
            certify_options={"method": "random"},
        )
    # With a real (certifying) budget the same call goes through.
    result = optimize_large(net.copy(), max_window_gates=60, workers=1)
    assert result.details["certified_windows"] == result.details["windows"]
    for verdict in (r["certified"] for r in result.details["per_window"]):
        assert verdict["certified"] is True
