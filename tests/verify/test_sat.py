"""Unit tests for the CDCL SAT solver (verify/sat.py)."""

import itertools
import random

import pytest

from repro.verify.sat import SAT, UNKNOWN, UNSAT, SatSolver


def _lit_true(lit, assignment):
    return assignment[lit >> 1] != (lit & 1)


def _brute_force_sat(num_vars, clauses):
    return any(
        all(any(_lit_true(l, asg) for l in c) for c in clauses)
        for asg in itertools.product((0, 1), repeat=num_vars)
    )


def _pigeonhole(pigeons, holes):
    """PHP(p, h): p pigeons into h holes, one each — UNSAT when p > h."""
    solver = SatSolver()
    var = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        solver.add_clause([var[i][j] << 1 for j in range(holes)])
    for j in range(holes):
        for a in range(pigeons):
            for b in range(a + 1, pigeons):
                solver.add_clause([(var[a][j] << 1) | 1, (var[b][j] << 1) | 1])
    return solver


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert SatSolver().solve() == SAT

    def test_unit_propagation_chain(self):
        s = SatSolver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([a << 1])
        s.add_clause([(a << 1) | 1, b << 1])
        s.add_clause([(b << 1) | 1, c << 1])
        assert s.solve() == SAT
        assert s.model_value(a << 1) and s.model_value(b << 1) and s.model_value(c << 1)

    def test_contradiction_is_unsat(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a << 1])
        assert not s.add_clause([(a << 1) | 1])
        assert s.solve() == UNSAT

    def test_tautology_and_duplicates_are_harmless(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        assert s.add_clause([a << 1, (a << 1) | 1])  # tautology: dropped
        assert s.add_clause([b << 1, b << 1, a << 1])  # duplicate literal
        assert s.solve() == SAT

    def test_model_value_requires_model(self):
        s = SatSolver()
        a = s.new_var()
        with pytest.raises(RuntimeError):
            s.model_value(a << 1)


class TestAgainstBruteForce:
    def test_random_3sat_instances(self):
        rng = random.Random(42)
        for trial in range(80):
            n = rng.randint(3, 8)
            m = rng.randint(3, 45)
            clauses = []
            for _ in range(m):
                vs = rng.sample(range(n), rng.randint(1, 3))
                clauses.append([(v << 1) | rng.randint(0, 1) for v in vs])
            expected = SAT if _brute_force_sat(n, clauses) else UNSAT
            solver = SatSolver()
            solver.ensure_vars(n)
            feasible = True
            for clause in clauses:
                if not solver.add_clause(clause):
                    feasible = False
                    break
            result = solver.solve() if feasible else UNSAT
            assert result == expected, (trial, clauses)
            if result == SAT:
                model = [solver.model_value(v << 1) for v in range(n)]
                assert all(
                    any(model[l >> 1] != (l & 1) for l in c) for c in clauses
                ), (trial, "model does not satisfy the formula")


class TestPigeonhole:
    def test_php_unsat(self):
        assert _pigeonhole(5, 4).solve() == UNSAT

    def test_php_sat_when_roomy(self):
        assert _pigeonhole(4, 4).solve() == SAT

    def test_conflict_budget_yields_unknown(self):
        solver = _pigeonhole(7, 6)
        assert solver.solve(max_conflicts=20) == UNKNOWN
        # The clause database survived; a bigger budget settles it.
        assert solver.solve(max_conflicts=1_000_000) == UNSAT


class TestAssumptions:
    def test_assumption_forcing_and_reuse(self):
        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a << 1, b << 1])
        assert s.solve([(a << 1) | 1, (b << 1) | 1]) == UNSAT
        assert s.solve([(a << 1) | 1]) == SAT
        assert s.model_value(b << 1)
        # Without assumptions the formula is still satisfiable (incremental
        # solving must not have polluted the database).
        assert s.solve() == SAT

    def test_assumption_conflicting_with_unit_clause(self):
        s = SatSolver()
        a = s.new_var()
        s.add_clause([a << 1])
        assert s.solve([(a << 1) | 1]) == UNSAT
        assert s.solve([a << 1]) == SAT

    def test_many_incremental_calls_stay_consistent(self):
        # An equality chain x0 == x1 == ... == x7: any polarity assumption
        # on (x0, x7) must answer equal-phase SAT / opposite-phase UNSAT.
        s = SatSolver()
        xs = [s.new_var() for _ in range(8)]
        for u, v in zip(xs, xs[1:]):
            s.add_clause([(u << 1) | 1, v << 1])
            s.add_clause([u << 1, (v << 1) | 1])
        first, last = xs[0] << 1, xs[-1] << 1
        for _ in range(10):
            assert s.solve([first, last]) == SAT
            assert s.solve([first, last ^ 1]) == UNSAT
            assert s.solve([first ^ 1, last ^ 1]) == SAT
            assert s.solve([first ^ 1, last]) == UNSAT

    def test_unknown_assumption_variable_rejected(self):
        s = SatSolver()
        with pytest.raises(ValueError):
            s.solve([4])


class TestClauseDatabaseReduction:
    """LBD-based learned-clause deletion (long incremental sessions)."""

    def test_reduction_triggers_and_counts(self):
        solver = _pigeonhole(8, 7)
        solver._reduce_limit = 120  # force reductions on a hard instance
        assert solver.solve() == UNSAT
        stats = solver.stats
        assert stats["reductions"] > 0
        assert stats["clauses_deleted"] > 0
        # The in-memory database shrank below what was learned in total.
        assert stats["learnt_clauses"] < stats["conflicts"]

    def test_answers_survive_aggressive_reduction(self):
        # Same oracle harness as TestAgainstBruteForce, with the database
        # limit small enough that reductions run constantly: deleting
        # learned clauses must never flip a verdict or break a model.
        rng = random.Random(7)
        for trial in range(40):
            n = rng.randint(4, 8)
            m = rng.randint(10, 45)
            clauses = []
            for _ in range(m):
                vs = rng.sample(range(n), 3)
                clauses.append([(v << 1) | rng.randint(0, 1) for v in vs])
            expected = SAT if _brute_force_sat(n, clauses) else UNSAT
            solver = SatSolver(reduce_base=100)
            solver._reduce_limit = 5
            solver.ensure_vars(n)
            feasible = all(solver.add_clause(c) for c in clauses)
            result = solver.solve() if feasible else UNSAT
            assert result == expected, (trial, clauses)
            if result == SAT:
                model = [solver.model_value(v << 1) for v in range(n)]
                assert all(
                    any(model[l >> 1] != (l & 1) for l in c) for c in clauses
                ), (trial, "model does not satisfy the formula")

    def test_incremental_session_stays_sound_across_reductions(self):
        # Equality chain under alternating assumptions, with a tiny limit:
        # reductions interleave with incremental calls and must preserve
        # the learned-clause soundness across them.
        s = SatSolver(reduce_base=100)
        s._reduce_limit = 4
        xs = [s.new_var() for _ in range(10)]
        for u, v in zip(xs, xs[1:]):
            s.add_clause([(u << 1) | 1, v << 1])
            s.add_clause([u << 1, (v << 1) | 1])
        first, last = xs[0] << 1, xs[-1] << 1
        for _ in range(12):
            assert s.solve([first, last]) == SAT
            assert s.solve([first, last ^ 1]) == UNSAT

    def test_deleted_clauses_fully_detached(self):
        solver = _pigeonhole(7, 6)
        solver._reduce_limit = 60
        assert solver.solve() == UNSAT
        assert solver.stats["clauses_deleted"] > 0
        # Watch-list consistency after reductions: every surviving learned
        # clause is watched exactly twice (at its two watch positions) and
        # has an LBD record; nothing else with an LBD record survives.
        learnt_ids = {id(c) for c in solver._learnts}
        assert set(solver._lbd) == learnt_ids
        watch_counts = {lid: 0 for lid in learnt_ids}
        for watch_list in solver._watches:
            for clause in watch_list:
                if id(clause) in watch_counts:
                    watch_counts[id(clause)] += 1
        assert all(count == 2 for count in watch_counts.values())
