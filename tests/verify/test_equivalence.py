"""Tests for the combinational equivalence checker."""

import pytest

from repro.core import Mig, random_aoig_mig, random_mig
from repro.core.signal import negate
from repro.network import mig_to_aig
from repro.verify import assert_equivalent, check_equivalence


class TestEquivalence:
    def test_identical_networks(self):
        mig = random_mig(6, 20, num_pos=3, seed=1)
        result = check_equivalence(mig, mig.copy())
        assert result.equivalent
        assert result.method == "exhaustive"

    def test_detects_difference_exhaustive(self):
        first = Mig()
        a, b = first.add_pi("a"), first.add_pi("b")
        first.add_po(first.and_(a, b), "f")
        second = Mig()
        a, b = second.add_pi("a"), second.add_pi("b")
        second.add_po(second.or_(a, b), "f")
        result = check_equivalence(first, second)
        assert not result.equivalent
        assert result.counterexample is not None
        assert result.failing_output == 0

    def test_detects_single_output_inversion(self):
        mig = random_mig(5, 15, num_pos=2, seed=3)
        broken = mig.copy()
        broken.set_po(1, negate(broken.po_signals()[1]))
        assert not check_equivalence(mig, broken).equivalent

    def test_cross_representation(self):
        mig = random_aoig_mig(7, 30, num_pos=4, seed=9)
        aig = mig_to_aig(mig)
        assert check_equivalence(mig, aig).equivalent

    def test_wide_networks_get_a_sat_proof(self):
        # >16 inputs: the exhaustive backend is out, so the automatic
        # dispatch escalates from random simulation to a SAT-sweep proof.
        mig = random_aoig_mig(20, 60, num_pos=5, seed=4)
        result = check_equivalence(mig, mig.copy(), num_random_vectors=512)
        assert result.equivalent
        assert result.method == "sat-sweep"

    def test_random_backend_can_be_forced(self):
        mig = random_aoig_mig(20, 60, num_pos=5, seed=4)
        result = check_equivalence(mig, mig.copy(), method="random")
        assert result.equivalent
        assert result.method == "random-simulation"

    def test_bdd_backed_check(self):
        # The (memory-bound but complete) BDD backend remains forcible.
        mig = random_aoig_mig(17, 40, num_pos=3, seed=6)
        result = check_equivalence(mig, mig.copy(), method="bdd")
        assert result.equivalent
        assert result.method == "bdd"

    def test_bdd_refutation_carries_replayable_counterexample(self):
        # Regression: _check_bdd used to report counterexample=None; a
        # satisfying path of the XOR of the differing BDDs is extracted now.
        mig = random_aoig_mig(17, 40, num_pos=3, seed=6)
        broken = mig.copy()
        broken.set_po(1, negate(broken.po_signals()[1]))
        result = check_equivalence(mig, broken, method="bdd")
        assert not result.equivalent
        assert result.method == "bdd"
        assert result.counterexample is not None
        patterns = [1 if bit else 0 for bit in result.counterexample]
        a = mig.simulate_patterns(patterns, 1)
        b = broken.simulate_patterns(patterns, 1)
        assert (a[result.failing_output] ^ b[result.failing_output]) & 1

    def test_sat_sweep_refutation_counterexample_replays(self):
        mig = random_aoig_mig(20, 60, num_pos=4, seed=2)
        broken = mig.copy()
        broken.set_po(2, negate(broken.po_signals()[2]))
        result = check_equivalence(mig, broken, method="sat-sweep")
        assert not result.equivalent
        assert result.counterexample is not None
        patterns = [1 if bit else 0 for bit in result.counterexample]
        a = mig.simulate_patterns(patterns, 1)
        b = broken.simulate_patterns(patterns, 1)
        assert (a[result.failing_output] ^ b[result.failing_output]) & 1

    def test_unknown_method_rejected(self):
        mig = random_mig(4, 8, num_pos=1, seed=1)
        with pytest.raises(ValueError):
            check_equivalence(mig, mig.copy(), method="magic")

    def test_spurious_counterexample_raises(self):
        from repro.verify import CounterexampleError
        from repro.verify.equivalence import EquivalenceResult, _validated

        mig = random_mig(4, 8, num_pos=1, seed=1)
        bogus = EquivalenceResult(
            equivalent=False,
            method="sat-sweep",
            counterexample=[False] * 4,
            failing_output=0,
        )
        with pytest.raises(CounterexampleError):
            _validated(mig, mig.copy(), bogus)

    def test_mismatched_interfaces_rejected(self):
        small = random_mig(4, 10, num_pos=2, seed=1)
        big = random_mig(5, 10, num_pos=2, seed=1)
        with pytest.raises(ValueError):
            check_equivalence(small, big)

    def test_assert_equivalent_raises_with_context(self):
        first = Mig()
        a = first.add_pi("a")
        first.add_po(a, "f")
        second = Mig()
        a = second.add_pi("a")
        second.add_po(negate(a), "f")
        with pytest.raises(AssertionError):
            assert_equivalent(first, second)


class TestNetworkConversions:
    def test_mig_aig_roundtrip(self):
        from repro.network import aig_to_mig

        mig = random_mig(6, 25, num_pos=3, seed=12)
        aig = mig_to_aig(mig)
        back = aig_to_mig(aig)
        assert check_equivalence(mig, back).equivalent
        assert back.pi_names() == mig.pi_names()
        assert back.po_names() == mig.po_names()

    def test_sat_sweep_covers_mapped_netlists(self):
        # The SAT backend must understand all three network types: here a
        # wide MIG against its technology-mapped standard-cell netlist.
        from repro.mapping import map_mig

        mig = random_aoig_mig(18, 60, num_pos=4, seed=21)
        netlist = map_mig(mig)
        result = check_equivalence(mig, netlist, method="sat-sweep")
        assert result.equivalent
        assert result.method == "sat-sweep"
