"""Probe-flush batching in ``sat_sweep`` must never change a verdict.

The refutation-batch width (``probe_flush_bits``) only controls *when*
queued counterexample patterns are folded into the simulation
signatures — between flushes, candidate lookups probe stale equivalence
classes.  Staleness is sound by construction (every merge is SAT-proved;
a stale bucket is a superset of its refined descendants, so no equal
pair is ever missed), and these tests pin that down: identical statuses,
counterexample validity and merge counts across widths 1 (per-probe
flushing, the pre-batching protocol), the default, and 64, on
equivalent pairs, refuted mutants, and a refinement-heavy
near-equivalent workload.
"""

import random

import pytest

from repro.core import Mig, mutate_network, rewrite_mig, random_network
from repro.verify.sweep import _DEFAULT_PROBE_FLUSH_BITS, sat_sweep

WIDTHS = sorted({1, _DEFAULT_PROBE_FLUSH_BITS, 64})


def _absorption_pair(num_gates=400, num_pos=12, layers=2, rare_width=10, seed=17):
    """A pair that is equivalent but forces genuine signature refinements:
    every PO of the copy is wrapped in ``g AND (g OR rare)`` absorption
    stages whose ``rare`` AND-cone agrees with constant 0 on almost every
    input — the classic FRAIG false-candidate shape."""
    first = random_network(
        Mig, num_pis=16, num_gates=num_gates, num_pos=num_pos, seed=seed,
        gate_mix="mixed",
    )
    second = first.copy()
    rng = random.Random(seed + 1)
    pis = [(node << 1) for node in second.pi_nodes()]
    for index, po in enumerate(second.po_signals()):
        sig = po
        for _ in range(layers):
            chosen = rng.sample(pis, rare_width)
            rare = chosen[0]
            for pi in chosen[1:]:
                rare = second.and_(rare, pi)
            sig = second.and_(sig, second.or_(sig, rare))
        second.set_po(index, sig)
    second.cleanup()
    return first, second


class TestVerdictsInvariantAcrossWidths:
    @pytest.mark.parametrize("seed", [3, 19])
    def test_equivalent_pair_proved_at_every_width(self, seed):
        net = random_network(
            Mig, num_pis=10, num_gates=120, num_pos=6, seed=seed, gate_mix="mixed"
        )
        optimized = net.copy()
        rewrite_mig(optimized)
        for width in WIDTHS:
            outcome = sat_sweep(net, optimized, probe_flush_bits=width)
            assert outcome.status == "equivalent", (width, outcome)

    @pytest.mark.parametrize("seed", [5, 29])
    def test_mutant_refuted_with_replaying_counterexample(self, seed):
        net = random_network(
            Mig, num_pis=10, num_gates=120, num_pos=6, seed=seed, gate_mix="mixed"
        )
        mutant, _ = mutate_network(net, seed=seed + 1)
        for width in WIDTHS:
            outcome = sat_sweep(net, mutant, probe_flush_bits=width)
            assert outcome.status == "inequivalent", (width, outcome)
            patterns = [1 if bit else 0 for bit in outcome.counterexample]
            index = outcome.failing_output
            diff = (
                net.simulate_patterns(patterns, 1)[index]
                ^ mutant.simulate_patterns(patterns, 1)[index]
            )
            assert diff & 1, (width, outcome)

    def test_refinement_heavy_pair_agrees_and_actually_refines(self):
        first, second = _absorption_pair()
        stats_by_width = {}
        for width in WIDTHS:
            outcome = sat_sweep(first, second, probe_flush_bits=width)
            assert outcome.status == "equivalent", (width, outcome)
            stats_by_width[width] = outcome.stats
        # The workload must exercise the batching path for the comparison
        # to mean anything: refutations happen at every width, and merges
        # (the absorption stages collapsing onto their originals) match
        # exactly — staleness may add SAT calls, never change a merge.
        merges = {stats["merges"] for stats in stats_by_width.values()}
        assert len(merges) == 1
        for width, stats in stats_by_width.items():
            assert stats["refinements"] > 0, (width, stats)
        wide = max(WIDTHS)
        assert (
            stats_by_width[wide]["batched_flushes"]
            < stats_by_width[1]["batched_flushes"]
        )

    def test_invalid_width_rejected(self):
        net = random_network(
            Mig, num_pis=6, num_gates=30, num_pos=2, seed=1, gate_mix="mixed"
        )
        with pytest.raises(ValueError):
            sat_sweep(net, net.copy(), probe_flush_bits=0)
