"""Tests for the AIG substrate and the resyn2-style baseline optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import Aig, balance, resyn2, rewrite, run_script
from repro.aig.activity import signal_probabilities, total_switching_activity
from repro.aig.balance import collect_conjuncts
from repro.core import random_aoig_mig
from repro.core.signal import negate, node_of
from repro.network import mig_to_aig
from repro.verify import assert_equivalent, check_equivalence


def random_aig(seed=1, num_pis=8, num_gates=60, num_pos=5):
    return mig_to_aig(random_aoig_mig(num_pis, num_gates, num_pos=num_pos, seed=seed))


class TestAigConstruction:
    def test_basic_operators(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        aig.add_po(aig.and_(a, b), "and")
        aig.add_po(aig.or_(a, b), "or")
        aig.add_po(aig.xor_(a, b), "xor")
        aig.add_po(aig.nand_(a, b), "nand")
        tts = aig.truth_tables()
        assert tts == [0b1000, 0b1110, 0b0110, 0b0111]

    def test_constant_folding_and_strash(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        assert aig.and_(a, aig.constant(False)) == aig.constant(False)
        assert aig.and_(a, aig.constant(True)) == a
        assert aig.and_(a, a) == a
        assert aig.and_(a, negate(a)) == aig.constant(False)
        f1 = aig.and_(a, b)
        f2 = aig.and_(b, a)
        assert f1 == f2
        aig.add_po(f1, "f")
        assert aig.num_gates == 1

    def test_maj_encoding(self):
        aig = Aig()
        a, b, c = (aig.add_pi(n) for n in "abc")
        aig.add_po(aig.maj_(a, b, c), "m")
        (tt,) = aig.truth_tables()
        assert tt == 0b11101000

    def test_depth_and_reachability(self):
        aig = Aig()
        pis = [aig.add_pi(f"x{i}") for i in range(4)]
        chain = pis[0]
        for p in pis[1:]:
            chain = aig.and_(chain, p)
        _dangling = aig.and_(pis[0], negate(pis[1]))
        aig.add_po(chain, "f")
        assert aig.depth() == 3
        assert aig.num_gates == 3  # dangling node not counted

    def test_copy(self):
        aig = random_aig(seed=4)
        clone = aig.copy()
        assert clone.pi_names() == aig.pi_names()
        assert check_equivalence(aig, clone).equivalent


class TestBalance:
    def test_collect_conjuncts_chain(self):
        aig = Aig()
        pis = [aig.add_pi(f"x{i}") for i in range(4)]
        chain = aig.and_(aig.and_(aig.and_(pis[0], pis[1]), pis[2]), pis[3])
        leaves = collect_conjuncts(aig, chain)
        assert sorted(leaves) == sorted(pis)

    def test_balance_reduces_chain_depth(self):
        aig = Aig()
        pis = [aig.add_pi(f"x{i}") for i in range(8)]
        chain = pis[0]
        for p in pis[1:]:
            chain = aig.and_(chain, p)
        aig.add_po(chain, "f")
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert_equivalent(aig, balanced)

    def test_balance_preserves_function_random(self):
        for seed in (1, 2, 3):
            aig = random_aig(seed=seed)
            balanced = balance(aig)
            assert_equivalent(aig, balanced)
            assert balanced.depth() <= aig.depth()


class TestRewriteAndResyn:
    def test_rewrite_preserves_function(self):
        for seed in (5, 6):
            aig = random_aig(seed=seed)
            rewritten = rewrite(aig)
            assert_equivalent(aig, rewritten)

    def test_rewrite_removes_redundant_structure(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        # (a & b) & (a & !b) == 0, hidden across two levels.
        f = aig.and_(aig.and_(a, b), aig.and_(a, negate(b)))
        aig.add_po(f, "f")
        rewritten = rewrite(aig)
        assert rewritten.num_gates == 0

    def test_resyn2_improves_or_preserves(self):
        for seed in (7, 8, 9):
            aig = random_aig(seed=seed)
            optimized, stats = resyn2(aig)
            assert_equivalent(aig, optimized)
            assert optimized.num_gates <= aig.num_gates
            assert stats.final_size == optimized.num_gates
            assert stats.passes

    def test_run_script_unknown_pass(self):
        aig = random_aig(seed=10)
        with pytest.raises(ValueError):
            run_script(aig, ("balance", "does_not_exist"))

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_resyn2_equivalence_property(self, seed):
        aig = random_aig(seed=seed, num_pis=6, num_gates=30, num_pos=3)
        optimized, _ = resyn2(aig)
        assert_equivalent(aig, optimized)


class TestAigActivity:
    def test_probabilities_basic(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        f = aig.and_(a, b)
        aig.add_po(f, "f")
        probs = signal_probabilities(aig)
        assert probs[node_of(f)] == pytest.approx(0.25)
        assert total_switching_activity(aig) == pytest.approx(2 * 0.25 * 0.75)

    def test_biased_inputs(self):
        aig = Aig()
        a, b = aig.add_pi("a"), aig.add_pi("b")
        aig.add_po(aig.and_(a, b), "f")
        activity = total_switching_activity(aig, {"a": 1.0, "b": 1.0})
        assert activity == pytest.approx(0.0)

    def test_invalid_probability_rejected(self):
        aig = Aig()
        a = aig.add_pi("a")
        aig.add_po(a, "f")
        with pytest.raises(ValueError):
            signal_probabilities(aig, {"a": 1.5})
