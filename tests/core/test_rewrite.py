"""Tests for MIG Boolean cut rewriting (core/rewrite.py + the flow pass)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench_circuits import build_benchmark
from repro.core import Mig, rewrite_mig
from repro.flows import MigRewrite, Pipeline
from repro.verify import assert_equivalent, check_equivalence

SMALL = ["alu4", "count", "misex3"]


class TestRewriteMig:
    @pytest.mark.parametrize("name", SMALL)
    def test_preserves_function_and_never_regresses(self, name):
        mig = build_benchmark(name, Mig)
        reference = build_benchmark(name, Mig)
        size_before, depth_before = mig.num_gates, mig.depth()
        stats = rewrite_mig(mig)
        mig.check_integrity()
        assert check_equivalence(mig, reference, num_random_vectors=1024).equivalent
        assert mig.num_gates <= size_before
        assert mig.depth() <= depth_before
        # The recorded gain is the sum of the per-rewrite MFFC estimates; the
        # realised improvement can only be larger (substitution cascades
        # reclaim additional strash/Ω.M collapses in the fanout).
        assert stats["gain"] <= size_before - mig.num_gates

    def test_finds_gains_algebra_misses(self):
        # A cone computing a plain majority through six nodes: Boolean
        # matching collapses it to the single database structure.
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        f = mig.or_(mig.and_(a, b), mig.and_(c, mig.or_(a, b)))
        mig.add_po(f, "f")
        assert mig.num_gates == 4
        stats = rewrite_mig(mig)
        assert stats["rewrites"] >= 1
        assert mig.num_gates == 1  # M(a, b, c)
        reference = Mig()
        a, b, c = (reference.add_pi(n) for n in "abc")
        reference.add_po(reference.maj(a, b, c), "f")
        assert_equivalent(mig, reference)

    def test_constant_cone_collapses(self):
        mig = Mig()
        a, b = mig.add_pi("a"), mig.add_pi("b")
        # (a·b) · (a·b') == 0, hidden across two levels of majority logic.
        f = mig.and_(mig.and_(a, b), mig.and_(a, mig.not_(b)))
        mig.add_po(f, "f")
        rewrite_mig(mig)
        assert mig.num_gates == 0

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_equivalence_property(self, network_forge, seed):
        mig = network_forge(kind="mig", gate_mix="aoig", num_pis=6, num_gates=30, seed=seed)
        reference = mig.copy()
        depth_before = mig.depth()
        rewrite_mig(mig)
        mig.check_integrity()
        assert_equivalent(mig, reference)
        assert mig.depth() <= depth_before

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_pure_majority_networks_property(self, network_forge, seed):
        mig = network_forge(kind="mig", gate_mix="maj", num_pis=6, num_gates=25, seed=seed)
        reference = mig.copy()
        rewrite_mig(mig)
        assert_equivalent(mig, reference)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_mixed_gate_networks_property(self, network_forge, seed):
        # XOR/MUX-rich cones exercise the non-trivial NPN classes of the
        # structure database far more than plain AND/OR soup.
        mig = network_forge(kind="mig", gate_mix="mixed", num_pis=7, num_gates=35, seed=seed)
        reference = mig.copy()
        rewrite_mig(mig)
        mig.check_integrity()
        assert_equivalent(mig, reference)

    @pytest.mark.parametrize("seed", [37, 56, 158])
    def test_alias_collapse_never_overstates_gain(self, network_forge, seed):
        # Regression class: a fanout of the rewritten root used to collapse
        # back onto it during the substitution cascade, leaving the root
        # (and its whole assumed-freed cone) alive while the gain was
        # still credited.  The engine now detects the surviving root,
        # merges the duplicate replacement back and counts nothing.
        mig = network_forge(kind="mig", gate_mix="aoig", num_pis=7, num_gates=60, num_pos=4, seed=seed)
        mig.cleanup()
        reference = mig.copy()
        size_before = mig.num_gates
        stats = rewrite_mig(mig)
        mig.check_integrity()
        assert stats["gain"] <= size_before - mig.num_gates
        assert mig.num_gates <= size_before
        assert_equivalent(mig, reference)

    def test_level_growth_bound_lifted(self):
        # Size-first mode may trade depth for size but must stay equivalent.
        mig = build_benchmark("alu4", Mig)
        reference = build_benchmark("alu4", Mig)
        size_before = mig.num_gates
        rewrite_mig(mig, max_level_growth=None, allow_zero_gain=True)
        assert check_equivalence(mig, reference, num_random_vectors=1024).equivalent
        assert mig.num_gates <= size_before


class TestMigRewritePass:
    def test_pass_in_pipeline_records_metrics(self):
        mig = build_benchmark("count", Mig)
        reference = build_benchmark("count", Mig)
        result = Pipeline([MigRewrite()], name="boolean").run(mig)
        assert result.pass_names() == ["mig_rewrite"]
        metrics = result.passes[0]
        assert metrics.size_after <= metrics.size_before
        assert metrics.depth_after <= metrics.depth_before
        assert "rewrites" in metrics.details
        assert check_equivalence(mig, reference, num_random_vectors=1024).equivalent
