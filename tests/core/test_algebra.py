"""Tests of the symbolic MIG Boolean algebra (axioms Ω and derived rules Ψ)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import algebra as alg
from repro.core.algebra import (
    FALSE,
    TRUE,
    equivalent,
    evaluate,
    expr_depth,
    expr_size,
    from_aoig_and,
    from_aoig_or,
    inv,
    maj,
    omega_associativity,
    omega_commutativity,
    omega_distributivity_lr,
    omega_distributivity_rl,
    omega_inverter_propagation,
    omega_majority,
    psi_complementary_associativity,
    psi_relevance,
    psi_substitution,
    replace_variable,
    truth_table,
    var,
    variables,
)

x, y, z, u, v, w = (var(n) for n in "xyzuvw")


# --------------------------------------------------------------------- #
# Hypothesis strategy: random (M, ', 0, 1)-expressions over few variables
# --------------------------------------------------------------------- #
VARIABLES = [x, y, z, u, v]


def exprs(max_leaves=5, max_depth=4):
    leaf = st.sampled_from(VARIABLES + [TRUE, FALSE])
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.builds(inv, children),
            st.builds(maj, children, children, children),
        ),
        max_leaves=2 ** max_depth,
    )


class TestEvaluation:
    def test_majority_semantics(self):
        e = maj(x, y, z)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("xyz", bits))
            assert evaluate(e, assignment) == (sum(bits) >= 2)

    def test_constants_and_inverter(self):
        assert evaluate(TRUE, {}) is True
        assert evaluate(FALSE, {}) is False
        assert evaluate(inv(TRUE), {}) is False
        assert inv(inv(x)) == x

    def test_and_or_encodings(self):
        assert equivalent(from_aoig_and(x, y), maj(x, y, FALSE))
        for bits in itertools.product([False, True], repeat=2):
            assignment = dict(zip("xy", bits))
            assert evaluate(from_aoig_and(x, y), assignment) == (bits[0] and bits[1])
            assert evaluate(from_aoig_or(x, y), assignment) == (bits[0] or bits[1])

    def test_variables_and_missing_value(self):
        e = maj(x, inv(y), TRUE)
        assert variables(e) == frozenset({"x", "y"})
        with pytest.raises(KeyError):
            evaluate(e, {"x": True})

    def test_truth_table_order(self):
        e = maj(x, y, FALSE)  # AND
        assert truth_table(e, order=["x", "y"]) == 0b1000

    def test_size_and_depth(self):
        e = maj(maj(x, y, FALSE), z, TRUE)
        assert expr_size(e) == 2
        assert expr_depth(e) == 2
        assert expr_size(inv(e)) == 2


class TestOmegaAxioms:
    def test_commutativity_all_permutations(self):
        e = maj(x, y, z)
        for perm in itertools.permutations(range(3)):
            assert equivalent(e, omega_commutativity(e, tuple(perm)))

    def test_commutativity_invalid_permutation(self):
        with pytest.raises(ValueError):
            omega_commutativity(maj(x, y, z), (0, 0, 1))

    def test_majority_equal_operands(self):
        assert omega_majority(maj(x, x, z)) == x
        assert omega_majority(maj(x, z, x)) == x
        assert omega_majority(maj(z, x, x)) == x

    def test_majority_complementary_operands(self):
        assert omega_majority(maj(x, inv(x), z)) == z
        assert omega_majority(maj(inv(x), z, x)) == z

    def test_majority_no_match(self):
        assert omega_majority(maj(x, y, z)) is None

    def test_majority_identity_0_x_1(self):
        # M(0, x, 1) = x, the property used in Theorem 3.4.
        assert omega_majority(maj(FALSE, x, TRUE)) == x

    def test_associativity(self):
        e = maj(x, u, maj(y, u, z))
        result = omega_associativity(e)
        assert result is not None
        assert equivalent(e, result)
        # The exchanged operands must actually have swapped.
        assert result == maj(z, u, maj(y, u, x))

    def test_associativity_no_shared_operand(self):
        assert omega_associativity(maj(x, u, maj(y, v, z))) is None

    def test_distributivity_lr(self):
        e = maj(x, y, maj(u, v, z))
        result = omega_distributivity_lr(e)
        assert result is not None
        assert equivalent(e, result)
        assert expr_size(result) == expr_size(e) + 1

    def test_distributivity_rl(self):
        e = maj(maj(x, y, u), maj(x, y, v), z)
        result = omega_distributivity_rl(e)
        assert result is not None
        assert equivalent(e, result)
        assert expr_size(result) == expr_size(e) - 1

    def test_distributivity_roundtrip(self):
        e = maj(x, y, maj(u, v, z))
        assert omega_distributivity_rl(omega_distributivity_lr(e)) == e

    def test_inverter_propagation(self):
        e = inv(maj(x, y, z))
        pushed = omega_inverter_propagation(e)
        assert equivalent(e, pushed)
        assert pushed == maj(inv(x), inv(y), inv(z))

    def test_inverter_propagation_from_regular(self):
        e = maj(x, y, z)
        assert equivalent(e, omega_inverter_propagation(e))

    def test_inverter_propagation_invalid(self):
        with pytest.raises(ValueError):
            omega_inverter_propagation(x)


class TestPsiRules:
    def test_relevance(self):
        e = maj(x, y, maj(x, u, z))
        result = psi_relevance(e, x_pos=0, y_pos=1)
        assert result is not None
        assert equivalent(e, result)
        # x inside the third operand must have become y'.
        assert result == maj(x, y, maj(inv(y), u, z))

    def test_relevance_requires_variable(self):
        e = maj(maj(x, y, z), y, z)
        assert psi_relevance(e, x_pos=0, y_pos=1) is None

    def test_complementary_associativity(self):
        e = maj(x, u, maj(y, inv(u), z))
        result = psi_complementary_associativity(e)
        assert result is not None
        assert equivalent(e, result)
        assert result == maj(x, u, maj(y, x, z))

    def test_complementary_associativity_no_match(self):
        assert psi_complementary_associativity(maj(x, u, maj(y, u, z))) is None

    def test_substitution(self):
        e = maj(x, y, z)
        result = psi_substitution(e, "x", u)
        assert equivalent(e, result)

    def test_substitution_requires_occurrence(self):
        with pytest.raises(ValueError):
            psi_substitution(maj(y, z, u), "x", v)

    def test_substitution_rejects_dependent_replacement(self):
        with pytest.raises(ValueError):
            psi_substitution(maj(x, y, z), "x", maj(x, y, z))

    def test_replace_variable(self):
        e = maj(x, inv(x), y)
        replaced = replace_variable(e, "x", z)
        assert replaced == maj(z, inv(z), y)


class TestPaperExamples:
    """The worked examples from Section III / IV of the paper."""

    def test_fig1a_xor3_aoig_transposition(self):
        # f = x ⊕ y ⊕ z built from AND/OR/INV, transposed into MIG form.
        def xor(a, b):
            return from_aoig_or(
                from_aoig_and(a, inv(b)), from_aoig_and(inv(a), b)
            )

        f = xor(xor(x, y), z)
        reference = 0
        for i in range(8):
            bits = [(i >> k) & 1 for k in range(3)]
            if bits[0] ^ bits[1] ^ bits[2]:
                reference |= 1 << i
        assert truth_table(f, order=["x", "y", "z"]) == reference

    def test_fig2a_size_optimization_walkthrough(self):
        # h = M(x, M(x, z', w), M(x, y, z)) optimizes to x (Section IV-A).
        h = maj(x, maj(x, inv(z), w), maj(x, y, z))
        # Step 1: associativity swaps w and M(x, y, z).
        step1 = maj(x, maj(x, inv(z), maj(x, y, z)), w)
        assert equivalent(h, step1)
        # Step 2: relevance replaces z by x inside the reconvergent operand.
        inner = maj(x, inv(z), maj(x, y, z))
        step2_inner = psi_relevance(maj(inv(z), x, maj(x, y, z)), x_pos=0, y_pos=1)
        assert step2_inner is not None
        assert equivalent(inner, step2_inner)
        # Step 3: the whole expression collapses to x.
        assert equivalent(h, x)

    def test_fig2d_activity_example_function_preserved(self):
        # k = M(x, y, M(x', z, w)) = M(x, y, M(y, z, w)) by Ψ.R.
        k = maj(x, y, maj(inv(x), z, w))
        rewritten = psi_relevance(k, x_pos=0, y_pos=1)
        assert rewritten is not None
        assert equivalent(k, rewritten)


class TestAxiomSoundnessProperties:
    """Property-based soundness: every axiom preserves the Boolean function."""

    @settings(max_examples=60, deadline=None)
    @given(exprs(), exprs(), exprs())
    def test_majority_axiom_equal(self, a, b, c):
        assert equivalent(maj(a, a, c), a)
        assert equivalent(maj(a, inv(a), c), c)

    @settings(max_examples=60, deadline=None)
    @given(exprs(), exprs(), exprs())
    def test_commutativity_property(self, a, b, c):
        e = maj(a, b, c)
        assert equivalent(e, maj(b, a, c))
        assert equivalent(e, maj(c, b, a))

    @settings(max_examples=40, deadline=None)
    @given(exprs(), exprs(), exprs(), exprs(), exprs())
    def test_distributivity_property(self, a, b, c, d, e5):
        lhs = maj(a, b, maj(c, d, e5))
        rhs = maj(maj(a, b, c), maj(a, b, d), e5)
        assert equivalent(lhs, rhs)

    @settings(max_examples=40, deadline=None)
    @given(exprs(), exprs(), exprs(), exprs())
    def test_associativity_property(self, a, b, c, d):
        lhs = maj(a, b, maj(c, b, d))
        rhs = maj(d, b, maj(c, b, a))
        assert equivalent(lhs, rhs)

    @settings(max_examples=40, deadline=None)
    @given(exprs(), exprs(), exprs())
    def test_inverter_propagation_property(self, a, b, c):
        assert equivalent(inv(maj(a, b, c)), maj(inv(a), inv(b), inv(c)))

    @settings(max_examples=40, deadline=None)
    @given(exprs(), exprs(), exprs(), exprs())
    def test_complementary_associativity_property(self, a, b, c, d):
        lhs = maj(a, b, maj(c, inv(b), d))
        rhs = maj(a, b, maj(c, a, d))
        assert equivalent(lhs, rhs)

    @settings(max_examples=30, deadline=None)
    @given(exprs(max_depth=3))
    def test_substitution_property(self, e):
        names = sorted(variables(e))
        if not names:
            return
        result = psi_substitution(e, names[0], w)
        assert equivalent(e, result)
