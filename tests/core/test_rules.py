"""Tests for graph-level Ω / Ψ rule application on MIG networks."""

import pytest

from repro.core import random_aoig_mig, random_mig
from repro.core.mig import Mig
from repro.core.rules import (
    cone_nodes,
    cone_size,
    effective_fanins,
    rebuild_cone,
    sweep_majority,
    try_associativity,
    try_complementary_associativity,
    try_distributivity_lr,
    try_distributivity_rl,
    try_relevance,
    try_substitution,
)
from repro.core.signal import negate, node_of
from repro.verify import assert_equivalent, check_equivalence


def make_network_with(builder):
    """Build a MIG through ``builder(mig, pis)`` and register all results as POs."""
    mig = Mig()
    pis = [mig.add_pi(f"x{i}") for i in range(6)]
    outputs = builder(mig, pis)
    if isinstance(outputs, int):
        outputs = [outputs]
    for i, out in enumerate(outputs):
        mig.add_po(out, f"y{i}")
    return mig


class TestStructuralHelpers:
    def test_effective_fanins_regular_and_complemented(self):
        mig = Mig()
        a, b, c = (mig.add_pi(n) for n in "abc")
        f = mig.maj(a, b, c)
        assert effective_fanins(mig, f) == tuple(sorted((a, b, c)))
        assert effective_fanins(mig, negate(f)) == tuple(
            negate(s) for s in sorted((a, b, c))
        )
        assert effective_fanins(mig, a) is None

    def test_cone_nodes_and_bound(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(4)]
        f1 = mig.and_(pis[0], pis[1])
        f2 = mig.or_(f1, pis[2])
        f3 = mig.maj(f1, f2, pis[3])
        mig.add_po(f3, "y")
        cone = cone_nodes(mig, f3, bound=10)
        assert set(cone) == {node_of(f1), node_of(f2), node_of(f3)}
        assert cone.index(node_of(f1)) < cone.index(node_of(f3))
        assert cone_nodes(mig, f3, bound=2) is None
        assert cone_size(mig, f3) == 3

    def test_rebuild_cone_replacement(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(4)]
        f1 = mig.and_(pis[0], pis[1])
        f2 = mig.or_(f1, pis[2])
        mig.add_po(f2, "y")
        new_sig = rebuild_cone(mig, f2, {node_of(pis[0]): pis[3]})
        mig.add_po(new_sig, "y_rebuilt")
        tts = mig.truth_tables()
        # y = x0&x1 | x2 ; y_rebuilt = x3&x1 | x2
        n = 4
        expected_y = 0
        expected_r = 0
        for i in range(1 << n):
            bits = [(i >> k) & 1 for k in range(n)]
            expected_y |= ((bits[0] & bits[1]) | bits[2]) << i
            expected_r |= ((bits[3] & bits[1]) | bits[2]) << i
        assert tts[0] == expected_y
        assert tts[1] == expected_r


class TestDistributivity:
    def test_rl_removes_node(self):
        def builder(mig, p):
            c1 = mig.maj(p[0], p[1], p[2])
            c2 = mig.maj(p[0], p[1], p[3])
            return mig.maj(c1, c2, p[4])

        mig = make_network_with(builder)
        reference = mig.copy()
        assert mig.num_gates == 3
        root = node_of(mig.po_signals()[0])
        assert try_distributivity_rl(mig, root)
        mig.cleanup()
        assert mig.num_gates == 2
        assert_equivalent(mig, reference)

    def test_rl_skips_shared_children(self):
        def builder(mig, p):
            c1 = mig.maj(p[0], p[1], p[2])
            c2 = mig.maj(p[0], p[1], p[3])
            top = mig.maj(c1, c2, p[4])
            return [top, c1]  # c1 is shared: rewrite would not save a node

        mig = make_network_with(builder)
        root = node_of(mig.po_signals()[0])
        assert not try_distributivity_rl(mig, root)

    def test_lr_reduces_depth(self):
        def builder(mig, p):
            deep = mig.and_(mig.and_(p[0], p[1]), p[2])  # depth 2 operand
            inner = mig.maj(p[3], p[4], deep)
            return mig.maj(p[5], p[4], inner)

        mig = make_network_with(builder)
        reference = mig.copy()
        depth_before = mig.depth()
        root = node_of(mig.po_signals()[0])
        assert try_distributivity_lr(mig, root, mig.levels())
        mig.cleanup()
        assert mig.depth() < depth_before
        assert_equivalent(mig, reference)

    def test_lr_rejects_useless_move(self):
        def builder(mig, p):
            inner = mig.maj(p[0], p[1], p[2])
            return mig.maj(p[3], p[4], inner)

        mig = make_network_with(builder)
        root = node_of(mig.po_signals()[0])
        # All operands arrive at level 0: no depth benefit, must refuse.
        assert not try_distributivity_lr(mig, root, mig.levels())


class TestAssociativity:
    def test_associativity_swaps_deep_operand(self):
        def builder(mig, p):
            deep = mig.and_(mig.and_(p[0], p[1]), p[2])
            inner = mig.maj(p[3], p[4], deep)
            return mig.maj(p[5], p[4], inner)  # shares operand p[4]

        mig = make_network_with(builder)
        reference = mig.copy()
        depth_before = mig.depth()
        root = node_of(mig.po_signals()[0])
        assert try_associativity(mig, root, mig.levels())
        mig.cleanup()
        assert mig.depth() <= depth_before
        assert_equivalent(mig, reference)

    def test_associativity_requires_shared_operand(self):
        def builder(mig, p):
            deep = mig.and_(p[0], p[1])
            inner = mig.maj(p[2], p[3], deep)
            return mig.maj(p[4], p[5], inner)

        mig = make_network_with(builder)
        root = node_of(mig.po_signals()[0])
        assert not try_associativity(mig, root, mig.levels())

    def test_complementary_associativity(self):
        def builder(mig, p):
            deep = mig.and_(mig.and_(p[0], p[1]), p[2])
            inner = mig.maj(deep, negate(p[4]), p[3])
            return mig.maj(p[5], p[4], inner)

        mig = make_network_with(builder)
        reference = mig.copy()
        root = node_of(mig.po_signals()[0])
        assert try_complementary_associativity(mig, root, mig.levels())
        mig.cleanup()
        assert_equivalent(mig, reference)

    def test_complementary_associativity_no_match(self):
        def builder(mig, p):
            inner = mig.maj(p[0], p[1], p[2])
            return mig.maj(p[3], p[4], inner)

        mig = make_network_with(builder)
        root = node_of(mig.po_signals()[0])
        assert not try_complementary_associativity(mig, root, mig.levels())


class TestRelevanceAndSubstitution:
    def test_relevance_preserves_function(self):
        def builder(mig, p):
            # Reconvergence: p[0] feeds both the top node and the cone of z.
            z = mig.maj(p[0], p[2], p[3])
            return mig.maj(p[0], p[1], z)

        mig = make_network_with(builder)
        reference = mig.copy()
        root = node_of(mig.po_signals()[0])
        applied = try_relevance(mig, root, max_growth=2)
        assert applied
        mig.cleanup()
        assert_equivalent(mig, reference)

    def test_relevance_requires_reconvergence(self):
        def builder(mig, p):
            z = mig.maj(p[2], p[3], p[4])
            return mig.maj(p[0], p[1], z)

        mig = make_network_with(builder)
        root = node_of(mig.po_signals()[0])
        assert not try_relevance(mig, root)

    def test_substitution_preserves_function(self):
        def builder(mig, p):
            # XOR-like structure where Ψ.S has a chance to simplify.
            a = mig.and_(p[0], negate(p[1]))
            b = mig.and_(negate(p[0]), p[1])
            return mig.or_(a, b)

        mig = make_network_with(builder)
        reference = mig.copy()
        root = node_of(mig.po_signals()[0])
        try_substitution(mig, root)  # may or may not commit
        mig.cleanup()
        assert_equivalent(mig, reference)

    def test_sweep_majority_is_noop_on_canonical_network(self):
        mig = random_mig(6, 30, seed=3)
        assert sweep_majority(mig) == 0


class TestRulePreservationOnRandomNetworks:
    """Apply every rule everywhere on random networks and re-verify."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_rules_preserve_equivalence_random_mig(self, seed):
        mig = random_mig(8, 60, num_pos=6, seed=seed)
        reference = mig.copy()
        levels = mig.levels()
        for node in list(mig.gates()):
            if mig.is_dead(node):
                continue
            try_distributivity_rl(mig, node)
            try_associativity(mig, node, levels)
            try_complementary_associativity(mig, node, levels)
            try_relevance(mig, node, max_growth=2)
        mig.cleanup()
        assert_equivalent(mig, reference)

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_rules_preserve_equivalence_random_aoig(self, seed):
        mig = random_aoig_mig(9, 80, num_pos=8, seed=seed)
        reference = mig.copy()
        levels = mig.levels()
        for node in list(mig.gates()):
            if mig.is_dead(node):
                continue
            try_distributivity_lr(mig, node, levels)
            try_distributivity_rl(mig, node)
            try_substitution(mig, node)
        mig.cleanup()
        result = check_equivalence(mig, reference)
        assert result.equivalent, result
