"""Unit tests for the core MIG data structure."""

import pytest

from repro.core.mig import Mig
from repro.core.signal import (
    CONST_FALSE,
    CONST_TRUE,
    is_complemented,
    negate,
    node_of,
)


def build_xyz():
    mig = Mig()
    x = mig.add_pi("x")
    y = mig.add_pi("y")
    z = mig.add_pi("z")
    return mig, x, y, z


class TestConstruction:
    def test_empty_network(self):
        mig = Mig()
        assert mig.num_pis == 0
        assert mig.num_pos == 0
        assert mig.num_gates == 0
        assert mig.depth() == 0

    def test_constants(self):
        mig = Mig()
        assert mig.constant(False) == CONST_FALSE
        assert mig.constant(True) == CONST_TRUE
        assert negate(CONST_FALSE) == CONST_TRUE

    def test_add_pi_po(self):
        mig, x, y, z = build_xyz()
        f = mig.maj(x, y, z)
        idx = mig.add_po(f, "f")
        assert idx == 0
        assert mig.num_pis == 3
        assert mig.num_pos == 1
        assert mig.num_gates == 1
        assert mig.pi_names() == ["x", "y", "z"]
        assert mig.po_names() == ["f"]

    def test_strashing_reuses_nodes(self):
        mig, x, y, z = build_xyz()
        f1 = mig.maj(x, y, z)
        f2 = mig.maj(z, x, y)
        f3 = mig.maj(y, z, x)
        assert f1 == f2 == f3
        assert mig.num_gates == 1

    def test_majority_axiom_applied_on_creation(self):
        mig, x, y, z = build_xyz()
        assert mig.maj(x, x, y) == x
        assert mig.maj(x, negate(x), y) == y
        assert mig.maj(y, x, x) == x
        assert mig.num_gates == 0

    def test_constant_folding(self):
        mig, x, y, z = build_xyz()
        assert mig.maj(CONST_FALSE, CONST_TRUE, x) == x
        assert mig.maj(CONST_FALSE, CONST_FALSE, x) == CONST_FALSE
        assert mig.maj(CONST_TRUE, CONST_TRUE, x) == CONST_TRUE
        assert mig.num_gates == 0

    def test_inverter_propagation_normalisation(self):
        mig, x, y, z = build_xyz()
        f = mig.maj(negate(x), negate(y), z)
        g = mig.maj(x, y, negate(z))
        # By Ω.I, M(x', y', z) = M'(x, y, z'); the two share one node.
        assert node_of(f) == node_of(g)
        assert f == negate(g)
        assert mig.num_gates == 1


class TestDerivedOperators:
    def test_and_or_truth(self):
        mig = Mig()
        a = mig.add_pi("a")
        b = mig.add_pi("b")
        mig.add_po(mig.and_(a, b), "and")
        mig.add_po(mig.or_(a, b), "or")
        mig.add_po(mig.xor_(a, b), "xor")
        mig.add_po(mig.nand_(a, b), "nand")
        mig.add_po(mig.nor_(a, b), "nor")
        mig.add_po(mig.xnor_(a, b), "xnor")
        tts = mig.truth_tables()
        assert tts[0] == 0b1000
        assert tts[1] == 0b1110
        assert tts[2] == 0b0110
        assert tts[3] == 0b0111
        assert tts[4] == 0b0001
        assert tts[5] == 0b1001

    def test_maj_truth_table(self):
        mig, x, y, z = build_xyz()
        mig.add_po(mig.maj(x, y, z), "m")
        (tt,) = mig.truth_tables()
        assert tt == 0b11101000

    def test_xor3(self):
        mig, x, y, z = build_xyz()
        mig.add_po(mig.xor3_(x, y, z), "p")
        (tt,) = mig.truth_tables()
        assert tt == 0b10010110

    def test_mux(self):
        mig = Mig()
        s = mig.add_pi("s")
        t = mig.add_pi("t")
        e = mig.add_pi("e")
        mig.add_po(mig.mux_(s, t, e), "f")
        (tt,) = mig.truth_tables()
        # Variable order: s is bit 0, t is bit 1, e is bit 2.
        expected = 0
        for i in range(8):
            s_v, t_v, e_v = i & 1, (i >> 1) & 1, (i >> 2) & 1
            expected |= ((t_v if s_v else e_v) & 1) << i
        assert tt == expected

    def test_minority(self):
        mig, x, y, z = build_xyz()
        mig.add_po(mig.minority(x, y, z), "min")
        (tt,) = mig.truth_tables()
        assert tt == 0b00010111


class TestDepthAndLevels:
    def test_depth_of_chain(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(5)]
        acc = pis[0]
        for p in pis[1:]:
            acc = mig.and_(acc, p)
        mig.add_po(acc, "f")
        assert mig.depth() == 4
        assert mig.num_gates == 4

    def test_critical_nodes_cover_longest_path(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(4)]
        a = mig.and_(pis[0], pis[1])
        b = mig.and_(a, pis[2])
        c = mig.and_(b, pis[3])
        d = mig.or_(pis[0], pis[1])
        mig.add_po(c, "deep")
        mig.add_po(d, "shallow")
        critical = set(mig.critical_nodes())
        assert node_of(c) in critical
        assert node_of(b) in critical
        assert node_of(a) in critical
        assert node_of(d) not in critical


class TestSubstitution:
    def test_substitute_simple(self):
        mig, x, y, z = build_xyz()
        f = mig.maj(x, y, z)
        g = mig.and_(f, x)
        mig.add_po(g, "g")
        before = mig.truth_tables()
        # Substitute f by an equivalent reconstruction: must keep function.
        f2 = mig.maj(y, z, x)
        assert f2 == f  # strashing: same node, nothing to do
        assert mig.substitute(node_of(f), f2)
        assert mig.truth_tables() == before

    def test_substitute_with_constant(self):
        mig, x, y, z = build_xyz()
        f = mig.and_(x, y)
        g = mig.or_(f, z)
        mig.add_po(g, "g")
        # Force f to constant 0: g becomes z.
        assert mig.substitute(node_of(f), CONST_FALSE)
        (tt,) = mig.truth_tables()
        # g == z: variable z is bit index 2 → pattern 0b11110000
        assert tt == 0b11110000
        assert mig.num_gates == 0

    def test_substitute_cascades_simplification(self):
        mig, x, y, z = build_xyz()
        a = mig.and_(x, y)
        b = mig.or_(a, z)
        c = mig.and_(b, a)
        mig.add_po(c, "c")
        # Replace a by x: b = or(x, z), c = and(b, x) = x & (x|z) = x.
        assert mig.substitute(node_of(a), x)
        tts = mig.truth_tables()
        assert tts[0] == 0b10101010

    def test_substitute_rejects_cycle(self):
        mig, x, y, z = build_xyz()
        a = mig.and_(x, y)
        b = mig.or_(a, z)
        mig.add_po(b, "b")
        # Substituting a by b would create a cycle (a is in b's TFI).
        assert not mig.substitute(node_of(a), b)

    def test_substitute_updates_pos(self):
        mig, x, y, z = build_xyz()
        f = mig.and_(x, y)
        mig.add_po(f, "f")
        mig.add_po(negate(f), "nf")
        assert mig.substitute(node_of(f), z)
        tts = mig.truth_tables()
        assert tts[0] == 0b11110000
        assert tts[1] == 0b00001111

    def test_dead_node_recycling(self):
        mig, x, y, z = build_xyz()
        f = mig.and_(x, y)
        g = mig.or_(f, z)
        mig.add_po(g, "g")
        assert mig.num_gates == 2
        mig.substitute(node_of(g), x)
        # Both gates are dangling now and must have been reclaimed.
        assert mig.num_gates == 0


class TestCopy:
    def test_copy_preserves_function_and_names(self):
        mig, x, y, z = build_xyz()
        f = mig.maj(mig.and_(x, y), mig.or_(y, z), negate(z))
        mig.add_po(f, "f")
        clone = mig.copy()
        assert clone.pi_names() == mig.pi_names()
        assert clone.po_names() == mig.po_names()
        assert clone.truth_tables() == mig.truth_tables()
        assert clone.num_gates <= mig.num_gates

    def test_copy_drops_dangling_nodes(self):
        mig, x, y, z = build_xyz()
        used = mig.and_(x, y)
        _unused = mig.or_(y, z)
        mig.add_po(used, "f")
        clone = mig.copy()
        assert clone.num_gates == 1


class TestValidation:
    def test_unknown_signal_rejected(self):
        mig = Mig()
        x = mig.add_pi("x")
        with pytest.raises(ValueError):
            mig.maj(x, 998, 1000)

    def test_fanins_of_pi_rejected(self):
        mig = Mig()
        x = mig.add_pi("x")
        with pytest.raises(ValueError):
            mig.fanins(node_of(x))

    def test_exhaustive_simulation_limit(self):
        mig = Mig()
        pis = [mig.add_pi(f"x{i}") for i in range(21)]
        acc = pis[0]
        for p in pis[1:]:
            acc = mig.and_(acc, p)
        mig.add_po(acc, "f")
        with pytest.raises(ValueError):
            mig.truth_tables()
