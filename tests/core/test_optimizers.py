"""Tests for the size / depth / activity optimizers (Algorithms 1 and 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import total_switching_activity
from repro.core import (
    Mig,
    ReshapeParams,
    negate,
    optimize_activity,
    optimize_depth,
    optimize_size,
    random_aoig_mig,
    random_mig,
)
from repro.core.depth_opt import push_up
from repro.core.size_opt import eliminate
from repro.verify import assert_equivalent


def xor3_aoig_mig():
    """The Fig. 1(a) starting point: x ⊕ y ⊕ z transposed from its AOIG."""
    mig = Mig()
    x, y, z = (mig.add_pi(n) for n in "xyz")

    def xor(a, b):
        return mig.or_(mig.and_(a, negate(b)), mig.and_(negate(a), b))

    mig.add_po(xor(xor(x, y), z), "f")
    mig.name = "xor3_aoig"
    return mig


def fig1b_aoig_mig():
    """The Fig. 1(b) starting point: g = x(y + uv) transposed from its AOIG."""
    mig = Mig()
    x, y, u, v = (mig.add_pi(n) for n in "xyuv")
    g = mig.and_(x, mig.or_(y, mig.and_(u, v)))
    mig.add_po(g, "g")
    mig.name = "fig1b_aoig"
    return mig


def fig2a_mig():
    """Fig. 2(a): h = M(x, M(x, z', w), M(x, y, z)) — optimal size is 0."""
    mig = Mig()
    x, y, z, w = (mig.add_pi(n) for n in "xyzw")
    h = mig.maj(x, mig.maj(x, negate(z), w), mig.maj(x, y, z))
    mig.add_po(h, "h")
    mig.name = "fig2a"
    return mig


class TestSizeOptimization:
    def test_fig2a_reduces_to_zero_nodes(self):
        mig = fig2a_mig()
        reference = mig.copy()
        stats = optimize_size(mig, effort=3)
        assert_equivalent(mig, reference)
        # The paper's walkthrough reaches h = x, i.e. zero majority nodes.
        assert mig.num_gates == 0
        assert stats.final_size == 0
        assert stats.initial_size == 3

    def test_size_never_increases(self):
        for seed in range(1, 6):
            mig = random_aoig_mig(8, 50, num_pos=5, seed=seed)
            before = mig.num_gates
            optimize_size(mig, effort=2)
            assert mig.num_gates <= before

    def test_equivalence_preserved_on_random_networks(self):
        for seed in (3, 7, 11):
            mig = random_mig(9, 70, num_pos=6, seed=seed)
            reference = mig.copy()
            optimize_size(mig, effort=2)
            assert_equivalent(mig, reference)

    def test_eliminate_removes_shared_pair_pattern(self):
        mig = Mig()
        p = [mig.add_pi(f"x{i}") for i in range(5)]
        c1 = mig.maj(p[0], p[1], p[2])
        c2 = mig.maj(p[0], p[1], p[3])
        top = mig.maj(c1, c2, p[4])
        mig.add_po(top, "y")
        reference = mig.copy()
        removed = eliminate(mig)
        assert removed >= 1
        assert mig.num_gates == 2
        assert_equivalent(mig, reference)

    def test_stats_fields_consistent(self):
        mig = random_aoig_mig(7, 40, num_pos=4, seed=9)
        stats = optimize_size(mig, effort=3)
        assert stats.final_size == mig.num_gates
        assert stats.final_depth == mig.depth()
        assert stats.cycles >= 1
        assert stats.runtime_s >= 0.0
        assert stats.size_reduction_percent >= 0.0

    def test_effort_zero_still_runs_once(self):
        mig = random_aoig_mig(6, 20, num_pos=3, seed=1)
        reference = mig.copy()
        stats = optimize_size(mig, effort=0)
        assert stats.cycles == 1
        assert_equivalent(mig, reference)


class TestDepthOptimization:
    def test_fig1b_depth_reduced_below_aoig_optimum(self):
        mig = fig1b_aoig_mig()
        reference = mig.copy()
        assert mig.depth() == 3  # optimal AOIG depth
        optimize_depth(mig, effort=3)
        assert_equivalent(mig, reference)
        assert mig.depth() <= 2  # the paper reaches depth 2 (Fig. 2(c))

    def test_xor3_depth_not_worse_than_aoig(self):
        mig = xor3_aoig_mig()
        reference = mig.copy()
        depth_before = mig.depth()
        optimize_depth(mig, effort=4)
        assert_equivalent(mig, reference)
        assert mig.depth() <= depth_before

    def test_depth_never_increases_on_random_networks(self):
        for seed in (2, 5, 8):
            mig = random_aoig_mig(10, 80, num_pos=6, seed=seed)
            depth_before = mig.depth()
            optimize_depth(mig, effort=2)
            assert mig.depth() <= depth_before

    def test_equivalence_preserved(self):
        for seed in (4, 6):
            mig = random_mig(8, 60, num_pos=5, seed=seed)
            reference = mig.copy()
            optimize_depth(mig, effort=2)
            assert_equivalent(mig, reference)

    def test_push_up_is_idempotent_at_fixpoint(self):
        mig = random_aoig_mig(8, 40, num_pos=4, seed=12)
        push_up(mig, max_rounds=8)
        depth_after_first = mig.depth()
        rewrites = push_up(mig, max_rounds=2)
        # Once no direct push-up helps, the depth must stay put.
        assert mig.depth() == depth_after_first or rewrites > 0

    def test_stats_record_progression(self):
        mig = random_aoig_mig(9, 70, num_pos=5, seed=21)
        stats = optimize_depth(mig, effort=3)
        assert stats.final_depth == mig.depth()
        assert stats.final_depth <= stats.initial_depth
        assert len(stats.depth_per_cycle) == stats.cycles


class TestActivityOptimization:
    def test_activity_not_increased(self):
        for seed in (1, 9):
            mig = random_aoig_mig(8, 60, num_pos=5, seed=seed)
            before = total_switching_activity(mig)
            optimize_activity(mig, effort=2)
            after = total_switching_activity(mig)
            assert after <= before + 1e-9

    def test_equivalence_preserved(self):
        mig = random_aoig_mig(8, 50, num_pos=5, seed=17)
        reference = mig.copy()
        optimize_activity(mig, effort=2)
        assert_equivalent(mig, reference)

    def test_biased_inputs_respected(self):
        mig = random_aoig_mig(8, 40, num_pos=4, seed=23)
        probabilities = {name: 0.1 for name in mig.pi_names()}
        stats = optimize_activity(mig, effort=1, pi_probabilities=probabilities)
        assert stats.final_activity <= stats.initial_activity + 1e-9

    def test_stats_fields(self):
        mig = random_aoig_mig(7, 30, num_pos=3, seed=2)
        stats = optimize_activity(mig, effort=1)
        assert stats.final_size == mig.num_gates
        assert stats.relevance_rewrites >= 0
        assert stats.size_opt_stats.final_size <= stats.size_opt_stats.initial_size


class TestOptimizerProperties:
    """Property-based: optimizers preserve function on arbitrary random MIGs."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_gates=st.integers(min_value=5, max_value=40),
    )
    def test_size_opt_preserves_function(self, seed, num_gates):
        mig = random_mig(6, num_gates, num_pos=3, seed=seed)
        reference = mig.copy()
        optimize_size(mig, effort=1)
        assert_equivalent(mig, reference)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        num_gates=st.integers(min_value=5, max_value=40),
    )
    def test_depth_opt_preserves_function(self, seed, num_gates):
        mig = random_aoig_mig(6, num_gates, num_pos=3, seed=seed)
        reference = mig.copy()
        optimize_depth(mig, effort=1)
        assert_equivalent(mig, reference)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_depth_opt_without_reshape_rules_still_sound(self, seed):
        mig = random_aoig_mig(6, 30, num_pos=3, seed=seed)
        reference = mig.copy()
        params = ReshapeParams(
            use_relevance=False, use_substitution=False, use_complementary=False
        )
        optimize_depth(mig, effort=1, reshape_params=params)
        assert_equivalent(mig, reference)
