"""Differential property suite for the per-network code generators.

The contract under test (see the :mod:`repro.codegen` package docstring):
for *any* network state — including after arbitrary in-place mutation
sequences, ``assign_from`` resets and pickle round-trips — the generated
simulation kernel is bit-identical to the interpreted per-gate oracle,
and the generated Tseitin clause stream is clause-for-clause identical to
a direct per-gate ``gate_truth_table`` encode of the same network.  The
mutation sequences mirror ``tests/network/test_cuts_incremental.py``; the
staleness tests additionally pin regeneration against every mutation
notification class the kernel emits (retarget, node death, reset).
"""

import pickle
import random

import pytest

from repro.codegen import (
    ClauseStream,
    GraphSimKernel,
    clause_stream,
    compile_network_kernel,
    has_numpy,
    network_ir,
)
from repro.core import mutate_network
from repro.core.signal import make_signal, negate
from repro.mapping import default_library, map_mig
from repro.verify.cnf import FALSE_LIT, GateGraph, encode_network, eval_gate
from repro.verify.sat import SAT, UNSAT, SatSolver


def _random_patterns(rng, num_pis, num_bits):
    return [rng.getrandbits(num_bits) for _ in range(num_pis)]


def _oracle_simulation(net, pi_patterns, num_bits):
    """Uncompiled reference: drive ``_eval_gate`` over the topology."""
    mask = (1 << num_bits) - 1
    values = [0] * len(net._fanins)
    for node, pattern in zip(net._pis, pi_patterns):
        values[node] = pattern & mask
    for node in net._topology():
        values[node] = net._eval_gate(values, net._fanins[node], mask)
    return [net._edge_value(values, po, mask) for po in net._pos]


def _oracle_encode(graph, net):
    """Per-gate ``gate_truth_table`` Tseitin encode (the pre-IR walk)."""
    node_lit = {0: FALSE_LIT}
    for index, node in enumerate(net.pi_nodes()):
        node_lit[node] = graph.pi_lit(index)
    for node in net.topological_order():
        in_lits = tuple(node_lit[f >> 1] ^ (f & 1) for f in net.fanins(node))
        node_lit[node] = graph.add_gate(net.gate_truth_table(node), in_lits)
    return [node_lit[po >> 1] ^ (po & 1) for po in net.po_signals()]


def _assert_generated_matches(net, rng, num_bits=192):
    """Kernel (both backends) == oracle; clause stream == oracle encode."""
    patterns = _random_patterns(rng, net.num_pis, num_bits)
    expected = _oracle_simulation(net, patterns, num_bits)
    kernel = net.compiled_kernel()
    assert kernel.simulate(patterns, num_bits) == expected
    if has_numpy():
        assert kernel.simulate_blocks(patterns, num_bits) == expected
    # The public entry point (whatever tier it picked) must agree too.
    assert net.simulate_patterns(patterns, num_bits) == expected
    assert net.simulate_patterns_interpreted(patterns, num_bits) == expected

    oracle_graph = GateGraph(net.num_pis)
    oracle_pos = _oracle_encode(oracle_graph, net)
    stream = clause_stream(net)
    assert stream.clause_lists() == oracle_graph.clauses
    assert stream.po_lits == tuple(oracle_pos)
    assert stream.num_vars == oracle_graph.num_vars


class TestDifferentialAgainstOracle:
    @pytest.mark.parametrize("kind", ["mig", "aig"])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_mutation_sequences(self, network_forge, kind, seed):
        rng = random.Random(seed)
        net = network_forge(
            kind=kind, gate_mix="mixed", num_pis=7, num_gates=60, num_pos=5,
            seed=seed,
        )
        _assert_generated_matches(net, rng)
        for step in range(12):
            mutate_network(net, seed=1000 * seed + step, in_place=True)
            _assert_generated_matches(net, rng)

    @pytest.mark.parametrize("kind", ["mig", "aig"])
    def test_assign_from(self, network_forge, kind):
        rng = random.Random(7)
        net = network_forge(kind=kind, num_pis=6, num_gates=40, num_pos=3, seed=5)
        other = network_forge(kind=kind, num_pis=6, num_gates=35, num_pos=3, seed=6)
        _assert_generated_matches(net, rng)
        net.assign_from(other)
        _assert_generated_matches(net, rng)
        assert net.truth_tables() == other.truth_tables()

    @pytest.mark.parametrize("kind", ["mig", "aig"])
    def test_pickle_round_trip(self, network_forge, kind):
        rng = random.Random(11)
        net = network_forge(
            kind=kind, gate_mix="mixed", num_pis=7, num_gates=50, num_pos=4, seed=9
        )
        patterns = _random_patterns(rng, net.num_pis, 128)
        expected = net.simulate_patterns(patterns, 128)
        net.compiled_kernel()
        clause_stream(net)
        clone = pickle.loads(pickle.dumps(net))
        # Generated artifacts never cross the pickle boundary.
        for key in ("_codegen_kernel", "_codegen_ir", "_codegen_clauses",
                    "_sim_seen_serial"):
            assert key not in clone.__dict__, key
        assert clone.simulate_patterns(patterns, 128) == expected
        _assert_generated_matches(clone, rng)

    def test_uniform_gate_tt_matches_gate_truth_table(self, network_forge):
        # The per-class constant must be exactly what the projection-driven
        # per-node derivation reports, or the IR fast path silently lies.
        for kind, seed in (("mig", 3), ("aig", 4)):
            net = network_forge(kind=kind, gate_mix="maj" if kind == "mig" else "aoig",
                                num_pis=6, num_gates=30, seed=seed)
            assert net.UNIFORM_GATE_TT is not None
            for node in net.topological_order():
                if len(net.fanins(node)) == (3 if kind == "mig" else 2):
                    assert net.gate_truth_table(node) == net.UNIFORM_GATE_TT


class TestAdaptiveTiering:
    def test_second_call_promotes_to_generated_kernel(self, network_forge):
        net = network_forge(kind="mig", num_pis=6, num_gates=40, seed=4)
        patterns = _random_patterns(random.Random(1), net.num_pis, 64)
        first = net.simulate_patterns(patterns, 64)
        assert "_codegen_kernel" not in net.__dict__  # tier 1: closure program
        second = net.simulate_patterns(patterns, 64)
        assert first == second
        kernel = net.__dict__.get("_codegen_kernel")
        assert kernel is not None  # tier 2: generated kernel
        net.simulate_patterns(patterns, 64)
        assert net.__dict__["_codegen_kernel"] is kernel  # reused, not rebuilt

    def test_mutation_demotes_then_repromotes(self, network_forge):
        net = network_forge(kind="aig", gate_mix="mixed", num_pis=6,
                            num_gates=40, seed=8)
        patterns = _random_patterns(random.Random(2), net.num_pis, 64)
        net.simulate_patterns(patterns, 64)
        net.simulate_patterns(patterns, 64)
        stale = net.__dict__["_codegen_kernel"]
        mutate_network(net, seed=13, in_place=True)
        expected = _oracle_simulation(net, patterns, 64)
        assert net.simulate_patterns(patterns, 64) == expected
        # First post-mutation call must not have run the stale kernel.
        assert net.__dict__.get("_codegen_kernel_serial") != net._mutation_serial \
            or net.__dict__["_codegen_kernel"] is not stale
        assert net.simulate_patterns(patterns, 64) == expected
        assert net.__dict__["_codegen_kernel"] is not stale


class TestStalenessPerEventClass:
    """Regeneration across every mutation-notification event class.

    The generators key on ``_mutation_serial`` rather than subscribing to
    the listener protocol, so the property to pin is: each event class's
    underlying mutation moves the serial, and the regenerated artifacts
    match the oracle on the new structure.
    """

    def _charge(self, net, rng):
        net.compiled_kernel()
        clause_stream(net)
        return (net.__dict__["_codegen_kernel"], net.__dict__["_codegen_clauses"])

    def _assert_regenerated(self, net, rng, old):
        _assert_generated_matches(net, rng)
        assert net.__dict__["_codegen_kernel"] is not old[0]
        assert net.__dict__["_codegen_clauses"] is not old[1]

    def test_retarget_event(self, network_forge):
        rng = random.Random(31)
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=7,
                            num_gates=60, num_pos=4, seed=31)
        old = self._charge(net, rng)
        serial = net._mutation_serial
        # A substitution retargets every fanout of the old node in place
        # (the ``network_retargeted`` event class).
        gates = list(net.topological_order())
        target = gates[len(gates) // 2]
        assert net.substitute(target, make_signal(net.pi_nodes()[0]))
        assert net._mutation_serial != serial
        self._assert_regenerated(net, rng, old)

    def test_node_death_event(self, network_forge):
        rng = random.Random(32)
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=7,
                            num_gates=60, num_pos=2, seed=32)
        old = self._charge(net, rng)
        serial = net._mutation_serial
        # Redirecting a PO into the interior and cleaning up kills the
        # now-unreferenced cone (the ``network_node_died`` event class).
        gates = list(net.topological_order())
        net.set_po(0, make_signal(gates[len(gates) // 3]))
        net.cleanup()
        assert net._mutation_serial != serial
        self._assert_regenerated(net, rng, old)

    def test_reset_event(self, network_forge):
        rng = random.Random(33)
        net = network_forge(kind="mig", num_pis=6, num_gates=40, num_pos=3, seed=33)
        other = network_forge(kind="mig", num_pis=6, num_gates=30, num_pos=3, seed=34)
        old = self._charge(net, rng)
        serial = net._mutation_serial
        net.assign_from(other)  # the ``network_reset`` event class
        assert net._mutation_serial != serial
        self._assert_regenerated(net, rng, old)

    def test_po_edit_event(self, network_forge):
        rng = random.Random(34)
        net = network_forge(kind="aig", gate_mix="mixed", num_pis=6,
                            num_gates=40, num_pos=3, seed=35)
        old = self._charge(net, rng)
        serial = net._mutation_serial
        net.set_po(0, negate(net.po_signals()[0]))
        assert net._mutation_serial != serial
        self._assert_regenerated(net, rng, old)


class TestMappedNetlist:
    @pytest.mark.parametrize("seed", [1, 2])
    def test_generated_matches_interpreted(self, seed):
        from repro.core import random_mig

        rng = random.Random(seed)
        mig = random_mig(7, 40, num_pos=5, seed=seed)
        netlist = map_mig(mig, default_library())
        patterns = _random_patterns(rng, netlist.num_pis, 192)
        expected = netlist.simulate_patterns_interpreted(patterns, 192)
        assert netlist.simulate_patterns(patterns, 192) == expected
        if has_numpy():
            assert netlist.compiled_kernel().simulate_blocks(patterns, 192) == expected
        # Growing the netlist invalidates the shape-keyed kernel.
        kernel = netlist.__dict__["_codegen_kernel"]
        out = netlist.instances[-1].output
        netlist.add_cell("INV", "cg_extra", [out])
        netlist.add_po("cg_extra", "cg_extra")
        expected = netlist.simulate_patterns_interpreted(patterns, 192)
        assert netlist.simulate_patterns(patterns, 192) == expected
        assert netlist.__dict__["_codegen_kernel"] is not kernel

    def test_pickle_strips_kernel(self):
        from repro.core import random_mig

        netlist = map_mig(random_mig(6, 30, num_pos=3, seed=9), default_library())
        patterns = _random_patterns(random.Random(3), netlist.num_pis, 64)
        expected = netlist.simulate_patterns(patterns, 64)
        clone = pickle.loads(pickle.dumps(netlist))
        assert "_codegen_kernel" not in clone.__dict__
        assert "_codegen_ir" not in clone.__dict__
        assert clone.simulate_patterns(patterns, 64) == expected


class TestClauseStream:
    @pytest.mark.parametrize("kind", ["mig", "aig"])
    def test_pickle_round_trip(self, network_forge, kind):
        net = network_forge(kind=kind, gate_mix="mixed", num_pis=7,
                            num_gates=50, num_pos=4, seed=13)
        stream = clause_stream(net)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone.clause_lists() == stream.clause_lists()
        assert clone.po_lits == stream.po_lits
        assert clone.num_vars == stream.num_vars
        assert clone.num_pis == stream.num_pis

    def test_unchecked_load_agrees_with_checked(self, network_forge):
        """Solver verdicts from the bulk loader == per-clause add_clause."""
        net = network_forge(kind="mig", gate_mix="mixed", num_pis=7,
                            num_gates=60, num_pos=4, seed=17)
        stream = clause_stream(net)
        for po_lit in stream.po_lits:
            fast, slow = SatSolver(), SatSolver()
            assert stream.load_into(fast)
            slow.ensure_vars(stream.num_vars)
            for clause in stream.clauses():
                slow.add_clause(clause)
            for assumption in (po_lit, po_lit ^ 1):
                res_fast = fast.solve([assumption])
                res_slow = slow.solve([assumption])
                assert res_fast == res_slow
                if res_fast == SAT:
                    pis = [(1 + i) << 1 for i in range(stream.num_pis)]
                    model = [fast.model_value(p) for p in pis]
                    # The model must replay on the network itself: assuming
                    # the PO literal forces the output high, its negation low.
                    outputs = net.simulate([bool(b) for b in model])
                    index = stream.po_lits.index(po_lit)
                    assert outputs[index] == (assumption == po_lit)

    def test_serial_cache_hits_and_invalidates(self, network_forge):
        net = network_forge(kind="aig", gate_mix="mixed", num_pis=6,
                            num_gates=40, seed=19)
        stream = clause_stream(net)
        assert clause_stream(net) is stream
        mutate_network(net, seed=20, in_place=True)
        fresh = clause_stream(net)
        assert fresh is not stream
        oracle = GateGraph(net.num_pis)
        _oracle_encode(oracle, net)
        assert fresh.clause_lists() == oracle.clauses


class TestGraphSimKernel:
    def test_matches_eval_gate_while_graph_grows(self, network_forge):
        rng = random.Random(23)
        graph = GateGraph(6)
        kernel = GraphSimKernel(graph, chunk_gates=8)
        mask = (1 << 64) - 1
        pi_patterns = [rng.getrandbits(64) for _ in range(6)]
        for round_index in range(4):
            net = network_forge(kind="mig" if round_index % 2 else "aig",
                                gate_mix="mixed", num_pis=6, num_gates=30,
                                seed=40 + round_index)
            encode_network(graph, net)
            values = [0] * graph.num_vars
            oracle = [0] * graph.num_vars
            for i in range(6):
                values[1 + i] = oracle[1 + i] = pi_patterns[i] & mask
            kernel.eval_into(values, mask)
            for var, tt, lits in graph.gates:
                oracle[var] = eval_gate(oracle, tt, lits, mask)
            assert values == oracle, f"divergence after growth round {round_index}"


class TestEquivalenceIntegration:
    """``_check_exhaustive`` engages compiled kernels by total sweep width."""

    def test_compiled_sweep_matches_interpreted_verdicts(
        self, network_forge, monkeypatch
    ):
        from repro.verify import equivalence
        from repro.verify.equivalence import check_equivalence

        net = network_forge(kind="mig", gate_mix="mixed", num_pis=8,
                            num_gates=60, seed=77)
        pairs = [(net, net.copy()), (net, mutate_network(net, seed=78)[0])]
        for first, second in pairs:
            monkeypatch.setattr(equivalence, "_COMPILED_MIN_MINTERMS", 1 << 30)
            interpreted = check_equivalence(first, second, method="exhaustive")
            monkeypatch.setattr(equivalence, "_COMPILED_MIN_MINTERMS", 1)
            for target in (first, second):
                target.__dict__.pop("_codegen_kernel", None)
                target.__dict__.pop("_codegen_kernel_serial", None)
            compiled = check_equivalence(first, second, method="exhaustive")
            assert "_codegen_kernel" in first.__dict__, (
                "compiled tier did not engage above the minterm threshold"
            )
            assert compiled.equivalent == interpreted.equivalent
            assert compiled.counterexample == interpreted.counterexample
            assert compiled.failing_output == interpreted.failing_output

    def test_narrow_one_shot_does_not_compile(self, network_forge):
        from repro.verify.equivalence import check_equivalence

        net = network_forge(kind="mig", gate_mix="mixed", num_pis=8,
                            num_gates=40, seed=79)
        twin = net.copy()
        result = check_equivalence(net, twin, method="exhaustive")
        assert result.equivalent
        # A one-shot narrow sweep must not pay the per-network compile.
        assert "_codegen_kernel" not in net.__dict__
        assert "_codegen_kernel" not in twin.__dict__
