"""Setup shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that editable installs keep working in offline environments where the
``wheel`` package (needed by PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()
