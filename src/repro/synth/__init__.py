"""SAT-based exact synthesis of small MIG/AIG structures.

The in-house CDCL solver (:mod:`repro.verify.sat`) is strong enough to be
a *synthesis* engine, not just a checker: :mod:`repro.synth.exact` encodes
"there exists a network of at most N gates computing truth table f" as CNF
and searches gate counts linearly, proving size optimality when every
smaller count comes back UNSAT.  The derived programs feed the top-k NPN
structure database (:mod:`repro.network.npn`), which is what gives
depth-oriented cut rewriting real moves to make.
"""

from .exact import (
    OPTIMAL,
    SAT,
    UNKNOWN,
    UNSAT,
    SynthesisResult,
    enumerate_minimum_sizes,
    synthesize_depth_optimal,
    synthesize_exact,
)

__all__ = [
    "OPTIMAL",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SynthesisResult",
    "enumerate_minimum_sizes",
    "synthesize_depth_optimal",
    "synthesize_exact",
]
