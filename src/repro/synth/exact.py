"""Exact SAT-based synthesis of minimum MIG/AIG structures.

This module turns the repository's CDCL solver (:mod:`repro.verify.sat`)
into a synthesis engine in the classic Knuth exact-synthesis style (the
formulation behind ABC's ``exact`` and mockturtle's ``exact_synthesis``):
a CNF encoding of *"there exists a network of at most N gates over the
given primary inputs computing truth table f"*, searched over N by a
linear driver that proves size optimality when every smaller gate count
comes back UNSAT.

Encoding (one instance per gate count ``N``)
--------------------------------------------
For a function over ``n`` inputs (the table is first reduced to its true
support) and ``N`` gates of arity ``r`` (3 for MIG/MAJ nodes, 2 for
AIG/AND nodes):

* **Selector variables** ``sel[i][o]``: gate ``i`` implements *option*
  ``o``, where an option is a fanin tuple — ``r`` distinct operands drawn
  from the inputs, the earlier gates, and (MIG only) the constant — plus a
  per-operand complement mask.  MIG options are normalized to at most one
  complemented operand (``MAJ(x', y', z') = MAJ(x, y, z)'`` pushes any
  heavier mask to the output edge, which downstream complement edges
  absorb), AIG options keep all four masks (an AND of complemented
  literals is not the complement of an AND).  Each gate carries an
  *at-least-one* clause over its selectors; an at-most-one constraint is
  deliberately omitted — selecting two options simply forces the gate's
  value to satisfy both, so any model still extracts to a correct
  circuit, and the solver is free to not waste conflicts on exclusivity.
* **Value variables** ``x[i][t]``: the output of gate ``i`` on input
  minterm ``t``.  Operands that are inputs or constants fold to known
  bits at encode time, so per-(option, minterm) semantics clauses
  (``sel[i][o] → (x[i][t] ↔ MAJ/AND of the operand values)``) stay short:
  6 clauses for a full majority, 3 for an AND, fewer after folding.
* **Output**: gate ``N-1`` is the output root; a free polarity variable
  ``q`` encodes ``x[N-1][t] XOR q = f(t)``.
* **Symmetry / pruning clauses**: every gate except the root must be used
  as a fanin of a later gate, and every (true-support) input must appear
  as a fanin somewhere — both are sound for the linear-search driver
  because a minimum-size circuit is dangling-free and reads its whole
  support.
* **Fences** (depth-optimal search): an optional level assignment
  restricts gate ``i``'s operands to strictly lower levels and requires
  one operand from the level directly below, so a satisfying instance
  realises the fence's depth exactly; driver
  :func:`synthesize_depth_optimal` enumerates the (few) level
  compositions per ``(N, depth)``.

Minterm constraints are installed lazily (CEGAR): an instance starts with
no minterm constrained, every SAT model is *replayed against the full
truth table* in plain python, and the first disagreeing minterm is added
to the instance (the solver keeps its learned clauses across
refinements).  UNSAT under a subset of minterms is UNSAT outright, which
is what keeps the optimality chain cheap.

Budget semantics
----------------
``budget`` is a total conflict budget for one driver call, spent across
all gate counts, fences and CEGAR refinements.  When it runs out the
driver returns status :data:`UNKNOWN`; a partial result is never
presented as optimal — ``SynthesisResult.optimal`` is only ``True`` when
every smaller gate count (or shallower fence set) was fully proved
UNSAT.  Structures returned by either driver are always *valid* (their
program replays to ``f`` — asserted before returning), whatever the
optimality status.

:func:`enumerate_minimum_sizes` is the independent brute-force oracle
used by the test-suite: a breadth-first closure over sets of reachable
functions (modulo output complement) whose layer of first appearance is
the true minimum gate count — no SAT involved.
"""

from __future__ import annotations

import time
from itertools import combinations
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from ..network.npn import PROJECTIONS, DbEntry, entry_truth_table
from ..verify.sat import SAT as _SAT_VERDICT
from ..verify.sat import UNSAT as _UNSAT_VERDICT
from ..verify.sat import SatSolver

__all__ = [
    "OPTIMAL",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SynthesisResult",
    "enumerate_minimum_sizes",
    "synthesize_depth_optimal",
    "synthesize_exact",
]

#: Driver verdicts.  ``SAT`` carries a valid structure; it is additionally
#: ``OPTIMAL`` when the whole chain below it was proved UNSAT.
SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"
OPTIMAL = "optimal"

_FULL = 0xFFFF

#: Gate arity per structure kind (mirrors the NPN database kinds).
_KIND_ARITY = {"mig": 3, "aig": 2}

#: Default linear-search ceilings.  Every 4-input NPN class is known to
#: fit comfortably below these (the Shannon-decomposition database already
#: proves constructive upper bounds well inside them).
_DEFAULT_MAX_GATES = {"mig": 7, "aig": 10}


class SynthesisResult(NamedTuple):
    """Outcome of one exact-synthesis driver call.

    ``status`` is :data:`SAT` / :data:`UNSAT` / :data:`UNKNOWN`;
    ``entry`` is the synthesized program (``None`` unless SAT), expressed
    in the :class:`~repro.network.npn.DbEntry` convention over the four
    abstract NPN inputs; ``optimal`` claims minimality (size for
    :func:`synthesize_exact`, depth-then-size for
    :func:`synthesize_depth_optimal`) and is only set when every smaller
    candidate was *proved* infeasible within budget.
    """

    status: str
    entry: Optional[DbEntry]
    optimal: bool
    gates: Optional[int]
    depth: Optional[int]
    conflicts: int
    solve_calls: int
    wall_s: float


def _support(table: int) -> Tuple[int, ...]:
    """Variables (in the 4-input space) the table actually depends on."""
    table &= _FULL
    support = []
    for i in range(4):
        shift = 1 << i
        hi = table & PROJECTIONS[i]
        lo = table & (PROJECTIONS[i] ^ _FULL)
        if (lo | (lo << shift)) != (hi | (hi >> shift)):
            support.append(i)
    return tuple(support)


def _compact_table(table: int, support: Sequence[int]) -> int:
    """Project ``table`` onto its support: an ``2^len(support)``-bit table."""
    compact = 0
    for t in range(1 << len(support)):
        minterm = 0
        for j, var in enumerate(support):
            if (t >> j) & 1:
                minterm |= 1 << var
        if (table >> minterm) & 1:
            compact |= 1 << t
    return compact


# --------------------------------------------------------------------- #
# CNF instance for one (kind, n, N[, fence])
# --------------------------------------------------------------------- #
class _Instance:
    """CNF for "an ``N``-gate ``kind`` network over ``n`` inputs computes f".

    Operand ids: ``-1`` the constant (MIG only), ``0..n-1`` the inputs,
    ``n+j`` gate ``j``.  ``levels`` (optional fence) maps each gate to a
    1-based level; inputs sit at level 0.
    """

    def __init__(
        self,
        kind: str,
        table: int,
        num_inputs: int,
        num_gates: int,
        levels: Optional[Sequence[int]] = None,
    ) -> None:
        self.kind = kind
        self.arity = _KIND_ARITY[kind]
        self.table = table
        self.n = num_inputs
        self.num_gates = num_gates
        self.levels = tuple(levels) if levels is not None else None
        self.solver = SatSolver()
        self.options: List[List[Tuple[Tuple[int, ...], int]]] = []
        self.sel: List[List[int]] = []
        self.value: Dict[Tuple[int, int], int] = {}
        self.active: List[int] = []
        self.out_neg = self.solver.new_var()
        self._build_skeleton()

    # -- structure ---------------------------------------------------- #
    def _operand_level(self, ref: int) -> int:
        if ref < self.n:
            return 0  # inputs and the constant
        return self.levels[ref - self.n]

    def _gate_options(self, i: int) -> List[Tuple[Tuple[int, ...], int]]:
        refs = list(range(self.n + i))
        if self.levels is not None:
            my_level = self.levels[i]
            refs = [r for r in refs if self._operand_level(r) < my_level]
        options: List[Tuple[Tuple[int, ...], int]] = []
        if self.kind == "mig":
            # Triples of distinct operands, optionally one constant slot;
            # complement masks normalized to at most one complemented
            # operand (the constant's mask bit selects const-1).
            pools = [combinations(refs, 3)]
            pools.append(((-1,) + pair for pair in combinations(refs, 2)))
            for pool in pools:
                for ops in pool:
                    for neg in (0, 1, 2, 4):
                        options.append((tuple(ops), neg))
        else:
            for ops in combinations(refs, 2):
                for neg in (0, 1, 2, 3):
                    options.append((ops, neg))
        if self.levels is not None:
            below = self.levels[i] - 1
            options = [
                (ops, neg)
                for ops, neg in options
                if any(o >= 0 and self._operand_level(o) == below for o in ops)
                or below == 0
                and any(o >= 0 and o < self.n for o in ops)
            ]
        return options

    def _build_skeleton(self) -> None:
        solver = self.solver
        add = solver.add_clause
        for i in range(self.num_gates):
            opts = self._gate_options(i)
            self.options.append(opts)
            sel_vars = [solver.new_var() for _ in opts]
            self.sel.append(sel_vars)
            add([v << 1 for v in sel_vars])  # at least one option
        # Every non-root gate feeds a later gate; every input is read.
        for used in range(self.num_gates - 1):
            ref = self.n + used
            lits = [
                self.sel[j][oi] << 1
                for j in range(used + 1, self.num_gates)
                for oi, (ops, _neg) in enumerate(self.options[j])
                if ref in ops
            ]
            add(lits)
        for var in range(self.n):
            lits = [
                self.sel[j][oi] << 1
                for j in range(self.num_gates)
                for oi, (ops, _neg) in enumerate(self.options[j])
                if var in ops
            ]
            add(lits)

    # -- lazy minterm constraints -------------------------------------- #
    def activate_minterm(self, t: int) -> None:
        """Install the semantics and output constraints of minterm ``t``."""
        if any(t == seen for seen in self.active):
            return
        self.active.append(t)
        solver = self.solver
        for i in range(self.num_gates):
            self.value[(i, t)] = solver.new_var()
        add = solver.add_clause
        for i in range(self.num_gates):
            x = self.value[(i, t)]
            for oi, (ops, neg) in enumerate(self.options[i]):
                nsel = (self.sel[i][oi] << 1) | 1
                vals = []
                for pos, ref in enumerate(ops):
                    negated = (neg >> pos) & 1
                    if ref == -1:
                        vals.append(("c", negated))
                    elif ref < self.n:
                        vals.append(("c", ((t >> ref) & 1) ^ negated))
                    else:
                        vals.append(
                            ("l", (self.value[(ref - self.n, t)] << 1) | negated)
                        )
                if self.arity == 2:
                    self._and_clauses(add, nsel, x, vals)
                else:
                    self._maj_clauses(add, nsel, x, vals)
        # Output: x[N-1][t] XOR out_neg == f(t).
        x = self.value[(self.num_gates - 1, t)]
        q = self.out_neg
        if (self.table >> t) & 1:
            add([x << 1, q << 1])
            add([(x << 1) | 1, (q << 1) | 1])
        else:
            add([(x << 1) | 1, q << 1])
            add([x << 1, (q << 1) | 1])

    @staticmethod
    def _and_clauses(add, nsel: int, x: int, vals) -> None:
        lits = []
        for kind, payload in vals:
            if kind == "c":
                if payload == 0:
                    add([nsel, (x << 1) | 1])  # an operand is 0: x = 0
                    return
            else:
                lits.append(payload)
        if not lits:
            add([nsel, x << 1])  # all operands constant 1: x = 1
            return
        for lit in lits:
            add([nsel, (x << 1) | 1, lit])
        add([nsel, x << 1] + [lit ^ 1 for lit in lits])

    @staticmethod
    def _maj_clauses(add, nsel: int, x: int, vals) -> None:
        # x <-> MAJ(v1, v2, v3): for every pair, both-true forces x and
        # both-false forbids it; constants fold at encode time.
        for a in range(3):
            for b in range(a + 1, 3):
                pair = (vals[a], vals[b])
                # (pair true) -> x
                clause = [nsel, x << 1]
                satisfied = False
                for kind, payload in pair:
                    if kind == "c":
                        if payload == 0:
                            satisfied = True  # antecedent false
                            break
                    else:
                        clause.append(payload ^ 1)
                if not satisfied:
                    add(clause)
                # (pair false) -> not x
                clause = [nsel, (x << 1) | 1]
                satisfied = False
                for kind, payload in pair:
                    if kind == "c":
                        if payload == 1:
                            satisfied = True
                            break
                    else:
                        clause.append(payload)
                if not satisfied:
                    add(clause)

    # -- model extraction ---------------------------------------------- #
    def extract(self) -> Tuple[List[Tuple[Tuple[int, ...], int]], int]:
        """Chosen (operands, neg) per gate plus the output polarity."""
        solver = self.solver
        chosen = []
        for i in range(self.num_gates):
            pick = None
            for oi, option in enumerate(self.options[i]):
                if solver.model_value(self.sel[i][oi] << 1):
                    pick = option
                    break
            assert pick is not None, "at-least-one clause violated"
            chosen.append(pick)
        return chosen, 1 if solver.model_value(self.out_neg << 1) else 0

    def evaluate(self, chosen, out_neg: int) -> int:
        """Truth table of an extracted candidate over all ``2^n`` minterms."""
        width = 1 << self.n
        mask = (1 << width) - 1
        tables = []
        for var in range(self.n):
            column = 0
            for t in range(width):
                if (t >> var) & 1:
                    column |= 1 << t
            tables.append(column)
        gate_tables: List[int] = []
        for ops, neg in chosen:
            vals = []
            for pos, ref in enumerate(ops):
                if ref == -1:
                    val = mask if (neg >> pos) & 1 else 0
                else:
                    val = tables[ref] if ref < self.n else gate_tables[ref - self.n]
                    if (neg >> pos) & 1:
                        val ^= mask
                vals.append(val)
            if self.arity == 2:
                gate_tables.append(vals[0] & vals[1])
            else:
                a, b, c = vals
                gate_tables.append((a & b) | (a & c) | (b & c))
        result = gate_tables[-1]
        if out_neg:
            result ^= mask
        return result & mask


def _entry_from_chosen(
    chosen, out_neg: int, support: Sequence[int]
) -> DbEntry:
    """Map an extracted candidate onto the :class:`DbEntry` convention.

    Instance operand ids are rebased onto the four abstract NPN inputs
    through ``support`` (instance input ``j`` is abstract input
    ``support[j]``); depth is the structural program depth with inputs at
    level 0 (constant fanins do not contribute).
    """
    n = len(support)
    ops_out: List[Tuple[int, ...]] = []
    depth_of: List[int] = []
    for ops, neg in chosen:
        literals = []
        level = 0
        for pos, ref in enumerate(ops):
            negated = (neg >> pos) & 1
            if ref == -1:
                literals.append(negated)  # const literal: ref 0
            elif ref < n:
                literals.append(((1 + support[ref]) << 1) | negated)
            else:
                gate = ref - n
                literals.append(((5 + gate) << 1) | negated)
                level = max(level, depth_of[gate])
        ops_out.append(tuple(literals))
        depth_of.append(level + 1)
    output = ((5 + len(ops_out) - 1) << 1) | out_neg
    return DbEntry(tuple(ops_out), output, len(ops_out), depth_of[-1])


def _trivial_entry(table: int) -> Optional[DbEntry]:
    """Zero-gate entry for constants and (possibly complemented) literals."""
    table &= _FULL
    if table == 0:
        return DbEntry((), 0, 0, 0)
    if table == _FULL:
        return DbEntry((), 1, 0, 0)
    for i in range(4):
        if table == PROJECTIONS[i]:
            return DbEntry((), (1 + i) << 1, 0, 0)
        if table == PROJECTIONS[i] ^ _FULL:
            return DbEntry((), ((1 + i) << 1) | 1, 0, 0)
    return None


class _Budget:
    """Shared conflict budget across one driver call."""

    def __init__(self, total: Optional[int]) -> None:
        self.total = total
        self.spent = 0
        self.solve_calls = 0

    def solve(self, instance: _Instance) -> str:
        solver = instance.solver
        before = solver.num_conflicts
        limit = None
        if self.total is not None:
            remaining = self.total - self.spent
            if remaining <= 0:
                return UNKNOWN
            limit = remaining
        self.solve_calls += 1
        verdict = solver.solve(max_conflicts=limit)
        self.spent += solver.num_conflicts - before
        if verdict == _SAT_VERDICT:
            return SAT
        if verdict == _UNSAT_VERDICT:
            return UNSAT
        return UNKNOWN


def _solve_instance(instance: _Instance, budget: _Budget) -> Tuple[str, Optional[DbEntry]]:
    """CEGAR loop: solve, replay the model, refine, until convergence."""
    width = 1 << instance.n
    while True:
        verdict = budget.solve(instance)
        if verdict != SAT:
            return verdict, None
        chosen, out_neg = instance.extract()
        realized = instance.evaluate(chosen, out_neg)
        if realized == instance.table & ((1 << width) - 1):
            return SAT, (chosen, out_neg)
        mismatch = realized ^ (instance.table & ((1 << width) - 1))
        instance.activate_minterm((mismatch & -mismatch).bit_length() - 1)


def _size_lower_bound(kind: str, support_size: int) -> int:
    """Connectivity bound: r-ary gates add at most r-1 to the read set."""
    if support_size <= 1:
        return 0
    arity = _KIND_ARITY[kind]
    return max(1, -(-(support_size - 1) // (arity - 1)))


def synthesize_exact(
    table: int,
    kind: str,
    max_gates: Optional[int] = None,
    budget: Optional[int] = 50_000,
) -> SynthesisResult:
    """Minimum-size synthesis of ``table`` (a 16-bit 4-input truth table).

    Searches gate counts linearly from the connectivity lower bound up to
    ``max_gates``; the first SAT count yields the structure.  ``optimal``
    is claimed only when every smaller count was proved UNSAT — a budget
    exhaustion anywhere collapses the call to status :data:`UNKNOWN`
    (never a silently non-minimal "optimum").  ``budget`` is the total
    conflict budget of the call (``None`` = unbounded).
    """
    start = time.perf_counter()
    if kind not in _KIND_ARITY:
        raise ValueError(f"unknown structure kind {kind!r}")
    table &= _FULL
    if max_gates is None:
        max_gates = _DEFAULT_MAX_GATES[kind]
    trivial = _trivial_entry(table)
    if trivial is not None:
        return SynthesisResult(
            SAT, trivial, True, 0, 0, 0, 0, time.perf_counter() - start
        )
    support = _support(table)
    compact = _compact_table(table, support)
    shared = _Budget(budget)
    for num_gates in range(_size_lower_bound(kind, len(support)), max_gates + 1):
        if num_gates == 0:
            continue
        instance = _Instance(kind, compact, len(support), num_gates)
        verdict, model = _solve_instance(instance, shared)
        if verdict == UNKNOWN:
            return SynthesisResult(
                UNKNOWN, None, False, None, None, shared.spent,
                shared.solve_calls, time.perf_counter() - start,
            )
        if verdict == SAT:
            chosen, out_neg = model
            entry = _entry_from_chosen(chosen, out_neg, support)
            assert entry_truth_table(entry) == table, (
                "exact synthesis produced a non-replaying program"
            )
            return SynthesisResult(
                SAT, entry, True, entry.size, entry.depth, shared.spent,
                shared.solve_calls, time.perf_counter() - start,
            )
    return SynthesisResult(
        UNSAT, None, False, None, None, shared.spent, shared.solve_calls,
        time.perf_counter() - start,
    )


def _fences(num_gates: int, depth: int) -> Iterable[Tuple[int, ...]]:
    """Level assignments: ``num_gates`` gates over ``depth`` levels.

    Levels are non-decreasing over the gate order (any DAG admits such a
    topological numbering), every level is populated, and the top level
    holds exactly the output root.
    """
    if depth == 1:
        if num_gates == 1:
            yield (1,)
        return
    # Compositions of (num_gates - 1) gates into (depth - 1) non-empty
    # lower levels; the root sits alone at the top level.
    lower = num_gates - 1
    parts = depth - 1
    if lower < parts:
        return

    def compositions(total: int, slots: int):
        if slots == 1:
            yield (total,)
            return
        for first in range(1, total - slots + 2):
            for rest in compositions(total - first, slots - 1):
                yield (first,) + rest

    for shape in compositions(lower, parts):
        levels: List[int] = []
        for level, count in enumerate(shape, start=1):
            levels.extend([level] * count)
        levels.append(depth)
        yield tuple(levels)


def _depth_lower_bound(kind: str, support_size: int) -> int:
    if support_size <= 1:
        return 0
    arity = _KIND_ARITY[kind]
    depth = 1
    reach = arity
    while reach < support_size:
        reach *= arity
        depth += 1
    return depth


def synthesize_depth_optimal(
    table: int,
    kind: str,
    max_gates: Optional[int] = None,
    budget: Optional[int] = 50_000,
    max_depth: int = 5,
) -> SynthesisResult:
    """Minimum-depth (then minimum-size at that depth) synthesis.

    Iterates depth from the fan-in lower bound upward; for each depth,
    gate counts ascend and every *fence* (level composition) of the pair
    is tried, so the first SAT hit is depth-minimal and size-minimal
    within that depth (up to ``max_gates``).  The optimality flag follows
    the same rule as :func:`synthesize_exact`: any budget exhaustion in
    the chain downgrades the result to :data:`UNKNOWN`.
    """
    start = time.perf_counter()
    if kind not in _KIND_ARITY:
        raise ValueError(f"unknown structure kind {kind!r}")
    table &= _FULL
    if max_gates is None:
        max_gates = _DEFAULT_MAX_GATES[kind]
    trivial = _trivial_entry(table)
    if trivial is not None:
        return SynthesisResult(
            SAT, trivial, True, 0, 0, 0, 0, time.perf_counter() - start
        )
    support = _support(table)
    compact = _compact_table(table, support)
    shared = _Budget(budget)
    size_lb = max(1, _size_lower_bound(kind, len(support)))
    for depth in range(max(1, _depth_lower_bound(kind, len(support))), max_depth + 1):
        for num_gates in range(max(size_lb, depth), max_gates + 1):
            for levels in _fences(num_gates, depth):
                instance = _Instance(kind, compact, len(support), num_gates, levels)
                verdict, model = _solve_instance(instance, shared)
                if verdict == UNKNOWN:
                    return SynthesisResult(
                        UNKNOWN, None, False, None, None, shared.spent,
                        shared.solve_calls, time.perf_counter() - start,
                    )
                if verdict == SAT:
                    chosen, out_neg = model
                    entry = _entry_from_chosen(chosen, out_neg, support)
                    assert entry_truth_table(entry) == table, (
                        "exact synthesis produced a non-replaying program"
                    )
                    assert entry.depth <= depth
                    return SynthesisResult(
                        SAT, entry, True, entry.size, entry.depth, shared.spent,
                        shared.solve_calls, time.perf_counter() - start,
                    )
    return SynthesisResult(
        UNSAT, None, False, None, None, shared.spent, shared.solve_calls,
        time.perf_counter() - start,
    )


# --------------------------------------------------------------------- #
# Brute-force oracle (independent of the SAT engine)
# --------------------------------------------------------------------- #
def enumerate_minimum_sizes(
    kind: str, num_vars: int, max_gates: int
) -> Dict[int, int]:
    """True minimum gate counts by breadth-first reachability.

    Returns ``{canonical_table: minimum gates}`` over ``num_vars``-input
    functions, where tables are canonicalized modulo output complement
    (complement edges make ``f`` and ``f'`` the same cost) and expressed
    over ``2^num_vars`` bits.  Layer ``g`` of the search holds every set
    of gate functions reachable with ``g`` gates; a function's first
    layer of appearance is exactly its minimum circuit size, because a
    ``g``-gate circuit is precisely a ``g``-step path in this state
    graph.  Exponential in ``max_gates`` — intended for the ≤3-variable
    optimality cross-checks of the test-suite, not for production use.
    """
    if kind not in _KIND_ARITY:
        raise ValueError(f"unknown structure kind {kind!r}")
    arity = _KIND_ARITY[kind]
    width = 1 << num_vars
    mask = (1 << width) - 1

    def canon(f: int) -> int:
        return min(f, f ^ mask)

    inputs = []
    for var in range(num_vars):
        column = 0
        for t in range(width):
            if (t >> var) & 1:
                column |= 1 << t
        inputs.append(column)

    minimum: Dict[int, int] = {0: 0}
    for column in inputs:
        minimum[canon(column)] = 0

    def successors(avail: Tuple[int, ...]) -> Iterable[int]:
        # Operand literals: every available function and its complement.
        literals = []
        for f in avail:
            literals.append(f)
            literals.append(f ^ mask)
        results = set()
        if arity == 2:
            for a_i in range(len(literals)):
                for b_i in range(a_i + 1, len(literals)):
                    results.add(canon(literals[a_i] & literals[b_i]))
        else:
            for a_i in range(len(literals)):
                a = literals[a_i]
                for b_i in range(a_i + 1, len(literals)):
                    b = literals[b_i]
                    ab = a & b
                    a_or_b = a | b
                    for c_i in range(b_i + 1, len(literals)):
                        c = literals[c_i]
                        results.add(canon(ab | (c & a_or_b)))
        return results

    # Available operands: const 0 plus the input projections (canonical).
    base = tuple(sorted({0} | {canon(c) for c in inputs}))
    frontier = {base}
    for gates in range(1, max_gates + 1):
        next_frontier = set()
        for state in frontier:
            for f in successors(state):
                if f not in minimum:
                    minimum[f] = gates
                if f not in state:
                    next_frontier.add(tuple(sorted(set(state) | {f})))
        frontier = next_frontier
    return minimum
