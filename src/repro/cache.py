"""Shared content-addressed JSON persistence idiom.

Three subsystems persist derived results to disk and must survive
concurrent writers, torn writes and stale formats: the NPN structure
database (:mod:`repro.network.npn`), the benchmark row channel
(:class:`repro.parallel.corpus.RowChannel`) and the service result cache
(:mod:`repro.service.results`).  They all follow the same three rules,
extracted here so the pattern exists exactly once:

1. **Content-hash keys** — a cache entry's identity is a SHA-256 digest
   over everything that shaped it (:func:`content_key`), so a change in
   any ingredient starts a fresh entry instead of silently serving a
   stale one.
2. **Atomic writes** — payloads land via temp-file + ``os.replace``
   (:func:`atomic_write_json`), so a reader never observes a torn file
   no matter how many processes write concurrently or when a writer is
   killed.
3. **Validate on load** — :func:`load_json` returns ``None`` for
   missing/torn/foreign files instead of raising, and callers replay
   domain-specific validation on every loaded payload (semantic replay
   for NPN entries, fingerprint replay for service results): corruption
   degrades to a cache miss, never to wrong results.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Optional

__all__ = ["content_key", "atomic_write_json", "load_json"]


def content_key(*parts) -> str:
    """SHA-256 hex digest over the ``repr`` of ``parts``.

    The one key-derivation rule of every content-addressed store in the
    repository: deterministic, order-sensitive, and collision-resistant
    for any practical corpus.  Callers pass every ingredient that shaped
    the value (format version, canonical input form, configuration) so
    two keys are equal iff the cached value is reusable.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode())
        digest.update(b"\x00")
    return digest.hexdigest()


def atomic_write_json(path, payload) -> bool:
    """Atomically persist ``payload`` as JSON at ``path`` (best effort).

    Writes to a temp file in the target directory and ``os.replace``\\ s
    it into place, so concurrent readers and writers only ever observe
    complete files.  Returns ``False`` (instead of raising) on OS-level
    failures — read-only cache directories degrade persistence, never
    correctness.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        return False
    return True


def load_json(path) -> Optional[object]:
    """Load a JSON payload, or ``None`` for missing/torn/foreign files.

    The read half of the idiom: any OS error or parse error is a cache
    miss.  Callers must still validate the payload's *content* before
    trusting it (format version, content key, semantic replay).
    """
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
