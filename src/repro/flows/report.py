"""Formatting and aggregation of the experiment results (Table I, Figs. 3-4).

The benchmark harness prints the same rows the paper reports: per-benchmark
size / depth / activity / runtime for the three optimization flows, and
area / delay / power for the three synthesis flows, followed by the
averages and the headline relative improvements quoted in the abstract.

Because every flow now runs on the pass-manager engine, this module also
serialises the engine's per-pass metrics traces:
:func:`format_pass_metrics` renders a fixed-width table of one trace and
:func:`pass_metrics_to_json` emits the JSON records the benchmark harness
persists next to the headline numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..analysis.metrics import geometric_improvement
from .engine import PassMetrics
from .optimize import OptimizationComparison
from .synthesis import SynthesisComparison

__all__ = [
    "OptimizationSummary",
    "SynthesisSummary",
    "summarize_optimization",
    "summarize_synthesis",
    "format_optimization_table",
    "format_synthesis_table",
    "format_pass_metrics",
    "pass_metrics_to_json",
    "optimization_space_points",
    "synthesis_space_points",
]


@dataclass
class OptimizationSummary:
    """Averages and headline deltas of the Table I (top) experiment."""

    avg_size: Dict[str, float]
    avg_depth: Dict[str, float]
    avg_activity: Dict[str, float]
    avg_runtime: Dict[str, float]
    depth_improvement_vs_aig: float
    depth_improvement_vs_bdd: float
    fom_improvement_vs_aig: float
    fom_improvement_vs_bdd: float


@dataclass
class SynthesisSummary:
    """Averages and headline deltas of the Table I (bottom) experiment."""

    avg_area: Dict[str, float]
    avg_delay: Dict[str, float]
    avg_power: Dict[str, float]
    delay_improvement: float
    area_improvement: float
    power_improvement: float


def _mean(values: Sequence[float]) -> float:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0


def summarize_optimization(results: Sequence[OptimizationComparison]) -> OptimizationSummary:
    """Compute the averages and headline percentages of Table I (top)."""
    with_bdd = [r for r in results if r.bdd is not None]
    avg = {
        "MIG": {
            "size": _mean([r.mig.size for r in results]),
            "depth": _mean([r.mig.depth for r in results]),
            "activity": _mean([r.mig.activity for r in results]),
            "runtime": _mean([r.mig.runtime_s for r in results]),
        },
        "AIG": {
            "size": _mean([r.aig.size for r in results]),
            "depth": _mean([r.aig.depth for r in results]),
            "activity": _mean([r.aig.activity for r in results]),
            "runtime": _mean([r.aig.runtime_s for r in results]),
        },
        "BDD": {
            "size": _mean([r.bdd.size for r in with_bdd]),
            "depth": _mean([r.bdd.depth for r in with_bdd]),
            "activity": _mean([r.bdd.activity for r in with_bdd]),
            "runtime": _mean([r.bdd.runtime_s for r in with_bdd]),
        },
    }

    def fom(flow: str) -> float:
        return avg[flow]["size"] * avg[flow]["depth"] * avg[flow]["activity"]

    return OptimizationSummary(
        avg_size={k: v["size"] for k, v in avg.items()},
        avg_depth={k: v["depth"] for k, v in avg.items()},
        avg_activity={k: v["activity"] for k, v in avg.items()},
        avg_runtime={k: v["runtime"] for k, v in avg.items()},
        depth_improvement_vs_aig=geometric_improvement(
            avg["AIG"]["depth"], avg["MIG"]["depth"]
        ),
        depth_improvement_vs_bdd=geometric_improvement(
            avg["BDD"]["depth"], avg["MIG"]["depth"]
        ),
        fom_improvement_vs_aig=geometric_improvement(fom("AIG"), fom("MIG")),
        fom_improvement_vs_bdd=geometric_improvement(fom("BDD"), fom("MIG")),
    )


def summarize_synthesis(results: Sequence[SynthesisComparison]) -> SynthesisSummary:
    """Compute the averages and headline percentages of Table I (bottom)."""
    avg_area = {
        "MIG": _mean([r.mig.area_um2 for r in results]),
        "AIG": _mean([r.aig.area_um2 for r in results]),
        "CST": _mean([r.cst.area_um2 for r in results]),
    }
    avg_delay = {
        "MIG": _mean([r.mig.delay_ns for r in results]),
        "AIG": _mean([r.aig.delay_ns for r in results]),
        "CST": _mean([r.cst.delay_ns for r in results]),
    }
    avg_power = {
        "MIG": _mean([r.mig.power_uw for r in results]),
        "AIG": _mean([r.aig.power_uw for r in results]),
        "CST": _mean([r.cst.power_uw for r in results]),
    }
    best_other_delay = min(avg_delay["AIG"], avg_delay["CST"])
    best_other_area = min(avg_area["AIG"], avg_area["CST"])
    best_other_power = min(avg_power["AIG"], avg_power["CST"])
    return SynthesisSummary(
        avg_area=avg_area,
        avg_delay=avg_delay,
        avg_power=avg_power,
        delay_improvement=geometric_improvement(best_other_delay, avg_delay["MIG"]),
        area_improvement=geometric_improvement(best_other_area, avg_area["MIG"]),
        power_improvement=geometric_improvement(best_other_power, avg_power["MIG"]),
    )


def format_optimization_table(results: Sequence[OptimizationComparison]) -> str:
    """Render the Table I (top) rows as fixed-width text."""
    header = (
        f"{'Benchmark':<10s} {'I/O':>10s} | "
        f"{'MIG size':>8s} {'depth':>5s} {'act.':>8s} {'time':>6s} | "
        f"{'AIG size':>8s} {'depth':>5s} {'act.':>8s} {'time':>6s} | "
        f"{'BDD size':>8s} {'depth':>5s} {'act.':>8s} {'time':>6s}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        io = f"{r.mig.num_pis}/{r.mig.num_pos}"
        def cell(metrics) -> str:
            if metrics is None:
                return f"{'N.A.':>8s} {'N.A.':>5s} {'N.A.':>8s} {'N.A.':>6s}"
            return (
                f"{metrics.size:>8d} {metrics.depth:>5d} "
                f"{metrics.activity:>8.2f} {metrics.runtime_s:>6.2f}"
            )
        lines.append(
            f"{r.name:<10s} {io:>10s} | {cell(r.mig)} | {cell(r.aig)} | {cell(r.bdd)}"
        )
    summary = summarize_optimization(results)
    lines.append("-" * len(header))
    lines.append(
        f"{'Average':<10s} {'':>10s} | "
        f"{summary.avg_size['MIG']:>8.1f} {summary.avg_depth['MIG']:>5.1f} "
        f"{summary.avg_activity['MIG']:>8.2f} {summary.avg_runtime['MIG']:>6.2f} | "
        f"{summary.avg_size['AIG']:>8.1f} {summary.avg_depth['AIG']:>5.1f} "
        f"{summary.avg_activity['AIG']:>8.2f} {summary.avg_runtime['AIG']:>6.2f} | "
        f"{summary.avg_size['BDD']:>8.1f} {summary.avg_depth['BDD']:>5.1f} "
        f"{summary.avg_activity['BDD']:>8.2f} {summary.avg_runtime['BDD']:>6.2f}"
    )
    lines.append(
        f"MIG depth vs AIG: {-summary.depth_improvement_vs_aig:+.1f}%   "
        f"vs BDD: {-summary.depth_improvement_vs_bdd:+.1f}%   "
        f"(paper: -18.6% / -23.7%; negative = MIG smaller)"
    )
    lines.append(
        f"MIG size*depth*activity vs AIG: {-summary.fom_improvement_vs_aig:+.1f}%   "
        f"vs BDD: {-summary.fom_improvement_vs_bdd:+.1f}%   (paper: -17.5% / -27.7%)"
    )
    return "\n".join(lines)


def format_synthesis_table(results: Sequence[SynthesisComparison]) -> str:
    """Render the Table I (bottom) rows as fixed-width text."""
    header = (
        f"{'Benchmark':<10s} | "
        f"{'MIG A':>8s} {'D':>6s} {'P':>8s} | "
        f"{'AIG A':>8s} {'D':>6s} {'P':>8s} | "
        f"{'CST A':>8s} {'D':>6s} {'P':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in results:
        def cell(m) -> str:
            return f"{m.area_um2:>8.2f} {m.delay_ns:>6.2f} {m.power_uw:>8.2f}"
        lines.append(f"{r.name:<10s} | {cell(r.mig)} | {cell(r.aig)} | {cell(r.cst)}")
    summary = summarize_synthesis(results)
    lines.append("-" * len(header))
    lines.append(
        f"{'Average':<10s} | "
        f"{summary.avg_area['MIG']:>8.2f} {summary.avg_delay['MIG']:>6.2f} {summary.avg_power['MIG']:>8.2f} | "
        f"{summary.avg_area['AIG']:>8.2f} {summary.avg_delay['AIG']:>6.2f} {summary.avg_power['AIG']:>8.2f} | "
        f"{summary.avg_area['CST']:>8.2f} {summary.avg_delay['CST']:>6.2f} {summary.avg_power['CST']:>8.2f}"
    )
    lines.append(
        f"MIG vs best counterpart: delay {-summary.delay_improvement:+.1f}%, "
        f"area {-summary.area_improvement:+.1f}%, power {-summary.power_improvement:+.1f}%   "
        f"(paper: -22% / -14% / -11%; negative = MIG smaller)"
    )
    return "\n".join(lines)


def format_pass_metrics(passes: Sequence[PassMetrics], title: str = "") -> str:
    """Render one per-pass metrics trace as a fixed-width table."""
    header = (
        f"{'Pass':<14s} {'size':>7s} {'->':>2s} {'size':>7s} "
        f"{'depth':>5s} {'->':>2s} {'depth':>5s} {'time[s]':>8s}  details"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for m in passes:
        details = ", ".join(f"{k}={v}" for k, v in sorted(m.details.items()))
        lines.append(
            f"{m.name:<14s} {m.size_before:>7d} {'':>2s} {m.size_after:>7d} "
            f"{m.depth_before:>5d} {'':>2s} {m.depth_after:>5d} "
            f"{m.runtime_s:>8.3f}  {details}"
        )
    return "\n".join(lines)


def pass_metrics_to_json(
    passes: Sequence[PassMetrics], flow: Optional[str] = None, indent: Optional[int] = None
) -> str:
    """Serialise a per-pass metrics trace as JSON for the benchmark harness.

    The result is a JSON array of one record per pass (see
    :meth:`~repro.flows.engine.PassMetrics.as_dict`); when ``flow`` is
    given, every record is tagged with it so traces from several flows can
    be concatenated into one file.
    """
    records = []
    for m in passes:
        record = m.as_dict()
        if flow is not None:
            record["flow"] = flow
        records.append(record)
    return json.dumps(records, indent=indent, sort_keys=True)


def optimization_space_points(results: Sequence[OptimizationComparison]) -> Dict[str, tuple]:
    """The Fig. 3 series: one (size, depth, activity) point per flow."""
    summary = summarize_optimization(results)
    return {
        flow: (
            summary.avg_size[flow],
            summary.avg_depth[flow],
            summary.avg_activity[flow],
        )
        for flow in ("MIG", "AIG", "BDD")
    }


def synthesis_space_points(results: Sequence[SynthesisComparison]) -> Dict[str, tuple]:
    """The Fig. 4 series: one (area, delay, power) point per flow."""
    summary = summarize_synthesis(results)
    return {
        flow: (
            summary.avg_area[flow],
            summary.avg_delay[flow],
            summary.avg_power[flow],
        )
        for flow in ("MIG", "AIG", "CST")
    }
