"""Pass-manager flow engine: named, composable optimization passes.

The experiment flows of the paper — MIGhty (Section V-A), the resyn2-style
AIG baseline, the ablations — are all sequences of optimization passes
with accept/reject policies and per-phase measurements.  This module
factors that structure out of the individual flow functions:

* a :class:`Pass` is a named transformation of a logic network (MIG or
  AIG — anything built on :class:`repro.network.base.LogicNetwork`);
* a :class:`Pipeline` runs passes in order, recording a
  :class:`PassMetrics` snapshot (size / depth / optional switching
  activity / runtime) around every pass;
* :class:`Repeat` composes a sub-pipeline into effort rounds with
  early exit when a round stops improving, the loop structure shared by
  Algorithms 1 and 2 and the MIGhty flow;
* :class:`RebuildPass` adapts rebuild-style passes (balancing, AIG
  rewriting) that return a new network instead of mutating in place,
  committing the candidate through ``assign_from`` only when its
  acceptance policy holds.

Flows declare *what* runs (``Pipeline([Balance(), DepthOpt(effort=2),
SizeOpt(), Eliminate()])``); the engine owns *how*: measurement,
acceptance, rollback and reporting.  Per-pass metrics are serialised for
the benchmark harness by :func:`repro.flows.report.format_pass_metrics`
and :func:`repro.flows.report.pass_metrics_to_json`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..core.balance import balance_mig
from ..core.reshape import ReshapeParams, reshape
from ..core.size_opt import eliminate

__all__ = [
    "PassMetrics",
    "FlowResult",
    "PassVerificationError",
    "Pass",
    "FunctionPass",
    "RebuildPass",
    "Pipeline",
    "Repeat",
    "run_rebuild_chain",
    "Balance",
    "DepthOpt",
    "SizeOpt",
    "MigRewrite",
    "Eliminate",
    "Reshape",
    "ActivityOpt",
    "Cleanup",
]


class PassVerificationError(AssertionError):
    """A pass broke functional equivalence (per-pass ``verify=`` hook).

    Also raised when the checker could not *certify* equivalence (an
    uncertified ``equivalent=True``, e.g. a budget-exhausted SAT sweep
    falling back to random simulation): self-certification must never
    report a pass as verified on a non-proof.
    """

    def __init__(self, pass_name: str, result) -> None:
        self.pass_name = pass_name
        self.result = result
        if result.equivalent and not getattr(result, "certified", True):
            message = (
                f"pass {pass_name!r} could NOT be certified "
                f"(method={result.method} found no mismatch but is not a "
                f"proof; raise the verification budget)"
            )
        else:
            message = (
                f"pass {pass_name!r} is NOT function-preserving "
                f"(method={result.method}, output index={result.failing_output}, "
                f"counterexample={result.counterexample})"
            )
        super().__init__(message)


# --------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------- #
@dataclass
class PassMetrics:
    """Size / depth / activity / runtime snapshot around one pass run."""

    name: str
    size_before: int
    size_after: int
    depth_before: int
    depth_after: int
    runtime_s: float
    activity_before: Optional[float] = None
    activity_after: Optional[float] = None
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def size_delta(self) -> int:
        return self.size_after - self.size_before

    @property
    def depth_delta(self) -> int:
        return self.depth_after - self.depth_before

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form used by the JSON serialisation hook."""
        record: Dict[str, object] = {
            "pass": self.name,
            "size_before": self.size_before,
            "size_after": self.size_after,
            "depth_before": self.depth_before,
            "depth_after": self.depth_after,
            "runtime_s": round(self.runtime_s, 6),
        }
        if self.activity_before is not None:
            record["activity_before"] = round(self.activity_before, 4)
        if self.activity_after is not None:
            record["activity_after"] = round(self.activity_after, 4)
        if self.details:
            record["details"] = self.details
        return record


@dataclass
class FlowResult:
    """Outcome of one :meth:`Pipeline.run` invocation."""

    name: str
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    runtime_s: float
    passes: List[PassMetrics] = field(default_factory=list)

    def pass_names(self) -> List[str]:
        return [m.name for m in self.passes]


# --------------------------------------------------------------------- #
# Pass protocol
# --------------------------------------------------------------------- #
class Pass:
    """A named in-place transformation of a logic network.

    Subclasses implement :meth:`apply` and may return a detail dictionary
    (rewrite counts, acceptance decisions, ...) that lands in
    :attr:`PassMetrics.details`.

    Composite passes (those that run inner passes and want their inner
    measurements merged into the caller's flat trace) set
    ``composite = True`` and accept ``apply(network, collect=None)``,
    like :class:`Repeat` does.
    """

    name = "pass"
    composite = False

    def apply(self, network) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.__class__.__name__}(name={self.name!r})"


class FunctionPass(Pass):
    """Wrap a plain ``fn(network) -> details-or-None`` as a pass."""

    def __init__(self, name: str, fn: Callable) -> None:
        self.name = name
        self._fn = fn

    def apply(self, network) -> Optional[Dict[str, object]]:
        result = self._fn(network)
        return result if isinstance(result, dict) else None


class RebuildPass(Pass):
    """Adapter for rebuild-style passes returning a fresh network.

    ``builder(network)`` produces a candidate; ``accept(candidate,
    network)`` decides whether it replaces the original (through
    ``assign_from``).  The default policy accepts only candidates that are
    strictly better in the ``(depth, size)`` lexicographic order — a
    candidate that merely ties does not clobber the original structure.
    """

    def __init__(
        self,
        name: str,
        builder: Callable,
        accept: Optional[Callable] = None,
    ) -> None:
        self.name = name
        self._builder = builder
        self._accept = accept if accept is not None else self._strictly_better

    @staticmethod
    def _strictly_better(candidate, network) -> bool:
        return (candidate.depth(), candidate.num_gates) < (
            network.depth(),
            network.num_gates,
        )

    def build(self, network):
        """Produce the candidate network for ``network``."""
        return self._builder(network)

    def accepts(self, candidate, network) -> bool:
        """Whether ``candidate`` should replace ``network``."""
        return bool(self._accept(candidate, network))

    def apply(self, network) -> Optional[Dict[str, object]]:
        candidate = self.build(network)
        accepted = self.accepts(candidate, network)
        if accepted:
            # assign_from compacts and renumbers the adopted candidate in
            # topological order, which also conditions the network for the
            # index-ordered sweeps of the follow-up passes.
            network.assign_from(candidate)
        return {"accepted": accepted}


# --------------------------------------------------------------------- #
# Composition
# --------------------------------------------------------------------- #
class Pipeline:
    """Run a sequence of passes over a network, measuring each one.

    Example
    -------
    >>> from repro.core.mig import Mig
    >>> mig = Mig()
    >>> a, b, c = (mig.add_pi(n) for n in "abc")
    >>> _ = mig.add_po(mig.maj(a, b, c))
    >>> result = Pipeline([Eliminate()]).run(mig)
    >>> result.pass_names()
    ['eliminate']
    """

    def __init__(
        self,
        passes: Sequence[Pass],
        name: str = "pipeline",
        measure_activity: bool = False,
        verify=None,
    ) -> None:
        self.passes = list(passes)
        self.name = name
        self.measure_activity = measure_activity
        # ``verify`` is the opt-in per-pass self-certification hook:
        # ``True`` checks every pass with the default equivalence dispatch
        # (exhaustive / SAT-sweep depending on width); a callable
        # ``f(reference, network) -> EquivalenceResult`` substitutes its
        # own checker (e.g. a budgeted SAT sweep for very large networks).
        self.verify = verify

    def _activity(self, network) -> Optional[float]:
        if not self.measure_activity:
            return None
        from ..analysis.metrics import measure_activity

        return measure_activity(network)

    def _verifier(self):
        if not self.verify:
            return None
        if callable(self.verify):
            return self.verify
        from ..verify.equivalence import check_equivalence

        return check_equivalence

    def run(self, network, collect: Optional[List[PassMetrics]] = None) -> FlowResult:
        """Run every pass in order on ``network`` (modified in place).

        ``collect`` lets composite passes (``Repeat``) append their inner
        measurements onto the caller's list so a nested flow yields one
        flat, ordered metrics trace.
        """
        metrics: List[PassMetrics] = collect if collect is not None else []
        initial_size = network.num_gates
        initial_depth = network.depth()
        start = time.perf_counter()
        verifier = self._verifier()
        # One pass's activity_after is the next pass's activity_before, so
        # the (expensive) measurement runs once per boundary, not twice.
        activity = self._activity(network)
        for pass_ in self.passes:
            size_before = network.num_gates
            depth_before = network.depth()
            activity_before = activity
            reference = network.copy() if verifier is not None else None
            pass_start = time.perf_counter()
            if pass_.composite:
                details = pass_.apply(network, collect=metrics)
            else:
                details = pass_.apply(network)
            runtime_s = time.perf_counter() - pass_start
            details = details or {}
            if verifier is not None:
                check = verifier(reference, network)
                certified = getattr(check, "certified", True)
                details["verify"] = {
                    "equivalent": check.equivalent,
                    "method": check.method,
                    "certified": certified,
                }
                if not check.equivalent or not certified:
                    raise PassVerificationError(pass_.name, check)
            activity = self._activity(network)
            metrics.append(
                PassMetrics(
                    name=pass_.name,
                    size_before=size_before,
                    size_after=network.num_gates,
                    depth_before=depth_before,
                    depth_after=network.depth(),
                    runtime_s=runtime_s,
                    activity_before=activity_before,
                    activity_after=activity,
                    details=details,
                )
            )
        return FlowResult(
            name=self.name,
            initial_size=initial_size,
            initial_depth=initial_depth,
            final_size=network.num_gates,
            final_depth=network.depth(),
            runtime_s=time.perf_counter() - start,
            passes=metrics,
        )


class Repeat(Pass):
    """Run a sub-pipeline for up to ``rounds`` effort rounds.

    After each round the ``(depth, size)`` pair is compared against the
    round's starting point; when neither improved the loop exits early —
    the shared stopping rule of Algorithms 1/2 and the MIGhty flow.
    ``until_no_improvement=False`` disables the early exit.
    """

    composite = True

    def __init__(
        self,
        passes: Sequence[Pass],
        rounds: int = 1,
        name: str = "repeat",
        until_no_improvement: bool = True,
    ) -> None:
        self.name = name
        self.rounds = max(1, rounds)
        self.until_no_improvement = until_no_improvement
        self._pipeline = Pipeline(passes, name=name)

    def apply(
        self, network, collect: Optional[List[PassMetrics]] = None
    ) -> Dict[str, object]:
        executed = 0
        for _ in range(self.rounds):
            executed += 1
            depth_before = network.depth()
            size_before = network.num_gates
            self._pipeline.run(network, collect=collect)
            if (
                self.until_no_improvement
                and network.depth() >= depth_before
                and network.num_gates >= size_before
            ):
                break
        return {"rounds": executed}


def run_rebuild_chain(
    network, passes: Sequence[RebuildPass], name: str = "chain"
):
    """Run a chain of rebuild passes *without* mutating ``network``.

    Each pass builds a candidate from the current network; accepted
    candidates become the new current network (the original object is
    never modified, matching the rebuild-based AIG scripts).  Returns
    ``(final_network, FlowResult)``.
    """
    metrics: List[PassMetrics] = []
    current = network
    initial_size = current.num_gates
    initial_depth = current.depth()
    start = time.perf_counter()
    for pass_ in passes:
        size_before = current.num_gates
        depth_before = current.depth()
        pass_start = time.perf_counter()
        candidate = pass_.build(current)
        accepted = pass_.accepts(candidate, current)
        if accepted:
            current = candidate
        metrics.append(
            PassMetrics(
                name=pass_.name,
                size_before=size_before,
                size_after=current.num_gates,
                depth_before=depth_before,
                depth_after=current.depth(),
                runtime_s=time.perf_counter() - pass_start,
                details={"accepted": accepted},
            )
        )
    result = FlowResult(
        name=name,
        initial_size=initial_size,
        initial_depth=initial_depth,
        final_size=current.num_gates,
        final_depth=current.depth(),
        runtime_s=time.perf_counter() - start,
        passes=metrics,
    )
    return current, result


# --------------------------------------------------------------------- #
# The concrete MIG passes of the paper's flows
# --------------------------------------------------------------------- #
class Balance(RebuildPass):
    """Associative Ω.A tree balancing (rebuild-based, strict acceptance).

    The candidate replaces the network only when it strictly improves the
    ``(depth, size)`` order; a tie keeps the existing structure (and skips
    a full network copy).
    """

    def __init__(self) -> None:
        super().__init__("balance", balance_mig)


class DepthOpt(Pass):
    """Algorithm 2: majority-specific depth optimization."""

    name = "depth_opt"

    def __init__(
        self,
        effort: int = 3,
        reshape_params: Optional[ReshapeParams] = None,
        size_recovery: bool = True,
    ) -> None:
        self.effort = effort
        self.reshape_params = reshape_params
        self.size_recovery = size_recovery

    def apply(self, network) -> Dict[str, object]:
        from ..core.depth_opt import optimize_depth

        stats = optimize_depth(
            network,
            effort=self.effort,
            reshape_params=self.reshape_params,
            size_recovery=self.size_recovery,
        )
        return {
            "cycles": stats.cycles,
            "push_up_rewrites": stats.push_up_rewrites,
            "reshape_rewrites": stats.reshape_rewrites,
        }


class SizeOpt(Pass):
    """Algorithm 1: majority-specific size optimization."""

    name = "size_opt"

    def __init__(
        self, effort: int = 2, reshape_params: Optional[ReshapeParams] = None
    ) -> None:
        self.effort = effort
        self.reshape_params = reshape_params

    def apply(self, network) -> Dict[str, object]:
        from ..core.size_opt import optimize_size

        stats = optimize_size(
            network, effort=self.effort, reshape_params=self.reshape_params
        )
        return {
            "cycles": stats.cycles,
            "eliminations": stats.eliminations,
            "reshape_rewrites": stats.reshape_rewrites,
        }


class MigRewrite(Pass):
    """Boolean cut rewriting against the NPN structure database.

    The Boolean counterpart of the algebraic Ω/Ψ passes: 4-feasible cuts
    are enumerated, NPN-canonicalized and replaced by precomputed optimal
    MIG structures when the shared-logic-aware gain is positive (see
    :func:`repro.core.rewrite.rewrite_mig`).  Depth-safe by default, so it
    can be interleaved anywhere in a MIGhty-style pipeline without
    breaking the flow's depth monotonicity.
    """

    name = "mig_rewrite"

    def __init__(
        self,
        k: int = 4,
        cut_limit: int = 6,
        allow_zero_gain: bool = False,
        max_level_growth: Optional[int] = 0,
        max_size_growth: int = 0,
        incremental: bool = True,
    ) -> None:
        self.k = k
        self.cut_limit = cut_limit
        self.allow_zero_gain = allow_zero_gain
        self.max_level_growth = max_level_growth
        self.max_size_growth = max_size_growth
        self.incremental = incremental

    def apply(self, network) -> Dict[str, object]:
        from ..core.rewrite import rewrite_mig

        # The returned stats carry the incremental cut engine's per-sweep
        # reuse counters (cut_nodes_recomputed / cut_nodes_reused /
        # converged_skip), which land in PassMetrics.details verbatim.
        return rewrite_mig(
            network,
            k=self.k,
            cut_limit=self.cut_limit,
            allow_zero_gain=self.allow_zero_gain,
            max_level_growth=self.max_level_growth,
            max_size_growth=self.max_size_growth,
            incremental=self.incremental,
        )


class Eliminate(Pass):
    """The elimination step of Algorithm 1 (Ω.M L→R plus Ω.D R→L)."""

    name = "eliminate"

    def __init__(self, max_iterations: int = 8) -> None:
        self.max_iterations = max_iterations

    def apply(self, network) -> Dict[str, object]:
        removed = eliminate(network, max_iterations=self.max_iterations)
        return {"removed": removed}


class Reshape(Pass):
    """One reshape sweep (Ω.A / Ψ.C / Ψ.R / Ψ.S) over the whole network."""

    name = "reshape"

    def __init__(self, params: Optional[ReshapeParams] = None) -> None:
        self.params = params

    def apply(self, network) -> Dict[str, object]:
        rewrites = reshape(network, self.params)
        return {"rewrites": rewrites}


class ActivityOpt(Pass):
    """Section IV-C switching-activity optimization."""

    name = "activity_opt"

    def __init__(self, effort: int = 2, pi_probabilities=None) -> None:
        self.effort = effort
        self.pi_probabilities = pi_probabilities

    def apply(self, network) -> Dict[str, object]:
        from ..core.activity_opt import optimize_activity

        stats = optimize_activity(
            network, effort=self.effort, pi_probabilities=self.pi_probabilities
        )
        return {
            "relevance_rewrites": stats.relevance_rewrites,
            "initial_activity": stats.initial_activity,
            "final_activity": stats.final_activity,
        }


class Cleanup(Pass):
    """Reclaim dangling nodes left behind by rejected rewrites."""

    name = "cleanup"

    def apply(self, network) -> Dict[str, object]:
        return {"removed": network.cleanup()}
