"""The logic-optimization experiment of Table I (top half) and Fig. 3.

Three flows are compared on every benchmark, each one a declarative pass
pipeline over the flow engine (:mod:`repro.flows.engine`):

``MIG``
    The benchmark built as a MIG and optimized by the MIGhty pipeline
    (``Balance → Repeat[DepthOpt, SizeOpt, Eliminate, Balance]``, i.e.
    depth optimization interlaced with size/activity recovery).
``AIG``
    The same function built as an AIG and optimized by the ``resyn2``-style
    rebuild chain (balance / rewrite / refactor passes with a
    no-regression acceptance rule).
``BDD``
    The same function turned into canonical BDDs and structurally
    decomposed back into a network (the BDS-style baseline).  Like the
    paper (which reports N.A. for ``clma``), benchmarks whose BDDs explode
    are reported as unavailable rather than aborting the run.

Each flow reports the Table I metrics: size, depth, total switching
activity and runtime.  Because the flows run on the engine, every row can
also carry the per-pass metrics trace (``mig_passes`` / ``aig_passes``),
which :func:`repro.flows.report.format_pass_metrics` renders and
:func:`repro.flows.report.pass_metrics_to_json` serialises for the
benchmark harness.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..aig.aig import Aig
from ..aig.resyn import resyn2
from ..analysis.metrics import NetworkMetrics, measure_network
from ..bdd.decompose import decompose_to_mig
from ..bench_circuits import benchmark_names, build_benchmark
from ..core.mig import Mig
from .engine import PassMetrics
from .mighty import mighty_optimize

__all__ = [
    "OptimizationComparison",
    "run_mig_optimization",
    "run_aig_optimization",
    "run_bdd_optimization",
    "compare_optimization",
    "run_optimization_experiment",
]

#: Benchmarks above this PI count skip the BDD baseline (canonical BDDs with
#: a static order blow up; the paper similarly reports N.A. for clma).
BDD_PI_LIMIT = 600
BDD_NODE_LIMIT = 400_000


@dataclass
class OptimizationComparison:
    """Per-benchmark row of Table I (top).

    ``mig_passes`` / ``aig_passes`` hold the engine's per-pass metrics
    trace of the two optimizing flows (empty when a flow did not run).
    ``*_network`` carry the optimized networks themselves when the row
    was produced with ``keep_networks=True`` (the sharded corpus runner
    uses them for structural fingerprints and CEC verdicts).
    """

    name: str
    mig: NetworkMetrics
    aig: NetworkMetrics
    bdd: Optional[NetworkMetrics]
    mig_passes: List[PassMetrics] = field(default_factory=list)
    aig_passes: List[PassMetrics] = field(default_factory=list)
    mig_network: Optional[object] = None
    aig_network: Optional[object] = None
    bdd_network: Optional[object] = None


def run_mig_optimization(
    mig: Mig, rounds: int = 2, depth_effort: int = 2
) -> Tuple[NetworkMetrics, List[PassMetrics]]:
    """Optimize a MIG with the MIGhty pipeline and measure it.

    Returns the Table I metrics row and the engine's per-pass trace.  The
    runtime is captured before the activity measurement so the runtime
    column reports optimization time only, as in the paper.
    """
    start = time.perf_counter()
    result = mighty_optimize(mig, rounds=rounds, depth_effort=depth_effort)
    runtime = time.perf_counter() - start
    return measure_network(mig, runtime_s=runtime), result.pass_metrics


def run_aig_optimization(aig: Aig) -> Tuple[NetworkMetrics, Aig, List[PassMetrics]]:
    """Optimize an AIG with the resyn2-style chain and measure it.

    Returns ``(metrics, optimized_aig, pass_metrics)``; the input AIG is
    not modified (the script chains rebuilds).
    """
    start = time.perf_counter()
    optimized, stats = resyn2(aig)
    runtime = time.perf_counter() - start
    return measure_network(optimized, runtime_s=runtime), optimized, stats.pass_metrics


def run_bdd_optimization(network, keep_network: bool = False):
    """Run the BDD-decomposition baseline; ``None`` when it is infeasible.

    Returns the metrics row, or ``(metrics, decomposed_network)`` with
    ``keep_network=True``.
    """
    if network.num_pis > BDD_PI_LIMIT:
        return None
    start = time.perf_counter()
    try:
        decomposed, _stats = decompose_to_mig(network)
    except (MemoryError, RecursionError):
        return None
    runtime = time.perf_counter() - start
    metrics = measure_network(decomposed, name=network.name, runtime_s=runtime)
    return (metrics, decomposed) if keep_network else metrics


def compare_optimization(
    benchmark: str,
    rounds: int = 2,
    depth_effort: int = 2,
    include_bdd: bool = True,
    keep_networks: bool = False,
) -> OptimizationComparison:
    """Run the three flows of Table I (top) on one benchmark.

    ``keep_networks=True`` attaches the optimized networks to the row
    (``mig_network`` / ``aig_network`` / ``bdd_network``) so callers can
    fingerprint or equivalence-check them.
    """
    mig = build_benchmark(benchmark, Mig)
    aig = build_benchmark(benchmark, Aig)

    mig_metrics, mig_passes = run_mig_optimization(
        mig, rounds=rounds, depth_effort=depth_effort
    )
    aig_metrics, optimized_aig, aig_passes = run_aig_optimization(aig)

    bdd_metrics = bdd_network = None
    if include_bdd:
        bdd_outcome = run_bdd_optimization(
            build_benchmark(benchmark, Mig), keep_network=True
        )
        if bdd_outcome is not None:
            bdd_metrics, bdd_network = bdd_outcome
    return OptimizationComparison(
        name=benchmark,
        mig=mig_metrics,
        aig=aig_metrics,
        bdd=bdd_metrics,
        mig_passes=mig_passes,
        aig_passes=aig_passes,
        mig_network=mig if keep_networks else None,
        aig_network=optimized_aig if keep_networks else None,
        bdd_network=bdd_network if keep_networks else None,
    )


def _compare_task(task) -> OptimizationComparison:
    """Worker task of the sharded experiment: one Table I (top) row."""
    name, kwargs = task
    return compare_optimization(name, **kwargs)


def run_optimization_experiment(
    benchmarks: Optional[List[str]] = None,
    rounds: int = 2,
    depth_effort: int = 2,
    include_bdd: bool = True,
    workers: int = 1,
) -> List[OptimizationComparison]:
    """Run the full Table I (top) experiment.

    ``workers > 1`` shards the per-benchmark rows across a process pool
    (:mod:`repro.parallel`); rows come back in benchmark order and are
    bit-identical to a serial run — each row is a pure function of its
    benchmark name.
    """
    names = benchmarks if benchmarks is not None else benchmark_names()
    kwargs = {
        "rounds": rounds,
        "depth_effort": depth_effort,
        "include_bdd": include_bdd,
    }
    if workers > 1:
        from ..parallel.executor import parallel_map

        report = parallel_map(
            _compare_task,
            [(name, kwargs) for name in names],
            workers=workers,
            labels=names,
        )
        return list(report.results)
    return [compare_optimization(name, **kwargs) for name in names]
