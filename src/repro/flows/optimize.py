"""The logic-optimization experiment of Table I (top half) and Fig. 3.

Three flows are compared on every benchmark:

``MIG``
    The benchmark built as a MIG and optimized by the MIGhty flow
    (depth optimization interlaced with size/activity recovery).
``AIG``
    The same function built as an AIG and optimized by the ``resyn2``-style
    baseline (balance / rewrite / refactor).
``BDD``
    The same function turned into canonical BDDs and structurally
    decomposed back into a network (the BDS-style baseline).  Like the
    paper (which reports N.A. for ``clma``), benchmarks whose BDDs explode
    are reported as unavailable rather than aborting the run.

Each flow reports the Table I metrics: size, depth, total switching
activity and runtime.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..aig.activity import total_switching_activity as aig_activity
from ..aig.aig import Aig
from ..aig.resyn import resyn2
from ..analysis.activity import total_switching_activity as mig_activity
from ..analysis.metrics import NetworkMetrics
from ..bdd.decompose import decompose_to_mig
from ..bench_circuits import benchmark_names, build_benchmark
from ..core.mig import Mig
from .mighty import mighty_optimize

__all__ = [
    "OptimizationComparison",
    "run_mig_optimization",
    "run_aig_optimization",
    "run_bdd_optimization",
    "compare_optimization",
    "run_optimization_experiment",
]

#: Benchmarks above this PI count skip the BDD baseline (canonical BDDs with
#: a static order blow up; the paper similarly reports N.A. for clma).
BDD_PI_LIMIT = 600
BDD_NODE_LIMIT = 400_000


@dataclass
class OptimizationComparison:
    """Per-benchmark row of Table I (top)."""

    name: str
    mig: NetworkMetrics
    aig: NetworkMetrics
    bdd: Optional[NetworkMetrics]


def run_mig_optimization(
    mig: Mig, rounds: int = 2, depth_effort: int = 2
) -> NetworkMetrics:
    """Optimize a MIG with the MIGhty flow and measure it."""
    start = time.perf_counter()
    mighty_optimize(mig, rounds=rounds, depth_effort=depth_effort)
    runtime = time.perf_counter() - start
    return NetworkMetrics(
        name=mig.name,
        num_pis=mig.num_pis,
        num_pos=mig.num_pos,
        size=mig.num_gates,
        depth=mig.depth(),
        activity=mig_activity(mig),
        runtime_s=runtime,
    )


def run_aig_optimization(aig: Aig) -> NetworkMetrics:
    """Optimize an AIG with the resyn2-style baseline and measure it."""
    start = time.perf_counter()
    optimized, _stats = resyn2(aig)
    runtime = time.perf_counter() - start
    return NetworkMetrics(
        name=aig.name,
        num_pis=optimized.num_pis,
        num_pos=optimized.num_pos,
        size=optimized.num_gates,
        depth=optimized.depth(),
        activity=aig_activity(optimized),
        runtime_s=runtime,
    ), optimized


def run_bdd_optimization(network) -> Optional[NetworkMetrics]:
    """Run the BDD-decomposition baseline; ``None`` when it is infeasible."""
    if network.num_pis > BDD_PI_LIMIT:
        return None
    start = time.perf_counter()
    try:
        decomposed, _stats = decompose_to_mig(network)
    except (MemoryError, RecursionError):
        return None
    runtime = time.perf_counter() - start
    return NetworkMetrics(
        name=network.name,
        num_pis=decomposed.num_pis,
        num_pos=decomposed.num_pos,
        size=decomposed.num_gates,
        depth=decomposed.depth(),
        activity=mig_activity(decomposed),
        runtime_s=runtime,
    )


def compare_optimization(
    benchmark: str,
    rounds: int = 2,
    depth_effort: int = 2,
    include_bdd: bool = True,
) -> OptimizationComparison:
    """Run the three flows of Table I (top) on one benchmark."""
    mig = build_benchmark(benchmark, Mig)
    aig = build_benchmark(benchmark, Aig)

    mig_metrics = run_mig_optimization(mig, rounds=rounds, depth_effort=depth_effort)
    aig_metrics, _optimized_aig = run_aig_optimization(aig)
    bdd_metrics = run_bdd_optimization(build_benchmark(benchmark, Mig)) if include_bdd else None
    return OptimizationComparison(
        name=benchmark, mig=mig_metrics, aig=aig_metrics, bdd=bdd_metrics
    )


def run_optimization_experiment(
    benchmarks: Optional[List[str]] = None,
    rounds: int = 2,
    depth_effort: int = 2,
    include_bdd: bool = True,
) -> List[OptimizationComparison]:
    """Run the full Table I (top) experiment."""
    names = benchmarks if benchmarks is not None else benchmark_names()
    return [
        compare_optimization(
            name, rounds=rounds, depth_effort=depth_effort, include_bdd=include_bdd
        )
        for name in names
    ]
