"""Experiment flows, declared as pass pipelines over the flow engine.

:mod:`repro.flows.engine` provides the pass-manager substrate (named,
composable passes with per-pass size/depth/activity/runtime metrics);
:mod:`repro.flows.mighty` declares the paper's MIGhty flow on top of it;
:mod:`repro.flows.optimize` and :mod:`repro.flows.synthesis` run the
Table I experiments; :mod:`repro.flows.report` formats the tables and
serialises the per-pass metrics for the benchmark harness.
"""

from .engine import (
    ActivityOpt,
    Balance,
    Cleanup,
    DepthOpt,
    Eliminate,
    FlowResult,
    FunctionPass,
    MigRewrite,
    Pass,
    PassMetrics,
    PassVerificationError,
    Pipeline,
    RebuildPass,
    Repeat,
    Reshape,
    SizeOpt,
    run_rebuild_chain,
)
from .batch import (
    BatchItem,
    BatchReport,
    LargeResult,
    format_batch_report,
    optimize_large,
    optimize_many,
    service_optimize_large,
    service_optimize_many,
)
from .mighty import MightyResult, mighty_optimize, mighty_pipeline
from .partitioned import (
    PartitionedRewrite,
    WindowVerificationError,
    partitioned_rewrite,
    sweep_offset,
)
from .optimize import (
    OptimizationComparison,
    compare_optimization,
    run_aig_optimization,
    run_bdd_optimization,
    run_mig_optimization,
    run_optimization_experiment,
)
from .report import (
    format_optimization_table,
    format_pass_metrics,
    format_synthesis_table,
    optimization_space_points,
    pass_metrics_to_json,
    summarize_optimization,
    summarize_synthesis,
    synthesis_space_points,
)
from .synthesis import (
    SynthesisComparison,
    SynthesisMetrics,
    compare_synthesis,
    run_aig_synthesis,
    run_cst_synthesis,
    run_mig_synthesis,
    run_synthesis_experiment,
)

__all__ = [
    # engine
    "Pass",
    "FunctionPass",
    "RebuildPass",
    "Pipeline",
    "Repeat",
    "run_rebuild_chain",
    "PassMetrics",
    "PassVerificationError",
    "FlowResult",
    "Balance",
    "DepthOpt",
    "SizeOpt",
    "MigRewrite",
    "Eliminate",
    "Reshape",
    "ActivityOpt",
    "Cleanup",
    # mighty
    "mighty_optimize",
    "mighty_pipeline",
    "MightyResult",
    # batch (process-parallel corpus API)
    "optimize_many",
    "BatchItem",
    "BatchReport",
    "format_batch_report",
    # service-backed entry points (repro.service daemon + result cache)
    "service_optimize_many",
    "service_optimize_large",
    # partition-parallel single-circuit API
    "optimize_large",
    "LargeResult",
    "PartitionedRewrite",
    "WindowVerificationError",
    "partitioned_rewrite",
    "sweep_offset",
    # optimization experiment
    "compare_optimization",
    "run_optimization_experiment",
    "run_mig_optimization",
    "run_aig_optimization",
    "run_bdd_optimization",
    "OptimizationComparison",
    # synthesis experiment
    "compare_synthesis",
    "run_synthesis_experiment",
    "run_mig_synthesis",
    "run_aig_synthesis",
    "run_cst_synthesis",
    "SynthesisComparison",
    "SynthesisMetrics",
    # reporting
    "format_optimization_table",
    "format_synthesis_table",
    "format_pass_metrics",
    "pass_metrics_to_json",
    "summarize_optimization",
    "summarize_synthesis",
    "optimization_space_points",
    "synthesis_space_points",
]
