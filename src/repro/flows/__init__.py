"""Experiment flows: MIGhty, AIG baseline, BDD baseline, synthesis, reports."""

from .mighty import MightyResult, mighty_optimize
from .optimize import (
    OptimizationComparison,
    compare_optimization,
    run_aig_optimization,
    run_bdd_optimization,
    run_mig_optimization,
    run_optimization_experiment,
)
from .report import (
    format_optimization_table,
    format_synthesis_table,
    optimization_space_points,
    summarize_optimization,
    summarize_synthesis,
    synthesis_space_points,
)
from .synthesis import (
    SynthesisComparison,
    SynthesisMetrics,
    compare_synthesis,
    run_aig_synthesis,
    run_cst_synthesis,
    run_mig_synthesis,
    run_synthesis_experiment,
)

__all__ = [
    "mighty_optimize",
    "MightyResult",
    "compare_optimization",
    "run_optimization_experiment",
    "run_mig_optimization",
    "run_aig_optimization",
    "run_bdd_optimization",
    "OptimizationComparison",
    "compare_synthesis",
    "run_synthesis_experiment",
    "run_mig_synthesis",
    "run_aig_synthesis",
    "run_cst_synthesis",
    "SynthesisComparison",
    "SynthesisMetrics",
    "format_optimization_table",
    "format_synthesis_table",
    "summarize_optimization",
    "summarize_synthesis",
    "optimization_space_points",
    "synthesis_space_points",
]
