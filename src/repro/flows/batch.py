"""Batch optimization: shard whole-network flows across worker processes.

:func:`optimize_many` is the public corpus API on top of
:mod:`repro.parallel`: give it a list of networks (MIGs, AIGs, or a mix)
and it runs one whole-network optimization job per item — the MIGhty
pipeline for MIGs, the ``resyn2``-style script for AIGs — sharded across
a process pool, and merges the flow engine's per-pass metrics traces
into one :class:`BatchReport`.

Determinism contract (inherited from :mod:`repro.parallel`): input
networks are never mutated — each one crosses the process boundary by
pickling, which preserves node ids exactly, so the optimized network
that comes back is **bit-identical** (same node ids, fanins, primary
outputs, sizes, depths) to running the flow in place on the original,
at any worker count.  ``tests/parallel/test_parallel.py`` asserts this
at 1, 2 and 4 workers over fuzzed corpora.

Example
-------
>>> from repro.bench_circuits import build_benchmark
>>> from repro.core import Mig
>>> report = optimize_many(
...     [build_benchmark(n, Mig) for n in ("b9", "count")], workers=2,
... )  # doctest: +SKIP
>>> [item.final_size for item in report.items]  # doctest: +SKIP
[...]
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..parallel.executor import ParallelReport, parallel_map
from .engine import PassMetrics

__all__ = [
    "BatchItem",
    "BatchReport",
    "LargeResult",
    "optimize_many",
    "optimize_large",
    "service_optimize_many",
    "service_optimize_large",
    "format_batch_report",
]

#: Flows understood by :func:`optimize_many`; "auto" picks by network type.
_FLOWS = ("auto", "mighty", "resyn2")


@dataclass
class BatchItem:
    """Result of one corpus item's optimization job."""

    index: int
    name: str
    flow: str
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    runtime_s: float
    pass_metrics: List[PassMetrics] = field(default_factory=list)
    network: object = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "name": self.name,
            "flow": self.flow,
            "initial_size": self.initial_size,
            "initial_depth": self.initial_depth,
            "final_size": self.final_size,
            "final_depth": self.final_depth,
            "runtime_s": round(self.runtime_s, 6),
        }


@dataclass
class BatchReport:
    """Merged outcome of one :func:`optimize_many` run.

    ``items`` is in corpus order; ``items[i].network`` is the optimized
    network of ``corpus[i]`` (the input object is untouched).
    """

    items: List[BatchItem]
    workers: int
    wall_s: float
    parallel: bool
    execution: Optional[ParallelReport] = None

    @property
    def networks(self) -> List[object]:
        return [item.network for item in self.items]

    def totals(self) -> Dict[str, float]:
        """Corpus-wide aggregates of the per-item flow results."""
        return {
            "networks": len(self.items),
            "initial_size": sum(i.initial_size for i in self.items),
            "final_size": sum(i.final_size for i in self.items),
            "initial_depth": sum(i.initial_depth for i in self.items),
            "final_depth": sum(i.final_depth for i in self.items),
            "flow_runtime_s": round(sum(i.runtime_s for i in self.items), 6),
            "wall_s": round(self.wall_s, 6),
        }

    def merged_pass_metrics(self) -> List[Dict[str, object]]:
        """One record per pass name, aggregated across the whole corpus.

        Pass names keep first-appearance order, so a merged report reads
        like one flow trace: runs, total runtime, summed size/depth
        deltas per pass.
        """
        order: List[str] = []
        merged: Dict[str, Dict[str, object]] = {}
        for item in self.items:
            for m in item.pass_metrics:
                record = merged.get(m.name)
                if record is None:
                    order.append(m.name)
                    record = merged[m.name] = {
                        "pass": m.name,
                        "runs": 0,
                        "runtime_s": 0.0,
                        "size_delta": 0,
                        "depth_delta": 0,
                    }
                record["runs"] += 1
                record["runtime_s"] += m.runtime_s
                record["size_delta"] += m.size_delta
                record["depth_delta"] += m.depth_delta
        for record in merged.values():
            record["runtime_s"] = round(record["runtime_s"], 6)
        return [merged[name] for name in order]

    def as_dict(self) -> Dict[str, object]:
        record = {
            "workers": self.workers,
            "parallel": self.parallel,
            "totals": self.totals(),
            "passes": self.merged_pass_metrics(),
            "items": [item.as_dict() for item in self.items],
        }
        if self.execution is not None:
            record["execution"] = self.execution.as_dict()
        return record


def _flow_for(network, flow: str) -> str:
    if flow != "auto":
        return flow
    # Late imports keep batch importable without pulling both kernels.
    from ..aig.aig import Aig

    return "resyn2" if isinstance(network, Aig) else "mighty"


def _optimize_task(item):
    """Worker task: one whole-network optimization job.

    ``item`` is ``(flow, network, kwargs)``; the network is this
    process's private unpickled copy, so in-place flows are safe.
    Returns the :class:`BatchItem` (minus its index, patched by the
    caller).
    """
    flow, network, kwargs = item
    name = getattr(network, "name", "network")
    start = time.perf_counter()
    if flow == "mighty":
        from .mighty import mighty_optimize

        result = mighty_optimize(network, **kwargs)
        optimized = network
        passes = result.pass_metrics
        initial = (result.initial_size, result.initial_depth)
    elif flow == "resyn2":
        from ..aig.resyn import resyn2

        initial = (network.num_gates, network.depth())
        optimized, stats = resyn2(network)
        passes = stats.pass_metrics
    else:
        raise ValueError(f"unknown flow {flow!r} (expected one of {_FLOWS})")
    return BatchItem(
        index=-1,
        name=name,
        flow=flow,
        initial_size=initial[0],
        initial_depth=initial[1],
        final_size=optimized.num_gates,
        final_depth=optimized.depth(),
        runtime_s=time.perf_counter() - start,
        pass_metrics=passes,
        network=optimized,
    )


def optimize_many(
    corpus: Sequence[object],
    workers: Optional[int] = None,
    flow: str = "auto",
    costs: Optional[Sequence[float]] = None,
    **flow_kwargs,
) -> BatchReport:
    """Optimize a corpus of networks, sharded across worker processes.

    ``flow`` is ``"mighty"`` (MIGs), ``"resyn2"`` (AIGs) or ``"auto"``
    (per-item by network type); ``flow_kwargs`` are forwarded to
    ``mighty_optimize`` (``rounds=``, ``depth_effort=``,
    ``boolean_rewrite=``, ...) and must be empty for ``resyn2``.
    ``costs`` optionally supplies expected per-item runtimes (e.g. gate
    counts) for longest-first scheduling; sizes are used by default.
    ``workers=None`` uses :func:`repro.parallel.default_workers`;
    ``workers=1`` runs the identical jobs in-process.

    Input networks are left untouched; the optimized results are in
    ``report.items[i].network``, bit-identical to in-place serial runs.
    """
    if flow not in _FLOWS:
        raise ValueError(f"unknown flow {flow!r} (expected one of {_FLOWS})")
    if flow == "resyn2" and flow_kwargs:
        raise ValueError(
            f"flow 'resyn2' takes no flow options, got {sorted(flow_kwargs)}"
        )
    corpus = list(corpus)
    # Flow options parameterize the MIGhty pipeline; resyn2 is the fixed
    # script, so under "auto" a mixed corpus simply does not forward them
    # to its AIG items.
    items = []
    for network in corpus:
        item_flow = _flow_for(network, flow)
        items.append(
            (item_flow, network, dict(flow_kwargs) if item_flow == "mighty" else {})
        )
    if costs is None:
        costs = [network.num_gates for network in corpus]
    start = time.perf_counter()
    execution = parallel_map(
        _optimize_task,
        items,
        workers=workers,
        costs=costs,
        labels=[getattr(network, "name", f"net{i}") for i, network in enumerate(corpus)],
    )
    batch_items: List[BatchItem] = []
    for index, item in enumerate(execution.results):
        item.index = index
        batch_items.append(item)
    return BatchReport(
        items=batch_items,
        workers=execution.workers,
        wall_s=time.perf_counter() - start,
        parallel=execution.parallel,
        execution=execution,
    )


@dataclass
class LargeResult:
    """Outcome of one :func:`optimize_large` run.

    ``network`` is the optimized (stitched) network — the input object is
    untouched; ``details`` is the :class:`~repro.flows.partitioned
    .PartitionedRewrite` detail record (windows, frontier pins,
    per-window gains and certification verdicts); ``pass_metrics``
    carries the flow engine's measurement of the pass.
    """

    name: str
    workers: int
    parallel: bool
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    runtime_s: float
    details: Dict[str, object] = field(default_factory=dict)
    pass_metrics: List[PassMetrics] = field(default_factory=list)
    network: object = None

    @property
    def windows(self) -> int:
        return int(self.details.get("windows", 0))

    def as_dict(self) -> Dict[str, object]:
        record = {
            "name": self.name,
            "workers": self.workers,
            "parallel": self.parallel,
            "initial_size": self.initial_size,
            "initial_depth": self.initial_depth,
            "final_size": self.final_size,
            "final_depth": self.final_depth,
            "runtime_s": round(self.runtime_s, 6),
        }
        record.update(
            {
                key: self.details.get(key)
                for key in (
                    "windows",
                    "frontier_pins",
                    "improved_windows",
                    "window_gain",
                    "certified_windows",
                    "stitch",
                    "pipeline",
                    "sweeps_run",
                    "converged",
                    "extract_wall_s",
                    "stitch_wall_s",
                    "parent_idle_s",
                    "commit_queue_peak",
                )
                if key in self.details
            }
        )
        return record


def optimize_large(
    network,
    workers: Optional[int] = None,
    max_window_gates: int = 400,
    strategy: str = "topo",
    certify: bool = True,
    flow: str = "auto",
    flow_kwargs: Optional[dict] = None,
    certify_options: Optional[dict] = None,
    sweeps: int = 1,
    pipeline: bool = True,
    lookahead: Optional[int] = None,
) -> LargeResult:
    """Optimize one large network by partition-parallel windowed rewriting.

    The single-circuit counterpart of :func:`optimize_many`: the network
    is decomposed into bounded windows, windows are optimized in worker
    processes (with per-window SAT certification when ``certify``;
    ``certify_options`` sizes the per-window equivalence budgets, and an
    uncertified window rejects the run), and the results are stitched
    back in window order — see :mod:`repro.flows.partitioned` for the
    determinism contract (results are bit-identical at any worker count
    for a fixed partition spec).

    ``pipeline`` (default on) streams extract → optimize → stitch with
    an in-order commit queue instead of barriering between the phases;
    ``lookahead`` bounds the in-flight windows of the streamed path.
    ``sweeps`` > 1 re-runs the decomposition with deterministically
    shifted window boundaries (gains trapped on one sweep's frontiers
    become interior to the next) and stops early once a sweep improves
    nothing.  All three knobs leave the result's structure invariant
    *except* ``sweeps``, which changes what is computed and therefore
    participates in the service result-cache key.

    The input network is never mutated: it crosses into a private copy
    by pickling (preserving node ids exactly, like the worker boundary
    does), so ``result.network`` at ``workers=1`` is bit-identical to
    the same call at ``workers=4``.
    """
    from .engine import Pipeline
    from .partitioned import PartitionedRewrite

    work = pickle.loads(pickle.dumps(network))
    flow_pipeline = Pipeline(
        [
            PartitionedRewrite(
                max_window_gates=max_window_gates,
                strategy=strategy,
                workers=workers,
                certify=certify,
                flow=flow,
                flow_kwargs=flow_kwargs,
                certify_options=certify_options,
                sweeps=sweeps,
                pipeline=pipeline,
                lookahead=lookahead,
            )
        ],
        name="optimize_large",
    )
    result = flow_pipeline.run(work)
    details = result.passes[0].details
    return LargeResult(
        name=getattr(network, "name", "network"),
        workers=int(details.get("workers", 1)),
        parallel=bool(details.get("parallel", False)),
        initial_size=result.initial_size,
        initial_depth=result.initial_depth,
        final_size=result.final_size,
        final_depth=result.final_depth,
        runtime_s=result.runtime_s,
        details=details,
        pass_metrics=result.passes,
        network=work,
    )


def service_optimize_many(
    corpus: Sequence[object],
    workers: Optional[int] = None,
    flow: str = "auto",
    state_dir=None,
    service=None,
    deadline_s: Optional[float] = None,
    **flow_kwargs,
) -> BatchReport:
    """:func:`optimize_many` routed through the optimization service.

    Submits every network as one job to an
    :class:`repro.service.OptimizationService` (an existing ``service``,
    one over ``state_dir``, or an ephemeral one), drains the queue at
    ``workers``, and reassembles the per-job results into the same
    :class:`BatchReport` shape ``optimize_many`` returns — results are
    **bit-identical** to the direct call at any worker count (the
    service determinism contract), and previously seen (circuit, flow
    config) pairs come back from the content-addressed result cache
    without any optimization pass running (``item.flow`` gains a
    ``"+cached"`` suffix so callers can see the O(1) path).

    A failed or expired job raises: the batch API promises a result per
    item, and silently dropping one would break corpus-order alignment.
    """
    import tempfile

    from ..service import OptimizationService

    corpus = list(corpus)
    ephemeral = None
    if service is None:
        if state_dir is None:
            ephemeral = tempfile.TemporaryDirectory(prefix="repro-service-")
            state_dir = ephemeral.name
        service = OptimizationService(state_dir)
    try:
        start = time.perf_counter()
        job_ids = service.submit_many(
            corpus,
            flow=flow,
            flow_options=flow_kwargs or None,
            deadline_s=deadline_s,
        )
        service.run_pending(workers=workers)
        items: List[BatchItem] = []
        for index, job_id in enumerate(job_ids):
            result = service.result(job_id)
            if result.status != "done":
                raise RuntimeError(
                    f"service job {job_id} ({result.name}) ended "
                    f"{result.status}: {result.error}"
                )
            items.append(
                BatchItem(
                    index=index,
                    name=result.name,
                    flow=result.flow + ("+cached" if result.cached else ""),
                    initial_size=result.initial_size,
                    initial_depth=result.initial_depth,
                    final_size=result.final_size,
                    final_depth=result.final_depth,
                    runtime_s=result.runtime_s,
                    pass_metrics=result.pass_metrics,
                    network=result.network,
                )
            )
        from ..parallel.executor import default_workers

        return BatchReport(
            items=items,
            workers=default_workers() if workers is None else max(1, workers),
            wall_s=time.perf_counter() - start,
            parallel=(workers or default_workers()) > 1 and len(corpus) > 1,
        )
    finally:
        if ephemeral is not None:
            ephemeral.cleanup()


def service_optimize_large(
    network,
    workers: Optional[int] = None,
    state_dir=None,
    service=None,
    deadline_s: Optional[float] = None,
    **large_kwargs,
) -> LargeResult:
    """:func:`optimize_large` routed through the optimization service.

    One partition-parallel job: the window fan-out runs *inside* the
    worker (nested pools degrade to in-process there, so the daemon's
    pool is never oversubscribed), results and the cache behave exactly
    like :func:`service_optimize_many`.  Every :func:`optimize_large`
    knob forwards through ``large_kwargs`` into the job's flow options —
    including ``sweeps``/``pipeline``/``lookahead`` — and therefore into
    the content-addressed result-cache key, so a ``sweeps=2`` request
    never resolves from a ``sweeps=1`` cache entry.
    """
    import tempfile

    from ..service import OptimizationService

    ephemeral = None
    if service is None:
        if state_dir is None:
            ephemeral = tempfile.TemporaryDirectory(prefix="repro-service-")
            state_dir = ephemeral.name
        service = OptimizationService(state_dir)
    try:
        job_id = service.submit(
            network, flow="large", flow_options=large_kwargs or None,
            deadline_s=deadline_s,
        )
        service.run_pending(workers=workers)
        result = service.result(job_id)
        if result.status != "done":
            raise RuntimeError(
                f"service job {job_id} ({result.name}) ended "
                f"{result.status}: {result.error}"
            )
        return LargeResult(
            name=result.name,
            workers=1 if workers is None else max(1, workers),
            parallel=False,
            initial_size=result.initial_size,
            initial_depth=result.initial_depth,
            final_size=result.final_size,
            final_depth=result.final_depth,
            runtime_s=result.runtime_s,
            details={"cached": result.cached, "job_id": job_id},
            pass_metrics=result.pass_metrics,
            network=result.network,
        )
    finally:
        if ephemeral is not None:
            ephemeral.cleanup()


def format_batch_report(report: BatchReport) -> str:
    """Render a :class:`BatchReport` as fixed-width text."""
    header = (
        f"{'Network':<12s} {'flow':<7s} {'size':>6s} {'->':>2s} {'size':>6s} "
        f"{'depth':>5s} {'->':>2s} {'depth':>5s} {'time[s]':>8s}"
    )
    lines = [header, "-" * len(header)]
    for item in report.items:
        lines.append(
            f"{item.name:<12s} {item.flow:<7s} {item.initial_size:>6d} {'':>2s} "
            f"{item.final_size:>6d} {item.initial_depth:>5d} {'':>2s} "
            f"{item.final_depth:>5d} {item.runtime_s:>8.3f}"
        )
    totals = report.totals()
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':<12s} {'':<7s} {totals['initial_size']:>6d} {'':>2s} "
        f"{totals['final_size']:>6d} {totals['initial_depth']:>5d} {'':>2s} "
        f"{totals['final_depth']:>5d} {totals['flow_runtime_s']:>8.3f}"
    )
    lines.append(
        f"{len(report.items)} networks, {report.workers} workers"
        f"{' (parallel)' if report.parallel else ' (in-process)'}, "
        f"wall {report.wall_s:.3f}s"
    )
    for record in report.merged_pass_metrics():
        lines.append(
            f"  pass {record['pass']:<14s} runs {record['runs']:>3d}  "
            f"size {record['size_delta']:+6d}  depth {record['depth_delta']:+5d}  "
            f"time {record['runtime_s']:.3f}s"
        )
    return "\n".join(lines)
