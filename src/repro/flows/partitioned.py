"""Partition-parallel rewriting of one large network (windowed flows).

The process-parallel layer of PR 5 shards *across* circuits; this module
parallelizes *inside* one circuit: the network is decomposed into
bounded windows (:mod:`repro.parallel.partition`), each window is
extracted as a standalone sub-network and optimized in a worker process
(the MIGhty pipeline for MIGs, the ``resyn2`` script for AIGs), verified
against its pre-optimization self with the SAT-backed equivalence
dispatch — window miters stay small even when the network is not — and
stitched back through the kernel's substitution machinery
(:mod:`repro.parallel.window`).

Pipelined execution (the default, ``pipeline=True``) streams the three
phases instead of barriering between them:

* windows are extracted **lazily** by a bounded-lookahead producer
  (:func:`repro.parallel.executor.parallel_map_stream`) and submitted to
  the worker pool as they materialize — the first worker starts after
  the first extraction, and the parent never holds every extracted
  sub-network at once;
* results are committed through an **in-order stitch queue**
  (:class:`repro.parallel.executor.OrderedCommitQueue`): window *i* is
  stitched the moment *i* and all earlier windows have returned, while
  later windows are still optimizing in workers.

Why commits must wait for extraction to finish: stitching window *i*
substitutes its outputs, and substitution cascades rewire the fanout
cones — which are exactly the gates of *later* windows.  An extraction
that ran after such a commit would observe mutated structure (or dangling
window-gate ids) and diverge from the barrier path.  The producer
therefore holds the commit queue until the last window has been
extracted; from then on commits stream.  Extraction is cheap relative to
optimization, so in practice the first result is stitched long before
the last window returns.

Why streamed stitching cannot reorder substitutions: the stitched
structure is *not* order-independent — a cascade from window *i* decides
which nodes window *j* > *i*'s rebuild strash-hits, and the replacement
map entries window *j* resolves its pins through are written by window
*i*'s stitch.  The reorder buffer keyed on window index restores strict window
order at the commit boundary, which is what preserves the determinism
contract: stitched networks stay **bit-identical at any worker count**,
and bit-identical between the pipelined and the barrier
(``pipeline=False``) paths.

Boundary-shifted multi-sweep (``sweeps=N``): a window cannot rewrite
across its own frontier pins, so gains sitting on window boundaries are
invisible to one decomposition.  Sweep *k* re-partitions with the
deterministic boundary phase :func:`sweep_offset` (a golden-ratio
multiple of the window bound, so successive sweeps land on well-spread
distinct phases) — old frontier nodes become interior nodes of the next
sweep.  Sweeps run strictly one after the other (sweep *k*+1 partitions
the structure sweep *k* produced, which is itself bit-identical at any
worker count, so the whole multi-sweep is too), and the loop exits early
once a sweep improves nothing — a converged sweep performs no
substitution and leaves the network's mutation serial untouched.

:class:`PartitionedRewrite` is the flow-engine pass (per-window gains,
frontier pin counts, certification verdicts and the per-phase pipeline
metrics land in ``PassMetrics.details``);
:func:`repro.flows.batch.optimize_large` is the corresponding top-level
API.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.signal import make_signal
from ..parallel.executor import OrderedCommitQueue, parallel_map, parallel_map_stream
from ..parallel.partition import PartitionSpec, partition_network
from ..parallel.window import StitchStats, extract_window, release_pins, stitch_window
from .engine import Pass

__all__ = [
    "PartitionedRewrite",
    "WindowVerificationError",
    "partitioned_rewrite",
    "sweep_offset",
]

#: Default per-window flow options for MIG windows: one light round —
#: windows are small, and the cross-window sweep is where the wall-clock
#: goes, so per-window effort trades off against whole-network latency.
_DEFAULT_MIG_WINDOW_KWARGS = {"rounds": 1, "depth_effort": 1}


class WindowVerificationError(AssertionError):
    """A window optimization broke (or could not certify) equivalence.

    Raised both on a proven mismatch and on an *uncertified* all-clear
    (the checker's budget ran out and only random simulation vouches for
    the window): a window is only ever stitched on a proof.
    """

    def __init__(self, window_label: str, result) -> None:
        self.window_label = window_label
        self.result = result
        if result.equivalent and not getattr(result, "certified", True):
            message = (
                f"window {window_label} could NOT be certified "
                f"(method={result.method} found no mismatch but is not a "
                f"proof; raise the certification budget via certify_options)"
            )
        else:
            message = (
                f"window {window_label} is NOT function-preserving "
                f"(method={result.method}, output index={result.failing_output}, "
                f"counterexample={result.counterexample})"
            )
        super().__init__(message)


def sweep_offset(sweep: int, max_window_gates: int) -> int:
    """Deterministic window-boundary phase of (0-based) sweep ``sweep``.

    Sweep 0 is unshifted; sweep *k* shifts the boundaries by *k* times a
    golden-ratio fraction of the window bound (mod the bound), which
    spreads successive sweeps over well-separated phases — consecutive
    sweeps never share a boundary set unless the bound is too small to
    express a shift (``max_window_gates <= 1``).
    """
    if sweep <= 0 or max_window_gates <= 1:
        return 0
    phase = max(1, (max_window_gates * 618) // 1000)
    return (sweep * phase) % max_window_gates


def _window_flow(network, flow: str) -> str:
    if flow != "auto":
        return flow
    from ..aig.aig import Aig

    return "resyn2" if isinstance(network, Aig) else "mighty"


def _window_task(item):
    """Worker task: optimize (and certify) one extracted window.

    ``item`` is ``(sub, flow, flow_kwargs, certify, certify_options)``;
    ``sub`` is this process's private unpickled copy of the extracted
    sub-network and is kept as the certification reference.  Returns
    ``(optimized_or_None, info)`` — ``None`` when the optimizer did not
    strictly improve the ``(size, depth)`` order, so the stitch phase
    skips the window.  A failed *or uncertified* certification raises
    (fail-fast through the pool): an equivalence verdict that only means
    "random simulation found nothing" never counts as window
    certification.
    """
    sub, flow, flow_kwargs, certify, certify_options = item
    size_before, depth_before = sub.num_gates, sub.depth()
    if flow == "mighty":
        from .mighty import mighty_optimize

        optimized = sub.copy()
        mighty_optimize(optimized, **flow_kwargs)
    elif flow == "resyn2":
        from ..aig.resyn import resyn2

        optimized, _ = resyn2(sub)
    else:
        raise ValueError(f"unknown window flow {flow!r}")
    info: Dict[str, object] = {
        "pins": sub.num_pis,
        "outputs": sub.num_pos,
        "size_before": size_before,
        "size_after": optimized.num_gates,
        "depth_before": depth_before,
        "depth_after": optimized.depth(),
    }
    if certify:
        from ..verify.equivalence import check_equivalence

        result = check_equivalence(sub, optimized, **(certify_options or {}))
        certified = getattr(result, "certified", True)
        info["certified"] = {
            "equivalent": result.equivalent,
            "method": result.method,
            "certified": certified,
        }
        if not result.equivalent or not certified:
            raise WindowVerificationError(sub.name, result)
    improved = (optimized.num_gates, optimized.depth()) < (size_before, depth_before)
    info["improved"] = improved
    return (optimized if improved else None, info)


def _empty_sweep_details(spec: PartitionSpec, wall_s: float) -> Dict[str, object]:
    return {
        "offset": spec.offset,
        "windows": 0,
        "frontier_pins": 0,
        "workers": 1,
        "parallel": False,
        "improved_windows": 0,
        "window_gain": 0,
        "stitch": {"substituted": 0, "unchanged": 0, "skipped_cycles": 0},
        "reclaimed": 0,
        "certified_windows": 0,
        "certified_methods": {},
        "optimize_wall_s": 0.0,
        "extract_wall_s": 0.0,
        "stitch_wall_s": 0.0,
        "parent_idle_s": 0.0,
        "commit_queue_peak": 0,
        "per_window": [],
        "wall_s": round(wall_s, 6),
    }


def _run_sweep(
    network,
    spec: PartitionSpec,
    sweep: int,
    workers: Optional[int],
    certify: bool,
    resolved: str,
    kwargs: Dict[str, object],
    certify_options: Optional[dict],
    pipeline: bool,
    lookahead: Optional[int],
) -> Dict[str, object]:
    """One extract → optimize → stitch sweep over the current structure."""
    sweep_start = time.perf_counter()
    network.cleanup()
    windows = partition_network(network, spec)
    if not windows:
        return _empty_sweep_details(spec, time.perf_counter() - sweep_start)

    timing = {"extract": 0.0, "stitch": 0.0}
    repl: Dict[int, int] = {}
    per_window: List[Optional[Dict[str, object]]] = [None] * len(windows)
    stitch_totals = {"substituted": 0, "unchanged": 0, "skipped_cycles": 0}

    # Pin every window output before any substitution: a cascade from an
    # early stitch may otherwise reclaim a later window's output while
    # that window's frontier pins still name it.  ``all_stats`` is the
    # pin ledger — every pin taken anywhere in this sweep is recorded on
    # an entry of it *before* the pinning mutation, so the ``finally``
    # below can always unwind to zero pins, whether the sweep succeeds,
    # a worker task raises, or a stitch dies halfway.
    upfront = StitchStats()
    all_stats: List[StitchStats] = [upfront]
    for window in windows:
        for output in window.outputs:
            network.pin_node(output)
            upfront.pinned.append(output)

    def _commit(index: int, result) -> None:
        commit_start = time.perf_counter()
        optimized, info = result
        window = windows[index]
        record: Dict[str, object] = {
            "sweep": sweep,
            "window": window.index,
            "gates": window.num_gates,
            "pins": len(window.inputs),
            "gain": info["size_before"] - info["size_after"],
            "improved": info["improved"],
        }
        if "certified" in info:
            record["certified"] = info["certified"]
        if optimized is None:
            # Unimproved window: outputs keep their identity (pinned
            # above, so they are still alive whatever earlier cascades
            # did around them).
            for output in window.outputs:
                repl[output] = make_signal(output)
            record["stitch"] = None
        else:
            stats = StitchStats()
            all_stats.append(stats)  # on the ledger before any pin lands
            stitch_window(network, window, optimized, repl, stats=stats)
            for key, value in stats.as_dict().items():
                stitch_totals[key] += value
            record["stitch"] = stats.as_dict()
        per_window[index] = record
        timing["stitch"] += time.perf_counter() - commit_start

    labels = [f"w{window.index}" for window in windows]
    try:
        if pipeline:
            queue = OrderedCommitQueue(_commit)
            queue.hold()

            def _produce():
                for window in windows:
                    extract_start = time.perf_counter()
                    sub = extract_window(network, window)
                    timing["extract"] += time.perf_counter() - extract_start
                    yield (sub, resolved, kwargs, certify, certify_options)
                # Every window is extracted (and submitted): in-order
                # commits may now mutate the parent — extraction had to
                # observe the pristine structure (see module docstring).
                queue.release()

            report = parallel_map_stream(
                _window_task,
                _produce(),
                workers=workers,
                lookahead=lookahead,
                labels=labels,
                on_result=lambda index, result, runtime_s, pid: queue.offer(
                    index, result
                ),
            )
            assert queue.committed == len(windows), (
                f"commit queue stalled: {queue.committed}/{len(windows)} "
                "windows committed"
            )
            commit_queue_peak = queue.peak
        else:
            extract_start = time.perf_counter()
            subs = [extract_window(network, window) for window in windows]
            timing["extract"] = time.perf_counter() - extract_start
            report = parallel_map(
                _window_task,
                [(sub, resolved, kwargs, certify, certify_options) for sub in subs],
                workers=workers,
                costs=[window.num_gates for window in windows],
                labels=labels,
            )
            for index, result in enumerate(report.results):
                _commit(index, result)
            # The barrier path holds every result until the whole pool
            # drains — its "queue" peak is the full window count.
            commit_queue_peak = len(windows)
    finally:
        # Success and failure share the unwind: every pin recorded on the
        # ledger is dropped and the dangling remains swept, so an aborted
        # sweep (worker exception, WindowVerificationError, mid-stitch
        # failure) leaves the caller's network pin-free and verifiable.
        reclaimed = release_pins(network, all_stats)

    certified = [r["certified"] for r in per_window if "certified" in r]
    methods: Dict[str, int] = {}
    for verdict in certified:
        methods[verdict["method"]] = methods.get(verdict["method"], 0) + 1
    if pipeline:
        # Streamed mode: the parent extracts and stitches *during* the
        # run; whatever is left of the wall is time spent blocked on
        # workers.  The serial fallback optimizes in-process (the parent
        # is never idle).
        parent_idle = (
            max(0.0, report.wall_s - timing["extract"] - timing["stitch"])
            if report.parallel
            else 0.0
        )
    else:
        # Barrier mode: the parent is blocked for the whole pool drain
        # (extraction before it, stitching after it).
        parent_idle = report.wall_s if report.parallel else 0.0
    return {
        "offset": spec.offset,
        "windows": len(windows),
        "frontier_pins": sum(len(w.inputs) for w in windows),
        "workers": report.workers,
        "parallel": report.parallel,
        "improved_windows": sum(1 for r in per_window if r["improved"]),
        "window_gain": sum(r["gain"] for r in per_window if r["improved"]),
        "stitch": stitch_totals,
        "reclaimed": reclaimed,
        "certified_windows": len(certified),
        "certified_methods": methods,
        "optimize_wall_s": round(report.wall_s, 6),
        "extract_wall_s": round(timing["extract"], 6),
        "stitch_wall_s": round(timing["stitch"], 6),
        "parent_idle_s": round(parent_idle, 6),
        "commit_queue_peak": commit_queue_peak,
        "per_window": per_window,
        "wall_s": round(time.perf_counter() - sweep_start, 6),
    }


def partitioned_rewrite(
    network,
    max_window_gates: int = 400,
    strategy: str = "topo",
    workers: Optional[int] = None,
    certify: bool = True,
    flow: str = "auto",
    flow_kwargs: Optional[dict] = None,
    certify_options: Optional[dict] = None,
    sweeps: int = 1,
    pipeline: bool = True,
    lookahead: Optional[int] = None,
) -> Dict[str, object]:
    """Windowed optimization of ``network`` in place; returns details.

    The phases per sweep: cleanup → partition (boundary phase
    :func:`sweep_offset` of the sweep index) → extract → optimize
    windows in worker processes → stitch in window order → release pins
    and sweep.  With ``pipeline=True`` (default) the phases are
    streamed: extraction feeds the pool lazily with ``lookahead``
    bounded in-flight windows, and an in-order commit queue stitches
    early windows while later ones still optimize — bit-identical to the
    ``pipeline=False`` barrier path at any worker count (see the module
    docstring for the argument).  ``sweeps`` > 1 re-partitions with
    shifted window boundaries between sweeps and stops early once a
    sweep improves no window (a converged sweep performs no substitution
    and leaves the mutation serial untouched).

    ``certify`` proves every window job function-preserving inside its
    worker (SAT-backed for wide windows); an uncertified verdict (budget
    exhausted, random fallback) rejects the window by raising
    :class:`WindowVerificationError` — it is never stitched as if
    proven.  ``certify_options`` is forwarded to
    :func:`~repro.verify.equivalence.check_equivalence` (e.g.
    ``{"sat_options": {...}}`` to size the per-window proof budget).
    On any failure the pin ledger is unwound before the exception
    propagates: the caller's network is left pin-free, structurally
    intact and still function-preserving (stitches are equivalence-
    preserving, so even a partially stitched network verifies).
    The stitched network additionally stays check-equivalence-able
    against the input as a whole, which the tests do on forged networks.
    """
    if sweeps < 1:
        raise ValueError(f"sweeps must be >= 1, got {sweeps}")
    start = time.perf_counter()
    resolved = _window_flow(network, flow)
    if flow_kwargs is None:
        kwargs = dict(_DEFAULT_MIG_WINDOW_KWARGS) if resolved == "mighty" else {}
    else:
        if resolved == "resyn2" and flow_kwargs:
            raise ValueError(
                f"flow 'resyn2' takes no flow options, got {sorted(flow_kwargs)}"
            )
        kwargs = dict(flow_kwargs)

    sweep_details: List[Dict[str, object]] = []
    converged = False
    for sweep in range(sweeps):
        spec = PartitionSpec(
            max_window_gates=max_window_gates,
            strategy=strategy,
            offset=sweep_offset(sweep, max_window_gates),
        )
        record = _run_sweep(
            network,
            spec,
            sweep,
            workers,
            certify,
            resolved,
            kwargs,
            certify_options,
            pipeline,
            lookahead,
        )
        sweep_details.append(record)
        if record["improved_windows"] == 0:
            # Nothing improved: no substitutions ran, the structure (and
            # its mutation serial) is exactly what this sweep started
            # from, and a re-run at any boundary phase of the *same*
            # structure cannot do better than re-optimizing the same
            # cones — stop instead of burning the remaining sweeps.
            converged = True
            break

    methods: Dict[str, int] = {}
    for record in sweep_details:
        for method, count in record["certified_methods"].items():
            methods[method] = methods.get(method, 0) + count
    details: Dict[str, object] = {
        "strategy": strategy,
        "max_window_gates": max_window_gates,
        "pipeline": pipeline,
        "sweeps": sweeps,
        "sweeps_run": len(sweep_details),
        "converged": converged,
        "flow": resolved,
        "flow_kwargs": kwargs,
        "workers": max(r["workers"] for r in sweep_details),
        "parallel": any(r["parallel"] for r in sweep_details),
        "windows": sum(r["windows"] for r in sweep_details),
        "frontier_pins": sum(r["frontier_pins"] for r in sweep_details),
        "improved_windows": sum(r["improved_windows"] for r in sweep_details),
        "window_gain": sum(r["window_gain"] for r in sweep_details),
        "stitch": {
            key: sum(r["stitch"][key] for r in sweep_details)
            for key in ("substituted", "unchanged", "skipped_cycles")
        },
        "reclaimed": sum(r["reclaimed"] for r in sweep_details),
        "certified_windows": sum(r["certified_windows"] for r in sweep_details),
        "certified_methods": methods,
        "optimize_wall_s": round(sum(r["optimize_wall_s"] for r in sweep_details), 6),
        "extract_wall_s": round(sum(r["extract_wall_s"] for r in sweep_details), 6),
        "stitch_wall_s": round(sum(r["stitch_wall_s"] for r in sweep_details), 6),
        "parent_idle_s": round(sum(r["parent_idle_s"] for r in sweep_details), 6),
        "commit_queue_peak": max(r["commit_queue_peak"] for r in sweep_details),
        "per_window": [r for record in sweep_details for r in record["per_window"]],
        "per_sweep": [
            {
                key: record[key]
                for key in (
                    "offset",
                    "windows",
                    "frontier_pins",
                    "improved_windows",
                    "window_gain",
                    "stitch",
                    "optimize_wall_s",
                    "extract_wall_s",
                    "stitch_wall_s",
                    "parent_idle_s",
                    "commit_queue_peak",
                    "wall_s",
                )
            }
            for record in sweep_details
        ],
        "wall_s": round(time.perf_counter() - start, 6),
    }
    return details


class PartitionedRewrite(Pass):
    """Flow-engine pass wrapping :func:`partitioned_rewrite`.

    Per-window gains, frontier pin counts, stitch outcomes,
    certification verdicts and the per-phase pipeline metrics
    (``extract_wall_s``, ``stitch_wall_s``, ``commit_queue_peak``,
    ``parent_idle_s``, per-sweep records) land in
    ``PassMetrics.details`` through the standard
    :class:`~repro.flows.engine.Pipeline` metrics path.
    """

    name = "partitioned_rewrite"

    def __init__(
        self,
        max_window_gates: int = 400,
        strategy: str = "topo",
        workers: Optional[int] = None,
        certify: bool = True,
        flow: str = "auto",
        flow_kwargs: Optional[dict] = None,
        certify_options: Optional[dict] = None,
        sweeps: int = 1,
        pipeline: bool = True,
        lookahead: Optional[int] = None,
    ) -> None:
        self.max_window_gates = max_window_gates
        self.strategy = strategy
        self.workers = workers
        self.certify = certify
        self.flow = flow
        self.flow_kwargs = flow_kwargs
        self.certify_options = certify_options
        self.sweeps = sweeps
        self.pipeline = pipeline
        self.lookahead = lookahead

    def apply(self, network) -> Dict[str, object]:
        return partitioned_rewrite(
            network,
            max_window_gates=self.max_window_gates,
            strategy=self.strategy,
            workers=self.workers,
            certify=self.certify,
            flow=self.flow,
            flow_kwargs=self.flow_kwargs,
            certify_options=self.certify_options,
            sweeps=self.sweeps,
            pipeline=self.pipeline,
            lookahead=self.lookahead,
        )
