"""Partition-parallel rewriting of one large network (windowed flows).

The process-parallel layer of PR 5 shards *across* circuits; this module
parallelizes *inside* one circuit: the network is decomposed into
bounded windows (:mod:`repro.parallel.partition`), each window is
extracted as a standalone sub-network and optimized in a worker process
(the MIGhty pipeline for MIGs, the ``resyn2`` script for AIGs), verified
against its pre-optimization self with the SAT-backed equivalence
dispatch — window miters stay small even when the network is not — and
stitched back through the kernel's substitution machinery
(:mod:`repro.parallel.window`).

Determinism (the window extension of the :mod:`repro.parallel`
contract): the partition is a pure function of the structure and the
spec, each window job is a pure function of its extracted sub-network,
and stitching is serial in window order — so the final network is
bit-identical (node ids, fanins, POs, structural fingerprint) at any
worker count.  ``tests/parallel/test_partition.py`` asserts this at 1,
2 and 4 workers; ``benchmarks/bench_partition.py`` asserts it at scale
together with the wall-clock floor.

:class:`PartitionedRewrite` is the flow-engine pass (per-window gains,
frontier pin counts and certification verdicts land in
``PassMetrics.details``); :func:`repro.flows.batch.optimize_large` is
the corresponding top-level API.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..core.signal import make_signal
from ..parallel.executor import parallel_map
from ..parallel.partition import PartitionSpec, partition_network
from ..parallel.window import StitchStats, extract_window, release_pins, stitch_window
from .engine import Pass

__all__ = ["PartitionedRewrite", "WindowVerificationError", "partitioned_rewrite"]

#: Default per-window flow options for MIG windows: one light round —
#: windows are small, and the cross-window sweep is where the wall-clock
#: goes, so per-window effort trades off against whole-network latency.
_DEFAULT_MIG_WINDOW_KWARGS = {"rounds": 1, "depth_effort": 1}


class WindowVerificationError(AssertionError):
    """A window optimization broke (or could not certify) equivalence.

    Raised both on a proven mismatch and on an *uncertified* all-clear
    (the checker's budget ran out and only random simulation vouches for
    the window): a window is only ever stitched on a proof.
    """

    def __init__(self, window_label: str, result) -> None:
        self.window_label = window_label
        self.result = result
        if result.equivalent and not getattr(result, "certified", True):
            message = (
                f"window {window_label} could NOT be certified "
                f"(method={result.method} found no mismatch but is not a "
                f"proof; raise the certification budget via certify_options)"
            )
        else:
            message = (
                f"window {window_label} is NOT function-preserving "
                f"(method={result.method}, output index={result.failing_output}, "
                f"counterexample={result.counterexample})"
            )
        super().__init__(message)


def _window_flow(network, flow: str) -> str:
    if flow != "auto":
        return flow
    from ..aig.aig import Aig

    return "resyn2" if isinstance(network, Aig) else "mighty"


def _window_task(item):
    """Worker task: optimize (and certify) one extracted window.

    ``item`` is ``(sub, flow, flow_kwargs, certify, certify_options)``;
    ``sub`` is this process's private unpickled copy of the extracted
    sub-network and is kept as the certification reference.  Returns
    ``(optimized_or_None, info)`` — ``None`` when the optimizer did not
    strictly improve the ``(size, depth)`` order, so the stitch phase
    skips the window.  A failed *or uncertified* certification raises
    (fail-fast through the pool): an equivalence verdict that only means
    "random simulation found nothing" never counts as window
    certification.
    """
    sub, flow, flow_kwargs, certify, certify_options = item
    size_before, depth_before = sub.num_gates, sub.depth()
    if flow == "mighty":
        from .mighty import mighty_optimize

        optimized = sub.copy()
        mighty_optimize(optimized, **flow_kwargs)
    elif flow == "resyn2":
        from ..aig.resyn import resyn2

        optimized, _ = resyn2(sub)
    else:
        raise ValueError(f"unknown window flow {flow!r}")
    info: Dict[str, object] = {
        "pins": sub.num_pis,
        "outputs": sub.num_pos,
        "size_before": size_before,
        "size_after": optimized.num_gates,
        "depth_before": depth_before,
        "depth_after": optimized.depth(),
    }
    if certify:
        from ..verify.equivalence import check_equivalence

        result = check_equivalence(sub, optimized, **(certify_options or {}))
        certified = getattr(result, "certified", True)
        info["certified"] = {
            "equivalent": result.equivalent,
            "method": result.method,
            "certified": certified,
        }
        if not result.equivalent or not certified:
            raise WindowVerificationError(sub.name, result)
    improved = (optimized.num_gates, optimized.depth()) < (size_before, depth_before)
    info["improved"] = improved
    return (optimized if improved else None, info)


def partitioned_rewrite(
    network,
    max_window_gates: int = 400,
    strategy: str = "topo",
    workers: Optional[int] = None,
    certify: bool = True,
    flow: str = "auto",
    flow_kwargs: Optional[dict] = None,
    certify_options: Optional[dict] = None,
) -> Dict[str, object]:
    """Windowed optimization of ``network`` in place; returns details.

    The phases: cleanup → partition → extract → optimize windows on the
    shard planner's pool (LPT by window gate count) → stitch serially in
    window order → release pins and sweep.  ``certify`` proves every
    window job function-preserving inside its worker (SAT-backed for
    wide windows); an uncertified verdict (budget exhausted, random
    fallback) rejects the window by raising
    :class:`WindowVerificationError` — it is never stitched as if
    proven.  ``certify_options`` is forwarded to
    :func:`~repro.verify.equivalence.check_equivalence` (e.g.
    ``{"sat_options": {...}}`` to size the per-window proof budget).
    The stitched network additionally stays check-equivalence-able
    against the input as a whole, which the tests do on forged networks.
    """
    start = time.perf_counter()
    network.cleanup()
    spec = PartitionSpec(max_window_gates=max_window_gates, strategy=strategy)
    windows = partition_network(network, spec)
    details: Dict[str, object] = {
        "strategy": strategy,
        "max_window_gates": max_window_gates,
        "windows": len(windows),
        "frontier_pins": sum(len(w.inputs) for w in windows),
    }
    if not windows:
        details.update({"workers": 1, "parallel": False, "per_window": []})
        return details

    resolved = _window_flow(network, flow)
    if flow_kwargs is None:
        kwargs = dict(_DEFAULT_MIG_WINDOW_KWARGS) if resolved == "mighty" else {}
    else:
        if resolved == "resyn2" and flow_kwargs:
            raise ValueError(
                f"flow 'resyn2' takes no flow options, got {sorted(flow_kwargs)}"
            )
        kwargs = dict(flow_kwargs)

    subs = [extract_window(network, window) for window in windows]
    report = parallel_map(
        _window_task,
        [(sub, resolved, kwargs, certify, certify_options) for sub in subs],
        workers=workers,
        costs=[window.num_gates for window in windows],
        labels=[f"w{window.index}" for window in windows],
    )

    # Pin every window output before any substitution: a cascade from an
    # early stitch may otherwise reclaim a later window's output while
    # that window's frontier pins still name it.
    upfront = StitchStats()
    for window in windows:
        for output in window.outputs:
            network.pin_node(output)
            upfront.pinned.append(output)

    repl: Dict[int, int] = {}
    all_stats: List[StitchStats] = [upfront]
    per_window: List[Dict[str, object]] = []
    stitch_totals = {"substituted": 0, "unchanged": 0, "skipped_cycles": 0}
    for window, (optimized, info) in zip(windows, report.results):
        record = {
            "window": window.index,
            "gates": window.num_gates,
            "pins": len(window.inputs),
            "gain": info["size_before"] - info["size_after"],
            "improved": info["improved"],
        }
        if "certified" in info:
            record["certified"] = info["certified"]
        if optimized is None:
            # Unimproved window: outputs keep their identity (pinned
            # above, so they are still alive whatever earlier cascades
            # did around them).
            for output in window.outputs:
                repl[output] = make_signal(output)
            record["stitch"] = None
        else:
            stats = stitch_window(network, window, optimized, repl)
            all_stats.append(stats)
            for key, value in stats.as_dict().items():
                stitch_totals[key] += value
            record["stitch"] = stats.as_dict()
        per_window.append(record)
    reclaimed = release_pins(network, all_stats)

    certified = [r["certified"] for r in per_window if "certified" in r]
    methods: Dict[str, int] = {}
    for verdict in certified:
        methods[verdict["method"]] = methods.get(verdict["method"], 0) + 1
    details.update(
        {
            "flow": resolved,
            "flow_kwargs": kwargs,
            "workers": report.workers,
            "parallel": report.parallel,
            "improved_windows": sum(1 for r in per_window if r["improved"]),
            "window_gain": sum(r["gain"] for r in per_window if r["improved"]),
            "stitch": stitch_totals,
            "reclaimed": reclaimed,
            "certified_windows": len(certified),
            "certified_methods": methods,
            "optimize_wall_s": round(report.wall_s, 6),
            "wall_s": round(time.perf_counter() - start, 6),
            "per_window": per_window,
        }
    )
    return details


class PartitionedRewrite(Pass):
    """Flow-engine pass wrapping :func:`partitioned_rewrite`.

    Per-window gains, frontier pin counts, stitch outcomes and
    certification verdicts land in ``PassMetrics.details`` through the
    standard :class:`~repro.flows.engine.Pipeline` metrics path.
    """

    name = "partitioned_rewrite"

    def __init__(
        self,
        max_window_gates: int = 400,
        strategy: str = "topo",
        workers: Optional[int] = None,
        certify: bool = True,
        flow: str = "auto",
        flow_kwargs: Optional[dict] = None,
        certify_options: Optional[dict] = None,
    ) -> None:
        self.max_window_gates = max_window_gates
        self.strategy = strategy
        self.workers = workers
        self.certify = certify
        self.flow = flow
        self.flow_kwargs = flow_kwargs
        self.certify_options = certify_options

    def apply(self, network) -> Dict[str, object]:
        return partitioned_rewrite(
            network,
            max_window_gates=self.max_window_gates,
            strategy=self.strategy,
            workers=self.workers,
            certify=self.certify,
            flow=self.flow,
            flow_kwargs=self.flow_kwargs,
            certify_options=self.certify_options,
        )
