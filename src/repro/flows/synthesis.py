"""The synthesis experiment of Table I (bottom half) and Fig. 4.

Every benchmark goes through three optimization-mapping flows that share
the same standard-cell library and (for MIG and AIG) the same mapper.
The optimization stage of each flow is a pass pipeline over the flow
engine (:mod:`repro.flows.engine`), so every synthesis row can also
report its optimization-stage per-pass metrics (``opt_passes``):

``MIG + Tech. Map.``
    The MIGhty pipeline followed by the structural mapper.
``AIG + Tech. Map.``
    The resyn2-style rebuild chain followed by the same mapper.
``CST``
    The "commercial synthesis tool" stand-in: an independent flow that runs
    a lighter AIG script (balance + rewrite + balance) and maps with the
    same library.  The absolute numbers of a real commercial tool cannot be
    reproduced; what the experiment preserves is an independent third
    design point, as documented in DESIGN.md.

Each flow reports estimated area (µm²), delay (ns) and power (µW) from the
gate-level netlist, before physical design.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..aig.aig import Aig
from ..aig.resyn import resyn2, run_script
from ..bench_circuits import benchmark_names, build_benchmark
from ..core.mig import Mig
from ..mapping.library import CellLibrary, default_library
from ..mapping.mapper import map_aig, map_mig
from ..mapping.netlist import MappedNetlist
from .engine import PassMetrics
from .mighty import mighty_optimize

__all__ = [
    "SynthesisMetrics",
    "SynthesisComparison",
    "run_mig_synthesis",
    "run_aig_synthesis",
    "run_cst_synthesis",
    "compare_synthesis",
    "run_synthesis_experiment",
]


@dataclass(frozen=True)
class SynthesisMetrics:
    """Estimated post-mapping metrics of one flow on one benchmark."""

    name: str
    flow: str
    area_um2: float
    delay_ns: float
    power_uw: float
    num_cells: int
    runtime_s: float
    opt_passes: tuple = ()


@dataclass
class SynthesisComparison:
    """Per-benchmark row of Table I (bottom)."""

    name: str
    mig: SynthesisMetrics
    aig: SynthesisMetrics
    cst: SynthesisMetrics


def _measure(
    netlist: MappedNetlist,
    name: str,
    flow: str,
    runtime: float,
    opt_passes: List[PassMetrics] = (),
) -> SynthesisMetrics:
    return SynthesisMetrics(
        name=name,
        flow=flow,
        area_um2=netlist.area(),
        delay_ns=netlist.delay(),
        power_uw=netlist.power(),
        num_cells=netlist.num_cells,
        runtime_s=runtime,
        opt_passes=tuple(opt_passes),
    )


def run_mig_synthesis(
    benchmark: str,
    library: Optional[CellLibrary] = None,
    rounds: int = 2,
    depth_effort: int = 2,
) -> SynthesisMetrics:
    """MIGhty pipeline + technology mapping."""
    library = library or default_library()
    start = time.perf_counter()
    mig = build_benchmark(benchmark, Mig)
    result = mighty_optimize(mig, rounds=rounds, depth_effort=depth_effort)
    netlist = map_mig(mig, library)
    return _measure(
        netlist, benchmark, "MIG", time.perf_counter() - start, result.pass_metrics
    )


def run_aig_synthesis(
    benchmark: str, library: Optional[CellLibrary] = None
) -> SynthesisMetrics:
    """AIG (resyn2-style chain) optimization + technology mapping."""
    library = library or default_library()
    start = time.perf_counter()
    aig = build_benchmark(benchmark, Aig)
    optimized, stats = resyn2(aig)
    netlist = map_aig(optimized, library)
    return _measure(
        netlist, benchmark, "AIG", time.perf_counter() - start, stats.pass_metrics
    )


def run_cst_synthesis(
    benchmark: str, library: Optional[CellLibrary] = None
) -> SynthesisMetrics:
    """The commercial-synthesis-tool stand-in flow."""
    library = library or default_library()
    start = time.perf_counter()
    aig = build_benchmark(benchmark, Aig)
    optimized, stats = run_script(aig, ("balance", "rewrite", "balance"))
    netlist = map_aig(optimized, library)
    return _measure(
        netlist, benchmark, "CST", time.perf_counter() - start, stats.pass_metrics
    )


def compare_synthesis(
    benchmark: str,
    library: Optional[CellLibrary] = None,
    rounds: int = 2,
    depth_effort: int = 2,
) -> SynthesisComparison:
    """Run the three synthesis flows of Table I (bottom) on one benchmark."""
    return SynthesisComparison(
        name=benchmark,
        mig=run_mig_synthesis(benchmark, library, rounds=rounds, depth_effort=depth_effort),
        aig=run_aig_synthesis(benchmark, library),
        cst=run_cst_synthesis(benchmark, library),
    )


def run_synthesis_experiment(
    benchmarks: Optional[List[str]] = None,
    library: Optional[CellLibrary] = None,
    rounds: int = 2,
    depth_effort: int = 2,
) -> List[SynthesisComparison]:
    """Run the full Table I (bottom) experiment."""
    names = benchmarks if benchmarks is not None else benchmark_names()
    return [
        compare_synthesis(name, library, rounds=rounds, depth_effort=depth_effort)
        for name in names
    ]
