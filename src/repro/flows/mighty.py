"""The MIGhty optimization flow (Section V-A methodology).

The paper's experiments run "depth-optimization interlaced with size and
activity recovery phases".  This module packages exactly that recipe on top
of the Algorithm 1 / Algorithm 2 implementations so the experiment harness,
the examples and downstream users all run the same flow.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.balance import balance_mig
from ..core.depth_opt import optimize_depth
from ..core.mig import Mig
from ..core.reshape import ReshapeParams
from ..core.size_opt import eliminate, optimize_size

__all__ = ["MightyResult", "mighty_optimize"]


@dataclass
class MightyResult:
    """Outcome of one MIGhty flow invocation."""

    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    rounds: int
    runtime_s: float


def mighty_optimize(
    mig: Mig,
    rounds: int = 2,
    depth_effort: int = 2,
    size_effort: int = 1,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    activity_recovery: bool = True,
    reshape_params: Optional[ReshapeParams] = None,
) -> MightyResult:
    """Run the MIGhty delay-oriented flow in place.

    Each round performs depth optimization (Algorithm 2), then a size
    recovery phase (Algorithm 1 with low effort), then an optional activity
    recovery phase (the probability-shaping step of Section IV-C with a
    small candidate budget).  Rounds stop early when neither depth nor size
    improves.
    """
    start = time.perf_counter()
    initial_size = mig.num_gates
    initial_depth = mig.depth()
    executed = 0

    # Associative balancing (closed-form Ω.A) gives the majority-specific
    # depth moves a well-conditioned starting point.
    balanced = balance_mig(mig)
    if (balanced.depth(), balanced.num_gates) <= (mig.depth(), mig.num_gates):
        mig.assign_from(balanced)

    for _ in range(max(1, rounds)):
        executed += 1
        depth_before = mig.depth()
        size_before = mig.num_gates

        optimize_depth(mig, effort=depth_effort, reshape_params=reshape_params)
        optimize_size(mig, effort=size_effort, reshape_params=reshape_params)
        if activity_recovery:
            # Cheap recovery: one more elimination pass keeps the size in
            # check after the depth-oriented duplication.
            eliminate(mig)
        rebalanced = balance_mig(mig)
        if (rebalanced.depth(), rebalanced.num_gates) <= (mig.depth(), mig.num_gates):
            mig.assign_from(rebalanced)

        if mig.depth() >= depth_before and mig.num_gates >= size_before:
            break

    return MightyResult(
        initial_size=initial_size,
        initial_depth=initial_depth,
        final_size=mig.num_gates,
        final_depth=mig.depth(),
        rounds=executed,
        runtime_s=time.perf_counter() - start,
    )
