"""The MIGhty optimization flow (Section V-A methodology).

The paper's experiments run "depth-optimization interlaced with size and
activity recovery phases".  This module declares exactly that recipe as a
pass pipeline over the flow engine (:mod:`repro.flows.engine`)::

    Pipeline([
        Balance(),
        Repeat([DepthOpt(effort), SizeOpt(effort), Eliminate(), Balance()],
               rounds=rounds),
    ])

so the experiment harness, the examples and downstream users all run the
same flow — and all get the engine's per-pass size/depth/runtime metrics
for free (see :attr:`MightyResult.pass_metrics` and the serialisation
helpers in :mod:`repro.flows.report`).

Balancing commits its rebuilt candidate only when it *strictly* improves
the ``(depth, size)`` order; a candidate that merely ties no longer
replaces the network (which used to cost a full copy for zero gain).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Mapping, Optional

from ..core.mig import Mig
from ..core.reshape import ReshapeParams
from .engine import (
    Balance,
    DepthOpt,
    Eliminate,
    MigRewrite,
    Pass,
    PassMetrics,
    Pipeline,
    Repeat,
    SizeOpt,
)

__all__ = ["MightyResult", "mighty_optimize", "mighty_pipeline"]


@dataclass
class MightyResult:
    """Outcome of one MIGhty flow invocation."""

    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    rounds: int
    runtime_s: float
    pass_metrics: List[PassMetrics] = field(default_factory=list)


def mighty_pipeline(
    rounds: int = 2,
    depth_effort: int = 2,
    size_effort: int = 1,
    activity_recovery: bool = True,
    reshape_params: Optional[ReshapeParams] = None,
    boolean_rewrite: bool = True,
    verify=None,
) -> Pipeline:
    """Build the MIGhty flow as a declarative pass pipeline.

    Each round performs depth optimization (Algorithm 2), then a size
    recovery phase (Algorithm 1 with low effort), then an optional
    activity recovery phase (a cheap elimination pass that keeps the size
    in check after the depth-oriented duplication), then re-balances.
    Rounds stop early when neither depth nor size improves.  The leading
    balance (closed-form Ω.A) gives the majority-specific depth moves a
    well-conditioned starting point.

    ``boolean_rewrite`` (default **on** since the top-k structure
    database landed) interleaves NPN-database cut rewriting
    (:class:`~repro.flows.engine.MigRewrite`) with the algebraic size
    recovery — an optimization scenario beyond the paper's purely
    algebraic flow.  Each rewrite sweep is depth-safe and only commits
    size-improving replacements; the combined flow dominating the
    algebraic one on both metrics is an empirical result (verified per
    benchmark by ``benchmarks/acceptance_cut_rewrite.py`` over the Table I
    suite), not a structural guarantee — later heuristic rounds start
    from a different network and could in principle land elsewhere.  Pass
    ``boolean_rewrite=False`` for the paper's purely algebraic flow.

    ``verify`` enables per-pass self-certification: ``True`` proves every
    top-level pass function-preserving through the equivalence-checking
    dispatch (exhaustive simulation or SAT sweeping depending on input
    width) and raises :class:`~repro.flows.engine.PassVerificationError`
    on the first violation; a callable supplies a custom checker.
    """
    round_passes: List[Pass] = [
        DepthOpt(effort=depth_effort, reshape_params=reshape_params),
        SizeOpt(effort=size_effort, reshape_params=reshape_params),
    ]
    if boolean_rewrite:
        round_passes.append(MigRewrite())
    if activity_recovery:
        round_passes.append(Eliminate())
    round_passes.append(Balance())
    return Pipeline(
        [
            Balance(),
            Repeat(round_passes, rounds=max(1, rounds), name="mighty_round"),
        ],
        name="mighty",
        verify=verify,
    )


def mighty_optimize(
    mig: Mig,
    rounds: int = 2,
    depth_effort: int = 2,
    size_effort: int = 1,
    pi_probabilities: Optional[Mapping[str, float]] = None,
    activity_recovery: bool = True,
    reshape_params: Optional[ReshapeParams] = None,
    boolean_rewrite: bool = True,
    verify=None,
) -> MightyResult:
    """Run the MIGhty delay-oriented flow in place.

    With ``verify`` (see :func:`mighty_pipeline`) the run self-certifies:
    every top-level pass is equivalence-checked against its input network.
    """
    start = time.perf_counter()
    pipeline = mighty_pipeline(
        rounds=rounds,
        depth_effort=depth_effort,
        size_effort=size_effort,
        activity_recovery=activity_recovery,
        reshape_params=reshape_params,
        boolean_rewrite=boolean_rewrite,
        verify=verify,
    )
    result = pipeline.run(mig)

    executed = 1
    for metrics in result.passes:
        if metrics.name == "mighty_round":
            executed = int(metrics.details.get("rounds", 1))

    return MightyResult(
        initial_size=result.initial_size,
        initial_depth=result.initial_depth,
        final_size=result.final_size,
        final_depth=result.final_depth,
        rounds=executed,
        runtime_s=time.perf_counter() - start,
        pass_metrics=result.passes,
    )
