"""DAG-aware Boolean cut rewriting over any :class:`LogicNetwork`.

The engine behind ABC-style ``rewrite``: enumerate k-feasible cuts
(:mod:`repro.network.cuts`), NPN-canonicalize each cut function, fetch the
precomputed optimal structure for its class (:mod:`repro.network.npn`) and
replace the cone when doing so shrinks the network.  The gain accounting is
*shared-logic aware*:

* the nodes freed by a replacement are the root's maximum fanout-free cone
  with respect to the cut (exactly what the substitution cascade reclaims);
* the nodes added are counted by a **dry run** of the database structure
  against the live structural-hash table, so subgraphs that already exist
  cost nothing — except when the hit lands inside the cone being freed,
  which is then counted as an addition (it will survive the replacement);
* optionally, zero-gain replacements are applied too: they do not shrink
  the network now, but they canonicalize structure so later nodes strash
  into it (ABC applies the same policy in ``rewrite -z`` spirit).

Because node functions (over the primary inputs) never change — every
in-place update the kernel performs substitutes functionally equal signals
— a cut's truth table stays valid even after earlier rewrites restructure
the cone it was enumerated from; the engine only re-checks that the cut's
leaves are still alive.

MIG passes additionally bound the *level* of the replacement
(``max_level_growth=0`` guarantees the network depth never increases,
since a node's level can only influence its fanouts monotonically).
With ``max_level_growth < 0`` the sweep runs in **depth mode**: every
entry of the class's top-k list (the (size, depth) Pareto front from
:func:`~repro.network.npn.get_structures`) is costed and the shallowest
admissible replacement wins, with ``max_size_growth`` bounding how many
extra nodes a depth-improving move may spend; area sweeps keep using the
size-best entry only.

Cut enumeration goes through the network's shared
:class:`~repro.network.cuts.CutManager` by default, so interleaved sweeps
(multi-round ``rewrite``/``refactor`` scripts, ``mig_rewrite`` inside the
MIGhty rounds) re-enumerate only the cones touched since the previous
sweep instead of the whole network.  Two observations make this exact:

* the cuts a manager sweep yields are identical to a from-scratch
  enumeration of the current network (the manager's core invariant), so
  the rewrite decisions — and therefore the resulting network — are
  bit-identical to the non-incremental path;
* when a sweep applied no rewrite, the pass records the network's
  mutation serial; a follow-up sweep with the same parameters on an
  untouched network is provably the same no-op and returns immediately
  (``converged_skip`` in the stats), which is what makes
  run-until-no-improvement loops cheap past their fixpoint.

Per-sweep cut-reuse counters (``cut_nodes_recomputed`` /
``cut_nodes_reused``) are folded into the returned stats, and from there
into the flow engine's per-pass metrics.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional, Tuple

from ..core.signal import CONST_FALSE, make_signal
from .cuts import CutManager, enumerate_cuts, mffc_nodes
from .npn import (
    extend_table,
    get_structures,
    invert_transform,
    npn_canonical,
    replay_structure,
    structure_db_generation,
)

__all__ = ["cut_rewrite"]


def cut_rewrite(
    net,
    kind: str,
    k: int = 4,
    cut_limit: int = 8,
    allow_zero_gain: bool = False,
    max_level_growth: Optional[int] = None,
    max_size_growth: int = 0,
    incremental: bool = True,
    manager: Optional[CutManager] = None,
) -> Dict[str, int]:
    """Run one cut-rewriting sweep over ``net`` in place.

    ``kind`` selects the structure database ("mig" or "aig") and must match
    the network's gate semantics.  Returns a stats dictionary with the
    number of rewrites applied, the total size gain realised and the cut
    engine's reuse counters.  ``incremental=False`` forces a from-scratch
    enumeration (the benchmark baseline); ``manager`` supplies an explicit
    :class:`CutManager` instead of the network's shared one.

    ``max_level_growth < 0`` switches the sweep into depth mode: the
    candidate ordering prefers the largest level drop (size gain breaks
    ties), every entry of the class's top-k list is considered, and
    ``max_size_growth`` extra nodes may be spent per move.  In area mode
    (``max_level_growth`` ``None`` or ``>= 0``) ``max_size_growth`` is
    ignored and only the size-best entry of each class is used.
    """
    if manager is None and incremental:
        manager = CutManager.for_network(net, k=k, cut_limit=cut_limit)
    depth_mode = max_level_growth is not None and max_level_growth < 0
    convergence_key = (
        "cut_rewrite",
        kind,
        k,
        cut_limit,
        allow_zero_gain,
        max_level_growth,
        max_size_growth if depth_mode else 0,
    )
    if manager is not None:
        # The convergence token pairs the network's mutation serial with
        # the structure database's generation: a no-op sweep only stays a
        # no-op while *both* the network and the database it was decided
        # against are unchanged.  (A DB swap — reset, re-derivation, top-k
        # registration — may create rewrites where there were none.)
        if manager.notes.get(convergence_key) == (
            manager.generation,
            structure_db_generation(),
        ):
            # The exact same sweep ran at this mutation serial against the
            # same database and applied nothing; both are untouched since,
            # so this sweep is the same no-op.
            return {
                "rewrites": 0,
                "zero_gain": 0,
                "aliased": 0,
                "gain": 0,
                "cut_nodes_recomputed": 0,
                "cut_nodes_reused": 0,
                "converged_skip": 1,
            }
        recomputed_before = manager.stats["nodes_recomputed"]
        reused_before = manager.stats["nodes_reused"]
        cuts = manager.cuts()
        cut_nodes_recomputed = manager.stats["nodes_recomputed"] - recomputed_before
        cut_nodes_reused = manager.stats["nodes_reused"] - reused_before
        sweep_start_generation = manager.generation
    else:
        cuts = enumerate_cuts(net, k=k, cut_limit=cut_limit)
        cut_nodes_recomputed = len(net._topology())
        cut_nodes_reused = 0
    order = list(net._topology())
    dead = net._dead
    level = net._level
    applied = 0
    gain_total = 0
    zero_gain_applied = 0
    aliased = 0

    for root in order:
        if dead[root]:
            continue
        best = None  # (candidate_key, gain, entry, inputs)
        for cut in cuts.get(root, ()):
            leaves = cut.leaves
            if len(leaves) == 1 and leaves[0] == root:
                continue  # the trivial cut rewrites nothing
            dead_leaf = False
            for leaf in leaves:
                if dead[leaf]:
                    dead_leaf = True
                    break
            if dead_leaf:
                continue
            canonical, transform = npn_canonical(extend_table(cut.table, len(leaves)))
            entries = get_structures(kind, canonical)
            if not depth_mode:
                # Area sweeps only ever want the size-best structure.
                entries = entries[:1]
            inputs = _structure_inputs(leaves, transform)
            mffc = mffc_nodes(net, root, leaves)
            if depth_mode:
                limit = len(mffc) + max_size_growth
            else:
                limit = len(mffc) if allow_zero_gain else len(mffc) - 1
            for entry in entries:
                dry = _dry_run(net, entry, inputs, mffc, level, limit)
                if dry is None:
                    continue
                added, est_level, output_node = dry
                if output_node == root:
                    continue  # the structure resolves to the node itself
                gain = len(mffc) - added
                if max_level_growth is not None and est_level > level[root] + max_level_growth:
                    continue
                candidate = (-est_level, gain) if depth_mode else (gain, -est_level)
                if best is None or candidate > best[0]:
                    best = (candidate, gain, entry, inputs)
        if best is None:
            continue
        # Every surviving candidate already meets the gain threshold: the
        # dry-run's ``max_new`` bound rejects additions beyond the limit —
        # len(mffc) (len(mffc) - 1 without zero-gain) in area mode, so
        # gain >= 0 (>= 1) there; len(mffc) + max_size_growth in depth
        # mode, where the level filter already guarantees a depth win.
        _, gain, entry, inputs = best
        replacement = replay_structure(net, entry, inputs[:4]) ^ inputs[4]
        if (replacement >> 1) == root:
            continue
        if not net.substitute(root, replacement):
            continue  # replacement reconverges above the root; skip it
        if not dead[root]:
            # A fanout of the root collapsed back onto it during the
            # substitution cascade (the root's function is a structural
            # alias of part of its fanout), so the root — and through it
            # the whole cone the gain assumed freed — stays alive.  The
            # replacement is now a functional duplicate: merge it back
            # onto the root and count nothing for this rewrite.
            duplicate = replacement >> 1
            if (
                duplicate != root
                and not dead[duplicate]
                and net._fanins[duplicate] is not None
            ):
                net.substitute(duplicate, (root << 1) | (replacement & 1))
            aliased += 1
            continue
        applied += 1
        gain_total += gain
        if gain == 0:
            zero_gain_applied += 1

    net.cleanup()
    if (
        manager is not None
        and applied == 0
        and aliased == 0
        and manager.generation == sweep_start_generation
    ):
        # The sweep provably left the network untouched — not even a
        # speculative replacement was allocated (an aborted substitute
        # would consume node ids and desynchronise the id stream from the
        # non-incremental path) — so an untouched network can skip the
        # next identical sweep outright.  The database generation is
        # sampled *after* the sweep: lazy derivations during the sweep are
        # part of the database this no-op was decided against.
        manager.notes[convergence_key] = (
            manager.generation,
            structure_db_generation(),
        )
    return {
        "rewrites": applied,
        "zero_gain": zero_gain_applied,
        "aliased": aliased,
        "gain": gain_total,
        "cut_nodes_recomputed": cut_nodes_recomputed,
        "cut_nodes_reused": cut_nodes_reused,
        "converged_skip": 0,
    }


@lru_cache(maxsize=1 << 15)
def _structure_inputs(leaves: Tuple[int, ...], transform) -> Tuple[int, int, int, int, int]:
    """Wire the cut leaves onto the database structure's four inputs.

    The recorded transform maps the cut function onto its canonical
    representative; its inverse ``(perm, neg, out)`` says how to express
    the cut function *from* the canonical structure:
    input ``perm[j]`` of the structure receives leaf ``j`` (complemented
    when ``neg`` has bit ``j``), and the structure's output is complemented
    when ``out`` is set — which :func:`_dry_run` and the replay both apply
    through the output literal of the entry, so it is folded here into the
    last element of the returned tuple.  Pure in both arguments, and cuts
    recur identically across sweeps, hence the LRU.
    """
    inverse = invert_transform(transform)
    inputs = [CONST_FALSE] * 4
    for j in range(4):
        source = make_signal(leaves[j]) if j < len(leaves) else CONST_FALSE
        inputs[inverse.perm[j]] = source ^ ((inverse.input_neg >> j) & 1)
    # Output polarity of the canonical-to-cut mapping.
    inputs.append(1 if inverse.output_neg else 0)
    return tuple(inputs)


def _probe_plan_cache(net) -> Dict[Tuple[int, ...], tuple]:
    """Per-network memo of the builder-mirroring probe plan of a fanin tuple.

    ``_gate_simplify``, ``_normalize_gate`` and ``_strash_candidates`` are
    pure functions of the tuple (they read no network state), so the plan
    — ``(simplified_signal, norm_output_compl, candidate_keys)`` — can be
    computed once per distinct tuple instead of once per dry-run op.  The
    tuples recur massively across cuts and across sweeps (including
    placeholder-signal tuples, whose plan is equally structural), which is
    what makes the rewrite evaluation loop cheap on repeated sweeps.
    """
    cache = net.__dict__.get("_dry_probe_cache")
    if cache is None:
        cache = net.__dict__["_dry_probe_cache"] = {}
    return cache


def _dry_run(net, entry, inputs, mffc, level, max_new):
    """Cost a structure against the live network without building it.

    Mirrors the builder: trivial simplification first, then the structural
    hash (both polarity forms).  New gates get negative placeholder node
    ids; gates that hit the hash table are free unless the hit lies inside
    the cone being freed (``mffc``) — reusing such a node keeps it *and its
    transitive fanins inside the cone* alive, so the whole surviving
    closure is charged (once per node).  Returns ``(added,
    estimated_level, output_node)`` or ``None`` when more than ``max_new``
    additions would be needed.
    """
    strash = net._strash
    dead = net._dead
    fanins_store = net._fanins
    output_neg = inputs[-1]
    signals = [CONST_FALSE, *inputs[:4]]
    est_level: Dict[int, int] = {}
    dry: Dict[Tuple[int, ...], int] = {}
    counted = set()
    added = 0
    placeholder = -1
    probe_cache = _probe_plan_cache(net)

    for op in entry.ops:
        if len(op) == 3:
            a, b, c = op
            fanins = (
                signals[a >> 1] ^ (a & 1),
                signals[b >> 1] ^ (b & 1),
                signals[c >> 1] ^ (c & 1),
            )
        elif len(op) == 2:
            a, b = op
            fanins = (signals[a >> 1] ^ (a & 1), signals[b >> 1] ^ (b & 1))
        else:  # pragma: no cover - no current database has another arity
            fanins = tuple(signals[lit >> 1] ^ (lit & 1) for lit in op)
        plan = probe_cache.get(fanins)
        if plan is None:
            simplified = net._gate_simplify(fanins)
            if simplified is not None:
                plan = (simplified, False, ())
            else:
                # Normalize exactly like the builder, so the probe below
                # visits the same keys in the same order and predicts the
                # same node identity.
                norm_fanins, norm_compl = net._normalize_gate(fanins)
                plan = (None, norm_compl, tuple(net._strash_candidates(norm_fanins)))
            if len(probe_cache) >= (1 << 18):
                # Node ids grow monotonically, so old-tuple entries go
                # stale; a wholesale clear keeps the memo effective at a
                # bounded footprint (it rebuilds within one sweep).
                probe_cache.clear()
            probe_cache[fanins] = plan
        simplified, norm_compl, candidates = plan
        if simplified is not None:
            signals.append(simplified)
            continue
        found = None
        for key, out_compl in candidates:
            existing = strash.get(key)
            if existing is not None and not dead[existing]:
                found = (existing, out_compl ^ norm_compl)
                break
            existing = dry.get(key)
            if existing is not None:
                found = (existing, out_compl ^ norm_compl)
                break
        if found is not None:
            node, out_compl = found
            if node in mffc and node not in counted:
                # The reused node and every MFFC-internal node in its
                # fanin cone survive the replacement: charge each once.
                survivors = [node]
                while survivors:
                    survivor = survivors.pop()
                    if survivor in counted:
                        continue
                    counted.add(survivor)
                    added += 1
                    if added > max_new:
                        return None
                    for f in fanins_store[survivor]:
                        fn = f >> 1
                        if fn in mffc and fn not in counted:
                            survivors.append(fn)
            signals.append((node << 1) | (1 if out_compl else 0))
            continue
        added += 1
        if added > max_new:
            return None
        top = 0
        for f in fanins:
            fn = f >> 1
            fl = est_level[fn] if fn < 0 else level[fn]
            if fl > top:
                top = fl
        est_level[placeholder] = top + 1
        dry[candidates[0][0]] = placeholder
        signals.append((placeholder << 1) | (1 if norm_compl else 0))
        placeholder -= 1

    output = signals[entry.output >> 1] ^ (entry.output & 1) ^ output_neg
    out_node = output >> 1
    out_level = est_level[out_node] if out_node < 0 else level[out_node]
    return added, out_level, out_node
