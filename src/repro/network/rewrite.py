"""DAG-aware Boolean cut rewriting over any :class:`LogicNetwork`.

The engine behind ABC-style ``rewrite``: enumerate k-feasible cuts
(:mod:`repro.network.cuts`), NPN-canonicalize each cut function, fetch the
precomputed optimal structure for its class (:mod:`repro.network.npn`) and
replace the cone when doing so shrinks the network.  The gain accounting is
*shared-logic aware*:

* the nodes freed by a replacement are the root's maximum fanout-free cone
  with respect to the cut (exactly what the substitution cascade reclaims);
* the nodes added are counted by a **dry run** of the database structure
  against the live structural-hash table, so subgraphs that already exist
  cost nothing — except when the hit lands inside the cone being freed,
  which is then counted as an addition (it will survive the replacement);
* optionally, zero-gain replacements are applied too: they do not shrink
  the network now, but they canonicalize structure so later nodes strash
  into it (ABC applies the same policy in ``rewrite -z`` spirit).

Because node functions (over the primary inputs) never change — every
in-place update the kernel performs substitutes functionally equal signals
— a cut's truth table stays valid even after earlier rewrites restructure
the cone it was enumerated from; the engine only re-checks that the cut's
leaves are still alive.

MIG passes additionally bound the *level* of the replacement
(``max_level_growth=0`` guarantees the network depth never increases,
since a node's level can only influence its fanouts monotonically).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.signal import CONST_FALSE, make_signal
from .cuts import enumerate_cuts, mffc_nodes
from .npn import (
    extend_table,
    get_structure,
    invert_transform,
    npn_canonical,
    replay_structure,
)

__all__ = ["cut_rewrite"]


def cut_rewrite(
    net,
    kind: str,
    k: int = 4,
    cut_limit: int = 8,
    allow_zero_gain: bool = False,
    max_level_growth: Optional[int] = None,
) -> Dict[str, int]:
    """Run one cut-rewriting sweep over ``net`` in place.

    ``kind`` selects the structure database ("mig" or "aig") and must match
    the network's gate semantics.  Returns a stats dictionary with the
    number of rewrites applied and the total size gain realised.
    """
    cuts = enumerate_cuts(net, k=k, cut_limit=cut_limit)
    order = list(net._topology())
    dead = net._dead
    level = net._level
    applied = 0
    gain_total = 0
    zero_gain_applied = 0
    aliased = 0

    for root in order:
        if dead[root]:
            continue
        best = None  # (gain, -est_level, entry, inputs)
        for cut in cuts.get(root, ()):
            leaves = cut.leaves
            if len(leaves) == 1 and leaves[0] == root:
                continue  # the trivial cut rewrites nothing
            if any(dead[leaf] for leaf in leaves):
                continue
            canonical, transform = npn_canonical(extend_table(cut.table, len(leaves)))
            entry = get_structure(kind, canonical)
            inputs = _structure_inputs(leaves, transform)
            mffc = mffc_nodes(net, root, leaves)
            limit = len(mffc) if allow_zero_gain else len(mffc) - 1
            dry = _dry_run(net, entry, inputs, mffc, level, limit)
            if dry is None:
                continue
            added, est_level, output_node = dry
            if output_node == root:
                continue  # the structure resolves to the node itself
            gain = len(mffc) - added
            if max_level_growth is not None and est_level > level[root] + max_level_growth:
                continue
            candidate = (gain, -est_level)
            if best is None or candidate > (best[0], best[1]):
                best = (gain, -est_level, entry, inputs)
        if best is None:
            continue
        # Every surviving candidate already meets the gain threshold: the
        # dry-run's ``max_new`` bound rejects additions beyond len(mffc)
        # (len(mffc) - 1 without zero-gain), so gain >= 0 (>= 1) here.
        gain, _, entry, inputs = best
        replacement = replay_structure(net, entry, inputs[:4]) ^ inputs[4]
        if (replacement >> 1) == root:
            continue
        if not net.substitute(root, replacement):
            continue  # replacement reconverges above the root; skip it
        if not dead[root]:
            # A fanout of the root collapsed back onto it during the
            # substitution cascade (the root's function is a structural
            # alias of part of its fanout), so the root — and through it
            # the whole cone the gain assumed freed — stays alive.  The
            # replacement is now a functional duplicate: merge it back
            # onto the root and count nothing for this rewrite.
            duplicate = replacement >> 1
            if (
                duplicate != root
                and not dead[duplicate]
                and net._fanins[duplicate] is not None
            ):
                net.substitute(duplicate, (root << 1) | (replacement & 1))
            aliased += 1
            continue
        applied += 1
        gain_total += gain
        if gain == 0:
            zero_gain_applied += 1

    net.cleanup()
    return {
        "rewrites": applied,
        "zero_gain": zero_gain_applied,
        "aliased": aliased,
        "gain": gain_total,
    }


def _structure_inputs(leaves: Tuple[int, ...], transform) -> List[int]:
    """Wire the cut leaves onto the database structure's four inputs.

    The recorded transform maps the cut function onto its canonical
    representative; its inverse ``(perm, neg, out)`` says how to express
    the cut function *from* the canonical structure:
    input ``perm[j]`` of the structure receives leaf ``j`` (complemented
    when ``neg`` has bit ``j``), and the structure's output is complemented
    when ``out`` is set — which :func:`_dry_run` and the replay both apply
    through the output literal of the entry, so it is folded here into the
    last element of the returned list.
    """
    inverse = invert_transform(transform)
    inputs = [CONST_FALSE] * 4
    for j in range(4):
        source = make_signal(leaves[j]) if j < len(leaves) else CONST_FALSE
        inputs[inverse.perm[j]] = source ^ ((inverse.input_neg >> j) & 1)
    # Output polarity of the canonical-to-cut mapping.
    inputs.append(1 if inverse.output_neg else 0)
    return inputs


def _dry_run(net, entry, inputs, mffc, level, max_new):
    """Cost a structure against the live network without building it.

    Mirrors the builder: trivial simplification first, then the structural
    hash (both polarity forms).  New gates get negative placeholder node
    ids; gates that hit the hash table are free unless the hit lies inside
    the cone being freed (``mffc``) — reusing such a node keeps it *and its
    transitive fanins inside the cone* alive, so the whole surviving
    closure is charged (once per node).  Returns ``(added,
    estimated_level, output_node)`` or ``None`` when more than ``max_new``
    additions would be needed.
    """
    strash = net._strash
    dead = net._dead
    output_neg = inputs[-1]
    signals = [CONST_FALSE, *inputs[:4]]
    est_level: Dict[int, int] = {}
    dry: Dict[Tuple[int, ...], int] = {}
    counted = set()
    added = 0
    placeholder = -1

    def level_of(node: int) -> int:
        if node < 0:
            return est_level[node]
        return level[node]

    for op in entry.ops:
        fanins = tuple(signals[lit >> 1] ^ (lit & 1) for lit in op)
        simplified = net._gate_simplify(fanins)
        if simplified is not None:
            signals.append(simplified)
            continue
        # Normalize exactly like the builder, so the probe below visits the
        # same keys in the same order and predicts the same node identity.
        norm_fanins, norm_compl = net._normalize_gate(fanins)
        found = None
        first_key = None
        for key, out_compl in net._strash_candidates(norm_fanins):
            if first_key is None:
                first_key = key
            existing = strash.get(key)
            if existing is not None and not dead[existing]:
                found = (existing, out_compl ^ norm_compl)
                break
            existing = dry.get(key)
            if existing is not None:
                found = (existing, out_compl ^ norm_compl)
                break
        if found is not None:
            node, out_compl = found
            if node in mffc and node not in counted:
                # The reused node and every MFFC-internal node in its
                # fanin cone survive the replacement: charge each once.
                survivors = [node]
                while survivors:
                    survivor = survivors.pop()
                    if survivor in counted:
                        continue
                    counted.add(survivor)
                    added += 1
                    if added > max_new:
                        return None
                    for f in net._fanins[survivor]:
                        fn = f >> 1
                        if fn in mffc and fn not in counted:
                            survivors.append(fn)
            signals.append((node << 1) | (1 if out_compl else 0))
            continue
        added += 1
        if added > max_new:
            return None
        est_level[placeholder] = 1 + max(level_of(f >> 1) for f in fanins)
        dry[first_key] = placeholder
        signals.append((placeholder << 1) | (1 if norm_compl else 0))
        placeholder -= 1

    output = signals[entry.output >> 1] ^ (entry.output & 1) ^ output_neg
    return added, level_of(output >> 1), output >> 1
