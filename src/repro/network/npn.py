"""NPN canonicalization of ≤4-input functions and the rewriting database.

Boolean rewriting replaces the cone over an enumerated cut
(:mod:`repro.network.cuts`) with a precomputed structure implementing the
same function.  Storing one structure per *function* would need 2^16
entries; storing one per *NPN class* — functions equal up to input
Negation, input Permutation and output Negation — needs only 222.  This
module provides the three pieces:

* the transform algebra: :class:`NpnTransform` (input permutation, input
  complementation mask, output complementation) with ``apply`` / ``invert``
  / ``compose``, all operating on 16-bit truth tables in the 4-variable
  space (smaller functions are first padded with :func:`extend_table`);
* :func:`npn_canonical`: the canonical representative of a table plus the
  recorded transform mapping the table onto it.  The full 65,536-entry
  map is derived once per process by a breadth-first closure over the
  transform group's generators (adjacent swaps, single-input negations,
  output negation), each implemented as an O(1) mask-and-shift on the
  table — far cheaper than scoring all 768 transforms per function;
* the structure database: for every canonical class, a precomputed MIG
  and AIG implementation (:class:`DbEntry`), derived exhaustively over
  the classes by Shannon/XOR decomposition with structural hashing and
  polished by the repository's own size optimizers, stored as a replayable
  program over four abstract inputs.

Derived entries are additionally persisted to a small on-disk JSON cache
(one file per kind) so cold starts skip the derivation entirely.  The
cache is keyed by a content hash over the source modules that shape the
derivation — a code change silently invalidates stale files — and every
loaded entry is semantically validated (its program is re-evaluated over
the projection tables and must reproduce the class function) before it is
trusted, so a corrupt or hand-edited file degrades to a fresh derivation
rather than wrong logic.  ``REPRO_NPN_CACHE_DIR`` overrides the location
(default ``~/.cache/repro/npn``); ``REPRO_NPN_CACHE=0`` disables
persistence.

Truth-table convention: bit ``m`` of a table is the function value when
input ``i`` carries bit ``i`` of the minterm index ``m``.
``apply_transform(f, t)`` returns ``g`` with ``g(x) = f(y) ^ t.output_neg``
where ``y[t.perm[j]] = x[j] ^ t.input_neg[j]`` — i.e. the transform
describes how the argument's inputs are wired onto ``f``'s inputs.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..core.signal import CONST_FALSE, CONST_NODE, CONST_TRUE, negate_if

__all__ = [
    "NpnTransform",
    "IDENTITY_TRANSFORM",
    "NUM_NPN_CLASSES",
    "PROJECTIONS",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "extend_table",
    "npn_canonical",
    "npn_representatives",
    "DbEntry",
    "entry_truth_table",
    "get_structure",
    "derive_structures_parallel",
    "replay_structure",
    "structure_cache_path",
    "flush_structure_cache",
    "reset_structure_db",
]

#: Number of NPN equivalence classes of functions of at most 4 variables.
NUM_NPN_CLASSES = 222

_FULL = 0xFFFF

#: Projection table of variable ``i`` in the 4-variable space.
PROJECTIONS = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)
_VAR = PROJECTIONS


class NpnTransform(NamedTuple):
    """An element of the NPN transform group on 4-variable functions."""

    perm: Tuple[int, int, int, int]
    input_neg: int
    output_neg: bool


IDENTITY_TRANSFORM = NpnTransform((0, 1, 2, 3), 0, False)

# Transforms are interned: the group has only 768 elements, and the
# canonical map references one per table, so sharing instances keeps the
# 65,536-entry map small.
_TRANSFORM_CACHE: Dict[Tuple[Tuple[int, ...], int, bool], NpnTransform] = {}


def _intern(perm: Tuple[int, ...], input_neg: int, output_neg: bool) -> NpnTransform:
    key = (perm, input_neg, output_neg)
    cached = _TRANSFORM_CACHE.get(key)
    if cached is None:
        cached = NpnTransform(perm, input_neg, output_neg)
        _TRANSFORM_CACHE[key] = cached
    return cached


def apply_transform(table: int, transform: NpnTransform) -> int:
    """Apply ``transform`` to a 16-bit table (the semantic definition)."""
    perm = transform.perm
    neg = transform.input_neg
    out = 0
    for m2 in range(16):
        m = 0
        for j in range(4):
            if ((m2 >> j) & 1) ^ ((neg >> j) & 1):
                m |= 1 << perm[j]
        if (table >> m) & 1:
            out |= 1 << m2
    return out ^ (_FULL if transform.output_neg else 0)


@lru_cache(maxsize=None)  # the group has 768 elements; the cache is bounded
def invert_transform(transform: NpnTransform) -> NpnTransform:
    """The group inverse: ``apply(apply(f, t), invert(t)) == f``."""
    perm = transform.perm
    iperm = [0, 0, 0, 0]
    for j, p in enumerate(perm):
        iperm[p] = j
    neg = 0
    for i in range(4):
        neg |= ((transform.input_neg >> iperm[i]) & 1) << i
    return _intern(tuple(iperm), neg, transform.output_neg)


def compose_transforms(first: NpnTransform, second: NpnTransform) -> NpnTransform:
    """The transform equivalent to applying ``first`` then ``second``."""
    p1, n1, o1 = first
    p2, n2, o2 = second
    perm = tuple(p1[p2[j]] for j in range(4))
    neg = 0
    for j in range(4):
        neg |= (((n2 >> j) & 1) ^ ((n1 >> p2[j]) & 1)) << j
    return _intern(perm, neg, o1 ^ o2)


def extend_table(table: int, num_vars: int) -> int:
    """Pad a table over ``num_vars`` variables into the 4-variable space."""
    width = 1 << num_vars
    for _ in range(4 - num_vars):
        table |= table << width
        width <<= 1
    return table


# --------------------------------------------------------------------- #
# Canonical map (derived once per process)
# --------------------------------------------------------------------- #
def _generators():
    """The transform group's generators as (fast-op, NpnTransform) pairs.

    Each fast op is the O(1) mask-and-shift equivalent of applying the
    paired transform with :func:`apply_transform`; the agreement of the
    two implementations is checked by ``tests/network/test_npn.py``.
    """
    gens = []
    for i in range(4):
        hi = _VAR[i]
        lo = hi ^ _FULL
        shift = 1 << i
        gens.append(
            (
                lambda t, hi=hi, lo=lo, shift=shift: ((t & lo) << shift)
                | ((t & hi) >> shift),
                _intern((0, 1, 2, 3), 1 << i, False),
            )
        )
    for i, j in ((0, 1), (1, 2), (2, 3)):
        m10 = _VAR[i] & (_VAR[j] ^ _FULL)
        m01 = (_VAR[i] ^ _FULL) & _VAR[j]
        keep = _FULL ^ m10 ^ m01
        d = (1 << j) - (1 << i)
        perm = [0, 1, 2, 3]
        perm[i], perm[j] = j, i
        gens.append(
            (
                lambda t, keep=keep, m10=m10, m01=m01, d=d: (t & keep)
                | ((t >> d) & m10)
                | ((t << d) & m01),
                _intern(tuple(perm), 0, False),
            )
        )
    gens.append((lambda t: t ^ _FULL, _intern((0, 1, 2, 3), 0, True)))
    return gens


_CANON: Optional[List[Tuple[int, NpnTransform]]] = None


def _canonical_map() -> List[Tuple[int, NpnTransform]]:
    """``table -> (canonical table, transform table→canonical)`` for all 2^16."""
    global _CANON
    if _CANON is not None:
        return _CANON
    canon: List[Optional[Tuple[int, NpnTransform]]] = [None] * (1 << 16)
    gens = _generators()
    for seed in range(1 << 16):
        if canon[seed] is not None:
            continue
        # Closure of the orbit; each member records its transform from seed.
        orbit: Dict[int, NpnTransform] = {seed: IDENTITY_TRANSFORM}
        stack = [seed]
        while stack:
            t = stack.pop()
            from_seed = orbit[t]
            for fast, gen in gens:
                t2 = fast(t)
                if t2 not in orbit:
                    orbit[t2] = compose_transforms(from_seed, gen)
                    stack.append(t2)
        rep = min(orbit)
        to_rep = orbit[rep]
        for t, from_seed in orbit.items():
            # seed = apply(t, invert(from_seed)); rep = apply(seed, to_rep).
            canon[t] = (rep, compose_transforms(invert_transform(from_seed), to_rep))
    _CANON = canon
    return canon


def npn_canonical(table: int) -> Tuple[int, NpnTransform]:
    """Canonical NPN representative of a 16-bit table plus the transform.

    The transform ``t`` satisfies ``apply_transform(table, t) == canonical``.
    """
    return _canonical_map()[table & _FULL]


def npn_representatives() -> List[int]:
    """The sorted canonical representatives (exactly 222 of them)."""
    return sorted({rep for rep, _ in _canonical_map()})


# --------------------------------------------------------------------- #
# Structure database
# --------------------------------------------------------------------- #
class DbEntry(NamedTuple):
    """A replayable implementation of one canonical function.

    ``ops`` is a gate program over abstract operand literals encoded as
    ``(ref << 1) | complement`` with ``ref`` 0 = constant 0, 1–4 = the four
    canonical inputs, ``5 + i`` = the output of ``ops[i]``.  ``output`` is
    the literal of the function's result; ``size``/``depth`` are the gate
    count and logic depth of the structure (inputs at depth 0).
    """

    ops: Tuple[Tuple[int, ...], ...]
    output: int
    size: int
    depth: int


_DB: Dict[Tuple[str, int], DbEntry] = {}

#: Kinds whose on-disk cache file has already been consulted this process.
_DB_LOADED: set = set()

#: Bumped when the serialised layout changes (stale files are ignored).
_DB_FORMAT_VERSION = 1

#: Gate arity per database kind (cached entries must match).
_KIND_ARITY = {"mig": 3, "aig": 2}

#: Kinds with derivations not yet persisted, and the flush batch size:
#: saves are deferred so a cold full-database derivation writes the file a
#: handful of times instead of once per class.
_DB_PENDING: Dict[str, int] = {}
_DB_FLUSH_EVERY = 32
_DB_ATEXIT_ARMED = False

#: Source modules whose code shapes the derived structures; their content
#: hash keys the cache file name, so any change starts a fresh cache.
_DB_FINGERPRINT_SOURCES = (
    "network/npn.py",
    "network/base.py",
    "core/mig.py",
    "core/rules.py",
    "core/algebra.py",
    "core/size_opt.py",
    "core/reshape.py",
    "aig/aig.py",
    "aig/balance.py",
)


def entry_truth_table(entry: DbEntry) -> int:
    """Evaluate a :class:`DbEntry` program over the projection tables.

    The pure-table counterpart of :func:`replay_structure`: 2-fanin ops
    are ANDs, 3-fanin ops majorities.  Used to validate disk-cached
    entries semantically before trusting them.
    """
    tables: List[int] = [0, *PROJECTIONS]
    for op in entry.ops:
        operands = [tables[lit >> 1] ^ (_FULL if lit & 1 else 0) for lit in op]
        if len(operands) == 2:
            tables.append(operands[0] & operands[1])
        elif len(operands) == 3:
            a, b, c = operands
            tables.append((a & b) | (a & c) | (b & c))
        else:
            raise ValueError(f"unsupported op arity {len(operands)}")
    return (tables[entry.output >> 1] ^ (_FULL if entry.output & 1 else 0)) & _FULL


@lru_cache(maxsize=1)
def _db_fingerprint() -> str:
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parent.parent
    for rel in _DB_FINGERPRINT_SOURCES:
        digest.update(rel.encode())
        try:
            digest.update((package_root / rel).read_bytes())
        except OSError:
            digest.update(b"<missing>")
    return digest.hexdigest()[:16]


def structure_cache_path(kind: str) -> Optional[Path]:
    """On-disk cache file of one kind's database, or ``None`` if disabled."""
    if os.environ.get("REPRO_NPN_CACHE", "1").lower() in ("0", "off", "false"):
        return None
    custom = os.environ.get("REPRO_NPN_CACHE_DIR")
    base = Path(custom) if custom else Path.home() / ".cache" / "repro" / "npn"
    return base / f"npn_db_{kind}_v{_DB_FORMAT_VERSION}_{_db_fingerprint()}.json"


def _load_structure_cache(kind: str) -> None:
    """Merge validated entries from the kind's cache file into ``_DB``."""
    path = structure_cache_path(kind)
    if path is None:
        return
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _DB_FORMAT_VERSION
        or payload.get("fingerprint") != _db_fingerprint()
    ):
        return
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return
    canon = _canonical_map()
    arity = _KIND_ARITY.get(kind)
    for key, raw in entries.items():
        try:
            table = int(key)
            entry = DbEntry(
                tuple(tuple(int(lit) for lit in op) for op in raw["ops"]),
                int(raw["output"]),
                int(raw["size"]),
                int(raw["depth"]),
            )
        except (KeyError, TypeError, ValueError):
            continue
        # Only canonical representatives are valid keys, the recorded size
        # must match the program, and the program must actually compute
        # the class function — anything else is ignored, never trusted.
        if not 0 <= table <= _FULL or canon[table][0] != table:
            continue
        if entry.size != len(entry.ops):
            continue
        # Gate arity must match the kind: a (table-valid) majority program
        # smuggled into the AIG file would crash the AND builders later.
        if arity is not None and any(len(op) != arity for op in entry.ops):
            continue
        try:
            if entry_truth_table(entry) != table:
                continue
        except (IndexError, ValueError):
            continue
        _DB.setdefault((kind, table), entry)


def _save_structure_cache(kind: str) -> None:
    """Atomically persist every in-memory entry of ``kind`` (best effort)."""
    path = structure_cache_path(kind)
    if path is None:
        return
    entries = {
        str(table): {
            "ops": [list(op) for op in entry.ops],
            "output": entry.output,
            "size": entry.size,
            "depth": entry.depth,
        }
        for (entry_kind, table), entry in _DB.items()
        if entry_kind == kind
    }
    payload = {
        "version": _DB_FORMAT_VERSION,
        "fingerprint": _db_fingerprint(),
        "kind": kind,
        "entries": entries,
    }
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        pass  # read-only cache dir etc.: persistence is best-effort


def flush_structure_cache() -> None:
    """Persist any not-yet-saved derivations (best effort, idempotent)."""
    for kind in [k for k, pending in _DB_PENDING.items() if pending]:
        _DB_PENDING[kind] = 0
        _save_structure_cache(kind)


def reset_structure_db() -> None:
    """Drop the in-memory database and re-arm the disk-cache load.

    Test hook: pending derivations are flushed first, then the next
    :func:`get_structure` call re-reads the cache file (or re-derives).
    On-disk files are left untouched.
    """
    flush_structure_cache()
    _DB.clear()
    _DB_LOADED.clear()


def get_structure(kind: str, canonical_table: int) -> DbEntry:
    """Best known ``kind`` ("mig" or "aig") structure for a canonical class.

    Resolution order: in-memory database, then the validated on-disk
    cache (loaded once per kind per process), then a fresh derivation.
    Fresh derivations are persisted back in batches (every
    ``_DB_FLUSH_EVERY`` misses, plus an atexit flush) so the next cold
    start skips them without paying one file rewrite per class.
    """
    global _DB_ATEXIT_ARMED
    key = (kind, canonical_table)
    entry = _DB.get(key)
    if entry is None:
        if kind not in _DB_LOADED:
            _DB_LOADED.add(kind)
            _load_structure_cache(kind)
            entry = _DB.get(key)
        if entry is None:
            entry = _derive_structure(kind, canonical_table)
            _DB[key] = entry
            if not _DB_ATEXIT_ARMED:
                _DB_ATEXIT_ARMED = True
                import atexit

                atexit.register(flush_structure_cache)
            _DB_PENDING[kind] = _DB_PENDING.get(kind, 0) + 1
            if _DB_PENDING[kind] >= _DB_FLUSH_EVERY:
                _DB_PENDING[kind] = 0
                _save_structure_cache(kind)
    return entry


def _warm_canonical() -> None:
    """Pool warm-up of the parallel derivation: the canonical map only.

    The default pool warm-up preloads the full structure database, which
    would defeat the point of measuring a parallel cold start.
    """
    _canonical_map()


def _derive_shard(task) -> List[Tuple[str, int, DbEntry]]:
    """Worker task: derive the entries of one ``(kind, tables)`` shard.

    Calls :func:`_derive_structure` directly — bypassing both the
    in-memory database and the disk cache — so every worker derives from
    first principles and never races another worker's cache writes; the
    parent merges the returned entries and persists once.  Derivation is
    a pure function of ``(kind, table)``, so shard composition cannot
    change any entry.
    """
    kind, tables = task
    return [(kind, table, _derive_structure(kind, table)) for table in tables]


def derive_structures_parallel(
    kinds: Tuple[str, ...] = ("mig", "aig"),
    workers: Optional[int] = None,
    classes_per_shard: int = 16,
) -> Dict[str, object]:
    """Derive the full structure database sharded across worker processes.

    The 222 canonical classes x ``len(kinds)`` kinds are split into
    shards of ``classes_per_shard`` classes (sharded deterministically by
    canonical-class order); each worker derives its shard from first
    principles, the parent merges the results into the in-memory
    database and writes them through the existing content-hash disk
    cache in one atomic save per kind.  Entries are **structurally
    identical to a serial derivation** (asserted by
    ``tests/parallel/test_parallel.py``); the merge never clobbers an
    entry that is already in memory.

    Returns a stats dict (classes, kinds, workers, wall-clock, merge
    counts).  With ``workers=1`` the same shard tasks run in-process —
    useful as the determinism baseline.
    """
    from ..parallel.executor import parallel_map

    if classes_per_shard < 1:
        raise ValueError(f"classes_per_shard must be >= 1, got {classes_per_shard}")
    reps = npn_representatives()
    tasks = []
    for kind in kinds:
        if kind not in _KIND_ARITY:
            raise ValueError(f"unknown database kind {kind!r}")
        for start in range(0, len(reps), classes_per_shard):
            tasks.append((kind, tuple(reps[start:start + classes_per_shard])))

    report = parallel_map(
        _derive_shard,
        tasks,
        workers=workers,
        labels=[f"{kind}[{shard[0]:#06x}..]" for kind, shard in tasks],
        warmup=_warm_canonical,
    )
    merged = 0
    for shard_result in report.results:
        for kind, table, entry in shard_result:
            if _DB.setdefault((kind, table), entry) is entry:
                merged += 1
    for kind in kinds:
        # The database is now complete for these kinds: mark the disk
        # cache as consulted and persist the merged entries atomically.
        _DB_LOADED.add(kind)
        _DB_PENDING[kind] = 0
        _save_structure_cache(kind)
    return {
        "classes": len(reps),
        "kinds": list(kinds),
        "entries_merged": merged,
        "workers": report.workers,
        "shards": report.num_shards,
        "parallel": report.parallel,
        "wall_s": round(report.wall_s, 3),
    }


def replay_structure(net, entry: DbEntry, inputs) -> int:
    """Instantiate ``entry`` in ``net`` over four input signals.

    Goes through the subclass builder (``_build_gate``), so structural
    hashing and the trivial simplifications apply and already-present
    subgraphs are reused rather than duplicated.
    """
    signals = [CONST_FALSE, *inputs]
    for op in entry.ops:
        fanins = tuple(signals[lit >> 1] ^ (lit & 1) for lit in op)
        signals.append(net._build_gate(fanins))
    return signals[entry.output >> 1] ^ (entry.output & 1)


def _cofactors(table: int, var: int) -> Tuple[int, int]:
    """Negative and positive cofactor, both padded over the full space."""
    shift = 1 << var
    hi = table & _VAR[var]
    lo = table & (_VAR[var] ^ _FULL)
    return lo | (lo << shift), hi | (hi >> shift)


def _support_size(table: int) -> int:
    count = 0
    for i in range(4):
        c0, c1 = _cofactors(table, i)
        if c0 != c1:
            count += 1
    return count


def _literal_majority(tab: int) -> Optional[Tuple[int, int, int]]:
    """Detect ``tab == M(±x_i, ±x_j, ±x_k)``; returns the three literals.

    Literals are encoded as ``(variable << 1) | complement``.  A majority
    of literals is the one shape Shannon decomposition can never recover
    as a single MIG node, so it is matched explicitly.
    """
    for i in range(4):
        for j in range(i + 1, 4):
            for k in range(j + 1, 4):
                for polarity in range(8):
                    a = _VAR[i] ^ (_FULL if polarity & 1 else 0)
                    b = _VAR[j] ^ (_FULL if polarity & 2 else 0)
                    c = _VAR[k] ^ (_FULL if polarity & 4 else 0)
                    if tab == (a & b) | (a & c) | (b & c):
                        return (
                            (i << 1) | (polarity & 1),
                            (j << 1) | ((polarity >> 1) & 1),
                            (k << 1) | ((polarity >> 2) & 1),
                        )
    return None


def _synthesize_into(net, table: int, variables) -> int:
    """Build ``table`` in ``net`` by Shannon/XOR/majority decomposition.

    Intermediate functions are memoized and every gate goes through the
    network's hashing builder, so shared sub-functions materialise once.
    A network exposing ``maj`` (the MIG) additionally gets majority-shaped
    decompositions: an explicit majority-of-literals match and the unate
    Shannon form ``f = M(x, f_x, f_x')`` (valid whenever one cofactor
    implies the other), which is what makes the database structures
    majority-native rather than transliterated AND/OR trees.
    """
    memo: Dict[int, int] = {}
    maj = getattr(net, "maj", None)

    def synth(tab: int) -> int:
        if tab == 0:
            return CONST_FALSE
        if tab == _FULL:
            return CONST_TRUE
        for i in range(4):
            if tab == _VAR[i]:
                return variables[i]
            if tab == _VAR[i] ^ _FULL:
                return variables[i] ^ 1
        cached = memo.get(tab)
        if cached is not None:
            return cached
        cached = memo.get(tab ^ _FULL)
        if cached is not None:
            return cached ^ 1
        if maj is not None:
            literals = _literal_majority(tab)
            if literals is not None:
                result = maj(*(variables[lit >> 1] ^ (lit & 1) for lit in literals))
                memo[tab] = result
                return result
        best = None
        for i in range(4):
            c0, c1 = _cofactors(tab, i)
            if c0 == c1:
                continue
            # Prefer an XOR split (both cofactors collapse into one cone),
            # then the split yielding the simplest pair of cofactors.
            score = (0 if c1 == c0 ^ _FULL else 1, _support_size(c0) + _support_size(c1))
            if best is None or score < best[0]:
                best = (score, i, c0, c1)
        _, i, c0, c1 = best
        x = variables[i]
        if c0 == 0:
            result = net.and_(x, synth(c1))
        elif c1 == 0:
            result = net.and_(x ^ 1, synth(c0))
        elif c0 == _FULL:
            result = net.or_(x ^ 1, synth(c1))
        elif c1 == _FULL:
            result = net.or_(x, synth(c0))
        elif c1 == c0 ^ _FULL:
            result = net.xor_(x, synth(c0))
        elif c0 & (c1 ^ _FULL) == 0:
            # f_x' implies f_x: f = x·f_x + f_x' — a single majority node
            # on a MIG, an AND+OR pair elsewhere.
            if maj is not None:
                result = maj(x, synth(c1), synth(c0))
            else:
                result = net.or_(net.and_(x, synth(c1)), synth(c0))
        elif c1 & (c0 ^ _FULL) == 0:
            # f_x implies f_x': the mirrored unate form on x'.
            if maj is not None:
                result = maj(x ^ 1, synth(c0), synth(c1))
            else:
                result = net.or_(net.and_(x ^ 1, synth(c0)), synth(c1))
        else:
            result = net.mux_(x, synth(c1), synth(c0))
        memo[tab] = result
        return result

    return synth(table)


def _build_candidate(kind: str, table: int):
    """One fresh 4-input network implementing ``table``."""
    if kind == "mig":
        from ..core.mig import Mig

        net = Mig()
    elif kind == "aig":
        from ..aig.aig import Aig

        net = Aig()
    else:
        raise ValueError(f"unknown database kind {kind!r}")
    variables = [net.add_pi(f"v{i}") for i in range(4)]
    net.add_po(_synthesize_into(net, table, variables), "f")
    if kind == "mig":
        from ..core.size_opt import optimize_size

        optimize_size(net, effort=1)
    else:
        from ..aig.balance import balance

        balanced = balance(net)
        if (balanced.num_gates, balanced.depth()) < (net.num_gates, net.depth()):
            net = balanced
    return net


def _derive_structure(kind: str, table: int) -> DbEntry:
    """Derive the class entry: best of the direct and complemented builds."""
    best: Optional[DbEntry] = None
    for output_neg in (False, True):
        net = _build_candidate(kind, table ^ (_FULL if output_neg else 0))
        entry = _extract_program(net, output_neg)
        if best is None or (entry.size, entry.depth) < (best.size, best.depth):
            best = entry
    return best


def _extract_program(net, output_neg: bool) -> DbEntry:
    """Serialise the PO cone of a 4-input network into a :class:`DbEntry`."""
    ref_of: Dict[int, int] = {CONST_NODE: 0}
    for index, pi in enumerate(net.pi_nodes()):
        ref_of[pi] = 1 + index
    depth_of: Dict[int, int] = {}
    ops: List[Tuple[int, ...]] = []
    for node in net._topology():
        fanins = net._fanins[node]
        ops.append(tuple((ref_of[f >> 1] << 1) | (f & 1) for f in fanins))
        ref_of[node] = 5 + len(ops) - 1
        depth_of[node] = 1 + max(depth_of.get(f >> 1, 0) for f in fanins)
    (po,) = net.po_signals()
    output = (ref_of[po >> 1] << 1) | ((po & 1) ^ output_neg)
    return DbEntry(tuple(ops), output, len(ops), depth_of.get(po >> 1, 0))
