"""NPN canonicalization of ≤4-input functions and the rewriting database.

Boolean rewriting replaces the cone over an enumerated cut
(:mod:`repro.network.cuts`) with a precomputed structure implementing the
same function.  Storing one structure per *function* would need 2^16
entries; storing one per *NPN class* — functions equal up to input
Negation, input Permutation and output Negation — needs only 222.  This
module provides the three pieces:

* the transform algebra: :class:`NpnTransform` (input permutation, input
  complementation mask, output complementation) with ``apply`` / ``invert``
  / ``compose``, all operating on 16-bit truth tables in the 4-variable
  space (smaller functions are first padded with :func:`extend_table`);
* :func:`npn_canonical`: the canonical representative of a table plus the
  recorded transform mapping the table onto it.  The full 65,536-entry
  map is derived once per process by a breadth-first closure over the
  transform group's generators (adjacent swaps, single-input negations,
  output negation), each implemented as an O(1) mask-and-shift on the
  table — far cheaper than scoring all 768 transforms per function;
* the structure database: for every canonical class, a **top-k list** of
  MIG and AIG implementations (:class:`DbEntry`) forming the Pareto front
  on (size, depth) — list head is size-optimal-first, list tail is the
  shallowest known structure — so area-oriented rewriting takes ``[0]``
  and depth-oriented rewriting (``max_level_growth < 0``) scans for the
  shallowest admissible entry.  The fast tier derives candidates by
  Shannon/XOR decomposition with structural hashing, polished by the
  repository's size *and* depth optimizers; an optional exact tier
  (:mod:`repro.synth.exact`, via ``derive_structures_parallel(exact=True)``
  or :func:`register_structures`) adds SAT-proven size/depth-optimal
  programs where the conflict budget allows.

Derived entries are additionally persisted to a small on-disk JSON cache
(one file per kind) so cold starts skip the derivation entirely.  The
cache is keyed by a content hash over the source modules that shape the
derivation — a code change silently invalidates stale files — and every
loaded entry is semantically validated (its program is re-evaluated over
the projection tables and must reproduce the class function) before it is
trusted, so a corrupt or hand-edited file degrades to a fresh derivation
rather than wrong logic.  ``REPRO_NPN_CACHE_DIR`` overrides the location
(default ``~/.cache/repro/npn``); ``REPRO_NPN_CACHE=0`` disables
persistence.

Truth-table convention: bit ``m`` of a table is the function value when
input ``i`` carries bit ``i`` of the minterm index ``m``.
``apply_transform(f, t)`` returns ``g`` with ``g(x) = f(y) ^ t.output_neg``
where ``y[t.perm[j]] = x[j] ^ t.input_neg[j]`` — i.e. the transform
describes how the argument's inputs are wired onto ``f``'s inputs.
"""

from __future__ import annotations

import hashlib
import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, NamedTuple, Optional, Tuple

from ..cache import atomic_write_json, load_json
from ..core.signal import CONST_FALSE, CONST_NODE, CONST_TRUE, negate_if

__all__ = [
    "NpnTransform",
    "IDENTITY_TRANSFORM",
    "NUM_NPN_CLASSES",
    "PROJECTIONS",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "extend_table",
    "npn_canonical",
    "npn_representatives",
    "DbEntry",
    "entry_truth_table",
    "get_structure",
    "get_structures",
    "register_structures",
    "structure_db_generation",
    "derive_structures_parallel",
    "replay_structure",
    "structure_cache_path",
    "flush_structure_cache",
    "reset_structure_db",
]

#: Number of NPN equivalence classes of functions of at most 4 variables.
NUM_NPN_CLASSES = 222

_FULL = 0xFFFF

#: Projection table of variable ``i`` in the 4-variable space.
PROJECTIONS = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)
_VAR = PROJECTIONS


class NpnTransform(NamedTuple):
    """An element of the NPN transform group on 4-variable functions."""

    perm: Tuple[int, int, int, int]
    input_neg: int
    output_neg: bool


IDENTITY_TRANSFORM = NpnTransform((0, 1, 2, 3), 0, False)

# Transforms are interned: the group has only 768 elements, and the
# canonical map references one per table, so sharing instances keeps the
# 65,536-entry map small.
_TRANSFORM_CACHE: Dict[Tuple[Tuple[int, ...], int, bool], NpnTransform] = {}


def _intern(perm: Tuple[int, ...], input_neg: int, output_neg: bool) -> NpnTransform:
    key = (perm, input_neg, output_neg)
    cached = _TRANSFORM_CACHE.get(key)
    if cached is None:
        cached = NpnTransform(perm, input_neg, output_neg)
        _TRANSFORM_CACHE[key] = cached
    return cached


def apply_transform(table: int, transform: NpnTransform) -> int:
    """Apply ``transform`` to a 16-bit table (the semantic definition)."""
    perm = transform.perm
    neg = transform.input_neg
    out = 0
    for m2 in range(16):
        m = 0
        for j in range(4):
            if ((m2 >> j) & 1) ^ ((neg >> j) & 1):
                m |= 1 << perm[j]
        if (table >> m) & 1:
            out |= 1 << m2
    return out ^ (_FULL if transform.output_neg else 0)


@lru_cache(maxsize=None)  # the group has 768 elements; the cache is bounded
def invert_transform(transform: NpnTransform) -> NpnTransform:
    """The group inverse: ``apply(apply(f, t), invert(t)) == f``."""
    perm = transform.perm
    iperm = [0, 0, 0, 0]
    for j, p in enumerate(perm):
        iperm[p] = j
    neg = 0
    for i in range(4):
        neg |= ((transform.input_neg >> iperm[i]) & 1) << i
    return _intern(tuple(iperm), neg, transform.output_neg)


def compose_transforms(first: NpnTransform, second: NpnTransform) -> NpnTransform:
    """The transform equivalent to applying ``first`` then ``second``."""
    p1, n1, o1 = first
    p2, n2, o2 = second
    perm = tuple(p1[p2[j]] for j in range(4))
    neg = 0
    for j in range(4):
        neg |= (((n2 >> j) & 1) ^ ((n1 >> p2[j]) & 1)) << j
    return _intern(perm, neg, o1 ^ o2)


def extend_table(table: int, num_vars: int) -> int:
    """Pad a table over ``num_vars`` variables into the 4-variable space."""
    width = 1 << num_vars
    for _ in range(4 - num_vars):
        table |= table << width
        width <<= 1
    return table


# --------------------------------------------------------------------- #
# Canonical map (derived once per process)
# --------------------------------------------------------------------- #
def _generators():
    """The transform group's generators as (fast-op, NpnTransform) pairs.

    Each fast op is the O(1) mask-and-shift equivalent of applying the
    paired transform with :func:`apply_transform`; the agreement of the
    two implementations is checked by ``tests/network/test_npn.py``.
    """
    gens = []
    for i in range(4):
        hi = _VAR[i]
        lo = hi ^ _FULL
        shift = 1 << i
        gens.append(
            (
                lambda t, hi=hi, lo=lo, shift=shift: ((t & lo) << shift)
                | ((t & hi) >> shift),
                _intern((0, 1, 2, 3), 1 << i, False),
            )
        )
    for i, j in ((0, 1), (1, 2), (2, 3)):
        m10 = _VAR[i] & (_VAR[j] ^ _FULL)
        m01 = (_VAR[i] ^ _FULL) & _VAR[j]
        keep = _FULL ^ m10 ^ m01
        d = (1 << j) - (1 << i)
        perm = [0, 1, 2, 3]
        perm[i], perm[j] = j, i
        gens.append(
            (
                lambda t, keep=keep, m10=m10, m01=m01, d=d: (t & keep)
                | ((t >> d) & m10)
                | ((t << d) & m01),
                _intern(tuple(perm), 0, False),
            )
        )
    gens.append((lambda t: t ^ _FULL, _intern((0, 1, 2, 3), 0, True)))
    return gens


_CANON: Optional[List[Tuple[int, NpnTransform]]] = None


def _canonical_map() -> List[Tuple[int, NpnTransform]]:
    """``table -> (canonical table, transform table→canonical)`` for all 2^16."""
    global _CANON
    if _CANON is not None:
        return _CANON
    canon: List[Optional[Tuple[int, NpnTransform]]] = [None] * (1 << 16)
    gens = _generators()
    for seed in range(1 << 16):
        if canon[seed] is not None:
            continue
        # Closure of the orbit; each member records its transform from seed.
        orbit: Dict[int, NpnTransform] = {seed: IDENTITY_TRANSFORM}
        stack = [seed]
        while stack:
            t = stack.pop()
            from_seed = orbit[t]
            for fast, gen in gens:
                t2 = fast(t)
                if t2 not in orbit:
                    orbit[t2] = compose_transforms(from_seed, gen)
                    stack.append(t2)
        rep = min(orbit)
        to_rep = orbit[rep]
        for t, from_seed in orbit.items():
            # seed = apply(t, invert(from_seed)); rep = apply(seed, to_rep).
            canon[t] = (rep, compose_transforms(invert_transform(from_seed), to_rep))
    _CANON = canon
    return canon


def npn_canonical(table: int) -> Tuple[int, NpnTransform]:
    """Canonical NPN representative of a 16-bit table plus the transform.

    The transform ``t`` satisfies ``apply_transform(table, t) == canonical``.
    """
    return _canonical_map()[table & _FULL]


def npn_representatives() -> List[int]:
    """The sorted canonical representatives (exactly 222 of them)."""
    return sorted({rep for rep, _ in _canonical_map()})


# --------------------------------------------------------------------- #
# Structure database
# --------------------------------------------------------------------- #
class DbEntry(NamedTuple):
    """A replayable implementation of one canonical function.

    ``ops`` is a gate program over abstract operand literals encoded as
    ``(ref << 1) | complement`` with ``ref`` 0 = constant 0, 1–4 = the four
    canonical inputs, ``5 + i`` = the output of ``ops[i]``.  ``output`` is
    the literal of the function's result; ``size``/``depth`` are the gate
    count and logic depth of the structure (inputs at depth 0).
    """

    ops: Tuple[Tuple[int, ...], ...]
    output: int
    size: int
    depth: int


#: Per-class top-k entry lists: the Pareto front on (size, depth), sorted
#: by ascending size; ``[0]`` is the size-best entry, ``[-1]`` the
#: shallowest.  Sizes strictly increase and depths strictly decrease along
#: a list, so every entry is the unique best answer for some trade-off.
_DB: Dict[Tuple[str, int], Tuple[DbEntry, ...]] = {}

#: Kinds whose on-disk cache file has already been consulted this process.
_DB_LOADED: set = set()

#: Monotonic identity of the in-memory database: bumped on every visible
#: change (cache load, fresh derivation, registration, reset).  Consumers
#: that memoize decisions made *against* the database — notably the
#: cut-rewrite convergence skip — fold this into their tokens so a DB
#: swap re-arms them.
_DB_GENERATION = 0

#: Bumped when the serialised layout changes (stale files are ignored).
#: v2: entry lists per class (top-k Pareto fronts) instead of one entry.
_DB_FORMAT_VERSION = 2

#: Gate arity per database kind (cached entries must match).
_KIND_ARITY = {"mig": 3, "aig": 2}

#: Kinds with derivations not yet persisted, and the flush batch size:
#: saves are deferred so a cold full-database derivation writes the file a
#: handful of times instead of once per class.
_DB_PENDING: Dict[str, int] = {}
_DB_FLUSH_EVERY = 32
_DB_ATEXIT_ARMED = False

#: Source modules whose code shapes the derived structures; their content
#: hash keys the cache file name, so any change starts a fresh cache.
_DB_FINGERPRINT_SOURCES = (
    "network/npn.py",
    "network/base.py",
    "core/mig.py",
    "core/rules.py",
    "core/algebra.py",
    "core/size_opt.py",
    "core/reshape.py",
    "core/depth_opt.py",
    "aig/aig.py",
    "aig/balance.py",
    "synth/__init__.py",
    "synth/exact.py",
)


def entry_truth_table(entry: DbEntry) -> int:
    """Evaluate a :class:`DbEntry` program over the projection tables.

    The pure-table counterpart of :func:`replay_structure`: 2-fanin ops
    are ANDs, 3-fanin ops majorities.  Used to validate disk-cached
    entries semantically before trusting them.
    """
    tables: List[int] = [0, *PROJECTIONS]
    for op in entry.ops:
        operands = [tables[lit >> 1] ^ (_FULL if lit & 1 else 0) for lit in op]
        if len(operands) == 2:
            tables.append(operands[0] & operands[1])
        elif len(operands) == 3:
            a, b, c = operands
            tables.append((a & b) | (a & c) | (b & c))
        else:
            raise ValueError(f"unsupported op arity {len(operands)}")
    return (tables[entry.output >> 1] ^ (_FULL if entry.output & 1 else 0)) & _FULL


def structure_db_generation() -> int:
    """Monotonic identity of the in-memory structure database.

    Changes whenever the database visibly changes (cache load, fresh
    derivation, :func:`register_structures`, :func:`reset_structure_db`),
    so decisions memoized against the database can detect a swap.
    """
    return _DB_GENERATION


def _bump_generation() -> None:
    global _DB_GENERATION
    _DB_GENERATION += 1


def _entry_depth(entry: DbEntry) -> int:
    """Structural depth of an entry's program (inputs/constants at 0)."""
    depths: List[int] = []
    for op in entry.ops:
        level = 0
        for lit in op:
            ref = lit >> 1
            if ref >= 5:
                level = max(level, depths[ref - 5])
        depths.append(level + 1)
    ref = entry.output >> 1
    return depths[ref - 5] if ref >= 5 else 0


def _validate_entry(kind: str, table: int, entry: DbEntry) -> bool:
    """Full semantic validation of one entry against its class function."""
    if entry.size != len(entry.ops):
        return False
    arity = _KIND_ARITY.get(kind)
    if arity is not None and any(len(op) != arity for op in entry.ops):
        return False
    try:
        if entry_truth_table(entry) != table:
            return False
        if entry.depth != _entry_depth(entry):
            return False
    except (IndexError, ValueError):
        return False
    return True


def _pareto_front(entries) -> Tuple[DbEntry, ...]:
    """The strict Pareto front on (size, depth), sorted by ascending size.

    Along the result, sizes strictly increase and depths strictly
    decrease: an entry survives only if it is strictly shallower than
    every smaller entry, so ``[0]`` is the (size, depth)-lexicographic
    best and ``[-1]`` the shallowest known structure.
    """
    front: List[DbEntry] = []
    for entry in sorted(set(entries), key=lambda e: (e.size, e.depth, e.ops, e.output)):
        if front and entry.depth >= front[-1].depth:
            continue
        front.append(entry)
    return tuple(front)


@lru_cache(maxsize=1)
def _db_fingerprint() -> str:
    digest = hashlib.sha256()
    package_root = Path(__file__).resolve().parent.parent
    for rel in _DB_FINGERPRINT_SOURCES:
        digest.update(rel.encode())
        try:
            digest.update((package_root / rel).read_bytes())
        except OSError:
            digest.update(b"<missing>")
    return digest.hexdigest()[:16]


def structure_cache_path(kind: str) -> Optional[Path]:
    """On-disk cache file of one kind's database, or ``None`` if disabled."""
    if os.environ.get("REPRO_NPN_CACHE", "1").lower() in ("0", "off", "false"):
        return None
    custom = os.environ.get("REPRO_NPN_CACHE_DIR")
    base = Path(custom) if custom else Path.home() / ".cache" / "repro" / "npn"
    return base / f"npn_db_{kind}_v{_DB_FORMAT_VERSION}_{_db_fingerprint()}.json"


def _load_structure_cache(kind: str) -> None:
    """Merge validated entries from the kind's cache file into ``_DB``."""
    path = structure_cache_path(kind)
    if path is None:
        return
    payload = load_json(path)
    if payload is None:
        return
    if (
        not isinstance(payload, dict)
        or payload.get("version") != _DB_FORMAT_VERSION
        or payload.get("fingerprint") != _db_fingerprint()
    ):
        return
    entries = payload.get("entries")
    if not isinstance(entries, dict):
        return
    canon = _canonical_map()
    loaded = False
    for key, raw_list in entries.items():
        try:
            table = int(key)
        except (TypeError, ValueError):
            continue
        # Only canonical representatives are valid keys; every entry of a
        # class list must parse, match the kind's gate arity, and replay
        # to the class function (plus consistent size/depth metadata).  A
        # damaged list invalidates *that class only* — it will be
        # re-derived — while the rest of the file stays usable.
        if not 0 <= table <= _FULL or canon[table][0] != table:
            continue
        if not isinstance(raw_list, list):
            continue
        parsed: List[DbEntry] = []
        valid = True
        for raw in raw_list:
            try:
                entry = DbEntry(
                    tuple(tuple(int(lit) for lit in op) for op in raw["ops"]),
                    int(raw["output"]),
                    int(raw["size"]),
                    int(raw["depth"]),
                )
            except (KeyError, TypeError, ValueError):
                valid = False
                break
            if not _validate_entry(kind, table, entry):
                valid = False
                break
            parsed.append(entry)
        if not valid or not parsed:
            continue
        if (kind, table) not in _DB:
            _DB[(kind, table)] = _pareto_front(parsed)
            loaded = True
    if loaded:
        _bump_generation()


def _save_structure_cache(kind: str) -> None:
    """Atomically persist every in-memory entry of ``kind`` (best effort)."""
    path = structure_cache_path(kind)
    if path is None:
        return
    entries = {
        str(table): [
            {
                "ops": [list(op) for op in entry.ops],
                "output": entry.output,
                "size": entry.size,
                "depth": entry.depth,
            }
            for entry in front
        ]
        for (entry_kind, table), front in _DB.items()
        if entry_kind == kind
    }
    payload = {
        "version": _DB_FORMAT_VERSION,
        "fingerprint": _db_fingerprint(),
        "kind": kind,
        "entries": entries,
    }
    # Atomic temp-file + replace via the shared idiom; a read-only cache
    # dir degrades persistence (False return), never correctness.
    atomic_write_json(path, payload)


def flush_structure_cache() -> None:
    """Persist any not-yet-saved derivations (best effort, idempotent)."""
    for kind in [k for k, pending in _DB_PENDING.items() if pending]:
        _DB_PENDING[kind] = 0
        _save_structure_cache(kind)


def reset_structure_db() -> None:
    """Drop the in-memory database and re-arm the disk-cache load.

    Test hook: pending derivations are flushed first, then the next
    :func:`get_structure` call re-reads the cache file (or re-derives).
    On-disk files are left untouched.
    """
    flush_structure_cache()
    _DB.clear()
    _DB_LOADED.clear()
    _bump_generation()


def _note_pending(kind: str) -> None:
    """Record an unsaved change of ``kind`` and batch-persist."""
    global _DB_ATEXIT_ARMED
    if not _DB_ATEXIT_ARMED:
        _DB_ATEXIT_ARMED = True
        import atexit

        atexit.register(flush_structure_cache)
    _DB_PENDING[kind] = _DB_PENDING.get(kind, 0) + 1
    if _DB_PENDING[kind] >= _DB_FLUSH_EVERY:
        _DB_PENDING[kind] = 0
        _save_structure_cache(kind)


def get_structures(kind: str, canonical_table: int) -> Tuple[DbEntry, ...]:
    """Top-k ``kind`` ("mig" or "aig") structures for a canonical class.

    Returns the class's Pareto front on (size, depth): ``[0]`` is the
    size-best entry (what area-oriented rewriting wants), ``[-1]`` the
    shallowest (what depth-oriented rewriting scans towards).  Resolution
    order: in-memory database, then the validated on-disk cache (loaded
    once per kind per process), then a fresh derivation.  Fresh
    derivations are persisted back in batches (every ``_DB_FLUSH_EVERY``
    misses, plus an atexit flush) so the next cold start skips them
    without paying one file rewrite per class.
    """
    key = (kind, canonical_table)
    front = _DB.get(key)
    if front is None:
        if kind not in _DB_LOADED:
            _DB_LOADED.add(kind)
            _load_structure_cache(kind)
            front = _DB.get(key)
        if front is None:
            front = _derive_structures(kind, canonical_table)
            _DB[key] = front
            _bump_generation()
            _note_pending(kind)
    return front


def get_structure(kind: str, canonical_table: int) -> DbEntry:
    """The size-best known structure of a class (head of the top-k list)."""
    return get_structures(kind, canonical_table)[0]


def register_structures(kind: str, canonical_table: int, entries) -> Tuple[DbEntry, ...]:
    """Merge externally synthesized entries into a class's top-k list.

    Every entry is fully validated (gate arity, size/depth metadata, and
    a semantic replay against ``canonical_table``) before being merged
    into the Pareto front — an entry that does not implement the class
    function raises ``ValueError`` rather than poisoning the database.
    Returns the class's new front; bumps the database generation when the
    front actually changed (so convergence-skip tokens re-arm).
    """
    if kind not in _KIND_ARITY:
        raise ValueError(f"unknown database kind {kind!r}")
    canonical_table &= _FULL
    if _canonical_map()[canonical_table][0] != canonical_table:
        raise ValueError(f"{canonical_table:#06x} is not a canonical representative")
    for entry in entries:
        if not _validate_entry(kind, canonical_table, entry):
            raise ValueError(
                f"entry does not implement class {canonical_table:#06x} "
                f"(or has inconsistent metadata)"
            )
    current = get_structures(kind, canonical_table)
    merged = _pareto_front(list(current) + list(entries))
    if merged != current:
        _DB[(kind, canonical_table)] = merged
        _bump_generation()
        _note_pending(kind)
    return merged


def _warm_canonical() -> None:
    """Pool warm-up of the parallel derivation: the canonical map only.

    The default pool warm-up preloads the full structure database, which
    would defeat the point of measuring a parallel cold start.
    """
    _canonical_map()


def _derive_shard(task) -> List[Tuple[str, int, Tuple[DbEntry, ...]]]:
    """Worker task: derive the entry lists of one ``(kind, tables)`` shard.

    Calls :func:`_derive_structures` directly — bypassing both the
    in-memory database and the disk cache — so every worker derives from
    first principles and never races another worker's cache writes; the
    parent merges the returned fronts and persists once.  Derivation is a
    pure function of the task, so shard composition cannot change any
    entry.  A third task element ``(budget, size_slack)`` enables the
    exact-synthesis enrichment tier for the shard.
    """
    kind, tables = task[0], task[1]
    exact_opts = task[2] if len(task) > 2 else None
    results = []
    for table in tables:
        front = _derive_structures(kind, table)
        if exact_opts is not None:
            budget, size_slack = exact_opts
            front = _exact_enrich(kind, table, front, budget, size_slack)
        results.append((kind, table, front))
    return results


def derive_structures_parallel(
    kinds: Tuple[str, ...] = ("mig", "aig"),
    workers: Optional[int] = None,
    classes_per_shard: int = 16,
    exact: bool = False,
    exact_budget: int = 2_000,
    exact_size_slack: int = 2,
    tables: Optional[Tuple[int, ...]] = None,
) -> Dict[str, object]:
    """Derive the full structure database sharded across worker processes.

    The 222 canonical classes x ``len(kinds)`` kinds are split into
    shards of ``classes_per_shard`` classes (sharded deterministically by
    canonical-class order); each worker derives its shard from first
    principles, the parent merges the results into the in-memory
    database and writes them through the existing content-hash disk
    cache in one atomic save per kind.  Entries are **structurally
    identical to a serial derivation** (asserted by
    ``tests/parallel/test_parallel.py``); the merge never clobbers an
    entry list that is already in memory.

    With ``exact=True`` each shard additionally runs the SAT-based
    exact-synthesis enrichment tier (:mod:`repro.synth.exact`) with
    ``exact_budget`` conflicts per search, adding size- and depth-optimal
    entries where the budget suffices (UNKNOWN searches keep the
    decomposition entries, so enrichment never loses structures).
    ``tables`` restricts the run to a subset of canonical classes (for
    smoke shards / CI).

    Returns a stats dict (classes, kinds, workers, wall-clock, merge
    counts).  With ``workers=1`` the same shard tasks run in-process —
    useful as the determinism baseline.
    """
    from ..parallel.executor import parallel_map

    if classes_per_shard < 1:
        raise ValueError(f"classes_per_shard must be >= 1, got {classes_per_shard}")
    reps = list(tables) if tables is not None else npn_representatives()
    exact_opts = (exact_budget, exact_size_slack) if exact else None
    tasks = []
    for kind in kinds:
        if kind not in _KIND_ARITY:
            raise ValueError(f"unknown database kind {kind!r}")
        for start in range(0, len(reps), classes_per_shard):
            shard = tuple(reps[start:start + classes_per_shard])
            tasks.append((kind, shard) if exact_opts is None else (kind, shard, exact_opts))

    report = parallel_map(
        _derive_shard,
        tasks,
        workers=workers,
        labels=[f"{task[0]}[{task[1][0]:#06x}..]" for task in tasks],
        warmup=_warm_canonical,
    )
    merged = 0
    for shard_result in report.results:
        for kind, table, front in shard_result:
            if _DB.setdefault((kind, table), front) is front:
                merged += 1
    if merged:
        _bump_generation()
    for kind in kinds:
        # The database is now complete for these kinds: mark the disk
        # cache as consulted and persist the merged entries atomically.
        _DB_LOADED.add(kind)
        _DB_PENDING[kind] = 0
        _save_structure_cache(kind)
    return {
        "classes": len(reps),
        "kinds": list(kinds),
        "entries_merged": merged,
        "workers": report.workers,
        "shards": report.num_shards,
        "parallel": report.parallel,
        "wall_s": round(report.wall_s, 3),
    }


def replay_structure(net, entry: DbEntry, inputs) -> int:
    """Instantiate ``entry`` in ``net`` over four input signals.

    Goes through the subclass builder (``_build_gate``), so structural
    hashing and the trivial simplifications apply and already-present
    subgraphs are reused rather than duplicated.
    """
    signals = [CONST_FALSE, *inputs]
    for op in entry.ops:
        fanins = tuple(signals[lit >> 1] ^ (lit & 1) for lit in op)
        signals.append(net._build_gate(fanins))
    return signals[entry.output >> 1] ^ (entry.output & 1)


def _cofactors(table: int, var: int) -> Tuple[int, int]:
    """Negative and positive cofactor, both padded over the full space."""
    shift = 1 << var
    hi = table & _VAR[var]
    lo = table & (_VAR[var] ^ _FULL)
    return lo | (lo << shift), hi | (hi >> shift)


def _support_size(table: int) -> int:
    count = 0
    for i in range(4):
        c0, c1 = _cofactors(table, i)
        if c0 != c1:
            count += 1
    return count


def _literal_majority(tab: int) -> Optional[Tuple[int, int, int]]:
    """Detect ``tab == M(±x_i, ±x_j, ±x_k)``; returns the three literals.

    Literals are encoded as ``(variable << 1) | complement``.  A majority
    of literals is the one shape Shannon decomposition can never recover
    as a single MIG node, so it is matched explicitly.
    """
    for i in range(4):
        for j in range(i + 1, 4):
            for k in range(j + 1, 4):
                for polarity in range(8):
                    a = _VAR[i] ^ (_FULL if polarity & 1 else 0)
                    b = _VAR[j] ^ (_FULL if polarity & 2 else 0)
                    c = _VAR[k] ^ (_FULL if polarity & 4 else 0)
                    if tab == (a & b) | (a & c) | (b & c):
                        return (
                            (i << 1) | (polarity & 1),
                            (j << 1) | ((polarity >> 1) & 1),
                            (k << 1) | ((polarity >> 2) & 1),
                        )
    return None


def _synthesize_into(net, table: int, variables) -> int:
    """Build ``table`` in ``net`` by Shannon/XOR/majority decomposition.

    Intermediate functions are memoized and every gate goes through the
    network's hashing builder, so shared sub-functions materialise once.
    A network exposing ``maj`` (the MIG) additionally gets majority-shaped
    decompositions: an explicit majority-of-literals match and the unate
    Shannon form ``f = M(x, f_x, f_x')`` (valid whenever one cofactor
    implies the other), which is what makes the database structures
    majority-native rather than transliterated AND/OR trees.
    """
    memo: Dict[int, int] = {}
    maj = getattr(net, "maj", None)

    def synth(tab: int) -> int:
        if tab == 0:
            return CONST_FALSE
        if tab == _FULL:
            return CONST_TRUE
        for i in range(4):
            if tab == _VAR[i]:
                return variables[i]
            if tab == _VAR[i] ^ _FULL:
                return variables[i] ^ 1
        cached = memo.get(tab)
        if cached is not None:
            return cached
        cached = memo.get(tab ^ _FULL)
        if cached is not None:
            return cached ^ 1
        if maj is not None:
            literals = _literal_majority(tab)
            if literals is not None:
                result = maj(*(variables[lit >> 1] ^ (lit & 1) for lit in literals))
                memo[tab] = result
                return result
        best = None
        for i in range(4):
            c0, c1 = _cofactors(tab, i)
            if c0 == c1:
                continue
            # Prefer an XOR split (both cofactors collapse into one cone),
            # then the split yielding the simplest pair of cofactors.
            score = (0 if c1 == c0 ^ _FULL else 1, _support_size(c0) + _support_size(c1))
            if best is None or score < best[0]:
                best = (score, i, c0, c1)
        _, i, c0, c1 = best
        x = variables[i]
        if c0 == 0:
            result = net.and_(x, synth(c1))
        elif c1 == 0:
            result = net.and_(x ^ 1, synth(c0))
        elif c0 == _FULL:
            result = net.or_(x ^ 1, synth(c1))
        elif c1 == _FULL:
            result = net.or_(x, synth(c0))
        elif c1 == c0 ^ _FULL:
            result = net.xor_(x, synth(c0))
        elif c0 & (c1 ^ _FULL) == 0:
            # f_x' implies f_x: f = x·f_x + f_x' — a single majority node
            # on a MIG, an AND+OR pair elsewhere.
            if maj is not None:
                result = maj(x, synth(c1), synth(c0))
            else:
                result = net.or_(net.and_(x, synth(c1)), synth(c0))
        elif c1 & (c0 ^ _FULL) == 0:
            # f_x implies f_x': the mirrored unate form on x'.
            if maj is not None:
                result = maj(x ^ 1, synth(c0), synth(c1))
            else:
                result = net.or_(net.and_(x ^ 1, synth(c0)), synth(c1))
        else:
            result = net.mux_(x, synth(c1), synth(c0))
        memo[tab] = result
        return result

    return synth(table)


def _candidate_entries(kind: str, table: int) -> List[DbEntry]:
    """Fast-tier candidate structures for one ``(kind, table)``.

    Direct and complemented decompositions, each in a size-oriented and a
    depth-oriented polish (MIG: ``optimize_size`` then ``optimize_depth``;
    AIG: raw then ``balance``) — deterministic pure functions of the
    arguments, which is what keeps serial and parallel derivation
    structurally identical.
    """
    candidates: List[DbEntry] = []
    for output_neg in (False, True):
        target = table ^ (_FULL if output_neg else 0)
        if kind == "mig":
            from ..core.depth_opt import optimize_depth
            from ..core.mig import Mig
            from ..core.size_opt import optimize_size

            net = Mig()
            variables = [net.add_pi(f"v{i}") for i in range(4)]
            net.add_po(_synthesize_into(net, target, variables), "f")
            optimize_size(net, effort=1)
            candidates.append(_extract_program(net, output_neg))
            optimize_depth(net, effort=1)
            candidates.append(_extract_program(net, output_neg))
        elif kind == "aig":
            from ..aig.aig import Aig
            from ..aig.balance import balance

            net = Aig()
            variables = [net.add_pi(f"v{i}") for i in range(4)]
            net.add_po(_synthesize_into(net, target, variables), "f")
            candidates.append(_extract_program(net, output_neg))
            candidates.append(_extract_program(balance(net), output_neg))
        else:
            raise ValueError(f"unknown database kind {kind!r}")
    return candidates


def _derive_structures(kind: str, table: int) -> Tuple[DbEntry, ...]:
    """Derive a class's top-k list: the fast-tier candidates' Pareto front."""
    return _pareto_front(_candidate_entries(kind, table))


def _derive_structure(kind: str, table: int) -> DbEntry:
    """Derive only the size-best entry of a class (compat wrapper)."""
    return _derive_structures(kind, table)[0]


def _exact_enrich(
    kind: str,
    table: int,
    front: Tuple[DbEntry, ...],
    budget: int,
    size_slack: int,
) -> Tuple[DbEntry, ...]:
    """Exact-tier enrichment of one class's front (budget-bounded).

    Runs SAT-based exact synthesis *below* the fast tier's bounds only: a
    size search capped at ``front[0].size - 1`` and a depth search capped
    at ``front[-1].depth - 1`` (allowing ``size_slack`` extra gates).  An
    UNSAT outcome proves the fast-tier entry optimal, an UNKNOWN (budget
    exhausted) keeps it untouched — enrichment can only improve fronts.
    """
    from ..synth.exact import SAT as SYNTH_SAT
    from ..synth.exact import synthesize_depth_optimal, synthesize_exact

    extra: List[DbEntry] = []
    best = front[0]
    if best.size > 1:
        result = synthesize_exact(
            table, kind, max_gates=best.size - 1, budget=budget
        )
        if result.status == SYNTH_SAT:
            extra.append(result.entry)
    shallowest = front[-1] if not extra else _pareto_front(list(front) + extra)[-1]
    if shallowest.depth > 1:
        result = synthesize_depth_optimal(
            table,
            kind,
            max_gates=shallowest.size + size_slack,
            budget=budget,
            max_depth=shallowest.depth - 1,
        )
        if result.status == SYNTH_SAT:
            extra.append(result.entry)
    if not extra:
        return front
    return _pareto_front(list(front) + extra)


def _extract_program(net, output_neg: bool) -> DbEntry:
    """Serialise the PO cone of a 4-input network into a :class:`DbEntry`."""
    ref_of: Dict[int, int] = {CONST_NODE: 0}
    for index, pi in enumerate(net.pi_nodes()):
        ref_of[pi] = 1 + index
    depth_of: Dict[int, int] = {}
    ops: List[Tuple[int, ...]] = []
    for node in net._topology():
        fanins = net._fanins[node]
        ops.append(tuple((ref_of[f >> 1] << 1) | (f & 1) for f in fanins))
        ref_of[node] = 5 + len(ops) - 1
        depth_of[node] = 1 + max(depth_of.get(f >> 1, 0) for f in fanins)
    (po,) = net.po_signals()
    output = (ref_of[po >> 1] << 1) | ((po & 1) ^ output_neg)
    return DbEntry(tuple(ops), output, len(ops), depth_of.get(po >> 1, 0))
