"""Shared kernel of all homogeneous logic networks in :mod:`repro`.

:class:`LogicNetwork` owns everything that :class:`repro.core.mig.Mig`
(three-input majority nodes) and :class:`repro.aig.aig.Aig` (two-input AND
nodes) have in common:

* dense node storage with reference counting, fanout tracking and
  dead-node reclamation;
* structural hashing of gate fanin tuples;
* in-place substitution with automatic cascade propagation (strashing
  hits and gate-level simplifications in the fanout re-applied until a
  fixpoint), the engine behind every rewrite rule;
* bit-parallel simulation and exhaustive truth tables;
* compacting copy / ``assign_from`` rollback support;
* **incremental structural state**: per-node logic levels are maintained
  eagerly (a substitution re-sweeps only the affected fanout cone), and
  the PO-reachable topological order plus the level snapshot are cached
  with dirty-region invalidation, so :meth:`depth`, :meth:`levels` and
  :meth:`topological_order` are O(1) when the network has not changed;
* **mutation notifications**: a monotone mutation serial
  (``_mutation_serial``, bumped on every structural change) plus a
  listener hook (:meth:`register_mutation_listener`) through which
  derived-state caches — the incremental cut engine of
  :class:`repro.network.cuts.CutManager` — subscribe to in-place fanin
  retargets, node deaths and wholesale resets alongside the existing
  level-repair worklist.

Subclasses provide the gate semantics through four small hooks:

``_gate_simplify(fanins)``
    The constant/idempotence/complement folding of the node function
    (Ω.M for majority, AND folding for AIGs); returns a replacement
    signal or ``None``.
``_strash_candidates(fanins)``
    The structural-hash keys under which a rewritten fanin tuple may
    already exist, as ``(key, output_complemented)`` pairs.  The first
    candidate's key is the canonical stored form.
``_eval_gate(values, fanins, mask)``
    Bit-parallel evaluation of one gate.
``_build_gate(fanins)``
    Re-create a gate through the subclass's public builder (used by
    :meth:`copy` so simplification and hashing are re-applied).

Levels follow the paper's convention: primary inputs and the constant
node sit at level 0; the level of a gate is one plus the maximum fanin
level; :meth:`depth` is the maximum level over the primary outputs.

Cache-exactness invariants (relied on by the optimizers, validated by
``tests/network/test_level_cache.py``):

* ``_level[n]`` always equals the longest-path level of every *live*
  node ``n``, kept exact by worklist repair over the affected cone after
  every fanin retarget — so ``depth()`` is O(#POs) at any time.
* The cached topological order contains exactly the gates reachable from
  the primary outputs.  Creating a node never invalidates it (a fresh
  node is unreachable until something references it); redirecting a
  primary output or substituting a node does.
* ``levels()`` reports 0 for nodes that are not PO-reachable, matching a
  from-scratch recomputation.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    make_signal,
    negate,
    negate_if,
    node_of,
    signal_repr,
    sort_signals,
)

__all__ = ["LogicNetwork"]

#: ``__dict__`` keys of generated artifacts (see :mod:`repro.codegen`),
#: stripped on pickle and regenerated on demand in the new process.
_CODEGEN_STATE_KEYS = (
    "_codegen_ir",
    "_codegen_ir_serial",
    "_codegen_kernel",
    "_codegen_kernel_serial",
    "_codegen_clauses",
    "_codegen_clauses_serial",
    "_sim_seen_serial",
)


class LogicNetwork:
    """Base class of homogeneous logic networks with complemented edges.

    Node ``0`` is the constant-0 node, primary inputs follow, gates are
    appended as created.  Signals use the ``(node << 1) | complement``
    encoding of :mod:`repro.core.signal`.
    """

    #: When every gate of the subclass computes one fixed function over
    #: its fanin *edge* values, its truth table (majority ``0xE8`` for
    #: MIGs, AND ``0x8`` for AIGs); ``None`` makes consumers fall back to
    #: per-node :meth:`gate_truth_table` calls.  Used by
    #: :func:`repro.codegen.ir.network_ir` to skip the projection-pattern
    #: evaluation per gate when flattening a network.
    UNIFORM_GATE_TT: Optional[int] = None

    #: Human-readable gate kind used in error messages ("majority", "AND").
    GATE_KIND: str = "gate"

    def __init__(self) -> None:
        # Per-node storage.  ``_fanins[n]`` is a tuple of fanin signals for
        # gates and ``None`` for the constant node and PIs.
        self._fanins: List[Optional[Tuple[int, ...]]] = [None]
        self._dead: List[bool] = [False]
        self._ref: List[int] = [0]
        self._fanouts: List[set] = [set()]

        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []

        self._strash: Dict[Tuple[int, ...], int] = {}
        self._num_gates = 0
        self.name: str = "network"

        # node -> number of primary outputs referencing it; lets the
        # substitution cascade skip the PO-redirect scan for the vast
        # majority of nodes that drive no output.
        self._po_refs: Dict[int, int] = {}

        # Incremental structural state.  ``_level`` is exact for every live
        # node at all times; the order/levels caches cover the PO-reachable
        # subgraph and are invalidated by substitutions and PO changes.
        self._level: List[int] = [0]
        self._order_cache: Optional[List[int]] = None
        self._levels_cache: Optional[List[int]] = None
        # Nodes whose stored fanin tuple changed in place since creation.
        # Gate creation pre-simplifies, so only these can have become
        # trivially reducible — the Ω.M sweep visits just this set.
        self._touched: set = set()

        # Monotone counter of structural changes (allocation, retarget,
        # death, PO edits, resets): lets derived-state caches prove "the
        # network has not changed since" with one integer compare.
        self._mutation_serial = 0
        # Compiled simulation program: one pre-bound gate-eval closure per
        # PO-reachable gate, keyed by the mutation serial it was compiled
        # at.  ``simulate_patterns`` is the inner loop of signature
        # sweeping and exhaustive CEC; the program removes the per-gate
        # dispatch (fanin-tuple fetch, per-edge complement branches) from
        # every call on an unchanged network.
        self._sim_program: Optional[List[Tuple[int, Callable]]] = None
        self._sim_program_serial = -1
        # Subscribers to structural-change events; each listener exposes
        # ``network_retargeted(node)``, ``network_node_died(node)`` and
        # ``network_reset()``.  The list is empty in the common case, so
        # notification costs one truthiness check per mutation.
        self._mutation_listeners: List = []

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _gate_simplify(self, fanins: Tuple[int, ...]) -> Optional[int]:
        raise NotImplementedError

    def _strash_candidates(
        self, fanins: Tuple[int, ...]
    ) -> Iterable[Tuple[Tuple[int, ...], bool]]:
        raise NotImplementedError

    def _gate_key(self, fanins: Tuple[int, ...]) -> Tuple[int, ...]:
        """Canonical structural-hash key of a stored fanin tuple."""
        raise NotImplementedError

    def _normalize_gate(self, fanins: Tuple[int, ...]) -> Tuple[Tuple[int, ...], bool]:
        """Canonical stored form of a raw fanin tuple plus output polarity.

        Exactly the normalization the subclass builder applies before
        :meth:`_create_gate`; exposed so cost estimators (the rewrite
        engine's dry run) can mirror the builder's strash probe order.
        """
        raise NotImplementedError

    def _eval_gate(self, values: List[int], fanins: Tuple[int, ...], mask: int) -> int:
        raise NotImplementedError

    def _build_gate(self, fanins: Tuple[int, ...]) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Mutation notifications
    # ------------------------------------------------------------------ #
    def register_mutation_listener(self, listener) -> None:
        """Subscribe ``listener`` to structural-change notifications.

        The listener must expose ``network_retargeted(node)`` (a gate's
        fanin tuple changed in place), ``network_node_died(node)`` (the
        node was reclaimed) and ``network_reset()`` (``assign_from``
        replaced the whole network; all cached node ids are invalid).
        """
        if listener not in self._mutation_listeners:
            self._mutation_listeners.append(listener)

    def unregister_mutation_listener(self, listener) -> None:
        """Remove a previously registered mutation listener (idempotent)."""
        try:
            self._mutation_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_pi(self, name: Optional[str] = None) -> int:
        """Create a primary input and return its (regular) signal."""
        node = self._allocate_node(None)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_signal(node)

    def add_po(self, signal: int, name: Optional[str] = None) -> int:
        """Register ``signal`` as a primary output; return its PO index."""
        self._validate_signal(signal)
        index = len(self._pos)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"po{index}")
        node = node_of(signal)
        self._ref[node] += 1
        self._po_refs[node] = self._po_refs.get(node, 0) + 1
        self._mutation_serial += 1
        self._invalidate_topology()
        return index

    def constant(self, value: bool) -> int:
        """Return the constant-0 or constant-1 signal."""
        return CONST_TRUE if value else CONST_FALSE

    def get_constant(self, value: bool) -> int:
        """Alias of :meth:`constant` (mockturtle-compatible name)."""
        return self.constant(value)

    def not_(self, a: int) -> int:
        """Return the complement of ``a`` (a complemented edge, no node)."""
        return negate(a)

    def _create_gate(self, fanins: Tuple[int, ...], out_compl: bool = False) -> int:
        """Allocate (or strash-reuse) a gate with already-canonical fanins.

        The caller (the subclass builder) has validated the fanin signals,
        applied the trivial simplifications and put ``fanins`` into the
        canonical stored form.  All structural-hash keys the function may
        live under are probed (``_strash_candidates``): in-place fanin
        rewrites can store a node under a non-canonical polarity form, and
        missing such a hit would materialise a functional duplicate.
        Creation keeps all caches valid: a new node is unreachable from the
        primary outputs until something references it, and its level is
        fixed by its fanins.
        """
        for key, key_compl in self._strash_candidates(fanins):
            existing = self._strash.get(key)
            if existing is not None and not self._dead[existing]:
                return make_signal(existing, out_compl ^ key_compl)

        node = self._allocate_node(fanins)
        self._strash[fanins] = node
        self._num_gates += 1
        level = self._level
        top = 0
        for f in fanins:
            fn = f >> 1
            self._ref[fn] += 1
            self._fanouts[fn].add(node)
            if level[fn] > top:
                top = level[fn]
        level[node] = top + 1
        return make_signal(node, out_compl)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of live gate nodes (the *size* metric of the paper)."""
        return self._num_gates

    @property
    def size(self) -> int:
        """Alias for :attr:`num_gates`."""
        return self.num_gates

    @property
    def num_nodes(self) -> int:
        """Total allocated node slots (including constant, PIs and dead nodes)."""
        return len(self._fanins)

    def pi_nodes(self) -> List[int]:
        return list(self._pis)

    def pi_signals(self) -> List[int]:
        return [make_signal(n) for n in self._pis]

    def po_signals(self) -> List[int]:
        return list(self._pos)

    def pi_names(self) -> List[str]:
        return list(self._pi_names)

    def po_names(self) -> List[str]:
        return list(self._po_names)

    def pi_name(self, index: int) -> str:
        return self._pi_names[index]

    def po_name(self, index: int) -> str:
        return self._po_names[index]

    def pi_index(self, node: int) -> int:
        """Return the PI index of ``node`` (raises if not a PI)."""
        return self._pis.index(node)

    def set_po(self, index: int, signal: int) -> None:
        """Redirect an already-registered primary output."""
        self._validate_signal(signal)
        old = self._pos[index]
        self._pos[index] = signal
        node = node_of(signal)
        old_node = node_of(old)
        self._ref[node] += 1
        self._po_refs[node] = self._po_refs.get(node, 0) + 1
        if self._po_refs[old_node] == 1:
            del self._po_refs[old_node]
        else:
            self._po_refs[old_node] -= 1
        self._mutation_serial += 1
        self._invalidate_topology()
        self._deref(old_node)

    def is_constant(self, node: int) -> bool:
        return node == CONST_NODE

    def is_pi(self, node: int) -> bool:
        return self._fanins[node] is None and node != CONST_NODE

    def is_gate(self, node: int) -> bool:
        return self._fanins[node] is not None

    def is_dead(self, node: int) -> bool:
        return self._dead[node]

    def fanins(self, node: int) -> Tuple[int, ...]:
        """Return the fanin signals of a gate node."""
        fanins = self._fanins[node]
        if fanins is None:
            raise ValueError(f"node {node} is not a {self.GATE_KIND} node")
        return fanins

    def fanout_nodes(self, node: int) -> List[int]:
        """Return the live gate nodes that reference ``node`` as a fanin."""
        return [n for n in self._fanouts[node] if not self._dead[n]]

    def fanout_size(self, node: int) -> int:
        """Number of references (fanin edges plus primary outputs)."""
        return self._ref[node]

    def gates(self) -> Iterator[int]:
        """Iterate over live gate nodes (no particular order)."""
        fanins = self._fanins
        dead = self._dead
        return iter(
            [
                node
                for node in range(1, len(fanins))
                if fanins[node] is not None and not dead[node]
            ]
        )

    def nodes(self) -> Iterator[int]:
        """Iterate over all live nodes: constant, PIs, then gates."""
        for node in range(len(self._fanins)):
            if not self._dead[node]:
                yield node

    # ------------------------------------------------------------------ #
    # Topology, levels, depth (cached, incrementally maintained)
    # ------------------------------------------------------------------ #
    def topological_order(self) -> List[int]:
        """Live gate nodes in topological order (fanins before fanouts).

        Only nodes in the transitive fanin of a primary output are
        included, which matches the *size* accounting of the paper
        (dangling nodes are removed by :meth:`cleanup`).  The order is
        cached and only recomputed after a structural change that can
        affect reachability.
        """
        return list(self._topology())

    def _topology(self) -> List[int]:
        """The cached PO-reachable order itself (no defensive copy).

        For internal/O(1) consumers like ``Aig.num_gates``; callers must
        not mutate the returned list.
        """
        if self._order_cache is None:
            self._rebuild_topology()
        return self._order_cache

    def levels(self) -> List[int]:
        """Return per-node logic levels (PIs and constant at level 0).

        Nodes outside the transitive fanin of the primary outputs report
        level 0, exactly as a from-scratch recomputation would.
        """
        if self._order_cache is None:
            self._rebuild_topology()
        cached = self._levels_cache
        if len(cached) < len(self._fanins):
            # Nodes created since the snapshot are unreachable (nothing
            # references them yet) and therefore sit at level 0.
            return cached + [0] * (len(self._fanins) - len(cached))
        return list(cached)

    def depth(self) -> int:
        """Depth of the network: the paper's *delay* proxy.  O(#POs)."""
        if not self._pos:
            return 0
        level = self._level
        return max(level[po >> 1] for po in self._pos)

    def critical_nodes(self) -> List[int]:
        """Gate nodes lying on at least one maximum-depth path."""
        level = self.levels()
        depth = self.depth()
        if depth == 0:
            return []
        required: Dict[int, int] = {}
        for po in self._pos:
            n = node_of(po)
            if level[n] == depth:
                required[n] = depth
        result: List[int] = []
        order = self._topology()
        for node in reversed(order):
            if node not in required:
                continue
            result.append(node)
            req = required[node]
            for f in self._fanins[node]:
                fn = node_of(f)
                if self._fanins[fn] is not None and level[fn] == req - 1:
                    prev = required.get(fn, -1)
                    required[fn] = max(prev, req - 1)
        return result

    def _invalidate_topology(self) -> None:
        self._order_cache = None
        self._levels_cache = None

    def _rebuild_topology(self) -> None:
        """Recompute the PO-reachable topological order and level snapshot.

        Levels are copied from the incrementally-maintained ``_level``
        array rather than recomputed, so the rebuild is a single DFS.
        """
        fanins = self._fanins
        order: List[int] = []
        visited = bytearray(len(fanins))
        for node in self._pis:
            visited[node] = True
        visited[CONST_NODE] = True

        # Iterative post-order DFS; a node is pushed as ``~node`` to mark
        # the "emit after children" visit, avoiding per-step tuples.
        append = order.append
        for po in self._pos:
            root = po >> 1
            if visited[root]:
                continue
            stack = [root]
            while stack:
                node = stack.pop()
                if node < 0:
                    append(~node)
                    continue
                if visited[node]:
                    continue
                visited[node] = True
                stack.append(~node)
                for f in fanins[node]:
                    fn = f >> 1
                    if not visited[fn] and fanins[fn] is not None:
                        stack.append(fn)

        level = self._level
        snapshot = [0] * len(fanins)
        for node in order:
            snapshot[node] = level[node]
        self._order_cache = order
        self._levels_cache = snapshot

    def _update_level(self, seed: int) -> None:
        """Repair ``_level`` after the fanins of ``seed`` changed.

        Worklist relaxation over the affected fanout cone: a node is
        re-evaluated only when one of its fanins' levels actually changed,
        so the cost is proportional to the dirty region, not the network.
        """
        level = self._level
        fanins = self._fanins
        dead = self._dead
        queue: deque = deque((seed,))
        queued = {seed}
        while queue:
            node = queue.popleft()
            queued.discard(node)
            node_fanins = fanins[node]
            if node_fanins is None or dead[node]:
                continue
            top = 0
            for f in node_fanins:
                fl = level[f >> 1]
                if fl > top:
                    top = fl
            top += 1
            if top != level[node]:
                level[node] = top
                for parent in self._fanouts[node]:
                    if not dead[parent] and parent not in queued:
                        queued.add(parent)
                        queue.append(parent)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate_patterns(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel simulation.

        ``pi_patterns[i]`` is an integer whose ``num_bits`` low bits are the
        stimulus of the ``i``-th primary input.  Returns one pattern per
        primary output.

        Two tiers run behind this entry point.  The first call at a new
        mutation serial uses the memoized closure program
        (:meth:`simulate_patterns_interpreted`) — cheap to build, so
        mutate-once/simulate-once loops never pay more.  A repeat call at
        the same serial promotes to the generated straight-line kernel of
        :mod:`repro.codegen`, which removes the remaining per-gate closure
        dispatch from every subsequent call.  Both tiers are bit-identical
        by the differential tests of ``tests/codegen``.
        """
        serial = self._mutation_serial
        kernel = self.__dict__.get("_codegen_kernel")
        if kernel is not None and self.__dict__.get("_codegen_kernel_serial") == serial:
            return kernel.simulate(pi_patterns, num_bits)
        if self.__dict__.get("_sim_seen_serial") == serial:
            return self.compiled_kernel().simulate(pi_patterns, num_bits)
        self.__dict__["_sim_seen_serial"] = serial
        return self.simulate_patterns_interpreted(pi_patterns, num_bits)

    def compiled_kernel(self):
        """The generated :class:`repro.codegen.SimKernel` for this network.

        Serial-cached; compiling is deferred to here so the cost is only
        paid by call sites that simulate the same network state repeatedly
        (or ask explicitly, as the exhaustive-CEC block loop does).
        """
        serial = self._mutation_serial
        kernel = self.__dict__.get("_codegen_kernel")
        if kernel is None or self.__dict__.get("_codegen_kernel_serial") != serial:
            from ..codegen.simgen import compile_network_kernel

            kernel = compile_network_kernel(self)
            self.__dict__["_codegen_kernel"] = kernel
            self.__dict__["_codegen_kernel_serial"] = serial
        return kernel

    def simulate_patterns_interpreted(
        self, pi_patterns: Sequence[int], num_bits: int
    ) -> List[int]:
        """The closure-program simulation tier (and differential oracle)."""
        if len(pi_patterns) != len(self._pis):
            raise ValueError(
                f"expected {len(self._pis)} PI patterns, got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values = [0] * len(self._fanins)
        for node, pattern in zip(self._pis, pi_patterns):
            values[node] = pattern & mask

        program = self._sim_program
        if program is None or self._sim_program_serial != self._mutation_serial:
            program = [
                (node, self._compile_gate_eval(self._fanins[node]))
                for node in self._topology()
            ]
            self._sim_program = program
            self._sim_program_serial = self._mutation_serial
        for node, evaluate in program:
            values[node] = evaluate(values, mask)

        return [self._edge_value(values, po, mask) for po in self._pos]

    def _compile_gate_eval(
        self, fanins: Tuple[int, ...]
    ) -> Callable[[List[int], int], int]:
        """One gate's evaluation, pre-bound to its (current) fanin tuple.

        Subclasses override with closures that pre-split the fanin nodes
        and complement flags, eliminating the per-pattern edge-decoding
        branches of :meth:`_eval_gate`.  Compiled programs are tied to
        one mutation serial, so a closure never outlives the fanin tuple
        it was bound to.
        """
        eval_gate = self._eval_gate

        def evaluate(values: List[int], mask: int) -> int:
            return eval_gate(values, fanins, mask)

        return evaluate

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        """Simulate a single input assignment; returns PO boolean values."""
        patterns = [1 if bit else 0 for bit in assignment]
        outputs = self.simulate_patterns(patterns, 1)
        return [bool(o & 1) for o in outputs]

    def truth_tables(self) -> List[int]:
        """Exhaustive truth tables of all POs (requires ≤ 20 inputs)."""
        n = len(self._pis)
        if n > 20:
            raise ValueError("exhaustive simulation limited to 20 inputs")
        num_bits = 1 << n
        patterns = []
        for i in range(n):
            block = (1 << (1 << i)) - 1
            pattern = 0
            period = 1 << (i + 1)
            for start in range(1 << i, num_bits, period):
                pattern |= block << start
            patterns.append(pattern)
        return self.simulate_patterns(patterns, num_bits)

    def gate_truth_table(self, node: int) -> int:
        """Local truth table of a gate over its fanin *edge* values.

        Bit ``m`` of the result is the gate output when fanin edge ``i``
        (complementation already applied) carries bit ``(m >> i) & 1``.
        Works for any subclass by driving :meth:`_eval_gate` with
        projection patterns — the CNF encoder of :mod:`repro.verify.cnf`
        uses this to Tseitin-encode MIGs and AIGs uniformly.
        """
        fanins = self.fanins(node)
        k = len(fanins)
        num_bits = 1 << k
        mask = (1 << num_bits) - 1
        # A dict suffices for ``_eval_gate``'s ``values[node]`` lookups and
        # keeps this O(k) per call instead of allocating a num_nodes list.
        values: Dict[int, int] = {}
        for i, f in enumerate(fanins):
            projection = 0
            period = 1 << (i + 1)
            block = (1 << (1 << i)) - 1
            for start in range(1 << i, num_bits, period):
                projection |= block << start
            # Pre-complement so the *edge* value seen by ``_eval_gate`` is
            # the plain projection of input ``i``.
            values[f >> 1] = projection ^ (mask if f & 1 else 0)
        return self._eval_gate(values, fanins, mask)

    @staticmethod
    def _edge_value(values: List[int], signal: int, mask: int) -> int:
        v = values[node_of(signal)]
        return (~v) & mask if is_complemented(signal) else v

    # ------------------------------------------------------------------ #
    # In-place manipulation (the engine behind rewrite-rule application)
    # ------------------------------------------------------------------ #
    def substitute(self, old_node: int, new_signal: int) -> bool:
        """Replace every reference to ``old_node`` with ``new_signal``.

        Cascading effects (structural-hash hits and gate simplifications in
        the fanout nodes) are propagated automatically.  Returns ``False``
        (and does nothing) if the substitution would create a cycle, i.e.
        if ``old_node`` lies in the transitive fanin of ``new_signal``.
        """
        if old_node == CONST_NODE and new_signal in (CONST_FALSE, CONST_TRUE):
            return True
        if node_of(new_signal) == old_node:
            return True
        if self._in_tfi(old_node, node_of(new_signal)):
            return False
        self._invalidate_topology()

        # Replacement signals sitting in the queue are reference-protected so
        # that unrelated cascade steps cannot reclaim them before their turn.
        queue: deque = deque()

        def enqueue(old: int, new: int) -> None:
            self._ref[node_of(new)] += 1
            queue.append((old, new))

        enqueue(old_node, new_signal)
        while queue:
            old, new = queue.popleft()
            new_node = node_of(new)
            if not self._dead[old] and new_node != old:
                # Redirect primary outputs.
                if old in self._po_refs:
                    moved = 0
                    for index, po in enumerate(self._pos):
                        if po >> 1 == old:
                            replacement = new ^ (po & 1)
                            self._pos[index] = replacement
                            self._ref[replacement >> 1] += 1
                            self._ref[old] -= 1
                            moved += 1
                    if moved:
                        del self._po_refs[old]
                        self._po_refs[new_node] = self._po_refs.get(new_node, 0) + moved
                        self._mutation_serial += 1
                # Redirect fanouts.
                for parent in list(self._fanouts[old]):
                    if self._dead[parent]:
                        self._fanouts[old].discard(parent)
                        continue
                    for f in self._fanins[parent]:
                        if f >> 1 == old:
                            break
                    else:
                        self._fanouts[old].discard(parent)
                        continue
                    collapse = self._replace_in_node(parent, old, new)
                    if collapse is not None and node_of(collapse) != old:
                        enqueue(parent, collapse)
            # Release the protection reference of this queue entry.
            self._deref(new_node)
            # Remove the now-unreferenced node.
            if not self._dead[old] and self._ref[old] == 0 and self.is_gate(old):
                self._take_out(old)
        return True

    def _replace_in_node(self, parent: int, old: int, new: int) -> Optional[int]:
        """Rewrite the fanins of ``parent`` replacing node ``old`` by ``new``.

        Returns a signal when ``parent`` itself collapses (its rewritten
        fanin tuple simplifies or hits the structural hash table), in which
        case the caller must substitute ``parent`` by the returned signal.
        Returns ``None`` when ``parent`` was updated in place.
        """
        old_fanins = self._fanins[parent]
        new_fanins = tuple(
            (new ^ (f & 1)) if f >> 1 == old else f for f in old_fanins
        )
        if new_fanins == old_fanins:
            return None

        simplified = self._gate_simplify(new_fanins)
        if simplified is not None:
            return simplified

        strash = self._strash
        dead = self._dead
        key = None
        for cand_key, out_compl in self._strash_candidates(new_fanins):
            if key is None:
                key = cand_key
            existing = strash.get(cand_key)
            if existing is not None and existing != parent and not dead[existing]:
                return make_signal(existing, out_compl)

        # In-place update of the parent node.
        old_key = self._gate_key(old_fanins)
        if strash.get(old_key) == parent:
            del strash[old_key]
        strash[key] = parent
        self._retarget_fanins(parent, old_fanins, key)
        return None

    def _retarget_fanins(
        self, parent: int, old_fanins: Tuple[int, ...], new_fanins: Tuple[int, ...]
    ) -> None:
        """Swap the fanin tuple of ``parent`` keeping ref counts consistent.

        New references are added *before* old ones are released so that a
        node shared between the two tuples (directly or through a dying
        fanin's cone) can never be reclaimed transiently.
        """
        new_nodes = [node_of(f) for f in new_fanins]
        for fn in new_nodes:
            self._ref[fn] += 1
            self._fanouts[fn].add(parent)
        self._fanins[parent] = new_fanins
        new_set = set(new_nodes)
        for f in old_fanins:
            fn = node_of(f)
            self._ref[fn] -= 1
            if fn not in new_set:
                self._fanouts[fn].discard(parent)
            if self._ref[fn] == 0 and self.is_gate(fn) and not self._dead[fn]:
                self._take_out(fn)
        self._touched.add(parent)
        self._mutation_serial += 1
        if self._mutation_listeners:
            for listener in self._mutation_listeners:
                listener.network_retargeted(parent)
        self._update_level(parent)

    def replace_fanins(self, node: int, fanins: Tuple[int, ...]) -> Optional[int]:
        """Low-level helper used by rewrite rules to retarget a node's fanins.

        The fanins are simplified/strashed like in the subclass builder; if
        the new tuple collapses onto an existing signal, that signal is
        returned and the node is substituted by it; otherwise ``None`` is
        returned.
        """
        for s in fanins:
            self._validate_signal(s)
        old_fanins = self._fanins[node]
        if old_fanins is None:
            raise ValueError(f"node {node} is not a {self.GATE_KIND} node")
        if sort_signals(fanins) == sort_signals(old_fanins):
            return None
        for s in fanins:
            if self._in_tfi(node, node_of(s)):
                raise ValueError("replace_fanins would create a combinational cycle")

        simplified = self._gate_simplify(tuple(fanins))
        if simplified is not None:
            self.substitute(node, simplified)
            return simplified

        key = self._gate_key(tuple(fanins))
        existing = self._strash.get(key)
        if existing is not None and existing != node and not self._dead[existing]:
            self.substitute(node, make_signal(existing))
            return make_signal(existing)

        self._invalidate_topology()
        old_key = self._gate_key(old_fanins)
        if self._strash.get(old_key) == node:
            del self._strash[old_key]
        self._strash[key] = node
        self._retarget_fanins(node, old_fanins, key)
        return None

    def pin_node(self, node: int) -> None:
        """Hold an extra reference on ``node`` so it cannot be reclaimed.

        Substitution cascades reclaim any gate whose reference count
        reaches zero.  Callers that keep raw node ids alive across a
        sequence of substitutions — the window stitcher of
        :mod:`repro.parallel.window` holds replacement targets for later
        windows — pin those nodes first; a pinned node can be
        retargeted or bypassed by a cascade but never dies.  Pins are
        plain reference counts: every pin must be released by exactly
        one :meth:`unpin_node`, after which :meth:`cleanup` (or the
        release itself) reclaims whatever became dangling.
        """
        if self._dead[node]:
            raise ValueError(f"cannot pin dead node {node}")
        self._ref[node] += 1

    def unpin_node(self, node: int) -> None:
        """Release one :meth:`pin_node` hold (reclaims if now dangling)."""
        self._deref(node)

    def cleanup(self) -> int:
        """Remove dangling nodes (no fanout, not driving a PO). Returns count.

        Dangling nodes are by definition unreachable from the primary
        outputs, so reclaiming them leaves the cached topological order and
        level snapshot valid.  A single scan reaches the fixpoint: removing
        a root cascades through its cone via :meth:`_take_out`, so a node's
        reference count can only drop to zero while one of its (transitive)
        fanouts is being taken out — never behind the scan.
        """
        removed = 0
        fanins = self._fanins
        dead = self._dead
        ref = self._ref
        for node in range(1, len(fanins)):
            if fanins[node] is not None and not dead[node] and ref[node] == 0:
                self._take_out(node)
                removed += 1
        return removed

    # ------------------------------------------------------------------ #
    # Copy / rebuild
    # ------------------------------------------------------------------ #
    def copy(self) -> "LogicNetwork":
        """Return a compact, strashed copy containing only live logic."""
        other = self.__class__()
        other.name = self.name
        mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = other.add_pi(name)
        for node in self._topology():
            mapped = tuple(
                negate_if(mapping[node_of(f)], is_complemented(f))
                for f in self._fanins[node]
            )
            mapping[node] = other._build_gate(mapped)
        for po, name in zip(self._pos, self._po_names):
            other.add_po(negate_if(mapping[node_of(po)], is_complemented(po)), name)
        return other

    def assign_from(self, other: "LogicNetwork") -> None:
        """Replace the contents of this network with a copy of ``other``.

        Used by the optimizers to roll back to the best intermediate result
        when a speculative reshape cycle did not pay off.

        Mutation listeners registered on *this* network stay registered
        (the clone has none) and receive a ``network_reset`` notification:
        every node id they may have cached refers to the old contents.
        """
        clone = other.copy()
        self._fanins = clone._fanins
        self._dead = clone._dead
        self._ref = clone._ref
        self._fanouts = clone._fanouts
        self._pis = clone._pis
        self._pi_names = clone._pi_names
        self._pos = clone._pos
        self._po_names = clone._po_names
        self._strash = clone._strash
        self._num_gates = clone._num_gates
        self.name = clone.name
        self._level = clone._level
        self._order_cache = clone._order_cache
        self._levels_cache = clone._levels_cache
        self._touched = clone._touched
        self._po_refs = clone._po_refs
        self._mutation_serial += 1
        if self._mutation_listeners:
            for listener in self._mutation_listeners:
                listener.network_reset()

    # ------------------------------------------------------------------ #
    # Pickling (process-parallel execution ships networks across workers)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, object]:
        """Pickle the structural state only, never process-local caches.

        Mutation listeners (incremental cut managers), the per-network
        cut-manager registry and the compiled simulation program are
        derived, process-local state: the first two hold subscriptions
        meaningless in another process, the last holds unpicklable
        closures.  All are rebuilt on demand after unpickling.  The
        structural state itself — node storage, strash, levels, ids —
        crosses the boundary verbatim, which is what makes a worker's
        result bit-identical to an in-process run.
        """
        state = self.__dict__.copy()
        state["_mutation_listeners"] = []
        state["_sim_program"] = None
        state.pop("_cut_managers", None)
        # Generated artifacts (repro.codegen): compiled kernels hold code
        # objects, and everything here is regenerable from the structure.
        for key in _CODEGEN_STATE_KEYS:
            state.pop(key, None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._mutation_listeners = []
        self._sim_program = None
        self._sim_program_serial = -1
        for key in _CODEGEN_STATE_KEYS:
            self.__dict__.pop(key, None)

    def check_integrity(self) -> None:
        """Validate internal invariants; raises ``AssertionError`` on corruption.

        Intended for tests and debugging: checks that live nodes only point
        at live nodes, that reference counts match the actual number of
        fanin/PO references, that fanout sets are consistent and that the
        incrementally-maintained level of every live gate equals one plus
        the maximum level of its fanins.
        """
        expected_refs = [0] * len(self._fanins)
        for node in range(len(self._fanins)):
            if self._dead[node] or self._fanins[node] is None:
                continue
            for f in self._fanins[node]:
                fn = node_of(f)
                assert not self._dead[fn], (
                    f"live node {node} has dead fanin node {fn}"
                )
                expected_refs[fn] += 1
                assert node in self._fanouts[fn], (
                    f"fanout set of {fn} misses parent {node}"
                )
            expected_level = 1 + max(self._level[node_of(f)] for f in self._fanins[node])
            assert self._level[node] == expected_level, (
                f"node {node}: cached level {self._level[node]} != expected "
                f"{expected_level}"
            )
        expected_po_refs: Dict[int, int] = {}
        for po in self._pos:
            fn = node_of(po)
            assert not self._dead[fn], f"primary output references dead node {fn}"
            expected_refs[fn] += 1
            expected_po_refs[fn] = expected_po_refs.get(fn, 0) + 1
        assert self._po_refs == expected_po_refs, (
            f"PO reference index {self._po_refs} != expected {expected_po_refs}"
        )
        for node in range(len(self._fanins)):
            if self._dead[node]:
                continue
            assert self._ref[node] == expected_refs[node], (
                f"node {node}: ref count {self._ref[node]} != expected "
                f"{expected_refs[node]}"
            )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _allocate_node(self, fanins: Optional[Tuple[int, ...]]) -> int:
        node = len(self._fanins)
        self._mutation_serial += 1
        self._fanins.append(fanins)
        self._dead.append(False)
        self._ref.append(0)
        self._fanouts.append(set())
        self._level.append(0)
        return node

    def _validate_signal(self, signal: int) -> None:
        node = node_of(signal)
        if node >= len(self._fanins) or node < 0:
            raise ValueError(f"signal {signal_repr(signal)} references unknown node")
        if self._dead[node]:
            raise ValueError(f"signal {signal_repr(signal)} references a dead node")

    def _deref(self, node: int) -> None:
        self._ref[node] -= 1
        if self._ref[node] == 0 and self.is_gate(node) and not self._dead[node]:
            self._take_out(node)

    def _take_out(self, node: int) -> None:
        """Remove a dead gate node and recursively release its fanins."""
        if self._dead[node] or self._fanins[node] is None:
            return
        self._dead[node] = True
        self._num_gates -= 1
        self._mutation_serial += 1
        if self._mutation_listeners:
            for listener in self._mutation_listeners:
                listener.network_node_died(node)
        key = self._gate_key(self._fanins[node])
        if self._strash.get(key) == node:
            del self._strash[key]
        for f in self._fanins[node]:
            fn = node_of(f)
            self._fanouts[fn].discard(node)
            self._ref[fn] -= 1
            if self._ref[fn] == 0 and self.is_gate(fn) and not self._dead[fn]:
                self._take_out(fn)
        self._fanouts[node] = set()

    def _in_tfi(self, target: int, start: int) -> bool:
        """Return True when ``target`` is in the transitive fanin of ``start``.

        Pruned by the incremental level array: a node can only lie in the
        transitive fanin of nodes at strictly greater level, so the search
        never descends below ``level(target)``.
        """
        if target == start:
            return True
        if self._fanins[start] is None:
            return False
        level = self._level
        target_level = level[target]
        if target_level >= level[start]:
            return False
        fanins = self._fanins
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            node_fanins = fanins[node]
            if node_fanins is None:
                continue
            for f in node_fanins:
                fn = f >> 1
                if fn == target:
                    return True
                if fn not in seen and level[fn] > target_level:
                    seen.add(fn)
                    stack.append(fn)
        return False
