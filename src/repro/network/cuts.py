"""k-feasible cut enumeration over any :class:`~repro.network.base.LogicNetwork`.

A *cut* of a node ``n`` is a set of nodes (the *leaves*) such that every
path from ``n`` to the primary inputs passes through a leaf; it is
*k-feasible* when it has at most ``k`` leaves.  Cuts are the unit of
Boolean (as opposed to algebraic) optimization: the function of ``n`` over
the cut leaves is a small truth table that can be NPN-canonicalized and
matched against a database of precomputed structures
(:mod:`repro.network.npn`) or against standard-cell functions
(:mod:`repro.mapping.mapper`).

The enumeration is the classic bottom-up *priority cuts* scheme: the cut
set of a gate is the cross product of its fanins' cut sets, truncated to
the ``cut_limit`` best cuts per node (fewest leaves first), always keeping
the trivial cut ``{n}`` so fanouts can build on ``n`` itself.  Dominated
cuts (supersets of another kept cut) are filtered.  Each cut carries the
truth table of the node over its leaves, computed incrementally during the
merge with the same bit-parallel idiom the kernel's simulator uses — the
gate semantics are supplied by the subclass through ``_eval_gate``, so the
same enumerator serves MIGs, AIGs and any future network type.

Truth tables are little-endian over the sorted leaf tuple: bit ``m`` of
``cut.table`` is the value of the node when leaf ``i`` carries bit ``i``
of the minterm index ``m``.  Leaves are *nodes* (regular polarity); edge
complementations inside the cone are folded into the table.

Hot-loop structure
------------------
The fanin merge is the single hot loop of Boolean rewriting on large
networks, so it is organised around two constant-factor filters:

* every :class:`Cut` carries a 64-bit *leaf signature* — the OR of
  ``1 << (leaf % 64)`` over its leaves.  Because the signature of a union
  is the OR of the signatures and a set's signature can never have more
  one-bits than the set has elements, ``popcount(sig_a | sig_b) > k``
  proves the merged leaf set is infeasible *before* any set is
  materialised.  (The converse does not hold — bits can collide — so
  surviving merges still verify the real union.)  The same subset
  property prefilters the dominance check: a kept cut can only dominate a
  candidate when its signature bits are a subset of the candidate's.
* the re-expression of a child table into the merged leaf space
  (:func:`_expand_table`) is memoized by an LRU keyed on
  ``(table, leaf-position mapping)`` rather than on concrete node ids, so
  structurally recurring cones across the network — and across networks —
  hit the same entries.

Incremental re-enumeration (:class:`CutManager`)
------------------------------------------------
:func:`enumerate_cuts` recomputes every PO-reachable node from scratch and
stays the reference implementation (and the oracle of the property tests).
:class:`CutManager` keeps the same per-node cut lists *incrementally*
between sweeps.  The invalidation protocol:

* the manager registers as a kernel mutation listener
  (:meth:`LogicNetwork.register_mutation_listener`); the kernel notifies
  it whenever a gate's fanin tuple is retargeted in place (which is the
  single choke point of every substitution cascade and
  ``replace_fanins``), whenever a node dies, and when ``assign_from``
  wholesale-replaces the network;
* a retargeted node is marked *dirty*: its own cuts — and potentially
  those of its transitive fanouts — are stale.  A dead node's cache entry
  is dropped immediately.  A reset clears everything;
* a sweep (:meth:`CutManager.cuts`) walks the current PO-reachable
  topological order and recomputes exactly the nodes that are dirty or
  uncached (a node created since the last sweep has no entry yet).  When
  a recomputed node's cut list actually changed — lists are compared as
  ``(leaves, table)`` sequences — its live fanouts are marked dirty in
  turn, so staleness propagates node-by-node and stops as soon as the
  recomputation converges back onto the cached cuts;
* dirty marks on nodes that are currently unreachable from the primary
  outputs persist (such a node can only be *re*-reached later, at which
  point the pending mark forces the recomputation), so the cache is
  correct under PO redirects and reconvergent substitutions.  Signatures
  live inside the immutable :class:`Cut` objects and are rebuilt exactly
  when the owning cut list is.

Every cut list a sweep produces is identical — same cuts, same order — to
what :func:`enumerate_cuts` would compute from scratch on the current
network, which is the invariant ``tests/network/test_cuts_incremental.py``
fuzzes over both network types.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..core.signal import CONST_NODE

__all__ = [
    "Cut",
    "CutManager",
    "enumerate_cuts",
    "release_cut_state",
    "cut_cone",
    "mffc_nodes",
]


class Cut:
    """One k-feasible cut: sorted leaf nodes plus the root's local function.

    ``sign`` is the 64-bit leaf signature (OR of ``1 << (leaf % 64)``)
    used to reject infeasible merges and non-dominating comparisons before
    touching the actual leaf sets.
    """

    __slots__ = ("leaves", "table", "sign")

    def __init__(self, leaves: Tuple[int, ...], table: int, sign: Optional[int] = None) -> None:
        self.leaves = leaves
        self.table = table
        if sign is None:
            sign = 0
            for leaf in leaves:
                sign |= 1 << (leaf & 63)
        self.sign = sign

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cut(leaves={self.leaves}, table=0x{self.table:x})"


#: Truth table of the trivial cut ``{n}``: the single leaf variable itself.
_TRIVIAL_TABLE = 0b10

#: Cut list of the constant node (used for constant fanin edges).
_CONST_CUTS: Tuple[Cut, ...] = (Cut((), 0, 0),)


def _trivial_cut(node: int) -> Cut:
    return Cut((node,), _TRIVIAL_TABLE, 1 << (node & 63))


@lru_cache(maxsize=1 << 14)
def _expand_positions(table: int, positions: Tuple[int, ...], num_leaves: int) -> int:
    """Re-express ``table`` given where each of its variables sits in the
    merged leaf tuple.  Keyed on the *position mapping*, not on node ids,
    so recurring cone shapes share entries across sweeps and networks."""
    out = 0
    for m in range(1 << num_leaves):
        cm = 0
        for i, p in enumerate(positions):
            if (m >> p) & 1:
                cm |= 1 << i
        if (table >> cm) & 1:
            out |= 1 << m
    return out


def _expand_table(table: int, child_leaves: Tuple[int, ...], leaves: Tuple[int, ...]) -> int:
    """Re-express ``table`` (over ``child_leaves``) in the ``leaves`` space."""
    if child_leaves == leaves:
        return table
    positions = tuple(leaves.index(leaf) for leaf in child_leaves)
    return _expand_positions(table, positions, len(leaves))


def _merge_table(net, fanins: Tuple[int, ...], combo: Sequence[Cut], leaves: Tuple[int, ...]) -> int:
    """Truth table of one gate over ``leaves`` given its fanins' cut tables."""
    mask = (1 << (1 << len(leaves))) - 1
    values: Dict[int, int] = {CONST_NODE: 0}
    for f, cut in zip(fanins, combo):
        fn = f >> 1
        if fn != CONST_NODE:
            values[fn] = _expand_table(cut.table, cut.leaves, leaves)
    return net._eval_gate(values, fanins, mask)


def _node_cuts(
    net,
    node: int,
    fanins: Tuple[int, ...],
    cuts: Dict[int, List[Cut]],
    k: int,
    cut_limit: int,
) -> List[Cut]:
    """Cut list of one gate from its fanins' cut lists (shared by the batch
    enumerator and the incremental manager; both produce identical lists)."""
    child_lists: List[Sequence[Cut]] = []
    for f in fanins:
        fn = f >> 1
        child_lists.append(_CONST_CUTS if fn == CONST_NODE else cuts[fn])

    seen: Set[Tuple[int, ...]] = set()
    merged: List[Tuple[Tuple[int, ...], Sequence[Cut]]] = []
    if len(child_lists) == 2:
        first, second = child_lists
        for a in first:
            la = a.leaves
            if len(la) > k:
                continue
            sa = a.sign
            for b in second:
                if (sa | b.sign).bit_count() > k:
                    continue
                lb = b.leaves
                if la == lb:
                    leaves = la
                else:
                    union = {*la, *lb}
                    if len(union) > k:
                        continue
                    leaves = tuple(sorted(union))
                if leaves in seen:
                    continue
                seen.add(leaves)
                merged.append((leaves, (a, b)))
    elif len(child_lists) == 3:
        first, second, third = child_lists
        for a in first:
            la = a.leaves
            if len(la) > k:
                continue
            sa = a.sign
            for b in second:
                sab = sa | b.sign
                if sab.bit_count() > k:
                    continue
                ab = {*la, *b.leaves}
                if len(ab) > k:
                    continue
                for c in third:
                    if (sab | c.sign).bit_count() > k:
                        continue
                    union = ab.union(c.leaves)
                    if len(union) > k:
                        continue
                    leaves = tuple(sorted(union))
                    if leaves in seen:
                        continue
                    seen.add(leaves)
                    merged.append((leaves, (a, b, c)))
    else:  # pragma: no cover - no current network has another arity
        from itertools import product

        for combo in product(*child_lists):
            union = set()
            for cut in combo:
                union.update(cut.leaves)
            if len(union) > k:
                continue
            leaves = tuple(sorted(union))
            if leaves in seen:
                continue
            seen.add(leaves)
            merged.append((leaves, combo))

    merged.sort(key=lambda item: (len(item[0]), item[0]))
    kept: List[Cut] = []
    kept_filters: List[Tuple[int, Set[int]]] = []
    for leaves, combo in merged:
        sign = 0
        for leaf in leaves:
            sign |= 1 << (leaf & 63)
        leaf_set = set(leaves)
        # A cut dominated by a smaller kept cut adds nothing; the signature
        # subset test rejects most non-dominating pairs without set work.
        dominated = False
        for kept_sign, kept_set in kept_filters:
            if kept_sign | sign == sign and kept_set <= leaf_set:
                dominated = True
                break
        if dominated:
            continue
        kept.append(Cut(leaves, _merge_table(net, fanins, combo, leaves), sign))
        kept_filters.append((sign, leaf_set))
        if len(kept) >= cut_limit:
            break
    kept.append(_trivial_cut(node))
    return kept


def _validate_k(k: int) -> None:
    if not 1 <= k <= 4:
        raise ValueError(f"cut size must be between 1 and 4, got {k}")


def enumerate_cuts(net, k: int = 4, cut_limit: int = 8) -> Dict[int, List[Cut]]:
    """Enumerate up to ``cut_limit`` k-feasible cuts per PO-reachable node.

    Returns a mapping ``node -> [Cut, ...]``; every gate's list ends with
    its trivial cut, and primary inputs carry only theirs.  ``k`` must be
    at most 4 (the truth tables feed the 4-variable NPN machinery).

    This is the from-scratch reference path; long-lived networks that are
    swept repeatedly should go through :class:`CutManager` instead.
    """
    _validate_k(k)
    cuts: Dict[int, List[Cut]] = {}
    for pi in net.pi_nodes():
        cuts[pi] = [_trivial_cut(pi)]
    fanins_store = net._fanins
    for node in net._topology():
        cuts[node] = _node_cuts(net, node, fanins_store[node], cuts, k, cut_limit)
    return cuts


def _cut_lists_equal(old: List[Cut], new: List[Cut]) -> bool:
    if len(old) != len(new):
        return False
    for a, b in zip(old, new):
        if a.leaves != b.leaves or a.table != b.table:
            return False
    return True


class CutManager:
    """Incrementally maintained k-feasible cuts for one network.

    Attach one manager per ``(k, cut_limit)`` configuration with
    :meth:`for_network` (managers are cached on the network object so
    consecutive passes share them); :meth:`cuts` returns the same
    ``node -> [Cut, ...]`` mapping as :func:`enumerate_cuts` but
    recomputes only the cones whose fanin closure was touched since the
    previous sweep — see the module docstring for the invalidation
    protocol.  ``stats`` accumulates per-manager sweep counters
    (``nodes_recomputed`` / ``nodes_reused`` / ``full_rebuilds``) that the
    rewriting passes surface through the flow-engine metrics.

    ``notes`` is a scratch mapping for consumers (the rewrite engine
    parks per-parameterisation convergence tokens there); it is cleared
    whenever the network is wholesale-replaced.
    """

    def __init__(self, net, k: int = 4, cut_limit: int = 8) -> None:
        _validate_k(k)
        self.net = net
        self.k = k
        self.cut_limit = cut_limit
        self._cuts: Dict[int, List[Cut]] = {}
        self._dirty: Set[int] = set()
        self._valid = False
        self.notes: Dict[object, object] = {}
        self.stats: Dict[str, int] = {
            "sweeps": 0,
            "full_rebuilds": 0,
            "nodes_recomputed": 0,
            "nodes_reused": 0,
        }
        net.register_mutation_listener(self)

    @classmethod
    def for_network(cls, net, k: int = 4, cut_limit: int = 8) -> "CutManager":
        """The shared manager of ``net`` for this configuration (created on
        first use, then reused by every consumer with the same ``k`` and
        ``cut_limit`` — which is what makes interleaved rewrite rounds
        incremental)."""
        managers = net.__dict__.setdefault("_cut_managers", {})
        key = (k, cut_limit)
        manager = managers.get(key)
        if manager is None:
            manager = managers[key] = cls(net, k=k, cut_limit=cut_limit)
        return manager

    def detach(self) -> None:
        """Unregister from the network and drop the shared-cache slot."""
        self.net.unregister_mutation_listener(self)
        managers = self.net.__dict__.get("_cut_managers")
        if managers is not None and managers.get((self.k, self.cut_limit)) is self:
            del managers[(self.k, self.cut_limit)]

    @property
    def generation(self) -> int:
        """The network's mutation serial (bumps on every structural change)."""
        return self.net._mutation_serial

    # ------------------------------------------------------------------ #
    # Kernel mutation-listener protocol
    # ------------------------------------------------------------------ #
    def network_retargeted(self, node: int) -> None:
        self._dirty.add(node)

    def network_node_died(self, node: int) -> None:
        self._dirty.discard(node)
        self._cuts.pop(node, None)

    def network_reset(self) -> None:
        self._cuts.clear()
        self._dirty.clear()
        self._valid = False
        self.notes.clear()

    # ------------------------------------------------------------------ #
    # Sweeps
    # ------------------------------------------------------------------ #
    def cuts(self) -> Dict[int, List[Cut]]:
        """Bring the cache up to date and return it.

        The returned mapping is the live cache (no defensive copy): it
        covers at least every PO-reachable node and every entry equals the
        from-scratch enumeration of the current network.  Callers must not
        mutate it; entries of nodes that die later are dropped by the
        death notification.
        """
        net = self.net
        stats = self.stats
        stats["sweeps"] += 1
        cache = self._cuts
        if not self._valid:
            cache.clear()
            self._dirty.clear()
            for pi in net.pi_nodes():
                cache[pi] = [_trivial_cut(pi)]
            fanins_store = net._fanins
            order = net._topology()
            k, cut_limit = self.k, self.cut_limit
            for node in order:
                cache[node] = _node_cuts(net, node, fanins_store[node], cache, k, cut_limit)
            self._valid = True
            stats["full_rebuilds"] += 1
            stats["nodes_recomputed"] += len(order)
            return cache

        for pi in net.pi_nodes():
            if pi not in cache:
                cache[pi] = [_trivial_cut(pi)]
        dirty = self._dirty
        fanins_store = net._fanins
        fanouts = net._fanouts
        dead = net._dead
        k, cut_limit = self.k, self.cut_limit
        recomputed = reused = 0
        for node in net._topology():
            if node in dirty or node not in cache:
                old = cache.get(node)
                new = _node_cuts(net, node, fanins_store[node], cache, k, cut_limit)
                cache[node] = new
                dirty.discard(node)
                recomputed += 1
                if old is None or not _cut_lists_equal(old, new):
                    # Propagate: fanouts later in the order pick the mark
                    # up this sweep; unreachable fanouts keep it pending.
                    for parent in fanouts[node]:
                        if not dead[parent]:
                            dirty.add(parent)
            else:
                reused += 1
        stats["nodes_recomputed"] += recomputed
        stats["nodes_reused"] += reused
        return cache


def release_cut_state(net) -> None:
    """Detach every cut manager (and the rewrite probe memo) from ``net``.

    For callers that know the network will not be swept again — the
    rebuild-style AIG ``rewrite``/``refactor`` wrappers release the copy
    they hand back, so one-shot results do not pin a full per-node cut
    cache and a mutation listener for their remaining lifetime.
    """
    managers = net.__dict__.get("_cut_managers")
    if managers:
        for manager in list(managers.values()):
            manager.detach()
    net.__dict__.pop("_dry_probe_cache", None)


def cut_cone(net, root: int, leaves: Sequence[int]) -> List[int]:
    """Gate nodes between ``root`` (inclusive) and the cut ``leaves``.

    Topological order (fanins first).  Every path from ``root`` downward is
    stopped by a leaf — the defining property of a cut — so the walk never
    reaches a primary input that is not a leaf.
    """
    leaf_set = set(leaves)
    fanins_store = net._fanins
    order: List[int] = []
    visited = set(leaf_set)
    stack = [root]
    while stack:
        node = stack.pop()
        if node < 0:
            order.append(~node)
            continue
        if node in visited:
            continue
        visited.add(node)
        stack.append(~node)
        for f in fanins_store[node]:
            fn = f >> 1
            if fn not in visited and fanins_store[fn] is not None:
                stack.append(fn)
    return order


def mffc_nodes(net, root: int, leaves: Sequence[int]) -> Set[int]:
    """Maximum fanout-free cone of ``root`` with respect to a cut.

    The set of gate nodes (including ``root``) that would be reclaimed if
    every reference to ``root`` were redirected elsewhere: simulated
    dereferencing over the cone, stopping at the cut leaves.  This is
    exactly the cascade :meth:`LogicNetwork.substitute` performs, so
    ``len(mffc_nodes(...))`` is the size gain of deleting the cone.
    """
    leaf_set = set(leaves)
    fanins_store = net._fanins
    ref_store = net._ref
    refs: Dict[int, int] = {}
    mffc: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        mffc.add(node)
        for f in fanins_store[node]:
            fn = f >> 1
            if fn in leaf_set or fanins_store[fn] is None:
                continue
            remaining = refs.get(fn)
            if remaining is None:
                remaining = ref_store[fn]
            remaining -= 1
            refs[fn] = remaining
            if remaining == 0:
                stack.append(fn)
    return mffc
