"""k-feasible cut enumeration over any :class:`~repro.network.base.LogicNetwork`.

A *cut* of a node ``n`` is a set of nodes (the *leaves*) such that every
path from ``n`` to the primary inputs passes through a leaf; it is
*k-feasible* when it has at most ``k`` leaves.  Cuts are the unit of
Boolean (as opposed to algebraic) optimization: the function of ``n`` over
the cut leaves is a small truth table that can be NPN-canonicalized and
matched against a database of precomputed structures
(:mod:`repro.network.npn`) or against standard-cell functions
(:mod:`repro.mapping.mapper`).

The enumeration is the classic bottom-up *priority cuts* scheme: the cut
set of a gate is the cross product of its fanins' cut sets, truncated to
the ``cut_limit`` best cuts per node (fewest leaves first), always keeping
the trivial cut ``{n}`` so fanouts can build on ``n`` itself.  Dominated
cuts (supersets of another kept cut) are filtered.  Each cut carries the
truth table of the node over its leaves, computed incrementally during the
merge with the same bit-parallel idiom the kernel's simulator uses — the
gate semantics are supplied by the subclass through ``_eval_gate``, so the
same enumerator serves MIGs, AIGs and any future network type.

Truth tables are little-endian over the sorted leaf tuple: bit ``m`` of
``cut.table`` is the value of the node when leaf ``i`` carries bit ``i``
of the minterm index ``m``.  Leaves are *nodes* (regular polarity); edge
complementations inside the cone are folded into the table.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..core.signal import CONST_NODE

__all__ = ["Cut", "enumerate_cuts", "cut_cone", "mffc_nodes"]


class Cut:
    """One k-feasible cut: sorted leaf nodes plus the root's local function."""

    __slots__ = ("leaves", "table")

    def __init__(self, leaves: Tuple[int, ...], table: int) -> None:
        self.leaves = leaves
        self.table = table

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cut(leaves={self.leaves}, table=0x{self.table:x})"


#: Truth table of the trivial cut ``{n}``: the single leaf variable itself.
_TRIVIAL_TABLE = 0b10


def _expand_table(table: int, child_leaves: Tuple[int, ...], leaves: Tuple[int, ...]) -> int:
    """Re-express ``table`` (over ``child_leaves``) in the ``leaves`` space."""
    if child_leaves == leaves:
        return table
    positions = tuple(leaves.index(leaf) for leaf in child_leaves)
    out = 0
    for m in range(1 << len(leaves)):
        cm = 0
        for i, p in enumerate(positions):
            if (m >> p) & 1:
                cm |= 1 << i
        if (table >> cm) & 1:
            out |= 1 << m
    return out


def _merge_table(net, fanins: Tuple[int, ...], combo: Sequence[Cut], leaves: Tuple[int, ...]) -> int:
    """Truth table of one gate over ``leaves`` given its fanins' cut tables."""
    mask = (1 << (1 << len(leaves))) - 1
    values: Dict[int, int] = {CONST_NODE: 0}
    for f, cut in zip(fanins, combo):
        fn = f >> 1
        if fn != CONST_NODE:
            values[fn] = _expand_table(cut.table, cut.leaves, leaves)
    return net._eval_gate(values, fanins, mask)


def enumerate_cuts(net, k: int = 4, cut_limit: int = 8) -> Dict[int, List[Cut]]:
    """Enumerate up to ``cut_limit`` k-feasible cuts per PO-reachable node.

    Returns a mapping ``node -> [Cut, ...]``; every gate's list ends with
    its trivial cut, and primary inputs carry only theirs.  ``k`` must be
    at most 4 (the truth tables feed the 4-variable NPN machinery).
    """
    if not 1 <= k <= 4:
        raise ValueError(f"cut size must be between 1 and 4, got {k}")
    cuts: Dict[int, List[Cut]] = {}
    for pi in net.pi_nodes():
        cuts[pi] = [Cut((pi,), _TRIVIAL_TABLE)]
    const_cuts = [Cut((), 0)]

    fanins_store = net._fanins
    for node in net._topology():
        fanins = fanins_store[node]
        child_lists = []
        for f in fanins:
            fn = f >> 1
            child_lists.append(const_cuts if fn == CONST_NODE else cuts[fn])

        seen: Set[Tuple[int, ...]] = set()
        merged: List[Tuple[Tuple[int, ...], Sequence[Cut]]] = []
        for combo in _merge_combinations(child_lists, k):
            union: Set[int] = set()
            for cut in combo:
                union.update(cut.leaves)
            leaves = tuple(sorted(union))
            if leaves in seen:
                continue
            seen.add(leaves)
            merged.append((leaves, combo))

        merged.sort(key=lambda item: (len(item[0]), item[0]))
        kept: List[Cut] = []
        kept_sets: List[Set[int]] = []
        for leaves, combo in merged:
            leaf_set = set(leaves)
            # A cut dominated by a smaller kept cut adds nothing.
            if any(s <= leaf_set for s in kept_sets):
                continue
            kept.append(Cut(leaves, _merge_table(net, fanins, combo, leaves)))
            kept_sets.append(leaf_set)
            if len(kept) >= cut_limit:
                break
        kept.append(Cut((node,), _TRIVIAL_TABLE))
        cuts[node] = kept
    return cuts


def _merge_combinations(child_lists: List[List[Cut]], k: int) -> Iterable[Sequence[Cut]]:
    """Cross product of the fanin cut lists, pruned by the leaf bound.

    Written as explicit nested loops (two- and three-fanin fast paths) so a
    partial union exceeding ``k`` leaves skips the remaining inner loops.
    """
    if len(child_lists) == 2:
        first, second = child_lists
        for a in first:
            a_set = set(a.leaves)
            if len(a_set) > k:
                continue
            for b in second:
                union = a_set.union(b.leaves)
                if len(union) <= k:
                    yield (a, b)
    elif len(child_lists) == 3:
        first, second, third = child_lists
        for a in first:
            a_set = set(a.leaves)
            if len(a_set) > k:
                continue
            for b in second:
                ab = a_set.union(b.leaves)
                if len(ab) > k:
                    continue
                for c in third:
                    union = ab.union(c.leaves)
                    if len(union) <= k:
                        yield (a, b, c)
    else:  # pragma: no cover - no current network has another arity
        from itertools import product

        for combo in product(*child_lists):
            union: Set[int] = set()
            for cut in combo:
                union.update(cut.leaves)
            if len(union) <= k:
                yield combo


def cut_cone(net, root: int, leaves: Sequence[int]) -> List[int]:
    """Gate nodes between ``root`` (inclusive) and the cut ``leaves``.

    Topological order (fanins first).  Every path from ``root`` downward is
    stopped by a leaf — the defining property of a cut — so the walk never
    reaches a primary input that is not a leaf.
    """
    leaf_set = set(leaves)
    fanins_store = net._fanins
    order: List[int] = []
    visited = set(leaf_set)
    stack = [root]
    while stack:
        node = stack.pop()
        if node < 0:
            order.append(~node)
            continue
        if node in visited:
            continue
        visited.add(node)
        stack.append(~node)
        for f in fanins_store[node]:
            fn = f >> 1
            if fn not in visited and fanins_store[fn] is not None:
                stack.append(fn)
    return order


def mffc_nodes(net, root: int, leaves: Sequence[int]) -> Set[int]:
    """Maximum fanout-free cone of ``root`` with respect to a cut.

    The set of gate nodes (including ``root``) that would be reclaimed if
    every reference to ``root`` were redirected elsewhere: simulated
    dereferencing over the cone, stopping at the cut leaves.  This is
    exactly the cascade :meth:`LogicNetwork.substitute` performs, so
    ``len(mffc_nodes(...))`` is the size gain of deleting the cone.
    """
    leaf_set = set(leaves)
    fanins_store = net._fanins
    refs: Dict[int, int] = {}
    mffc: Set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        mffc.add(node)
        for f in fanins_store[node]:
            fn = f >> 1
            if fn in leaf_set or fanins_store[fn] is None:
                continue
            remaining = refs.get(fn, net._ref[fn]) - 1
            refs[fn] = remaining
            if remaining == 0:
                stack.append(fn)
    return mffc
