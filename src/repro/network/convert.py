"""Conversions between network types (MIG ↔ AIG, BDD → MIG).

Theorem 3.1 of the paper states MIGs ⊃ AOIGs ⊃ AIGs: converting an AIG to
a MIG is a one-to-one node translation (``AND(a, b) = M(a, b, 0)``), while
converting a MIG back to an AIG expands every majority node into its
AND/OR decomposition ``M(a, b, c) = ab + c(a + b)``.

These conversions are what the experimental flows use to give every
optimizer the same starting function: benchmarks are generated once and
translated losslessly into each representation.
"""

from __future__ import annotations

from typing import Dict

from ..aig.aig import Aig
from ..core.mig import Mig
from ..core.signal import CONST_FALSE, CONST_NODE, is_complemented, negate_if, node_of

__all__ = ["aig_to_mig", "mig_to_aig"]


def aig_to_mig(aig: Aig) -> Mig:
    """Translate an AIG into a MIG node-for-node (no optimization)."""
    mig = Mig()
    mig.name = aig.name
    mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        mapping[node] = mig.add_pi(name)
    for node in aig.topological_order():
        a, b = aig.fanins(node)
        mapping[node] = mig.and_(
            negate_if(mapping[node_of(a)], is_complemented(a)),
            negate_if(mapping[node_of(b)], is_complemented(b)),
        )
    for po, name in zip(aig.po_signals(), aig.po_names()):
        mig.add_po(negate_if(mapping[node_of(po)], is_complemented(po)), name)
    return mig


def mig_to_aig(mig: Mig) -> Aig:
    """Expand a MIG into an AIG (``M(a,b,c) = ab + c(a + b)``)."""
    aig = Aig()
    aig.name = mig.name
    mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
    for node, name in zip(mig.pi_nodes(), mig.pi_names()):
        mapping[node] = aig.add_pi(name)
    for node in mig.topological_order():
        a, b, c = mig.fanins(node)
        sa = negate_if(mapping[node_of(a)], is_complemented(a))
        sb = negate_if(mapping[node_of(b)], is_complemented(b))
        sc = negate_if(mapping[node_of(c)], is_complemented(c))
        mapping[node] = aig.maj_(sa, sb, sc)
    for po, name in zip(mig.po_signals(), mig.po_names()):
        aig.add_po(negate_if(mapping[node_of(po)], is_complemented(po)), name)
    return aig
