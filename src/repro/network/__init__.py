"""Shared logic-network kernel and conversions between representations.

:class:`~repro.network.base.LogicNetwork` is the substrate both
:class:`repro.core.mig.Mig` and :class:`repro.aig.aig.Aig` are built on;
:mod:`repro.network.convert` translates between the two (and is imported
lazily here because it depends on both concrete classes).
"""

from .base import LogicNetwork

__all__ = ["LogicNetwork", "aig_to_mig", "mig_to_aig"]


def __getattr__(name):
    # Lazy re-exports: ``convert`` imports Mig and Aig, which themselves
    # import this package for the kernel — resolving the conversion helpers
    # on first access keeps the import graph acyclic.
    if name in ("aig_to_mig", "mig_to_aig"):
        from . import convert

        return getattr(convert, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
