"""Shared logic-network utilities (conversions between representations)."""

from .convert import aig_to_mig, mig_to_aig

__all__ = ["aig_to_mig", "mig_to_aig"]
