"""Shared logic-network kernel and conversions between representations.

:class:`~repro.network.base.LogicNetwork` is the substrate both
:class:`repro.core.mig.Mig` and :class:`repro.aig.aig.Aig` are built on;
:mod:`repro.network.cuts` enumerates k-feasible cuts with truth tables
over any such network, :mod:`repro.network.npn` canonicalizes the cut
functions and stores the precomputed optimal structures, and
:mod:`repro.network.rewrite` runs DAG-aware Boolean rewriting on top of
both; :mod:`repro.network.convert` translates between the two concrete
types (and is imported lazily here because it depends on both).
"""

from .base import LogicNetwork
from .cuts import Cut, CutManager, cut_cone, enumerate_cuts, mffc_nodes
from .npn import (
    NpnTransform,
    apply_transform,
    extend_table,
    npn_canonical,
    npn_representatives,
)
from .rewrite import cut_rewrite

__all__ = [
    "LogicNetwork",
    "Cut",
    "CutManager",
    "cut_cone",
    "enumerate_cuts",
    "mffc_nodes",
    "NpnTransform",
    "apply_transform",
    "extend_table",
    "npn_canonical",
    "npn_representatives",
    "cut_rewrite",
    "aig_to_mig",
    "mig_to_aig",
]


def __getattr__(name):
    # Lazy re-exports: ``convert`` imports Mig and Aig, which themselves
    # import this package for the kernel — resolving the conversion helpers
    # on first access keeps the import graph acyclic.
    if name in ("aig_to_mig", "mig_to_aig"):
        from . import convert

        return getattr(convert, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
