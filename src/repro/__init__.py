"""repro — a Python reproduction of the Majority-Inverter Graph (MIG) paper.

Public API highlights
---------------------
* :class:`repro.core.Mig` — the MIG data structure (Section III-A).
* :mod:`repro.core.algebra` — the MIG Boolean algebra Ω / Ψ (Section III-B).
* :func:`repro.core.optimize_size` / :func:`repro.core.optimize_depth` /
  :func:`repro.core.optimize_activity` — Algorithms 1, 2 and the activity
  optimization of Section IV.
* :mod:`repro.aig`, :mod:`repro.bdd` — the AIG (ABC-style) and decomposed-BDD
  (BDS-style) baselines.
* :mod:`repro.mapping` — the 22-nm-class standard-cell library and mapper.
* :mod:`repro.flows` — the Table I / Fig. 3 / Fig. 4 experiment flows.
* :mod:`repro.bench_circuits` — the synthetic MCNC-like benchmark suite.
"""

from .core import (
    Mig,
    optimize_activity,
    optimize_depth,
    optimize_size,
)
from .aig import Aig, resyn2
from .verify import check_equivalence

__version__ = "1.0.0"

__all__ = [
    "Mig",
    "Aig",
    "optimize_size",
    "optimize_depth",
    "optimize_activity",
    "resyn2",
    "check_equivalence",
    "__version__",
]
