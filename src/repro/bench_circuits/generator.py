"""Scalable benchmark generator: parametric families up to 10^6 nodes.

The Table I suite (:mod:`repro.bench_circuits.suite`) tops out in the
tens of thousands of gates — the right scale for whole-flow experiments,
two orders of magnitude short of the ROADMAP's million-gate headline.
This module grows three parametric families to the 10^5–10^6 node
range, built from the same builder-agnostic components (so every family
instantiates as a MIG or an AIG) and **seeded deterministic**: the same
name always produces the same structure, which is what lets the
partition-parallel benchmarks assert bit-identical stitched results
across worker counts on top of them.

* ``multiplier`` — a ``width x width`` unsigned array multiplier; gate
  count grows quadratically (~7.7k gates at width 32), dominated by
  deep carry chains — the adversarial shape for windowing because cones
  are long and narrow.
* ``adder_tree`` — a balanced reduction tree summing ``operands``
  ``width``-bit inputs; linear in ``operands``, log-depth, with wide
  middle levels — the friendly shape for level-banded windows.
* ``random_logic`` — PLA-style random blocks over narrow overlapping
  input cones; linear in ``blocks``, shallow, embarrassingly windowable
  — the scaling workhorse of the million-gate lanes.

Named presets live in :data:`SCALABLE_BENCHMARKS` and resolve through
:func:`repro.bench_circuits.build_benchmark` alongside the Table I
names (Table I wins on a name clash; there is none today).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Type

from ..core.mig import Mig
from .components import array_multiplier, random_sop, ripple_adder

__all__ = [
    "ScalableSpec",
    "SCALABLE_BENCHMARKS",
    "scalable_names",
    "build_scalable",
    "gen_multiplier",
    "gen_adder_tree",
    "gen_random_logic",
]


def gen_multiplier(net, width: int) -> None:
    """``width x width`` unsigned array multiplier (2*width outputs)."""
    a = [net.add_pi(f"a{i}") for i in range(width)]
    b = [net.add_pi(f"b{i}") for i in range(width)]
    for index, signal in enumerate(array_multiplier(net, a, b)):
        net.add_po(signal, f"p{index}")


def gen_adder_tree(net, width: int, operands: int) -> None:
    """Balanced reduction tree summing ``operands`` ``width``-bit inputs."""
    if operands < 2:
        raise ValueError(f"adder_tree needs >= 2 operands, got {operands}")
    zero = net.constant(False)
    current: List[List[int]] = [
        [net.add_pi(f"x{j}_{i}") for i in range(width)] for j in range(operands)
    ]
    while len(current) > 1:
        reduced: List[List[int]] = []
        for i in range(0, len(current) - 1, 2):
            sums, carry = ripple_adder(net, current[i], current[i + 1], zero)
            reduced.append(sums + [carry])
        if len(current) % 2:
            reduced.append(current[-1])
        # Equalize operand widths (a carry-out widens each level) so the
        # next level's ripple adders see matching buses.
        top = max(len(bus) for bus in reduced)
        current = [bus + [zero] * (top - len(bus)) for bus in reduced]
    for index, signal in enumerate(current[0]):
        net.add_po(signal, f"s{index}")


def gen_random_logic(
    net,
    blocks: int,
    num_pis: int = 256,
    block_inputs: int = 16,
    outputs_per_block: int = 2,
    num_terms: int = 12,
    literals_per_term: int = 5,
    seed: int = 7,
) -> None:
    """PLA-style random blocks over narrow, overlapping input cones."""
    pis = [net.add_pi(f"x{i}") for i in range(num_pis)]
    rng = random.Random(seed)
    stride = max(1, num_pis - block_inputs)
    outputs: List[int] = []
    for block in range(blocks):
        start = (block * 13) % stride
        cone = pis[start : start + block_inputs]
        outputs.extend(
            random_sop(
                net,
                cone,
                num_outputs=outputs_per_block,
                num_terms=num_terms,
                literals_per_term=literals_per_term,
                seed=rng.randint(0, 10**6),
            )
        )
    for index, signal in enumerate(outputs):
        net.add_po(signal, f"y{index}")
    # random_sop leaves ~40% of its product terms unreferenced; sweep them
    # so the preset's gate count states the *live* network size the perf
    # lanes actually optimize.
    net.cleanup()


@dataclass(frozen=True)
class ScalableSpec:
    """Descriptor of one named scalable benchmark preset.

    ``approx_gates`` is the measured MIG gate count (suite regression
    tests hold each preset within ±20% of it, so a component change that
    silently shifts the scale of the perf lanes fails loudly).
    """

    name: str
    family: str
    approx_gates: int
    description: str
    builder: Callable
    params: Dict[str, int] = field(default_factory=dict)


def _spec(name, family, approx, description, builder, **params) -> ScalableSpec:
    return ScalableSpec(name, family, approx, description, builder, params)


SCALABLE_BENCHMARKS: Dict[str, ScalableSpec] = {
    spec.name: spec
    for spec in [
        _spec(
            "mult_48", "multiplier", 17_904,
            "48x48 array multiplier (smoke scale)", gen_multiplier, width=48,
        ),
        _spec(
            "mult_128", "multiplier", 129_664,
            "128x128 array multiplier (10^5 lane)", gen_multiplier, width=128,
        ),
        _spec(
            "mult_360", "multiplier", 1_026_000,
            "360x360 array multiplier (10^6 lane)", gen_multiplier, width=360,
        ),
        _spec(
            "adder_tree_64", "adder_tree", 14_259,
            "64 x 32-bit reduction tree (smoke scale)",
            gen_adder_tree, width=32, operands=64,
        ),
        _spec(
            "adder_tree_512", "adder_tree", 115_934,
            "512 x 32-bit reduction tree (10^5 lane)",
            gen_adder_tree, width=32, operands=512,
        ),
        _spec(
            "adder_tree_4096", "adder_tree", 930_000,
            "4096 x 32-bit reduction tree (10^6 lane)",
            gen_adder_tree, width=32, operands=4096,
        ),
        _spec(
            "rand_400", "random_logic", 12_659,
            "400 random PLA blocks (smoke scale)", gen_random_logic, blocks=400,
        ),
        _spec(
            "rand_3500", "random_logic", 100_196,
            "3500 random PLA blocks (10^5 lane)", gen_random_logic, blocks=3500,
        ),
        _spec(
            "rand_42000", "random_logic", 1_034_207,
            "42000 random PLA blocks (10^6 lane)", gen_random_logic, blocks=42000,
        ),
    ]
}


def scalable_names() -> List[str]:
    """Preset names ordered smallest-first within each family."""
    return list(SCALABLE_BENCHMARKS)


def build_scalable(name: str, network_cls: Type = Mig):
    """Instantiate scalable preset ``name`` as a ``network_cls`` network."""
    try:
        spec = SCALABLE_BENCHMARKS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown scalable benchmark {name!r}; "
            f"available: {', '.join(SCALABLE_BENCHMARKS)}"
        ) from exc
    net = network_cls()
    net.name = spec.name
    spec.builder(net, **spec.params)
    return net
