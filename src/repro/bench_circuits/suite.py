"""The synthetic MCNC-like benchmark suite used by the experiment harness.

The paper evaluates on the largest circuits of the MCNC suite.  That suite
is not redistributable here, so (as documented in DESIGN.md) each benchmark
is replaced by a deterministic generator with the *same name*, the *same
primary input / output counts* and a functionally representative structure
(error-correcting logic, array multiplier, adders, ALUs, counters, key
mixing, PLA-style random logic, wide control logic).  This preserves the
comparative shape of Table I: the flows all optimize exactly the same
functions, only the provenance of those functions differs from the paper.

Every generator takes the *network class* to instantiate (``Mig`` by
default, ``Aig`` for the baseline flow) so every flow starts from the same
Boolean functions built the same way.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Type

from ..core.mig import Mig
from .components import (
    alu_slice,
    array_multiplier,
    carry_lookahead_adder,
    equality_comparator,
    hamming_syndrome,
    min_max_unit,
    parity_tree,
    random_sop,
    ripple_adder,
    substitution_box,
)

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "benchmark_names",
    "build_benchmark",
    "build_compression_circuit",
]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Descriptor of one synthetic benchmark."""

    name: str
    num_inputs: int
    num_outputs: int
    description: str
    builder: Callable


def _add_pis(net, count: int) -> List[int]:
    return [net.add_pi(f"x{i}") for i in range(count)]


def _add_pos(net, signals: Sequence[int], limit: int) -> None:
    for index, sig in enumerate(signals[:limit]):
        net.add_po(sig, f"y{index}")
    # Pad with parity of all emitted signals when a builder produces fewer
    # signals than the spec requires (keeps I/O counts exact).
    index = min(limit, len(signals))
    while index < limit:
        net.add_po(parity_tree(net, signals[: index + 1]), f"y{index}")
        index += 1


# --------------------------------------------------------------------- #
# Individual benchmark builders
# --------------------------------------------------------------------- #
def _build_c1355(net) -> None:
    """C1355: 32-bit single-error-correcting network (41 in / 32 out)."""
    pis = _add_pis(net, 41)
    data, check = pis[:32], pis[32:41]
    rng = random.Random(1355)
    taps = [rng.sample(range(32), 8) for _ in range(9)]
    syndrome = hamming_syndrome(net, data, taps)
    syndrome = [net.xor_(s, c) for s, c in zip(syndrome, check)]
    outputs = []
    for i in range(32):
        # Correct bit i when the syndrome matches its (randomised) signature.
        signature = [(i >> (b % 5)) & 1 for b in range(9)]
        match = None
        for s_bit, sig in zip(syndrome, signature):
            literal = s_bit if sig else net.not_(s_bit)
            match = literal if match is None else net.and_(match, literal)
        outputs.append(net.xor_(data[i], match))
    _add_pos(net, outputs, 32)


def _build_c1908(net) -> None:
    """C1908: 16-bit ECC/CRC-style network (33 in / 25 out)."""
    pis = _add_pis(net, 33)
    data, check = pis[:16], pis[16:33]
    rng = random.Random(1908)
    taps = [rng.sample(range(16), 6) for _ in range(17)]
    syndrome = hamming_syndrome(net, data, taps)
    syndrome = [net.xor_(s, c) for s, c in zip(syndrome, check)]
    corrected = [net.xor_(d, net.and_(syndrome[i % 17], syndrome[(i + 3) % 17])) for i, d in enumerate(data)]
    extras = [parity_tree(net, syndrome[i : i + 5]) for i in range(9)]
    _add_pos(net, corrected + extras, 25)


def _build_c6288(net) -> None:
    """C6288: 16×16 array multiplier (32 in / 32 out)."""
    pis = _add_pis(net, 32)
    product = array_multiplier(net, pis[:16], pis[16:32])
    _add_pos(net, product, 32)


def _build_bigkey(net) -> None:
    """bigkey: wide key-mixing logic (487 in / 421 out)."""
    pis = _add_pis(net, 487)
    key, text = pis[:64], pis[64:487]
    outputs: List[int] = []
    rng = random.Random(487)
    for block_start in range(0, 420, 4):
        block = [text[(block_start + i) % len(text)] for i in range(4)]
        key_slice = [key[(block_start // 4 + i) % 64] for i in range(4)]
        mixed = [net.xor_(t, k) for t, k in zip(block, key_slice)]
        outputs.extend(substitution_box(net, mixed, seed=rng.randint(0, 10**6)))
    outputs.append(parity_tree(net, key))
    _add_pos(net, outputs, 421)


def _build_my_adder(net) -> None:
    """my_adder: 16-bit ripple-carry adder with carry-in (33 in / 17 out)."""
    pis = _add_pis(net, 33)
    sums, carry = ripple_adder(net, pis[:16], pis[16:32], pis[32])
    _add_pos(net, sums + [carry], 17)


def _build_cla(net) -> None:
    """cla: 64-bit carry-lookahead adder (129 in / 65 out)."""
    pis = _add_pis(net, 129)
    sums, carry = carry_lookahead_adder(net, pis[:64], pis[64:128], pis[128], block=4)
    _add_pos(net, sums + [carry], 65)


def _build_dalu(net) -> None:
    """dalu: dedicated 16-bit ALU with status flags (75 in / 16 out)."""
    pis = _add_pis(net, 75)
    a, b, op = pis[:16], pis[16:32], pis[32:34]
    mask = pis[34:50]
    control = pis[50:75]
    alu_out = alu_slice(net, a, b, op)
    masked = [net.and_(o, m) for o, m in zip(alu_out, mask)]
    folded = [net.xor_(m, control[i % len(control)]) for i, m in enumerate(masked)]
    _add_pos(net, folded, 16)


def _build_b9(net) -> None:
    """b9: small random control logic (41 in / 21 out)."""
    pis = _add_pis(net, 41)
    outputs = random_sop(net, pis, num_outputs=21, num_terms=30, literals_per_term=4, seed=9)
    _add_pos(net, outputs, 21)


def _build_count(net) -> None:
    """count: 16-bit counter next-state logic with load/enable (35 in / 16 out)."""
    pis = _add_pis(net, 35)
    state, load_value = pis[:16], pis[16:32]
    load, enable, clear = pis[32], pis[33], pis[34]
    one = net.constant(True)
    incremented, _ = ripple_adder(net, state, [net.constant(False)] * 16, one)
    outputs = []
    for bit, inc, ld in zip(state, incremented, load_value):
        counted = net.mux_(enable, inc, bit)
        loaded = net.mux_(load, ld, counted)
        outputs.append(net.and_(net.not_(clear), loaded))
    _add_pos(net, outputs, 16)


def _build_alu4(net) -> None:
    """alu4: 4-bit ALU slice from the PLA family (14 in / 8 out)."""
    pis = _add_pis(net, 14)
    a, b, op = pis[:4], pis[4:8], pis[8:10]
    carries = pis[10:14]
    alu_out = alu_slice(net, a, b, op)
    flags = [
        equality_comparator(net, a, b),
        parity_tree(net, alu_out),
        net.and_(carries[0], net.or_(carries[1], carries[2])),
        net.xor_(carries[3], alu_out[-1]),
    ]
    _add_pos(net, alu_out + flags, 8)


def _build_clma(net) -> None:
    """clma: wide control/datapath logic (416 in / 115 out)."""
    pis = _add_pis(net, 416)
    outputs: List[int] = []
    rng = random.Random(416)
    # Several medium blocks over (overlapping) input slices keep the cones
    # narrow enough for every baseline flow while producing a large network.
    for block in range(23):
        start = (block * 17) % 380
        slice_inputs = pis[start : start + 24]
        outputs.extend(
            random_sop(net, slice_inputs, num_outputs=4, num_terms=18, literals_per_term=5, seed=rng.randint(0, 10**6))
        )
    sums, carry = ripple_adder(net, pis[380:396], pis[396:412], pis[412])
    outputs.extend(sums[:22])
    outputs.append(carry)
    _add_pos(net, outputs, 115)


def _build_mm30a(net) -> None:
    """mm30a: 30-stage min/max sorting network slice (124 in / 120 out)."""
    pis = _add_pis(net, 124)
    width = 4
    outputs: List[int] = []
    previous = pis[:width]
    for stage in range(30):
        start = width + stage * width
        current = pis[start : start + width]
        if len(current) < width:
            current = (current + pis[:width])[:width]
        minimum, maximum = min_max_unit(net, previous, current)
        outputs.extend(minimum)
        previous = maximum
    _add_pos(net, outputs, 120)


def _build_s38417(net) -> None:
    """s38417: combinational core of a large sequential design (1494/1571)."""
    pis = _add_pis(net, 1494)
    outputs: List[int] = []
    rng = random.Random(38417)
    # Wide collection of small next-state functions over narrow input cones.
    for index in range(1565):
        start = (index * 7) % 1470
        cone = pis[start : start + 8]
        a = net.xor_(cone[0], cone[1])
        b = net.and_(cone[2], net.not_(cone[3]))
        c = net.or_(cone[4], cone[5])
        d = net.mux_(cone[6], a, b)
        outputs.append(net.xor_(d, net.and_(c, cone[7])))
    outputs.append(parity_tree(net, pis[:32]))
    outputs.extend(random_sop(net, pis[100:120], num_outputs=5, num_terms=12, literals_per_term=4, seed=rng.randint(0, 10**6)))
    _add_pos(net, outputs, 1571)


def _build_misex3(net) -> None:
    """misex3: PLA-style random two-level logic (14 in / 14 out)."""
    pis = _add_pis(net, 14)
    outputs = random_sop(net, pis, num_outputs=14, num_terms=40, literals_per_term=6, seed=3)
    _add_pos(net, outputs, 14)


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec("C1355", 41, 32, "32-bit error-correcting network", _build_c1355),
        BenchmarkSpec("C1908", 33, 25, "16-bit ECC/CRC network", _build_c1908),
        BenchmarkSpec("C6288", 32, 32, "16x16 array multiplier", _build_c6288),
        BenchmarkSpec("bigkey", 487, 421, "wide key-mixing logic", _build_bigkey),
        BenchmarkSpec("my_adder", 33, 17, "16-bit ripple-carry adder", _build_my_adder),
        BenchmarkSpec("cla", 129, 65, "64-bit carry-lookahead adder", _build_cla),
        BenchmarkSpec("dalu", 75, 16, "dedicated ALU with flags", _build_dalu),
        BenchmarkSpec("b9", 41, 21, "small random control logic", _build_b9),
        BenchmarkSpec("count", 35, 16, "16-bit counter next-state logic", _build_count),
        BenchmarkSpec("alu4", 14, 8, "4-bit ALU slice", _build_alu4),
        BenchmarkSpec("clma", 416, 115, "wide control/datapath logic", _build_clma),
        BenchmarkSpec("mm30a", 124, 120, "min/max sorting network slice", _build_mm30a),
        BenchmarkSpec("s38417", 1494, 1571, "combinational core, many small cones", _build_s38417),
        BenchmarkSpec("misex3", 14, 14, "PLA-style random logic", _build_misex3),
    ]
}


def benchmark_names() -> List[str]:
    """Benchmark names in the order of Table I."""
    return list(BENCHMARKS.keys())


def build_benchmark(name: str, network_cls: Type = Mig):
    """Instantiate benchmark ``name`` as a ``network_cls`` network.

    Resolves Table I names first, then the scalable presets of
    :mod:`repro.bench_circuits.generator` (``benchmark_names()`` stays
    Table-I-only so corpus sweeps keep their scale).
    """
    try:
        spec = BENCHMARKS[name]
    except KeyError as exc:
        from .generator import SCALABLE_BENCHMARKS, build_scalable

        if name in SCALABLE_BENCHMARKS:
            return build_scalable(name, network_cls)
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(BENCHMARKS)}, {', '.join(SCALABLE_BENCHMARKS)}"
        ) from exc
    net = network_cls()
    net.name = spec.name
    spec.builder(net)
    if net.num_pis != spec.num_inputs or net.num_pos != spec.num_outputs:
        raise AssertionError(
            f"benchmark {name}: generated {net.num_pis}/{net.num_pos} I/O, "
            f"expected {spec.num_inputs}/{spec.num_outputs}"
        )
    return net


def build_compression_circuit(num_blocks: int = 512, network_cls: Type = Mig):
    """The "large logic compression circuit" of Section V-A.2 (scaled down).

    A dictionary-coder-like structure: per block, match detection against a
    small dictionary plus an XOR-folding stage.  ``num_blocks`` scales the
    size; the default produces tens of thousands of nodes, the spirit of the
    paper's 0.3M-node instance at a size tractable for a Python flow.
    """
    net = network_cls()
    net.name = f"compression_{num_blocks}"
    dictionary = [net.add_pi(f"d{i}") for i in range(32)]
    stream = [net.add_pi(f"s{i}") for i in range(256)]
    outputs: List[int] = []
    for block in range(num_blocks):
        offset = (block * 11) % 248
        window = stream[offset : offset + 8]
        dict_slice = dictionary[(block * 5) % 24 : (block * 5) % 24 + 8]
        match = equality_comparator(net, window, dict_slice)
        folded = parity_tree(net, [net.xor_(w, d) for w, d in zip(window, dict_slice)])
        outputs.append(net.mux_(match, folded, window[block % 8]))
    for index, sig in enumerate(outputs):
        net.add_po(sig, f"y{index}")
    return net
