"""Synthetic MCNC-like benchmark circuit generators (see DESIGN.md).

:mod:`~repro.bench_circuits.suite` holds the Table I suite;
:mod:`~repro.bench_circuits.generator` holds the scalable 10^5–10^6 node
presets used by the partition-parallel benchmark lanes.  Both resolve
through :func:`build_benchmark`.
"""

from .generator import (
    SCALABLE_BENCHMARKS,
    ScalableSpec,
    build_scalable,
    scalable_names,
)
from .suite import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    build_compression_circuit,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "SCALABLE_BENCHMARKS",
    "ScalableSpec",
    "benchmark_names",
    "build_benchmark",
    "build_compression_circuit",
    "build_scalable",
    "scalable_names",
]
