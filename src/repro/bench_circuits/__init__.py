"""Synthetic MCNC-like benchmark circuit generators (see DESIGN.md)."""

from .suite import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    build_benchmark,
    build_compression_circuit,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_names",
    "build_benchmark",
    "build_compression_circuit",
]
