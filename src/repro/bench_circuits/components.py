"""Reusable combinational building blocks for the synthetic benchmark suite.

All generators in :mod:`repro.bench_circuits` are *builder-agnostic*: they
drive any network object exposing the small construction protocol shared by
:class:`repro.core.mig.Mig` and :class:`repro.aig.aig.Aig`
(``add_pi`` / ``add_po`` / ``and_`` / ``or_`` / ``xor_`` / ``not_`` /
``mux_`` / ``constant``), so the same functional benchmark can be emitted
as a MIG or as an AIG without going through a conversion.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

__all__ = [
    "ripple_adder",
    "carry_lookahead_adder",
    "array_multiplier",
    "alu_slice",
    "equality_comparator",
    "less_than_comparator",
    "min_max_unit",
    "parity_tree",
    "hamming_syndrome",
    "random_sop",
    "substitution_box",
]


def ripple_adder(net, a: Sequence[int], b: Sequence[int], cin: int) -> Tuple[List[int], int]:
    """Ripple-carry adder; returns (sum bits LSB-first, carry out)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    sums: List[int] = []
    carry = cin
    for ai, bi in zip(a, b):
        axb = net.xor_(ai, bi)
        sums.append(net.xor_(axb, carry))
        carry = net.or_(net.and_(ai, bi), net.and_(axb, carry))
    return sums, carry


def carry_lookahead_adder(
    net, a: Sequence[int], b: Sequence[int], cin: int, block: int = 4
) -> Tuple[List[int], int]:
    """Block carry-lookahead adder (generate/propagate per block)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    sums: List[int] = []
    carry = cin
    for start in range(0, len(a), block):
        block_a = a[start : start + block]
        block_b = b[start : start + block]
        generates = [net.and_(x, y) for x, y in zip(block_a, block_b)]
        propagates = [net.xor_(x, y) for x, y in zip(block_a, block_b)]
        carries = [carry]
        for i in range(len(block_a)):
            # c_{i+1} = g_i + p_i·g_{i-1} + ... + p_i···p_0·c_0 (flattened).
            term = generates[i]
            prefix = propagates[i]
            for j in range(i - 1, -1, -1):
                term = net.or_(term, net.and_(prefix, generates[j]))
                prefix = net.and_(prefix, propagates[j])
            term = net.or_(term, net.and_(prefix, carries[0]))
            carries.append(term)
        for i in range(len(block_a)):
            sums.append(net.xor_(propagates[i], carries[i]))
        carry = carries[-1]
    return sums, carry


def array_multiplier(net, a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Unsigned array multiplier; returns ``len(a) + len(b)`` product bits."""
    width = len(a) + len(b)
    zero = net.constant(False)
    acc: List[int] = [zero] * width
    for j, bj in enumerate(b):
        partial = [zero] * width
        for i, ai in enumerate(a):
            partial[i + j] = net.and_(ai, bj)
        carry = zero
        result: List[int] = []
        for k in range(width):
            axb = net.xor_(acc[k], partial[k])
            result.append(net.xor_(axb, carry))
            carry = net.or_(net.and_(acc[k], partial[k]), net.and_(axb, carry))
        acc = result
    return acc


def alu_slice(net, a: Sequence[int], b: Sequence[int], op: Sequence[int]) -> List[int]:
    """A small ALU: op selects among ADD, AND, OR, XOR (2 op bits)."""
    add_bits, _ = ripple_adder(net, a, b, net.constant(False))
    and_bits = [net.and_(x, y) for x, y in zip(a, b)]
    or_bits = [net.or_(x, y) for x, y in zip(a, b)]
    xor_bits = [net.xor_(x, y) for x, y in zip(a, b)]
    out: List[int] = []
    for add_b, and_b, or_b, xor_b in zip(add_bits, and_bits, or_bits, xor_bits):
        low = net.mux_(op[0], and_b, add_b)
        high = net.mux_(op[0], xor_b, or_b)
        out.append(net.mux_(op[1], high, low))
    return out


def equality_comparator(net, a: Sequence[int], b: Sequence[int]) -> int:
    """Single-output equality of two buses."""
    bits = [net.xnor_(x, y) for x, y in zip(a, b)]
    result = bits[0]
    for bit in bits[1:]:
        result = net.and_(result, bit)
    return result


def less_than_comparator(net, a: Sequence[int], b: Sequence[int]) -> int:
    """Unsigned ``a < b`` (MSB last in the sequences)."""
    lt = net.constant(False)
    eq = net.constant(True)
    for x, y in zip(reversed(list(a)), reversed(list(b))):
        bit_lt = net.and_(net.not_(x), y)
        lt = net.or_(lt, net.and_(eq, bit_lt))
        eq = net.and_(eq, net.not_(net.xor_(x, y)))
    return lt


def min_max_unit(net, a: Sequence[int], b: Sequence[int]) -> Tuple[List[int], List[int]]:
    """Return (min, max) of two buses, bit-selected by a comparator."""
    a_lt_b = less_than_comparator(net, a, b)
    minimum = [net.mux_(a_lt_b, x, y) for x, y in zip(a, b)]
    maximum = [net.mux_(a_lt_b, y, x) for x, y in zip(a, b)]
    return minimum, maximum


def parity_tree(net, bits: Sequence[int]) -> int:
    """Balanced XOR tree over ``bits``."""
    current = list(bits)
    if not current:
        return net.constant(False)
    while len(current) > 1:
        nxt = []
        for i in range(0, len(current) - 1, 2):
            nxt.append(net.xor_(current[i], current[i + 1]))
        if len(current) % 2:
            nxt.append(current[-1])
        current = nxt
    return current[0]


def hamming_syndrome(net, data: Sequence[int], taps: Sequence[Sequence[int]]) -> List[int]:
    """Parity-check syndrome bits: each output XORs a tap subset of the data."""
    return [parity_tree(net, [data[i] for i in tap]) for tap in taps]


def random_sop(
    net,
    inputs: Sequence[int],
    num_outputs: int,
    num_terms: int,
    literals_per_term: int,
    seed: int,
) -> List[int]:
    """PLA-style random logic: each output is an OR of random product terms."""
    rng = random.Random(seed)
    terms: List[int] = []
    for _ in range(num_terms):
        chosen = rng.sample(range(len(inputs)), min(literals_per_term, len(inputs)))
        product = None
        for index in chosen:
            literal = inputs[index]
            if rng.random() < 0.5:
                literal = net.not_(literal)
            product = literal if product is None else net.and_(product, literal)
        terms.append(product)
    outputs: List[int] = []
    for _ in range(num_outputs):
        count = rng.randint(2, max(2, num_terms // 2))
        chosen_terms = rng.sample(terms, min(count, len(terms)))
        value = chosen_terms[0]
        for term in chosen_terms[1:]:
            value = net.or_(value, term)
        outputs.append(value)
    return outputs


def substitution_box(net, inputs: Sequence[int], seed: int) -> List[int]:
    """A small (4-bit) S-box built as a random SOP — the bigkey mixing block."""
    return random_sop(
        net,
        inputs,
        num_outputs=len(inputs),
        num_terms=6,
        literals_per_term=min(3, len(inputs)),
        seed=seed,
    )
