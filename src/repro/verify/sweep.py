"""Simulation-guided SAT sweeping: the complete CEC backend for wide circuits.

The classical FRAIG recipe (Mishchenko et al.) as a pure-python engine
over the :mod:`repro.verify.cnf` gate graph and the
:mod:`repro.verify.sat` CDCL solver.  Both networks are encoded — in
topological order, over shared primary-input variables — through one
*proving* gate constructor:

1. Every gate is first **strashed** against everything encoded so far;
   structure shared between (or within) the two sides never even reaches
   the solver.
2. A genuinely new gate variable is simulated against the accumulated
   random patterns and looked up in the **candidate equivalence classes**
   (signatures normalized up to complementation, so antivalent nodes land
   in one class).
3. A signature collision is discharged by **incremental SAT under
   assumptions** — two queries per candidate pair, ``(a, ¬b)`` and
   ``(¬a, b)``, against the clauses emitted so far.  A *proven* pair is
   merged **by substitution**: the new gate's literal is replaced by its
   representative, so the entire downstream cone re-converges onto the
   representative's logic and the CNF stays the size of roughly one
   network (this, not equality clauses, is what keeps propagation local).
   A *refuted* pair yields a distinguishing input pattern that is
   **queued for the simulator**; queued patterns are folded into the
   signatures lazily, ``probe_flush_bits`` at a time, in one sub-word
   vectorized pass through the compiled graph kernel (see
   :meth:`_Sweeper.flush_refinements`).  Between flushes, lookups probe
   the *stale* candidate classes — sound, because signatures only ever
   extend (a refinement splits classes, never re-joins them), so a stale
   bucket is a superset of its refined descendants: equal functions are
   never missed, and a spurious stale collision costs one budgeted SAT
   refutation, never a wrong merge.  Queries that exhaust their conflict
   budget leave the candidate unmerged — soundness never depends on a
   merge.
4. After both networks are encoded, each primary-output pair is either
   already the *same literal* (proved structurally/by merge), or is
   decided by a final budgeted SAT call per output: UNSAT proves the
   pair, SAT yields a counterexample, a blown budget reports *unknown*
   so the caller can fall back to BDDs.

The entry point :func:`sat_sweep` works for any pair of same-interface
networks the CNF encoder understands (MIG, AIG, mapped netlist, mixed).

``final_workers`` dispatches step 4 — the per-PO budgeted final calls,
the dominant cost on miters whose outputs resist merging — across
worker processes through :mod:`repro.parallel`.  The clause snapshot is
shipped to each worker once (pool initializer), but each pair is decided
on a **fresh solver**, so every pair pays one clause-database rebuild —
the price that makes a pair's verdict a pure function of ``(clauses,
pair, budget)``: the same statuses and models come back at any worker
count (including ``final_workers=1``, the in-process baseline), and the
reported outcome is the lowest-index refuted pair, matching the serial
scan order.  Worth it when unmerged pairs are few and each is hard (the
per-pair SAT search dwarfs the rebuild); the default (``None``) keeps
the classical sequential scan on the shared incremental solver, whose
learned clauses make later pairs cheaper — preferable when pairs are
many and individually easy, or mostly merged during encoding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..codegen.clausegen import ClauseStream
from ..codegen.graphsim import GraphSimKernel
from .cnf import GateGraph, encode_network, eval_gate
from .sat import SAT, UNKNOWN, UNSAT, SatSolver

__all__ = ["SweepOutcome", "sat_sweep"]

#: Sweep verdicts.
EQUIVALENT = "equivalent"
INEQUIVALENT = "inequivalent"

#: Default refutation-batch width: flush queued counterexample patterns
#: into the signatures only once this many have accumulated, so each
#: flush is one sub-word vectorized kernel pass amortized over the batch
#: instead of a per-probe evaluation (``probe_flush_bits=1``).  Larger
#: batches keep cutting flush time (measured ~8x at 64) but widen the
#: staleness window — refuted representatives linger in their candidate
#: buckets and draw duplicate budgeted SAT probes from later
#: sig-identical candidates — and on refinement-heavy sweeps the extra
#: solver time overtakes the flush savings past a small batch.  4 is the
#: measured end-to-end optimum (``benchmarks/bench_codegen.py`` records
#: the lane: baseline 1, default, and full-word 64).
_DEFAULT_PROBE_FLUSH_BITS = 4


@dataclass
class SweepOutcome:
    """Result of one :func:`sat_sweep` run."""

    status: str  # "equivalent" | "inequivalent" | "unknown"
    counterexample: Optional[List[bool]] = None
    failing_output: Optional[int] = None
    stats: dict = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.status == EQUIVALENT


class _Sweeper:
    """Encoding-time proving context shared by both networks."""

    def __init__(
        self,
        num_pis: int,
        seed: int,
        initial_patterns: int,
        merge_conflict_budget: int,
        max_refinements: int,
        probe_flush_bits: int = _DEFAULT_PROBE_FLUSH_BITS,
    ) -> None:
        if probe_flush_bits < 1:
            raise ValueError(f"probe_flush_bits must be >= 1, got {probe_flush_bits}")
        self.graph = GateGraph(num_pis)
        self.solver = SatSolver()
        self._clause_cursor = 0
        self.merge_conflict_budget = merge_conflict_budget
        self.max_refinements = max_refinements
        self.probe_flush_bits = probe_flush_bits

        rng = random.Random(seed)
        self.num_bits = max(64, initial_patterns)
        self.pi_patterns = [rng.getrandbits(self.num_bits) for _ in range(num_pis)]
        self.mask = (1 << self.num_bits) - 1
        self.values: List[int] = [0] + [
            p & self.mask for p in self.pi_patterns
        ]

        #: signature -> list of phase-normalized representative literals.
        self.table: Dict[int, List[int]] = {}
        self.reps: List[int] = []
        for var in range(self.graph.num_vars):
            self._register(var)

        #: Refuted-pair distinguishing assignments awaiting simulation.
        #: Folding one counterexample at a time would cost a full-graph
        #: pass plus a table rebuild per refutation; queued columns are
        #: simulated together in one word-parallel pass (word width =
        #: batch size) through the incrementally compiled kernel.
        self._pending: List[List[bool]] = []
        self._kernel = GraphSimKernel(self.graph)

        self.stats = {
            "sat_calls": 0,
            "merges": 0,
            "refinements": 0,
            "batched_flushes": 0,
            "unresolved": 0,
        }

    # -- solver bookkeeping -------------------------------------------- #
    def _sync_solver(self) -> None:
        """Feed gates/clauses created since the last SAT query."""
        self.solver.ensure_vars(self.graph.num_vars)
        clauses = self.graph.clauses
        while self._clause_cursor < len(clauses):
            self.solver.add_clause(clauses[self._clause_cursor])
            self._clause_cursor += 1

    def model_assignment(self) -> List[bool]:
        return [
            self.solver.model_value((1 + i) << 1)
            for i in range(self.graph.num_pis)
        ]

    # -- candidate classes --------------------------------------------- #
    def _register(self, var: int) -> None:
        sig = self.values[var]
        phase = sig & 1
        key = sig ^ (self.mask if phase else 0)
        self.table.setdefault(key, []).append((var << 1) | phase)
        self.reps.append(var)

    def _learn_pattern(self) -> None:
        """Queue the solver model as a refuting simulation pattern.

        The column is *not* simulated here: patterns accumulate in
        ``_pending`` and are folded into the signatures by
        :meth:`flush_refinements` in one word-parallel batch.  Deferring
        is sound because signatures are only a merge *heuristic* — every
        merge is proved by SAT regardless of how stale the candidate
        classes are.
        """
        self._pending.append(self.model_assignment())
        self.stats["refinements"] += 1

    def flush_refinements(self) -> None:
        """Fold all queued refuting patterns into the signatures at once.

        One batch costs a single pass over the gate list — word-parallel
        across the queued columns, through the incrementally compiled
        graph kernel — and a single candidate-table rebuild, where the
        one-at-a-time protocol paid both per refutation.  Bit order
        matches sequential folding: the oldest queued pattern lands on the
        highest of the new low bits, the newest on bit 0.
        """
        pending = self._pending
        if not pending:
            return
        self._pending = []
        self.stats["batched_flushes"] += 1
        width = len(pending)
        num_pis = self.graph.num_pis
        batch_mask = (1 << width) - 1
        columns = [0] * (1 + num_pis)
        for shift, assignment in zip(range(width - 1, -1, -1), pending):
            for i in range(num_pis):
                if assignment[i]:
                    columns[1 + i] |= 1 << shift
        for i in range(num_pis):
            self.pi_patterns[i] = (self.pi_patterns[i] << width) | columns[1 + i]
        self.num_bits += width
        self.mask = (1 << self.num_bits) - 1

        num_vars = self.graph.num_vars
        columns.extend([0] * (num_vars - len(columns)))
        self._kernel.eval_into(columns, batch_mask)
        values = self.values
        for var in range(num_vars):
            values[var] = (values[var] << width) | columns[var]
        old_reps = self.reps
        self.table = {}
        self.reps = []
        for var in old_reps:
            self._register(var)

    # -- the proving gate constructor ---------------------------------- #
    def add_gate(self, tt: int, in_lits) -> int:
        before = self.graph.num_vars
        lit = self.graph.add_gate(tt, in_lits)
        if self.graph.num_vars == before:
            return lit  # constant-folded or structural hit: already canonical
        var, gate_tt, gate_lits = self.graph.gates[-1]
        out_flip = lit & 1
        self.values.append(
            eval_gate(self.values, gate_tt, gate_lits, self.mask)
        )

        # Threshold flush: queued refutations reach the signatures only
        # once a full sub-word batch has accumulated, so each flush is a
        # single vectorized kernel pass amortized over ``probe_flush_bits``
        # probes.  The lookup below then scans the (possibly stale) bucket
        # exactly once — a stale bucket is a superset of its refined
        # descendants (signatures only extend, so refinement splits
        # classes, never re-joins them), which means a rep provable equal
        # under fully refined signatures is necessarily in this bucket,
        # and any stale impostor costs one budgeted SAT refutation, never
        # a wrong merge.
        if len(self._pending) >= self.probe_flush_bits:
            self.flush_refinements()
        sig = self.values[var]
        phase = sig & 1
        key = sig ^ (self.mask if phase else 0)
        cand = (var << 1) | phase
        for rep_lit in self.table.get(key, ()):
            refine = self.stats["refinements"] < self.max_refinements
            verdict = self._prove_pair(rep_lit, cand, refine)
            if verdict == "equal":
                self.stats["merges"] += 1
                # Substitution: the caller wires its cone to the
                # representative; ``var`` becomes a dangling alias.
                return rep_lit ^ phase ^ out_flip
        self._register(var)
        return lit

    def _prove_pair(self, rep_lit: int, cand_lit: int, refine: bool) -> str:
        self._sync_solver()
        solver = self.solver
        budget = self.merge_conflict_budget
        self.stats["sat_calls"] += 1
        res_a = solver.solve([rep_lit, cand_lit ^ 1], max_conflicts=budget)
        if res_a == SAT:
            if refine:
                self._learn_pattern()
            return "refuted"
        self.stats["sat_calls"] += 1
        res_b = solver.solve([rep_lit ^ 1, cand_lit], max_conflicts=budget)
        if res_b == SAT:
            if refine:
                self._learn_pattern()
            return "refuted"
        if res_a == UNSAT and res_b == UNSAT:
            return "equal"
        self.stats["unresolved"] += 1
        return "unknown"


#: Worker-process snapshot installed once per worker by the pool
#: initializer: ``(clause_stream, num_pis, budget)``.
_FINAL_STATE = None


def _install_final_state(stream, num_pis, budget) -> None:
    global _FINAL_STATE
    _FINAL_STATE = (stream, num_pis, budget)


def _final_pair(pair):
    """Decide one unmerged primary-output pair on a fresh solver.

    A fresh solver per pair (rather than one shared per worker) is what
    makes the verdict independent of which pairs share a worker — the
    determinism contract of :mod:`repro.parallel` requires it.  The
    clause database is rebuilt from the generated
    :class:`~repro.codegen.ClauseStream` snapshot through the solver's
    unchecked bulk loader, so the per-pair rebuild skips the per-literal
    clause re-validation the graph already performed at emission time.
    Returns ``(status_a, status_b, counterexample_or_None, sat_calls,
    conflicts)``.
    """
    stream, num_pis, budget = _FINAL_STATE
    a, b = pair
    solver = SatSolver()
    stream.load_into(solver)
    res_a = solver.solve([a, b ^ 1], max_conflicts=budget)
    if res_a == SAT:
        model = [solver.model_value((1 + i) << 1) for i in range(num_pis)]
        return (res_a, None, model, 1, solver.num_conflicts)
    res_b = solver.solve([a ^ 1, b], max_conflicts=budget)
    model = None
    if res_b == SAT:
        model = [solver.model_value((1 + i) << 1) for i in range(num_pis)]
    return (res_a, res_b, model, 2, solver.num_conflicts)


def sat_sweep(
    first,
    second,
    seed: int = 7,
    initial_patterns: int = 128,
    merge_conflict_budget: int = 2_000,
    output_conflict_budget: int = 200_000,
    max_refinements: int = 512,
    final_workers: Optional[int] = None,
    probe_flush_bits: int = _DEFAULT_PROBE_FLUSH_BITS,
) -> SweepOutcome:
    """Decide equivalence of ``first`` and ``second`` by SAT sweeping.

    Complete up to ``output_conflict_budget``: every primary-output pair
    is either merged during encoding, proved by a final SAT call, refuted
    with a counterexample, or — only if that final call blows its budget —
    reported as ``status="unknown"``.  Internal merge queries are budgeted
    separately (``merge_conflict_budget``) because a failed merge only
    costs later queries some sharing, never soundness.

    ``final_workers`` (see module docstring) dispatches the final per-PO
    calls across processes; verdicts are bit-identical at any worker
    count.  ``probe_flush_bits`` sets the refutation-batch width: queued
    counterexample patterns are folded into the simulation signatures in
    sub-word vectorized batches of this size (``1`` recovers the
    per-probe flushing baseline; the verdict is identical either way —
    only the flush count and wall clock change).
    """
    if first.num_pis != second.num_pis:
        raise ValueError(
            f"PI count mismatch: {first.num_pis} vs {second.num_pis}"
        )
    if first.num_pos != second.num_pos:
        raise ValueError(
            f"PO count mismatch: {first.num_pos} vs {second.num_pos}"
        )

    sweeper = _Sweeper(
        first.num_pis,
        seed,
        initial_patterns,
        merge_conflict_budget,
        max_refinements,
        probe_flush_bits,
    )
    graph = sweeper.graph
    pos_first = encode_network(graph, first, add_gate=sweeper.add_gate)
    pos_second = encode_network(graph, second, add_gate=sweeper.add_gate)
    # Patterns queued by the last candidate lookups must reach the
    # signatures before the simulated-mismatch scan below can trust them.
    sweeper.flush_refinements()

    stats = sweeper.stats
    stats["gates"] = len(graph.gates)
    stats["vars"] = graph.num_vars
    stats["patterns"] = sweeper.num_bits

    def finish(outcome: SweepOutcome) -> SweepOutcome:
        stats["conflicts"] = sweeper.solver.num_conflicts
        stats["patterns"] = sweeper.num_bits
        outcome.stats = stats
        return outcome

    # Simulated mismatches on the accumulated patterns are counterexamples.
    mask = sweeper.mask
    values = sweeper.values
    for index, (a, b) in enumerate(zip(pos_first, pos_second)):
        diff = graph.lit_value(values, a, mask) ^ graph.lit_value(values, b, mask)
        if diff:
            bit = (diff & -diff).bit_length() - 1
            counterexample = [
                bool((sweeper.pi_patterns[i] >> bit) & 1)
                for i in range(graph.num_pis)
            ]
            return finish(SweepOutcome(INEQUIVALENT, counterexample, index))

    # Final, complete decision per unmerged primary-output pair.
    pending = [
        (index, a, b)
        for index, (a, b) in enumerate(zip(pos_first, pos_second))
        if a != b  # pairs merged during encoding are already proved
    ]

    if final_workers is not None and pending:
        from ..parallel.executor import parallel_map

        global _FINAL_STATE
        try:
            report = parallel_map(
                _final_pair,
                [(a, b) for _, a, b in pending],
                workers=final_workers,
                labels=[f"po{index}" for index, _, _ in pending],
                warmup=None,
                initializer=_install_final_state,
                initargs=(
                    ClauseStream.from_graph(graph),
                    graph.num_pis,
                    output_conflict_budget,
                ),
            )
            unknown = False
            stats["final_workers"] = report.workers
            stats["final_pairs"] = len(pending)
            for (index, _, _), outcome in zip(pending, report.results):
                res_a, res_b, model, calls, conflicts = outcome
                stats["sat_calls"] += calls
                stats["final_conflicts"] = stats.get("final_conflicts", 0) + conflicts
                if model is not None:
                    # Lowest-index refutation wins, matching the serial scan.
                    return finish(SweepOutcome(INEQUIVALENT, model, index))
                if res_a != UNSAT or (res_b is not None and res_b != UNSAT):
                    unknown = True
            if unknown:
                return finish(SweepOutcome(UNKNOWN))
            return finish(SweepOutcome(EQUIVALENT))
        finally:
            # The in-process fallback installs the snapshot in *this*
            # process; drop it so the full clause list (potentially the
            # largest miter ever swept) is not pinned for the process
            # lifetime.  Worker-side copies die with the pool.
            _FINAL_STATE = None

    unknown = False
    for index, a, b in pending:
        sweeper._sync_solver()
        solver = sweeper.solver
        stats["sat_calls"] += 1
        res_a = solver.solve([a, b ^ 1], max_conflicts=output_conflict_budget)
        if res_a == SAT:
            return finish(
                SweepOutcome(INEQUIVALENT, sweeper.model_assignment(), index)
            )
        stats["sat_calls"] += 1
        res_b = solver.solve([a ^ 1, b], max_conflicts=output_conflict_budget)
        if res_b == SAT:
            return finish(
                SweepOutcome(INEQUIVALENT, sweeper.model_assignment(), index)
            )
        if res_a != UNSAT or res_b != UNSAT:
            # Budget blown on this pair: keep scanning the remaining
            # outputs — a later pair may still yield a cheap refutation.
            unknown = True
    if unknown:
        return finish(SweepOutcome(UNKNOWN))
    return finish(SweepOutcome(EQUIVALENT))
