"""A small CDCL SAT solver (the decision engine behind the SAT-based CEC).

This is a classic conflict-driven clause-learning solver in the MiniSat
lineage, self-contained and pure python so the equivalence checker has a
*complete* decision procedure with no external dependencies:

* **two-watched-literal** propagation (clauses are only touched when one of
  their two watched literals becomes false);
* **first-UIP conflict analysis** producing one asserting learned clause
  per conflict, with non-chronological backjumping;
* **VSIDS-style variable activity** (bump on conflict participation,
  exponential decay via an increasing increment, lazy max-heap decisions)
  with **phase saving**;
* **Luby restarts**;
* **incremental solving under assumptions**: assumptions are enqueued as
  the first decisions of every :meth:`SatSolver.solve` call, so learned
  clauses are sound across calls and the sweeping engine can discharge
  thousands of candidate-equivalence queries against one clause database;
* a **conflict budget** per call — :data:`UNKNOWN` is a first-class
  answer, letting callers fall back to another proof engine instead of
  hanging on a hard instance;
* **LBD-based learned-clause database reduction** (Glucose-style): each
  learned clause records its literal-block distance — the number of
  distinct decision levels among its literals at learning time — and
  when the database exceeds a geometrically growing limit the worst
  (highest-LBD, then longest) half of the deletable clauses is dropped.
  Glue clauses (LBD ≤ 2) and clauses currently acting as propagation
  reasons are never deleted, so the reduction is sound mid-search.
  Long-lived incremental sessions — a sweeping worker discharging
  thousands of queries against one solver — therefore hold memory
  roughly constant instead of growing without bound; deletions are
  visible in :attr:`SatSolver.stats` (``clauses_deleted``).

Literal encoding follows the network-signal convention of
:mod:`repro.core.signal`: literal ``2*v`` is variable ``v``, literal
``2*v + 1`` is its negation, so ``lit ^ 1`` negates a literal.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Iterable, List, Optional, Sequence

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN"]

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"

#: Sentinel for an unassigned literal value (values are 0 / 1 / _UNASSIGNED).
_UNASSIGNED = -1


def _luby(i: int) -> int:
    """The ``i``-th element (1-based) of the Luby restart sequence."""
    x = i - 1
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


class SatSolver:
    """An incremental CDCL solver over clauses of integer literals."""

    def __init__(
        self, reduce_base: int = 4000, reduce_growth: float = 1.3
    ) -> None:
        self._num_vars = 0
        # Per-literal truth value (index = literal); per-variable metadata.
        self._value: List[int] = []
        self._watches: List[List[list]] = []
        self._level: List[int] = []
        self._reason: List[Optional[list]] = []
        self._activity: List[float] = []
        self._phase: List[int] = []
        self._seen: List[int] = []
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        self._heap: List[tuple] = []
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._ok = True
        self._model: Optional[List[int]] = None
        # Learned-clause database: the clause lists plus their LBD scores
        # (keyed by clause identity — clauses are mutable lists, equal
        # contents must not alias).  ``_reduce_limit`` grows geometrically
        # so reductions stay rare on easy runs.
        self._learnts: List[list] = []
        self._lbd: dict = {}
        self._reduce_limit = max(100, int(reduce_base))
        self._reduce_growth = max(1.01, float(reduce_growth))
        # Statistics (exposed read-only through :attr:`stats`).
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_solve_calls = 0
        self.num_reductions = 0
        self.num_clauses_deleted = 0

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its index."""
        v = self._num_vars
        self._num_vars += 1
        self._value.extend((_UNASSIGNED, _UNASSIGNED))
        self._watches.extend(([], []))
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(1)  # default polarity: negative (lit 2v+1 true)
        self._seen.append(0)
        heappush(self._heap, (0.0, v))
        return v

    def ensure_vars(self, count: int) -> None:
        """Grow the variable pool so indices ``0 .. count-1`` are valid."""
        while self._num_vars < count:
            self.new_var()

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns ``False`` when the formula became UNSAT.

        Must be called with the solver at decision level 0 (which is where
        :meth:`solve` always leaves it).  Tautologies are dropped, false
        root-level literals removed, duplicate literals merged.
        """
        if not self._ok:
            return False
        assert not self._trail_lim, "add_clause requires decision level 0"
        value = self._value
        clause: List[int] = []
        seen = set()
        for lit in lits:
            if lit ^ 1 in seen:
                return True  # tautology
            if lit in seen:
                continue
            v = value[lit]
            if v == 1:
                return True  # already satisfied at root level
            if v == 0:
                continue  # false at root level: drop the literal
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            self._enqueue(clause[0], None)
            self._ok = self._propagate() is None
            return self._ok
        self._attach(clause)
        return True

    def add_clause_unchecked(self, lits: Sequence[int]) -> bool:
        """Add one clause known to be clean, skipping the per-literal scan.

        The fast path behind :meth:`repro.codegen.ClauseStream.load_into`:
        bulk-loading a clause database that a
        :class:`~repro.verify.cnf.GateGraph` emitted.  The caller
        guarantees what :meth:`add_clause` would otherwise re-derive per
        literal — no tautologies, no duplicate literals, and no literal
        already assigned at root level (graph clauses only mention the
        pinned constant variable in its own unit clause, which must come
        first in graph order, as it does in ``graph.clauses``).  Variables
        must already exist (:meth:`ensure_vars`).
        """
        if not self._ok:
            return False
        if len(lits) == 1:
            self._enqueue(lits[0], None)
            self._ok = self._propagate() is None
            return self._ok
        self._attach(list(lits))
        return True

    def _attach(self, clause: list) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def stats(self) -> dict:
        return {
            "conflicts": self.num_conflicts,
            "decisions": self.num_decisions,
            "propagations": self.num_propagations,
            "solve_calls": self.num_solve_calls,
            "learnt_clauses": len(self._learnts),
            "reductions": self.num_reductions,
            "clauses_deleted": self.num_clauses_deleted,
        }

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #
    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts: Optional[int] = None,
    ) -> str:
        """Decide satisfiability under ``assumptions``.

        Returns :data:`SAT` (model available via :meth:`model_value`),
        :data:`UNSAT`, or :data:`UNKNOWN` when the conflict budget ran out.
        The solver is left at decision level 0 with all learned clauses
        retained, so follow-up calls get monotonically stronger.
        """
        self.num_solve_calls += 1
        if not self._ok:
            return UNSAT
        self._cancel_until(0)
        assumptions = list(assumptions)
        for lit in assumptions:
            if lit >> 1 >= self._num_vars:
                raise ValueError(f"assumption literal {lit} references unknown variable")

        budget = None if max_conflicts is None else self.num_conflicts + max_conflicts
        restart_round = 0
        value = self._value
        while True:
            restart_round += 1
            conflicts_left = _luby(restart_round) * 128
            while True:
                confl = self._propagate()
                if confl is not None:
                    self.num_conflicts += 1
                    conflicts_left -= 1
                    if not self._trail_lim:
                        self._ok = False
                        return UNSAT
                    learnt, bt_level = self._analyze(confl)
                    if len(learnt) > 1:
                        # LBD must be read before backjumping unassigns
                        # the literals' decision levels.
                        level = self._level
                        lbd = len({level[q >> 1] for q in learnt})
                    self._cancel_until(bt_level)
                    if len(learnt) == 1:
                        self._enqueue(learnt[0], None)
                    else:
                        self._attach(learnt)
                        self._enqueue(learnt[0], learnt)
                        self._learnts.append(learnt)
                        self._lbd[id(learnt)] = lbd
                        if len(self._learnts) >= self._reduce_limit:
                            self._reduce_db()
                    self._var_inc *= self._var_decay
                    if self._var_inc > 1e100:
                        self._rescale_activity()
                    if budget is not None and self.num_conflicts >= budget:
                        self._cancel_until(0)
                        return UNKNOWN
                    if conflicts_left <= 0:
                        self._cancel_until(0)
                        break  # restart
                    continue

                # No conflict: enqueue the next assumption or decide.
                if len(self._trail_lim) < len(assumptions):
                    lit = assumptions[len(self._trail_lim)]
                    v = value[lit]
                    if v == 1:
                        # Already implied: open a dummy level so the
                        # level-to-assumption correspondence is kept.
                        self._trail_lim.append(len(self._trail))
                        continue
                    if v == 0:
                        self._cancel_until(0)
                        return UNSAT  # assumptions conflict with the formula
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, None)
                    continue

                lit = self._pick_branch()
                if lit is None:
                    self._model = self._value[:]
                    self._cancel_until(0)
                    return SAT
                self.num_decisions += 1
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)

    def model_value(self, lit: int) -> bool:
        """Truth value of ``lit`` in the most recent satisfying model."""
        if self._model is None:
            raise RuntimeError("no model available (last solve was not SAT)")
        v = self._model[lit]
        return v == 1

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _enqueue(self, lit: int, reason: Optional[list]) -> None:
        self._value[lit] = 1
        self._value[lit ^ 1] = 0
        var = lit >> 1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _propagate(self) -> Optional[list]:
        """Unit propagation; returns a conflicting clause or ``None``."""
        value = self._value
        watches = self._watches
        trail = self._trail
        while self._qhead < len(trail):
            p = trail[self._qhead]
            self._qhead += 1
            self.num_propagations += 1
            false_lit = p ^ 1
            ws = watches[false_lit]
            if not ws:
                continue
            watches[false_lit] = kept = []
            i = 0
            n = len(ws)
            while i < n:
                clause = ws[i]
                i += 1
                # Ensure the false literal sits at position 1.
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                if value[first] == 1:
                    kept.append(clause)
                    continue
                # Search for a replacement watch.
                swapped = False
                for k in range(2, len(clause)):
                    lit = clause[k]
                    if value[lit] != 0:
                        clause[1] = lit
                        clause[k] = false_lit
                        watches[lit].append(clause)
                        swapped = True
                        break
                if swapped:
                    continue
                kept.append(clause)
                if value[first] == 0:
                    # Conflict: retain the unvisited watchers and report.
                    kept.extend(ws[i:])
                    self._qhead = len(trail)
                    return clause
                self._enqueue(first, clause)
        return None

    def _analyze(self, confl: list) -> tuple:
        """First-UIP conflict analysis; returns ``(learnt, backtrack_level)``.

        ``learnt[0]`` is the asserting literal.
        """
        seen = self._seen
        level = self._level
        reason = self._reason
        trail = self._trail
        cur_level = len(self._trail_lim)
        learnt: List[int] = [0]
        to_clear: List[int] = []
        counter = 0
        p = None
        index = len(trail) - 1
        while True:
            start = 0 if p is None else 1
            for k in range(start, len(confl)):
                q = confl[k]
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    to_clear.append(v)
                    self._bump(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p >> 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            confl = reason[v]
        learnt[0] = p ^ 1

        # Cheap clause minimization: drop literals implied by the rest of
        # the clause through their (fully-seen) reason clauses.
        if len(learnt) > 2:
            minimized = [learnt[0]]
            for q in learnt[1:]:
                r = reason[q >> 1]
                if r is None or any(
                    not seen[lit >> 1] and level[lit >> 1] > 0 for lit in r[1:]
                ):
                    minimized.append(q)
            learnt = minimized

        for v in to_clear:
            seen[v] = 0

        if len(learnt) == 1:
            return learnt, 0
        # Move the literal with the highest level to position 1; that level
        # is the backjump target (where the learned clause asserts).
        max_i = 1
        for k in range(2, len(learnt)):
            if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                max_i = k
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, level[learnt[1] >> 1]

    def _reduce_db(self) -> None:
        """Drop the worst half of the deletable learned clauses.

        Learned clauses are implied by the problem clauses, so deletion
        never affects soundness — only which propagations come for free.
        Protected from deletion: glue clauses (LBD ≤ 2, the Glucose
        criterion for clauses worth keeping forever) and clauses
        currently referenced as a propagation reason on the trail (their
        list objects back implication-graph edges).  Runs at any decision
        level; the limit then grows geometrically so a run that keeps
        learning useful clauses is not throttled.
        """
        lbd = self._lbd
        reason_ids = {id(r) for r in self._reason if r is not None}
        keep: List[list] = []
        deletable: List[list] = []
        for clause in self._learnts:
            if lbd[id(clause)] <= 2 or id(clause) in reason_ids:
                keep.append(clause)
            else:
                deletable.append(clause)
        deletable.sort(key=lambda c: (-lbd[id(c)], -len(c)))
        cut = len(deletable) // 2
        deleted, kept_tail = deletable[:cut], deletable[cut:]
        if deleted:
            watches = self._watches
            deleted_ids = {id(c) for c in deleted}
            for lit in {lit for c in deleted for lit in (c[0], c[1])}:
                watches[lit] = [
                    c for c in watches[lit] if id(c) not in deleted_ids
                ]
            for c in deleted:
                del lbd[id(c)]
            self.num_clauses_deleted += len(deleted)
        self._learnts = keep + kept_tail
        self.num_reductions += 1
        self._reduce_limit = int(self._reduce_limit * self._reduce_growth)

    def _cancel_until(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        value = self._value
        bound = self._trail_lim[target_level]
        heap = self._heap
        activity = self._activity
        for k in range(len(self._trail) - 1, bound - 1, -1):
            lit = self._trail[k]
            var = lit >> 1
            self._phase[var] = lit & 1
            value[lit] = _UNASSIGNED
            value[lit ^ 1] = _UNASSIGNED
            self._reason[var] = None
            heappush(heap, (-activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[target_level:]
        self._qhead = min(self._qhead, bound)

    def _pick_branch(self) -> Optional[int]:
        value = self._value
        heap = self._heap
        activity = self._activity
        while heap:
            score, var = heappop(heap)
            if value[var << 1] != _UNASSIGNED:
                continue
            if -score != activity[var]:
                heappush(heap, (-activity[var], var))
                continue
            return (var << 1) | self._phase[var]
        # Heap exhausted: fall back to a linear scan (stale entries only).
        for var in range(self._num_vars):
            if value[var << 1] == _UNASSIGNED:
                return (var << 1) | self._phase[var]
        return None

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        heappush(self._heap, (-self._activity[var], var))

    def _rescale_activity(self) -> None:
        scale = 1e-100
        self._activity = [a * scale for a in self._activity]
        self._var_inc *= scale
        self._heap = [(-self._activity[v], v) for v in range(self._num_vars)
                      if self._value[v << 1] == _UNASSIGNED]
        import heapq

        heapq.heapify(self._heap)
