"""Verification utilities: CEC dispatch, CNF encoding, CDCL SAT, sweeping."""

from .equivalence import (
    EXHAUSTIVE_LIMIT,
    CounterexampleError,
    EquivalenceResult,
    assert_equivalent,
    check_equivalence,
)
from .cnf import GateGraph, MiterCnf, build_miter, encode_network
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .sweep import SweepOutcome, sat_sweep

__all__ = [
    "EquivalenceResult",
    "CounterexampleError",
    "check_equivalence",
    "assert_equivalent",
    "EXHAUSTIVE_LIMIT",
    "GateGraph",
    "MiterCnf",
    "build_miter",
    "encode_network",
    "SatSolver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "SweepOutcome",
    "sat_sweep",
]
