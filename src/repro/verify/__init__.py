"""Verification utilities (combinational equivalence checking)."""

from .equivalence import EquivalenceResult, assert_equivalent, check_equivalence

__all__ = ["EquivalenceResult", "check_equivalence", "assert_equivalent"]
