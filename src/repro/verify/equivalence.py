"""Combinational equivalence checking: the dispatch front-end.

Every optimization pass in this library claims function preservation;
this module is how the test-suite, the flows (``Pipeline(verify=...)``)
and the acceptance harnesses *prove* it on concrete instances.  The
checker is a dispatcher over four backends:

============== ============ ================= ==============================
method         completeness input width       notes
============== ============ ================= ==============================
``exhaustive`` complete     ``num_pis <= 16`` chunked bit-parallel
                                              simulation (2^16-minterm
                                              blocks); default for narrow
                                              networks
``random``     falsifier    any               ``num_random_vectors`` random
                                              patterns; finds bugs fast,
                                              proves nothing
``sat-sweep``  complete*    any               simulation-guided SAT
                                              sweeping over a shared-PI
                                              miter (:mod:`.sweep`);
                                              default proof engine for
                                              wide networks; *within its
                                              conflict budget — reports
                                              *unknown* when exceeded
``bdd``        complete     memory-bound      canonical ROBDDs of all
                                              outputs; fallback when the
                                              SAT budget blows, opt-in via
                                              ``use_bdd``
============== ============ ================= ==============================

The automatic dispatch (``method="auto"``) runs, in order:

1. a 64-vector **random prefilter** (fail fast on inequivalent pairs);
2. ``num_pis <= EXHAUSTIVE_LIMIT`` → **exhaustive** simulation;
3. otherwise **random** simulation, then **SAT sweeping** for the actual
   proof, then — only if the SAT budget was exhausted and ``use_bdd`` is
   set — the **BDD** backend.

Every backend that reports inequivalence returns a *replayable*
counterexample, and every counterexample is validated by a one-vector
simulation of both networks before it is returned — a bug in a proof
engine can surface as a :class:`CounterexampleError`, never as a spurious
verdict.  The two networks may be of different types (MIG vs AIG vs
mapped netlist): anything exposing ``num_pis / num_pos /
simulate_patterns()`` works, and the SAT backend additionally understands
all three through the CNF encoder.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

__all__ = [
    "EquivalenceResult",
    "CounterexampleError",
    "check_equivalence",
    "assert_equivalent",
    "EXHAUSTIVE_LIMIT",
]

#: Networks with at most this many primary inputs are checked exhaustively.
#: Chunked simulation keeps the per-block patterns at 2^16 bits, so the
#: limit is bounded by runtime (2^(n-16) simulation sweeps), not memory.
EXHAUSTIVE_LIMIT = 16

#: Exhaustive simulation runs in blocks of at most this many minterms.
_BLOCK_BITS = 16

#: Exhaustive sweeps covering at least this many total minterms are worth
#: compiling a generated simulation kernel for (:mod:`repro.codegen`).
#: Generation costs ~15-20us per gate while the kernel saves roughly
#: 20us per gate per 2^20 simulated minterms over the memoized closure
#: program, so the compile breaks even near 2^20 minterms; one power of
#: two above that keeps a 2x margin.  Narrower one-shot checks stay on
#: ``simulate_patterns`` (whose own tiering still promotes networks that
#: are checked repeatedly).
_COMPILED_MIN_MINTERMS = 1 << 21

#: Width of the fail-fast random pre-filter run before any complete check.
_PREFILTER_VECTORS = 64

#: Method names accepted by :func:`check_equivalence`.
_METHODS = ("auto", "exhaustive", "random", "bdd", "sat-sweep")


class CounterexampleError(RuntimeError):
    """A backend produced a counterexample that does not replay.

    Raised instead of returning an inequivalence verdict that the
    networks' own simulators contradict — a solver or encoder bug can
    never masquerade as a refutation.
    """


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check.

    ``certified`` distinguishes a *proof* from a mere failure to refute:
    it is ``True`` for complete backends (exhaustive, BDD, an in-budget
    SAT sweep) and for every refutation (counterexamples are replayed
    before being returned), but ``False`` when an ``equivalent=True``
    verdict only means "random simulation found no mismatch" — notably
    the auto dispatch's best-effort answer after the SAT sweep exhausted
    its conflict budget.  Consumers that certify anything (pipeline
    self-verification, window certification, CEC rows) must reject
    uncertified verdicts rather than treat them as a pass.
    """

    equivalent: bool
    method: str
    counterexample: Optional[List[bool]] = None
    failing_output: Optional[int] = None
    certified: bool = True

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def check_equivalence(
    first,
    second,
    num_random_vectors: int = 4096,
    seed: int = 7,
    use_bdd: bool = False,
    method: str = "auto",
    sat_options: Optional[dict] = None,
) -> EquivalenceResult:
    """Check whether two combinational networks compute the same functions.

    Inputs are matched by position (both networks must have the same number
    of PIs and POs; names are not required to coincide because the baseline
    flows rename internal signals).

    ``method`` selects a specific backend (see the module docstring's
    dispatch table) or ``"auto"`` for the layered default.  ``sat_options``
    is forwarded to :func:`repro.verify.sweep.sat_sweep` (budgets, pattern
    counts).  With ``use_bdd`` the BDD backend backstops an
    out-of-budget SAT sweep; without it the (incomplete) random verdict is
    returned in that case.
    """
    if first.num_pis != second.num_pis:
        raise ValueError(
            f"PI count mismatch: {first.num_pis} vs {second.num_pis}"
        )
    if first.num_pos != second.num_pos:
        raise ValueError(
            f"PO count mismatch: {first.num_pos} vs {second.num_pos}"
        )
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {_METHODS}")

    if method == "exhaustive":
        return _validated(first, second, _check_exhaustive(first, second))
    if method == "random":
        return _validated(
            first, second, _check_random(first, second, num_random_vectors, seed)
        )
    if method == "bdd":
        return _validated(first, second, _check_bdd(first, second))
    if method == "sat-sweep":
        result = _check_sat_sweep(first, second, seed, sat_options)
        if result is None:
            raise RuntimeError(
                "SAT sweep exhausted its conflict budget; raise the budget "
                "via sat_options or use method='auto' with use_bdd=True"
            )
        return _validated(first, second, result)

    # --- automatic dispatch ------------------------------------------- #
    # The prefilter only pays off in front of the exhaustive backend (the
    # wide-network paths below always start with a random sweep that
    # subsumes it — same seed, more vectors), and only when the exhaustive
    # sweep it precedes is actually wider than the prefilter itself.
    if _PREFILTER_VECTORS < (1 << first.num_pis) and first.num_pis <= EXHAUSTIVE_LIMIT:
        prefilter = _check_random(
            first, second, _PREFILTER_VECTORS, seed, method="random-prefilter"
        )
        if not prefilter.equivalent:
            return _validated(first, second, prefilter)

    if first.num_pis <= EXHAUSTIVE_LIMIT:
        return _validated(first, second, _check_exhaustive(first, second))

    result = _check_random(first, second, num_random_vectors, seed)
    if not result.equivalent:
        return _validated(first, second, result)

    proof = _check_sat_sweep(first, second, seed, sat_options)
    if proof is not None:
        return _validated(first, second, proof)
    if use_bdd:
        return _validated(first, second, _check_bdd(first, second))
    # SAT budget exhausted, no BDD fallback requested: best effort is the
    # (incomplete) random verdict — its ``certified=False`` is what tells
    # certifying consumers this is *not* a proof.
    return result


def assert_equivalent(first, second, **kwargs) -> None:
    """Raise ``AssertionError`` with a readable message if not equivalent.

    An *uncertified* all-clear (the auto dispatch ran out of SAT budget
    and fell back to random simulation) also raises — unless the caller
    explicitly asked for the random backend, in which case the sampling
    verdict is exactly what was requested.
    """
    result = check_equivalence(first, second, **kwargs)
    if not result.equivalent:
        raise AssertionError(
            "networks are NOT equivalent "
            f"(method={result.method}, output index={result.failing_output}, "
            f"counterexample={result.counterexample})"
        )
    if not result.certified and kwargs.get("method", "auto") != "random":
        raise AssertionError(
            "equivalence NOT certified: the complete backends ran out of "
            f"budget and only {result.method} found no mismatch — raise the "
            "budget via sat_options or pass use_bdd=True"
        )


# --------------------------------------------------------------------- #
# Counterexample validation (all refuting backends route through this)
# --------------------------------------------------------------------- #
def _simulate_single(network, assignment: Sequence[bool]) -> List[bool]:
    patterns = [1 if bit else 0 for bit in assignment]
    return [bool(v & 1) for v in network.simulate_patterns(patterns, 1)]


def _validated(first, second, result: EquivalenceResult) -> EquivalenceResult:
    """Replay a refuting counterexample on both networks before returning it.

    Guarantees the advertised failing output really differs under the
    advertised input vector; a backend whose counterexample does not
    replay raises :class:`CounterexampleError` instead of polluting the
    verdict stream.
    """
    if result.equivalent or result.counterexample is None:
        return result
    out_first = _simulate_single(first, result.counterexample)
    out_second = _simulate_single(second, result.counterexample)
    mismatches = [
        index for index, (a, b) in enumerate(zip(out_first, out_second)) if a != b
    ]
    if not mismatches:
        raise CounterexampleError(
            f"backend {result.method!r} reported a counterexample that does "
            f"not replay to any PO mismatch: {result.counterexample}"
        )
    if result.failing_output not in mismatches:
        return replace(result, failing_output=mismatches[0])
    return result


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #
def _input_patterns_block(num_pis: int, start: int, block_bits: int) -> List[int]:
    """Simulation patterns covering minterms ``start .. start + block_bits``.

    Inputs whose period fits inside the block get the usual alternating
    projection pattern; higher inputs are constant across the whole block
    (their value is the corresponding bit of ``start``, which is always a
    multiple of the block size).
    """
    mask = (1 << block_bits) - 1
    patterns = []
    for i in range(num_pis):
        period_half = 1 << i
        if period_half >= block_bits:
            patterns.append(mask if (start >> i) & 1 else 0)
            continue
        block = (1 << period_half) - 1
        pattern = 0
        for offset in range(period_half, block_bits, period_half << 1):
            pattern |= block << offset
        patterns.append(pattern)
    return patterns


def _block_simulator(network, total_minterms: int):
    """``simulate_patterns``-shaped callable, compiled when it pays off.

    The decision is keyed on the *total* sweep width, not the per-block
    width: compilation is a per-network fixed cost, so only the number of
    minterms it amortizes over matters.
    """
    if total_minterms >= _COMPILED_MIN_MINTERMS:
        compiled = getattr(network, "compiled_kernel", None)
        if compiled is not None:
            return compiled().simulate_auto
    return network.simulate_patterns


def _check_exhaustive(first, second) -> EquivalenceResult:
    num_pis = first.num_pis
    total = 1 << num_pis
    block_bits = min(total, 1 << _BLOCK_BITS)
    simulate_first = _block_simulator(first, total)
    simulate_second = _block_simulator(second, total)
    for start in range(0, total, block_bits):
        patterns = _input_patterns_block(num_pis, start, block_bits)
        out_first = simulate_first(patterns, block_bits)
        out_second = simulate_second(patterns, block_bits)
        for index, (a, b) in enumerate(zip(out_first, out_second)):
            if a != b:
                diff = a ^ b
                minterm = start + (diff & -diff).bit_length() - 1
                counterexample = [bool((minterm >> k) & 1) for k in range(num_pis)]
                return EquivalenceResult(
                    equivalent=False,
                    method="exhaustive",
                    counterexample=counterexample,
                    failing_output=index,
                )
    return EquivalenceResult(equivalent=True, method="exhaustive")


def _check_random(
    first, second, num_vectors: int, seed: int, method: str = "random-simulation"
) -> EquivalenceResult:
    rng = random.Random(seed)
    num_pis = first.num_pis
    patterns = [rng.getrandbits(num_vectors) for _ in range(num_pis)]
    out_first = first.simulate_patterns(patterns, num_vectors)
    out_second = second.simulate_patterns(patterns, num_vectors)
    for index, (a, b) in enumerate(zip(out_first, out_second)):
        if a != b:
            diff = a ^ b
            bit = (diff & -diff).bit_length() - 1
            counterexample = [bool((patterns[k] >> bit) & 1) for k in range(num_pis)]
            return EquivalenceResult(
                equivalent=False,
                method=method,
                counterexample=counterexample,
                failing_output=index,
            )
    # Random simulation proves nothing: an all-clear is explicitly not a
    # certificate (refutations above are, once validated).
    return EquivalenceResult(equivalent=True, method=method, certified=False)


def _check_sat_sweep(
    first, second, seed: int, sat_options: Optional[dict]
) -> Optional[EquivalenceResult]:
    """SAT-sweeping backend; ``None`` when the conflict budget ran out."""
    from .sweep import sat_sweep

    outcome = sat_sweep(first, second, seed=seed, **(sat_options or {}))
    if outcome.status == "equivalent":
        return EquivalenceResult(equivalent=True, method="sat-sweep")
    if outcome.status == "inequivalent":
        return EquivalenceResult(
            equivalent=False,
            method="sat-sweep",
            counterexample=outcome.counterexample,
            failing_output=outcome.failing_output,
        )
    return None


def _check_bdd(first, second) -> EquivalenceResult:
    from ..bdd.bdd import BddManager, build_output_bdds

    manager = BddManager()
    # Both networks must use the same variable order for node identity to
    # mean functional equality (PIs are matched by position).
    order = list(range(first.num_pis))
    bdds_first = build_output_bdds(manager, first, order)
    bdds_second = build_output_bdds(manager, second, order)
    for index, (a, b) in enumerate(zip(bdds_first, bdds_second)):
        if a != b:
            counterexample = _bdd_counterexample(
                manager, a, b, order, first.num_pis
            )
            return EquivalenceResult(
                equivalent=False,
                method="bdd",
                counterexample=counterexample,
                failing_output=index,
            )
    return EquivalenceResult(equivalent=True, method="bdd")


def _bdd_counterexample(
    manager, a: int, b: int, variable_order: Sequence[int], num_pis: int
) -> List[bool]:
    """Extract a distinguishing assignment from the XOR of two BDDs.

    ``a != b`` implies ``a XOR b`` is not the zero function; in a canonical
    ROBDD every non-zero node has a path to the ONE terminal, so a single
    top-down walk (preferring any non-zero child) finds a satisfying
    assignment.  Unconstrained inputs default to 0.
    """
    # BDD level of PI k is variable_order[k]; invert for the walk.
    pi_of_level = {level: k for k, level in enumerate(variable_order)}
    node = manager.xor_(a, b)
    assignment = [False] * num_pis
    while not manager.is_terminal(node):
        level = manager.variable_of(node)
        high = manager.high(node)
        if high != manager.zero():
            assignment[pi_of_level[level]] = True
            node = high
        else:
            node = manager.low(node)
    return assignment
