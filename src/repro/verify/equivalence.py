"""Combinational equivalence checking.

Every optimization pass in this library is function-preserving by
construction, and this module is how the test-suite and the flows *prove*
it on concrete instances:

* networks with at most :data:`EXHAUSTIVE_LIMIT` primary inputs are compared
  by exhaustive bit-parallel simulation (a complete decision procedure),
  run in blocks of at most 2^16 minterms so the simulation patterns stay
  bounded Python ints regardless of the input count — a 2^n-bit monolithic
  pattern for an n-input circuit would be a megabit-sized integer at
  n = 20;
* every check starts with a cheap 64-vector random pre-filter, so
  inequivalent pairs fail fast without paying for a full exhaustive (or
  wide random) sweep;
* larger networks are compared by randomized bit-parallel simulation with a
  configurable number of vectors (a falsifier: it can only find
  counterexamples, not prove equivalence) and, optionally, by building
  canonical BDDs of the outputs (complete, but memory-bound).

The two networks may be of different types (MIG vs AIG vs mapped netlist):
anything exposing ``pi_names() / po_names() / simulate_patterns()`` works.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "assert_equivalent",
    "EXHAUSTIVE_LIMIT",
]

#: Networks with at most this many primary inputs are checked exhaustively.
#: Chunked simulation keeps the per-block patterns at 2^16 bits, so the
#: limit is bounded by runtime (2^(n-16) simulation sweeps), not memory.
EXHAUSTIVE_LIMIT = 16

#: Exhaustive simulation runs in blocks of at most this many minterms.
_BLOCK_BITS = 16

#: Width of the fail-fast random pre-filter run before any complete check.
_PREFILTER_VECTORS = 64


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    counterexample: Optional[List[bool]] = None
    failing_output: Optional[int] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def check_equivalence(
    first,
    second,
    num_random_vectors: int = 4096,
    seed: int = 7,
    use_bdd: bool = False,
) -> EquivalenceResult:
    """Check whether two combinational networks compute the same functions.

    Inputs are matched by position (both networks must have the same number
    of PIs and POs; names are not required to coincide because the baseline
    flows rename internal signals).
    """
    if first.num_pis != second.num_pis:
        raise ValueError(
            f"PI count mismatch: {first.num_pis} vs {second.num_pis}"
        )
    if first.num_pos != second.num_pos:
        raise ValueError(
            f"PO count mismatch: {first.num_pos} vs {second.num_pos}"
        )

    # The prefilter only pays off in front of the exhaustive backend (the
    # wide-network paths below always start with a random sweep that
    # subsumes it — same seed, more vectors), and only when the exhaustive
    # sweep it precedes is actually wider than the prefilter itself.
    if _PREFILTER_VECTORS < (1 << first.num_pis) and first.num_pis <= EXHAUSTIVE_LIMIT:
        prefilter = _check_random(
            first, second, _PREFILTER_VECTORS, seed, method="random-prefilter"
        )
        if not prefilter.equivalent:
            return prefilter

    if first.num_pis <= EXHAUSTIVE_LIMIT:
        return _check_exhaustive(first, second)

    result = _check_random(first, second, num_random_vectors, seed)
    if not result.equivalent or not use_bdd:
        return result
    return _check_bdd(first, second)


def assert_equivalent(first, second, **kwargs) -> None:
    """Raise ``AssertionError`` with a readable message if not equivalent."""
    result = check_equivalence(first, second, **kwargs)
    if not result.equivalent:
        raise AssertionError(
            "networks are NOT equivalent "
            f"(method={result.method}, output index={result.failing_output}, "
            f"counterexample={result.counterexample})"
        )


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #
def _input_patterns_block(num_pis: int, start: int, block_bits: int) -> List[int]:
    """Simulation patterns covering minterms ``start .. start + block_bits``.

    Inputs whose period fits inside the block get the usual alternating
    projection pattern; higher inputs are constant across the whole block
    (their value is the corresponding bit of ``start``, which is always a
    multiple of the block size).
    """
    mask = (1 << block_bits) - 1
    patterns = []
    for i in range(num_pis):
        period_half = 1 << i
        if period_half >= block_bits:
            patterns.append(mask if (start >> i) & 1 else 0)
            continue
        block = (1 << period_half) - 1
        pattern = 0
        for offset in range(period_half, block_bits, period_half << 1):
            pattern |= block << offset
        patterns.append(pattern)
    return patterns


def _check_exhaustive(first, second) -> EquivalenceResult:
    num_pis = first.num_pis
    total = 1 << num_pis
    block_bits = min(total, 1 << _BLOCK_BITS)
    for start in range(0, total, block_bits):
        patterns = _input_patterns_block(num_pis, start, block_bits)
        out_first = first.simulate_patterns(patterns, block_bits)
        out_second = second.simulate_patterns(patterns, block_bits)
        for index, (a, b) in enumerate(zip(out_first, out_second)):
            if a != b:
                diff = a ^ b
                minterm = start + (diff & -diff).bit_length() - 1
                counterexample = [bool((minterm >> k) & 1) for k in range(num_pis)]
                return EquivalenceResult(
                    equivalent=False,
                    method="exhaustive",
                    counterexample=counterexample,
                    failing_output=index,
                )
    return EquivalenceResult(equivalent=True, method="exhaustive")


def _check_random(
    first, second, num_vectors: int, seed: int, method: str = "random-simulation"
) -> EquivalenceResult:
    rng = random.Random(seed)
    num_pis = first.num_pis
    patterns = [rng.getrandbits(num_vectors) for _ in range(num_pis)]
    out_first = first.simulate_patterns(patterns, num_vectors)
    out_second = second.simulate_patterns(patterns, num_vectors)
    for index, (a, b) in enumerate(zip(out_first, out_second)):
        if a != b:
            diff = a ^ b
            bit = (diff & -diff).bit_length() - 1
            counterexample = [bool((patterns[k] >> bit) & 1) for k in range(num_pis)]
            return EquivalenceResult(
                equivalent=False,
                method=method,
                counterexample=counterexample,
                failing_output=index,
            )
    return EquivalenceResult(equivalent=True, method=method)


def _check_bdd(first, second) -> EquivalenceResult:
    from ..bdd.bdd import BddManager, build_output_bdds

    manager = BddManager()
    # Both networks must use the same variable order for node identity to
    # mean functional equality (PIs are matched by position).
    order = list(range(first.num_pis))
    bdds_first = build_output_bdds(manager, first, order)
    bdds_second = build_output_bdds(manager, second, order)
    for index, (a, b) in enumerate(zip(bdds_first, bdds_second)):
        if a != b:
            return EquivalenceResult(
                equivalent=False, method="bdd", failing_output=index
            )
    return EquivalenceResult(equivalent=True, method="bdd")
