"""Combinational equivalence checking.

Every optimization pass in this library is function-preserving by
construction, and this module is how the test-suite and the flows *prove*
it on concrete instances:

* networks with at most :data:`EXHAUSTIVE_LIMIT` primary inputs are compared
  by exhaustive bit-parallel simulation (a complete decision procedure);
* larger networks are compared by randomized bit-parallel simulation with a
  configurable number of vectors (a falsifier: it can only find
  counterexamples, not prove equivalence) and, optionally, by building
  canonical BDDs of the outputs (complete, but memory-bound).

The two networks may be of different types (MIG vs AIG vs mapped netlist):
anything exposing ``pi_names() / po_names() / simulate_patterns()`` works.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

__all__ = [
    "EquivalenceResult",
    "check_equivalence",
    "assert_equivalent",
    "EXHAUSTIVE_LIMIT",
]

#: Networks with at most this many primary inputs are checked exhaustively.
EXHAUSTIVE_LIMIT = 14


@dataclass(frozen=True)
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    method: str
    counterexample: Optional[List[bool]] = None
    failing_output: Optional[int] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.equivalent


def check_equivalence(
    first,
    second,
    num_random_vectors: int = 4096,
    seed: int = 7,
    use_bdd: bool = False,
) -> EquivalenceResult:
    """Check whether two combinational networks compute the same functions.

    Inputs are matched by position (both networks must have the same number
    of PIs and POs; names are not required to coincide because the baseline
    flows rename internal signals).
    """
    if first.num_pis != second.num_pis:
        raise ValueError(
            f"PI count mismatch: {first.num_pis} vs {second.num_pis}"
        )
    if first.num_pos != second.num_pos:
        raise ValueError(
            f"PO count mismatch: {first.num_pos} vs {second.num_pos}"
        )

    if first.num_pis <= EXHAUSTIVE_LIMIT:
        return _check_exhaustive(first, second)

    result = _check_random(first, second, num_random_vectors, seed)
    if not result.equivalent or not use_bdd:
        return result
    return _check_bdd(first, second)


def assert_equivalent(first, second, **kwargs) -> None:
    """Raise ``AssertionError`` with a readable message if not equivalent."""
    result = check_equivalence(first, second, **kwargs)
    if not result.equivalent:
        raise AssertionError(
            "networks are NOT equivalent "
            f"(method={result.method}, output index={result.failing_output}, "
            f"counterexample={result.counterexample})"
        )


# --------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------- #
def _input_patterns_exhaustive(num_pis: int) -> List[int]:
    num_bits = 1 << num_pis
    patterns = []
    for i in range(num_pis):
        block = (1 << (1 << i)) - 1
        pattern = 0
        period = 1 << (i + 1)
        for start in range(1 << i, num_bits, period):
            pattern |= block << start
        patterns.append(pattern)
    return patterns


def _check_exhaustive(first, second) -> EquivalenceResult:
    num_pis = first.num_pis
    num_bits = 1 << num_pis
    patterns = _input_patterns_exhaustive(num_pis)
    out_first = first.simulate_patterns(patterns, num_bits)
    out_second = second.simulate_patterns(patterns, num_bits)
    for index, (a, b) in enumerate(zip(out_first, out_second)):
        if a != b:
            diff = a ^ b
            bit = (diff & -diff).bit_length() - 1
            counterexample = [bool((bit >> k) & 1) for k in range(num_pis)]
            return EquivalenceResult(
                equivalent=False,
                method="exhaustive",
                counterexample=counterexample,
                failing_output=index,
            )
    return EquivalenceResult(equivalent=True, method="exhaustive")


def _check_random(
    first, second, num_vectors: int, seed: int
) -> EquivalenceResult:
    rng = random.Random(seed)
    num_pis = first.num_pis
    patterns = [rng.getrandbits(num_vectors) for _ in range(num_pis)]
    out_first = first.simulate_patterns(patterns, num_vectors)
    out_second = second.simulate_patterns(patterns, num_vectors)
    for index, (a, b) in enumerate(zip(out_first, out_second)):
        if a != b:
            diff = a ^ b
            bit = (diff & -diff).bit_length() - 1
            counterexample = [bool((patterns[k] >> bit) & 1) for k in range(num_pis)]
            return EquivalenceResult(
                equivalent=False,
                method="random-simulation",
                counterexample=counterexample,
                failing_output=index,
            )
    return EquivalenceResult(equivalent=True, method="random-simulation")


def _check_bdd(first, second) -> EquivalenceResult:
    from ..bdd.bdd import BddManager, build_output_bdds

    manager = BddManager()
    # Both networks must use the same variable order for node identity to
    # mean functional equality (PIs are matched by position).
    order = list(range(first.num_pis))
    bdds_first = build_output_bdds(manager, first, order)
    bdds_second = build_output_bdds(manager, second, order)
    for index, (a, b) in enumerate(zip(bdds_first, bdds_second)):
        if a != b:
            return EquivalenceResult(
                equivalent=False, method="bdd", failing_output=index
            )
    return EquivalenceResult(equivalent=True, method="bdd")
