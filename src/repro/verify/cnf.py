"""Tseitin CNF encoding of logic networks, and miter construction.

The SAT-based equivalence path (:mod:`repro.verify.sweep`) needs one
uniform view of *any* of the library's network types — MIGs, AIGs, and
mapped standard-cell netlists.  This module provides it as a
:class:`GateGraph`: a flattened, type-agnostic gate list over shared
primary-input variables into which several networks can be encoded side by
side.  Each gate is ``(output var, truth table, input literals)`` where the
truth table is the *pure* local function (majority, AND, a library cell's
function — obtained from :meth:`LogicNetwork.gate_truth_table` or from
``Cell.evaluate``) and edge complementations live in the literals.

On top of the raw Tseitin translation the graph applies, per gate:

* constant folding and removal of duplicate / complementary / don't-care
  inputs;
* input-phase and output-phase normalization plus input sorting, yielding
  a small canonical form;
* structural hashing across *all* encoded networks — structure shared
  between the two sides of a miter becomes literally the same variable,
  which is what makes optimization-before/after miters cheap to prove;
* clause generation from two-level prime-implicant covers of the on- and
  off-set (AND gates cost 3 clauses, XOR 4, MAJ 6 — not the naive
  ``2^k`` minterm clauses).

Literals use the ``(var << 1) | complement`` convention shared with
:mod:`repro.core.signal` and :mod:`repro.verify.sat`.  Variable 0 is the
constant-false variable (pinned by a unit clause), variables ``1 ..
num_pis`` are the shared primary inputs.

:func:`build_miter` composes two same-interface networks into a single
graph plus per-output XOR literals; asserting any XOR literal (or the
aggregated :attr:`MiterCnf.output`) asks the SAT solver for a
distinguishing input pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .sat import SatSolver

__all__ = ["GateGraph", "MiterCnf", "encode_network", "build_miter", "eval_gate"]

#: Literals of the pinned constant variable 0.
FALSE_LIT = 0
TRUE_LIT = 1

_TT_AND2 = 0x8
_TT_XOR2 = 0x6
_TT_OR2 = 0xE
_TT_MAJ3 = 0xE8


def _tt_restrict(tt: int, k: int, i: int, value: int) -> int:
    """Cofactor ``tt`` with input ``i`` fixed to ``value`` (drops input ``i``)."""
    out = 0
    pos = 0
    for m in range(1 << k):
        if ((m >> i) & 1) == value:
            out |= ((tt >> m) & 1) << pos
            pos += 1
    return out


def _tt_flip_input(tt: int, k: int, i: int) -> int:
    """Truth table with input ``i`` complemented."""
    out = 0
    for m in range(1 << k):
        out |= ((tt >> (m ^ (1 << i))) & 1) << m
    return out


def _tt_permute(tt: int, k: int, perm: Sequence[int]) -> int:
    """Reorder inputs: new input ``i`` is old input ``perm[i]``."""
    out = 0
    for m in range(1 << k):
        m_orig = 0
        for i in range(k):
            m_orig |= ((m >> i) & 1) << perm[i]
        out |= ((tt >> m_orig) & 1) << m
    return out


def _prime_cover(tt: int, k: int, target: int) -> List[Tuple[int, int]]:
    """Greedy prime-implicant cover of ``{m : tt[m] == target}``.

    Cubes are ``(mask, value)`` pairs: input ``i`` is constrained to bit
    ``i`` of ``value`` iff bit ``i`` of ``mask`` is set.  Exact enough for
    the tiny (k <= 4) local functions of logic gates and library cells.
    """
    minterms = [m for m in range(1 << k) if ((tt >> m) & 1) == target]
    if not minterms:
        return []
    cubes = {((1 << k) - 1, m) for m in minterms}
    primes: set = set()
    while cubes:
        merged = set()
        next_cubes = set()
        cube_list = sorted(cubes)
        for a in range(len(cube_list)):
            mask_a, val_a = cube_list[a]
            for b in range(a + 1, len(cube_list)):
                mask_b, val_b = cube_list[b]
                if mask_a != mask_b:
                    continue
                diff = val_a ^ val_b
                if diff and not (diff & (diff - 1)):
                    next_cubes.add((mask_a & ~diff, val_a & ~diff))
                    merged.add(cube_list[a])
                    merged.add(cube_list[b])
        primes |= cubes - merged
        cubes = next_cubes

    remaining = set(minterms)
    cover: List[Tuple[int, int]] = []
    candidates = sorted(primes)
    while remaining:
        best = max(
            candidates,
            key=lambda c: sum(1 for m in remaining if (m & c[0]) == c[1]),
        )
        cover.append(best)
        remaining -= {m for m in remaining if (m & best[0]) == best[1]}
    return cover


_COVER_CACHE: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}


def _cached_cover(tt: int, k: int, target: int) -> List[Tuple[int, int]]:
    key = (tt, k, target)
    cover = _COVER_CACHE.get(key)
    if cover is None:
        cover = _COVER_CACHE[key] = _prime_cover(tt, k, target)
    return cover


class GateGraph:
    """A flattened multi-network Tseitin context over shared primary inputs."""

    def __init__(self, num_pis: int) -> None:
        self.num_pis = num_pis
        self.num_vars = 1 + num_pis
        # Unit clause pinning variable 0 to false.
        self.clauses: List[List[int]] = [[TRUE_LIT]]
        #: Gate list in topological order: ``(out_var, tt, in_lits)``.
        self.gates: List[Tuple[int, int, Tuple[int, ...]]] = []
        self._strash: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def pi_lit(self, index: int) -> int:
        """Literal of the ``index``-th shared primary input."""
        if not 0 <= index < self.num_pis:
            raise IndexError(f"PI index {index} out of range")
        return (1 + index) << 1

    def pi_vars(self) -> List[int]:
        return list(range(1, 1 + self.num_pis))

    # ------------------------------------------------------------------ #
    # Gate construction
    # ------------------------------------------------------------------ #
    def add_gate(self, tt: int, in_lits: Sequence[int]) -> int:
        """Add (or reuse) a gate computing ``tt`` over ``in_lits``.

        Returns the literal of the gate function.  The gate is normalized
        (constants folded, duplicate and don't-care inputs removed, input
        and output phases canonicalized, inputs sorted) and structurally
        hashed, so logically identical gates — across all networks encoded
        into this graph — share one variable.
        """
        lits = list(in_lits)
        k = len(lits)

        # Fold constant and duplicate inputs.
        changed = True
        while changed:
            changed = False
            for i in range(k):
                var = lits[i] >> 1
                if var == 0:
                    tt = _tt_restrict(tt, k, i, lits[i] & 1)
                    del lits[i]
                    k -= 1
                    changed = True
                    break
                for j in range(i):
                    if (lits[j] >> 1) != var:
                        continue
                    if lits[j] == lits[i]:
                        # x_i == x_j: keep only the minterms where they agree.
                        tt = _tt_restrict(
                            _tt_merge_equal(tt, k, j, i, flip=0), k, i, 0
                        )
                    else:
                        tt = _tt_restrict(
                            _tt_merge_equal(tt, k, j, i, flip=1), k, i, 0
                        )
                    del lits[i]
                    k -= 1
                    changed = True
                    break
                if changed:
                    break

        # Drop don't-care inputs.
        i = 0
        while i < k:
            if _tt_restrict(tt, k, i, 0) == _tt_restrict(tt, k, i, 1):
                tt = _tt_restrict(tt, k, i, 0)
                del lits[i]
                k -= 1
            else:
                i += 1

        # Normalize input phases into the truth table and sort inputs.
        for i in range(k):
            if lits[i] & 1:
                tt = _tt_flip_input(tt, k, i)
                lits[i] ^= 1
        perm = sorted(range(k), key=lambda i: lits[i])
        if perm != list(range(k)):
            tt = _tt_permute(tt, k, perm)
            lits = [lits[i] for i in perm]

        # Trivial functions after folding.
        if k == 0:
            return TRUE_LIT if tt & 1 else FALSE_LIT
        if k == 1:
            return lits[0] if tt == 0b10 else lits[0] ^ 1

        # Normalize output phase: stored gates satisfy f(0, ..., 0) = 0.
        out_flip = tt & 1
        if out_flip:
            tt ^= (1 << (1 << k)) - 1

        key = (tt, tuple(lits))
        existing = self._strash.get(key)
        if existing is not None:
            return (existing << 1) | out_flip

        var = self.num_vars
        self.num_vars += 1
        self._strash[key] = var
        self.gates.append((var, tt, tuple(lits)))
        self._emit_clauses(var, tt, lits, k)
        return (var << 1) | out_flip

    def _emit_clauses(self, var: int, tt: int, lits: List[int], k: int) -> None:
        out_lit = var << 1
        append = self.clauses.append
        # Off-set cubes imply the output false, on-set cubes imply it true.
        for target, out in ((0, out_lit ^ 1), (1, out_lit)):
            for mask, value in _cached_cover(tt, k, target):
                clause = [
                    lits[i] ^ ((value >> i) & 1)
                    for i in range(k)
                    if (mask >> i) & 1
                ]
                clause.append(out)
                append(clause)

    def xor_lit(self, a: int, b: int) -> int:
        return self.add_gate(_TT_XOR2, (a, b))

    def or_tree(self, lits: Sequence[int]) -> int:
        """Balanced OR over ``lits`` (FALSE for an empty sequence)."""
        layer = list(lits)
        if not layer:
            return FALSE_LIT
        while len(layer) > 1:
            nxt = []
            for i in range(0, len(layer) - 1, 2):
                nxt.append(self.add_gate(_TT_OR2, (layer[i], layer[i + 1])))
            if len(layer) & 1:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    # ------------------------------------------------------------------ #
    # Consumption
    # ------------------------------------------------------------------ #
    def load_into(self, solver: SatSolver) -> None:
        """Allocate this graph's variables and clauses into ``solver``."""
        solver.ensure_vars(self.num_vars)
        for clause in self.clauses:
            solver.add_clause(clause)

    def simulate(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel evaluation; returns one pattern per variable."""
        if len(pi_patterns) != self.num_pis:
            raise ValueError(
                f"expected {self.num_pis} PI patterns, got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values = [0] * self.num_vars
        for i, pattern in enumerate(pi_patterns):
            values[1 + i] = pattern & mask
        for var, tt, lits in self.gates:
            values[var] = eval_gate(values, tt, lits, mask)
        return values

    def lit_value(self, values: Sequence[int], lit: int, mask: int) -> int:
        v = values[lit >> 1]
        return (~v & mask) if lit & 1 else v


def eval_gate(values: Sequence[int], tt: int, lits: Sequence[int], mask: int) -> int:
    """Bit-parallel evaluation of one gate over per-variable patterns."""
    k = len(lits)
    # Fast paths must check the arity too: a 3-input function can share the
    # numeric truth-table value of a 2-input one (e.g. tt 0x6 at k == 3).
    if k == 2:
        if tt == _TT_AND2:
            a = values[lits[0] >> 1] ^ (mask if lits[0] & 1 else 0)
            b = values[lits[1] >> 1] ^ (mask if lits[1] & 1 else 0)
            return a & b
        if tt == _TT_XOR2:
            return (
                values[lits[0] >> 1] ^ values[lits[1] >> 1]
                ^ (mask if (lits[0] ^ lits[1]) & 1 else 0)
            ) & mask
    elif k == 3 and tt == _TT_MAJ3:
        a = values[lits[0] >> 1] ^ (mask if lits[0] & 1 else 0)
        b = values[lits[1] >> 1] ^ (mask if lits[1] & 1 else 0)
        c = values[lits[2] >> 1] ^ (mask if lits[2] & 1 else 0)
        return (a & b) | (a & c) | (b & c)
    out = 0
    for m in range(1 << k):
        if not (tt >> m) & 1:
            continue
        term = mask
        for i in range(k):
            v = values[lits[i] >> 1] ^ (mask if lits[i] & 1 else 0)
            term &= v if (m >> i) & 1 else ~v & mask
            if not term:
                break
        out |= term
    return out


def _tt_merge_equal(tt: int, k: int, j: int, i: int, flip: int) -> int:
    """Constrain ``x_i = x_j ^ flip`` without dropping input ``i`` yet.

    Every minterm where the constraint is violated is replaced by the value
    the function takes on the corresponding consistent minterm, so the
    later ``_tt_restrict(tt, k, i, 0)`` (with the flip already folded into
    bit ``j``) yields the merged function.
    """
    out = 0
    for m in range(1 << k):
        consistent = (m & ~(1 << i)) | ((((m >> j) & 1) ^ flip) << i)
        out |= ((tt >> consistent) & 1) << m
    return out


# --------------------------------------------------------------------- #
# Network encoding (duck-typed: LogicNetwork subclasses + MappedNetlist)
# --------------------------------------------------------------------- #
def encode_network(graph: GateGraph, network, add_gate=None) -> List[int]:
    """Tseitin-encode ``network`` into ``graph``; returns PO literals.

    Accepts any :class:`~repro.network.base.LogicNetwork` subclass (MIG,
    AIG) or a :class:`~repro.mapping.netlist.MappedNetlist`.  Primary
    inputs are matched by position onto the graph's shared PI variables.
    ``add_gate`` overrides the gate constructor — the sweeping engine
    injects its proving/substituting wrapper here so every encoded gate is
    canonicalized against the already-proven equivalence classes.
    """
    if network.num_pis != graph.num_pis:
        raise ValueError(
            f"network has {network.num_pis} PIs, graph expects {graph.num_pis}"
        )
    if add_gate is None:
        add_gate = graph.add_gate
    if hasattr(network, "instances") and hasattr(network, "library"):
        return _encode_netlist(graph, network, add_gate)
    return _encode_logic_network(graph, network, add_gate)


def _encode_logic_network(graph: GateGraph, network, add_gate) -> List[int]:
    from ..codegen.ir import network_ir  # lazy: repro.codegen imports us

    return _encode_program(graph, network_ir(network), add_gate)


def _encode_netlist(graph: GateGraph, netlist, add_gate) -> List[int]:
    from ..codegen.ir import netlist_ir  # lazy: repro.codegen imports us

    return _encode_program(graph, netlist_ir(netlist), add_gate)


def _encode_program(graph: GateGraph, program, add_gate) -> List[int]:
    """Encode a flattened :class:`~repro.codegen.ir.SimProgram`.

    The same cached traversal that drives the generated simulation
    kernels drives the CNF encode: slot 0 is the constant (so a
    complemented edge to it is ``TRUE_LIT``), per-gate truth tables are
    resolved once at flattening time, and undriven netlist slots stay at
    ``FALSE_LIT`` — all matching the previous per-network walks.
    """
    slot_lit = [FALSE_LIT] * program.num_slots
    for index, slot in enumerate(program.pi_slots):
        slot_lit[slot] = graph.pi_lit(index)
    for out, tt, edges in program.gates:
        in_lits = tuple(slot_lit[e >> 1] ^ (e & 1) for e in edges)
        slot_lit[out] = add_gate(tt, in_lits)
    return [slot_lit[e >> 1] ^ (e & 1) for e in program.po_edges]


# --------------------------------------------------------------------- #
# Miters
# --------------------------------------------------------------------- #
@dataclass
class MiterCnf:
    """Two same-interface networks encoded side by side over shared PIs."""

    graph: GateGraph
    pos_first: List[int]
    pos_second: List[int]
    #: Per-output XOR literals: ``xors[i]`` is true iff output ``i`` differs.
    xors: List[int] = field(default_factory=list)
    #: Literal of the aggregated miter output (OR of all XORs).
    output: int = FALSE_LIT


def build_miter(first, second) -> MiterCnf:
    """Encode ``first`` and ``second`` into one graph with a miter on top.

    The networks must agree on PI and PO counts (matched by position, like
    :func:`repro.verify.equivalence.check_equivalence`).
    """
    if first.num_pis != second.num_pis:
        raise ValueError(
            f"PI count mismatch: {first.num_pis} vs {second.num_pis}"
        )
    if first.num_pos != second.num_pos:
        raise ValueError(
            f"PO count mismatch: {first.num_pos} vs {second.num_pos}"
        )
    graph = GateGraph(first.num_pis)
    pos_first = encode_network(graph, first)
    pos_second = encode_network(graph, second)
    miter = MiterCnf(graph, pos_first, pos_second)
    miter.xors = [graph.xor_lit(a, b) for a, b in zip(pos_first, pos_second)]
    miter.output = graph.or_tree(miter.xors)
    return miter
