"""Standard-cell library for the synthesis experiments (Section V-B).

The paper characterises a CMOS 22-nm library containing MIN-3, MAJ-3,
XOR-2, XNOR-2, NAND-2, NOR-2 and INV cells.  The real characterisation data
is proprietary (PTM-based), so this module ships a normalised library with
22-nm-class *relative* values: area in µm², pin-to-pin delay in ns and a
switching-energy coefficient used by the power estimator.  The absolute
numbers are calibrated so that netlists of a few hundred cells land in the
same order of magnitude as Table I (tens to hundreds of µm², around a
nanosecond, hundreds of µW); what matters for the reproduction is that all
three flows are measured with the *same* library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Cell", "CellLibrary", "default_library", "nand_nor_library"]


@dataclass(frozen=True)
class Cell:
    """One combinational standard cell."""

    name: str
    num_inputs: int
    area: float          # µm²
    delay: float         # ns, worst pin-to-output
    energy: float        # normalised switching energy (fJ per transition)
    leakage: float       # µW of static leakage

    def evaluate(self, inputs: Sequence[int], mask: int) -> int:
        """Bit-parallel evaluation of the cell function (for verification)."""
        if self.name == "INV":
            return (~inputs[0]) & mask
        if self.name == "BUF":
            return inputs[0] & mask
        if self.name == "NAND2":
            return (~(inputs[0] & inputs[1])) & mask
        if self.name == "NOR2":
            return (~(inputs[0] | inputs[1])) & mask
        if self.name == "AND2":
            return inputs[0] & inputs[1] & mask
        if self.name == "OR2":
            return (inputs[0] | inputs[1]) & mask
        if self.name == "XOR2":
            return (inputs[0] ^ inputs[1]) & mask
        if self.name == "XNOR2":
            return (~(inputs[0] ^ inputs[1])) & mask
        if self.name == "MAJ3":
            a, b, c = inputs
            return ((a & b) | (a & c) | (b & c)) & mask
        if self.name == "MIN3":
            a, b, c = inputs
            return (~((a & b) | (a & c) | (b & c))) & mask
        raise ValueError(f"unknown cell {self.name!r}")


class CellLibrary:
    """A named collection of cells indexed by cell name."""

    def __init__(self, name: str, cells: Sequence[Cell]) -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {cell.name: cell for cell in cells}

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __getitem__(self, name: str) -> Cell:
        return self._cells[name]

    def cell_names(self) -> List[str]:
        return list(self._cells)

    def cells(self) -> List[Cell]:
        return list(self._cells.values())

    @property
    def has_majority_cells(self) -> bool:
        return "MAJ3" in self._cells or "MIN3" in self._cells


def default_library() -> CellLibrary:
    """The 7-cell library of the paper (plus BUF/AND2/OR2 helpers)."""
    return CellLibrary(
        "cmos22_maj",
        [
            Cell("INV", 1, area=0.10, delay=0.008, energy=0.6, leakage=0.004),
            Cell("BUF", 1, area=0.13, delay=0.012, energy=0.8, leakage=0.005),
            Cell("NAND2", 2, area=0.15, delay=0.015, energy=1.0, leakage=0.007),
            Cell("NOR2", 2, area=0.15, delay=0.017, energy=1.0, leakage=0.007),
            Cell("AND2", 2, area=0.20, delay=0.022, energy=1.3, leakage=0.009),
            Cell("OR2", 2, area=0.20, delay=0.024, energy=1.3, leakage=0.009),
            Cell("XOR2", 2, area=0.30, delay=0.028, energy=2.0, leakage=0.012),
            Cell("XNOR2", 2, area=0.30, delay=0.028, energy=2.0, leakage=0.012),
            # MIN3 is a single static complex gate (comparable to an AOI21);
            # MAJ3 is its complement.  Keeping them close to NAND-class delay
            # is what makes preserving MIG nodes during mapping worthwhile
            # (Section V-B discussion).
            Cell("MAJ3", 3, area=0.28, delay=0.024, energy=1.8, leakage=0.012),
            Cell("MIN3", 3, area=0.26, delay=0.022, energy=1.7, leakage=0.011),
        ],
    )


def nand_nor_library() -> CellLibrary:
    """A library without MAJ/MIN cells (used by the library ablation bench)."""
    base = default_library()
    cells = [cell for cell in base.cells() if cell.name not in ("MAJ3", "MIN3")]
    return CellLibrary("cmos22_nand_nor", cells)
