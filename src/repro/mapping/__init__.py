"""Standard-cell library, technology mapping and gate-level estimation."""

from .library import Cell, CellLibrary, default_library, nand_nor_library
from .mapper import map_aig, map_mig, map_network
from .netlist import CellInstance, MappedNetlist

__all__ = [
    "Cell",
    "CellLibrary",
    "default_library",
    "nand_nor_library",
    "map_mig",
    "map_aig",
    "map_network",
    "MappedNetlist",
    "CellInstance",
]
