"""Structural technology mapping onto the standard-cell library.

The paper maps optimized MIGs (and the baseline AIGs) onto a 22-nm library
containing MIN-3 / MAJ-3 / XOR-2 / XNOR-2 / NAND-2 / NOR-2 / INV cells with
a proprietary mapper.  This module provides the reproduction's mapper: a
structural covering that

* recognises XOR / XNOR cones (the 3-node majority pattern and the 3-node
  AND pattern) and maps them to the dedicated XOR2 / XNOR2 cells,
* maps majority nodes with a constant operand to AND2 / OR2 / NAND2 / NOR2
  (absorbing input complementation through De Morgan where possible),
* maps full three-input majority nodes to MAJ3 / MIN3 — "natively
  recognise and preserve MIG nodes" as Section V-B puts it,
* materialises remaining edge complementations as INV cells (cached per
  node so each polarity is generated at most once).

Both network types (MIG and AIG) go through the *same* mapper, as in the
paper's methodology; only the subject graph differs.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.signal import CONST_FALSE, CONST_TRUE, is_complemented, negate, node_of
from .library import CellLibrary, default_library
from .netlist import MappedNetlist

__all__ = ["map_mig", "map_aig", "map_network"]


class _MappingContext:
    """Bookkeeping shared by the MIG and AIG mappers."""

    def __init__(self, name: str, library: CellLibrary, pi_names) -> None:
        self.netlist = MappedNetlist(name, library)
        self.library = library
        self.node_net: Dict[int, str] = {}
        self.inverted_net: Dict[int, str] = {}
        self.const_nets: Dict[bool, Optional[str]] = {False: None, True: None}
        for pi in pi_names:
            self.netlist.add_pi(pi)

    def constant_net(self, value: bool) -> str:
        if self.const_nets[value] is None:
            net = f"const{1 if value else 0}"
            self.netlist.add_constant(net, value)
            self.const_nets[value] = net
        return self.const_nets[value]

    def literal(self, signal: int) -> str:
        """Net carrying the value of ``signal`` (INV inserted on demand)."""
        if signal == CONST_FALSE:
            return self.constant_net(False)
        if signal == CONST_TRUE:
            return self.constant_net(True)
        node = node_of(signal)
        if not is_complemented(signal):
            return self.node_net[node]
        if node not in self.inverted_net:
            inv_net = f"{self.node_net[node]}_n"
            self.netlist.add_cell("INV", inv_net, [self.node_net[node]])
            self.inverted_net[node] = inv_net
        return self.inverted_net[node]


def map_network(network, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map a MIG or an AIG onto ``library`` (the default 7-cell library)."""
    from ..aig.aig import Aig
    from ..core.mig import Mig

    if isinstance(network, Mig):
        return map_mig(network, library)
    if isinstance(network, Aig):
        return map_aig(network, library)
    raise TypeError(f"cannot map network of type {type(network)!r}")


# --------------------------------------------------------------------- #
# MIG mapping
# --------------------------------------------------------------------- #
def map_mig(mig, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map a MIG onto the standard-cell library."""
    library = library or default_library()
    ctx = _MappingContext(mig.name, library, mig.pi_names())
    for node, name in zip(mig.pi_nodes(), mig.pi_names()):
        ctx.node_net[node] = name

    order = mig.topological_order()
    fanout_refs = {node: mig.fanout_size(node) for node in order}
    absorbed = set()

    for node in order:
        if node in absorbed:
            continue
        net_name = f"n{node}"
        xor_match = _match_mig_xor(mig, node, fanout_refs) if "XOR2" in library else None
        if xor_match is not None:
            a, b, inner_nodes, is_xnor = xor_match
            cell = "XNOR2" if is_xnor else "XOR2"
            ctx.netlist.add_cell(cell, net_name, [ctx.literal(a), ctx.literal(b)])
            absorbed.update(inner_nodes)
            ctx.node_net[node] = net_name
            continue

        fanins = mig.fanins(node)
        constants = [f for f in fanins if f in (CONST_FALSE, CONST_TRUE)]
        if constants:
            const = constants[0]
            others = [f for f in fanins if f != const]
            a, b = others[0], others[1]
            _map_two_input(ctx, net_name, a, b, is_or=(const == CONST_TRUE))
        else:
            _map_majority(ctx, net_name, fanins)
        ctx.node_net[node] = net_name

    for po, name in zip(mig.po_signals(), mig.po_names()):
        ctx.netlist.add_po(_po_net(ctx, po), name)
    return ctx.netlist


def _map_two_input(ctx: _MappingContext, net: str, a: int, b: int, is_or: bool) -> None:
    """Map ``a AND b`` / ``a OR b`` choosing NAND/NOR when it saves inverters."""
    library = ctx.library
    both_complemented = is_complemented(a) and is_complemented(b)
    if both_complemented and not is_or and "NOR2" in library:
        # a' · b' = NOR(a, b)
        ctx.netlist.add_cell("NOR2", net, [ctx.literal(negate(a)), ctx.literal(negate(b))])
        return
    if both_complemented and is_or and "NAND2" in library:
        # a' + b' = NAND(a, b)
        ctx.netlist.add_cell("NAND2", net, [ctx.literal(negate(a)), ctx.literal(negate(b))])
        return
    cell = "OR2" if is_or else "AND2"
    if cell not in library:
        # Fall back to NAND/NOR + INV.
        base = "NAND2" if not is_or else "NOR2"
        tmp = f"{net}_x"
        ctx.netlist.add_cell(base, tmp, [ctx.literal(a), ctx.literal(b)])
        ctx.netlist.add_cell("INV", net, [tmp])
        return
    ctx.netlist.add_cell(cell, net, [ctx.literal(a), ctx.literal(b)])


def _map_majority(ctx: _MappingContext, net: str, fanins) -> None:
    """Map a full three-input majority node."""
    library = ctx.library
    complemented_count = sum(1 for f in fanins if is_complemented(f))
    if "MIN3" in library and complemented_count >= 2:
        # M(a', b', c') = MIN3(a, b, c)' ... better: M with two complements is
        # cheaper as MIN3 of the mixed literals followed by the remaining INV
        # absorbed through De Morgan: M(a',b',c) = (M(a,b,c'))'.
        literals = [ctx.literal(negate(f)) for f in fanins]
        tmp = f"{net}_m"
        ctx.netlist.add_cell("MIN3", net, literals)
        return
    if "MAJ3" in library:
        ctx.netlist.add_cell("MAJ3", net, [ctx.literal(f) for f in fanins])
        return
    # No majority cells (ablation library): expand into AND/OR gates.
    a, b, c = fanins
    ab = ctx.netlist.add_cell("AND2", f"{net}_ab", [ctx.literal(a), ctx.literal(b)])
    aob = ctx.netlist.add_cell("OR2", f"{net}_aob", [ctx.literal(a), ctx.literal(b)])
    cab = ctx.netlist.add_cell("AND2", f"{net}_cab", [ctx.literal(c), aob])
    ctx.netlist.add_cell("OR2", net, [ab, cab])


def _match_mig_xor(mig, node: int, fanout_refs) -> Optional[Tuple[int, int, set, bool]]:
    """Detect the 3-node XOR pattern ``AND(NAND(a,b), OR(a,b))`` in a MIG."""
    fanins = mig.fanins(node)
    if CONST_FALSE not in fanins:
        return None
    others = [f for f in fanins if f != CONST_FALSE]
    if len(others) != 2:
        return None
    first, second = others
    # Expect one complemented AND child and one regular OR child.
    candidates = [(first, second), (second, first)]
    for nand_edge, or_edge in candidates:
        if not is_complemented(nand_edge) or is_complemented(or_edge):
            continue
        nand_node, or_node = node_of(nand_edge), node_of(or_edge)
        if not (mig.is_maj(nand_node) and mig.is_maj(or_node)):
            continue
        nand_fanins = mig.fanins(nand_node)
        or_fanins = mig.fanins(or_node)
        if CONST_FALSE not in nand_fanins or CONST_TRUE not in or_fanins:
            continue
        nand_ops = sorted(f for f in nand_fanins if f != CONST_FALSE)
        or_ops = sorted(f for f in or_fanins if f != CONST_TRUE)
        if nand_ops != or_ops or len(nand_ops) != 2:
            continue
        # Only absorb the inner nodes when they are not shared elsewhere.
        if fanout_refs.get(nand_node, 2) > 1 or fanout_refs.get(or_node, 2) > 1:
            continue
        a, b = nand_ops
        # node = AND(NAND(a,b), OR(a,b)) = XOR(a, b); fold literal polarities
        # into the cell choice so no INV cells are needed for them.
        is_xnor = False
        if is_complemented(a):
            a, is_xnor = negate(a), not is_xnor
        if is_complemented(b):
            b, is_xnor = negate(b), not is_xnor
        return a, b, {nand_node, or_node}, is_xnor
    return None


# --------------------------------------------------------------------- #
# AIG mapping
# --------------------------------------------------------------------- #
def map_aig(aig, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map an AIG onto the standard-cell library."""
    library = library or default_library()
    ctx = _MappingContext(aig.name, library, aig.pi_names())
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        ctx.node_net[node] = name

    order = aig.topological_order()
    fanout_refs: Dict[int, int] = {}
    for node in order:
        for f in aig.fanins(node):
            fn = node_of(f)
            fanout_refs[fn] = fanout_refs.get(fn, 0) + 1
    for po in aig.po_signals():
        fn = node_of(po)
        fanout_refs[fn] = fanout_refs.get(fn, 0) + 1

    absorbed = set()
    for node in order:
        if node in absorbed:
            continue
        net_name = f"n{node}"
        xor_match = _match_aig_xor(aig, node, fanout_refs) if "XOR2" in library else None
        if xor_match is not None:
            a, b, inner_nodes, is_xnor = xor_match
            cell = "XNOR2" if is_xnor else "XOR2"
            ctx.netlist.add_cell(cell, net_name, [ctx.literal(a), ctx.literal(b)])
            absorbed.update(inner_nodes)
            ctx.node_net[node] = net_name
            continue
        a, b = aig.fanins(node)
        _map_two_input(ctx, net_name, a, b, is_or=False)
        ctx.node_net[node] = net_name

    for po, name in zip(aig.po_signals(), aig.po_names()):
        ctx.netlist.add_po(_po_net(ctx, po), name)
    return ctx.netlist


def _match_aig_xor(aig, node: int, fanout_refs) -> Optional[Tuple[int, int, set, bool]]:
    """Detect ``!(x1·x2) · !(x1'·x2') = XOR(x1, x2)`` rooted at an AND node."""
    a_edge, b_edge = aig.fanins(node)
    if not (is_complemented(a_edge) and is_complemented(b_edge)):
        return None
    left, right = node_of(a_edge), node_of(b_edge)
    if not (aig.is_and(left) and aig.is_and(right)):
        return None
    left_ops = set(aig.fanins(left))
    right_ops = set(aig.fanins(right))
    if left_ops != {negate(s) for s in right_ops}:
        return None
    if fanout_refs.get(left, 2) > 1 or fanout_refs.get(right, 2) > 1:
        return None
    x1, x2 = sorted(left_ops)
    # node = !(x1·x2) · !(x1'·x2') = XOR(x1, x2); absorb literal polarities.
    is_xnor = False
    if is_complemented(x1):
        x1, is_xnor = negate(x1), not is_xnor
    if is_complemented(x2):
        x2, is_xnor = negate(x2), not is_xnor
    return x1, x2, {left, right}, is_xnor


def _po_net(ctx: _MappingContext, po_signal: int) -> str:
    """Net for a primary-output signal (an INV or BUF is emitted if needed)."""
    return ctx.literal(po_signal)
