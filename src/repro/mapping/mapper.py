"""Structural technology mapping onto the standard-cell library.

The paper maps optimized MIGs (and the baseline AIGs) onto a 22-nm library
containing MIN-3 / MAJ-3 / XOR-2 / XNOR-2 / NAND-2 / NOR-2 / INV cells with
a proprietary mapper.  This module provides the reproduction's mapper: a
structural covering that

* matches multi-node cones against complex-cell functions (XOR2/XNOR2,
  MAJ3/MIN3) through k-feasible cut enumeration and NPN canonicalization —
  the cut function of a cone is canonicalized and compared against the
  canonicalized *cell* functions of the library, so any cone computing an
  XOR (in either network type, under any edge polarities) maps to one XOR
  cell, not just the hand-picked 3-node patterns,
* maps majority nodes with a constant operand to AND2 / OR2 / NAND2 / NOR2
  (absorbing input complementation through De Morgan where possible),
* maps full three-input majority nodes to MAJ3 / MIN3 — "natively
  recognise and preserve MIG nodes" as Section V-B puts it,
* materialises remaining edge complementations as INV cells (cached per
  node so each polarity is generated at most once).

Cell matches are selected root-first (reverse topological order) *before*
any cell is emitted, so the interior nodes of a matched cone are never
materialised — absorbing a cone no longer leaves dead cells behind.

Both network types (MIG and AIG) go through the *same* mapper, as in the
paper's methodology; only the subject graph differs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.signal import (
    CONST_FALSE,
    CONST_TRUE,
    is_complemented,
    make_signal,
    negate,
    node_of,
)
from ..network.cuts import CutManager, cut_cone
from ..network.npn import (
    PROJECTIONS,
    NpnTransform,
    apply_transform,
    compose_transforms,
    extend_table,
    invert_transform,
    npn_canonical,
)
from .library import CellLibrary, default_library
from .netlist import MappedNetlist

__all__ = ["map_mig", "map_aig", "map_network"]

_FULL = 0xFFFF

#: Complex cells matched through cut functions, as (cell, complement-cell)
#: pairs so an output complementation selects the sibling instead of an INV.
_MATCHABLE_CELL_PAIRS = (("XOR2", "XNOR2"), ("MAJ3", "MIN3"))


class _MappingContext:
    """Bookkeeping shared by the MIG and AIG mappers."""

    def __init__(self, name: str, library: CellLibrary, pi_names) -> None:
        self.netlist = MappedNetlist(name, library)
        self.library = library
        self.node_net: Dict[int, str] = {}
        self.inverted_net: Dict[int, str] = {}
        self.const_nets: Dict[bool, Optional[str]] = {False: None, True: None}
        for pi in pi_names:
            self.netlist.add_pi(pi)

    def constant_net(self, value: bool) -> str:
        if self.const_nets[value] is None:
            net = f"const{1 if value else 0}"
            self.netlist.add_constant(net, value)
            self.const_nets[value] = net
        return self.const_nets[value]

    def literal(self, signal: int) -> str:
        """Net carrying the value of ``signal`` (INV inserted on demand)."""
        if signal == CONST_FALSE:
            return self.constant_net(False)
        if signal == CONST_TRUE:
            return self.constant_net(True)
        node = node_of(signal)
        if not is_complemented(signal):
            return self.node_net[node]
        if node not in self.inverted_net:
            inv_net = f"{self.node_net[node]}_n"
            self.netlist.add_cell("INV", inv_net, [self.node_net[node]])
            self.inverted_net[node] = inv_net
        return self.inverted_net[node]


def map_network(network, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map a MIG or an AIG onto ``library`` (the default 7-cell library)."""
    from ..aig.aig import Aig
    from ..core.mig import Mig

    if isinstance(network, Mig):
        return map_mig(network, library)
    if isinstance(network, Aig):
        return map_aig(network, library)
    raise TypeError(f"cannot map network of type {type(network)!r}")


# --------------------------------------------------------------------- #
# Cut + NPN matching of complex library cells
# --------------------------------------------------------------------- #
class _CellTemplate:
    """One matchable library cell pair, canonicalized once per mapping."""

    __slots__ = ("cell", "complement_cell", "arity", "table", "to_canonical", "foldable")

    def __init__(self, cell: str, complement_cell: str, arity: int, table: int) -> None:
        self.cell = cell
        self.complement_cell = complement_cell
        self.arity = arity
        self.table = table
        _, self.to_canonical = npn_canonical(table)
        # Input positions whose complementation is equivalent to
        # complementing the output (true for every XOR input, no MAJ input),
        # letting the match fold input polarities into the sibling choice.
        self.foldable = tuple(
            apply_transform(table, NpnTransform((0, 1, 2, 3), 1 << i, False))
            == table ^ _FULL
            for i in range(arity)
        )


def _cell_truth_table(cell) -> int:
    """Cell function over its own inputs, in the 4-variable space.

    The cell evaluation is bit-parallel, so feeding it the 4-variable
    projection patterns directly yields the padded table in one step.
    """
    return cell.evaluate(PROJECTIONS[: cell.num_inputs], _FULL)


def _cell_templates(library: CellLibrary) -> Dict[int, List[_CellTemplate]]:
    """Canonical-class index of the library's matchable complex cells."""
    templates: Dict[int, List[_CellTemplate]] = {}
    for cell, complement_cell in _MATCHABLE_CELL_PAIRS:
        if cell not in library or complement_cell not in library:
            continue
        template = _CellTemplate(
            cell,
            complement_cell,
            library[cell].num_inputs,
            _cell_truth_table(library[cell]),
        )
        canonical, _ = npn_canonical(template.table)
        templates.setdefault(canonical, []).append(template)
    return templates


def _match_template(
    template: _CellTemplate,
    leaves: Tuple[int, ...],
    table: int,
    cut_transform,
) -> Optional[Tuple[str, List[Tuple[int, bool]]]]:
    """Bind a cut function onto a cell template.

    Computes the transform expressing the cut function *from* the cell
    function and turns it into a pin assignment: which leaf drives which
    cell input, with which polarity, and whether the complement sibling
    realises the output polarity.  Returns ``None`` when the cut does not
    use every leaf (which would leave dangling logic behind).
    """
    if len(leaves) != template.arity:
        return None
    # cut = apply(cell, compose(cell→canon, canon→cut)).
    transform = compose_transforms(template.to_canonical, invert_transform(cut_transform))
    if apply_transform(template.table, transform) != table:
        return None
    perm_inv = [0, 0, 0, 0]
    for j, p in enumerate(transform.perm):
        perm_inv[p] = j
    output_neg = transform.output_neg
    pins: List[Tuple[int, bool]] = []
    used = set()
    for i in range(template.arity):
        j = perm_inv[i]
        if j >= len(leaves):
            return None
        neg = bool((transform.input_neg >> j) & 1)
        if neg and template.foldable[i]:
            neg = False
            output_neg = not output_neg
        pins.append((leaves[j], neg))
        used.add(j)
    if used != set(range(len(leaves))):
        return None
    cell = template.complement_cell if output_neg else template.cell
    return cell, pins


def _match_library_cells(net, library: CellLibrary):
    """Choose complex-cell matches for ``net``: root-first, non-overlapping.

    Returns ``(matches, absorbed)`` where ``matches`` maps a root node to
    its ``(cell, pins)`` binding and ``absorbed`` is the set of interior
    nodes covered by a match (which must not be emitted).  A match is
    accepted only when every interior node is referenced exclusively from
    inside the matched cone, so absorbing it cannot orphan other logic.
    """
    templates = _cell_templates(library)
    matches: Dict[int, Tuple[str, List[Tuple[int, bool]]]] = {}
    absorbed: set = set()
    if not templates:
        return matches, absorbed

    # The shared incremental manager: mapping the same network again after
    # an optimization pass re-enumerates only the cones the pass touched.
    cuts = CutManager.for_network(net, k=3, cut_limit=6).cuts()
    for root in reversed(net.topological_order()):
        if root in absorbed:
            continue
        best = None
        for cut in cuts.get(root, ()):
            leaves = cut.leaves
            if len(leaves) < 2 or leaves == (root,):
                continue
            table = extend_table(cut.table, len(leaves))
            canonical, cut_transform = npn_canonical(table)
            candidates = templates.get(canonical)
            if candidates is None:
                continue
            cone = cut_cone(net, root, leaves)
            interior = [n for n in cone if n != root]
            # A match must beat per-node mapping (≥ 1 absorbed node) and
            # must not overlap a cone already claimed by a higher match.
            if not interior or any(n in absorbed for n in interior):
                continue
            refs_inside: Dict[int, int] = {}
            for n in cone:
                for f in net.fanins(n):
                    fn = node_of(f)
                    refs_inside[fn] = refs_inside.get(fn, 0) + 1
            if any(net.fanout_size(n) != refs_inside.get(n, 0) for n in interior):
                continue
            for template in candidates:
                bound = _match_template(template, leaves, table, cut_transform)
                if bound is None:
                    continue
                score = len(interior)
                if best is None or score > best[0]:
                    best = (score, bound, interior)
        if best is not None:
            matches[root] = best[1]
            absorbed.update(best[2])
    return matches, absorbed


def _emit_match(ctx: _MappingContext, net_name: str, match) -> None:
    cell, pins = match
    ctx.netlist.add_cell(
        cell, net_name, [ctx.literal(make_signal(leaf, neg)) for leaf, neg in pins]
    )


# --------------------------------------------------------------------- #
# MIG mapping
# --------------------------------------------------------------------- #
def map_mig(mig, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map a MIG onto the standard-cell library."""
    library = library or default_library()
    ctx = _MappingContext(mig.name, library, mig.pi_names())
    for node, name in zip(mig.pi_nodes(), mig.pi_names()):
        ctx.node_net[node] = name

    matches, absorbed = _match_library_cells(mig, library)
    for node in mig.topological_order():
        if node in absorbed:
            continue
        net_name = f"n{node}"
        match = matches.get(node)
        if match is not None:
            _emit_match(ctx, net_name, match)
            ctx.node_net[node] = net_name
            continue

        fanins = mig.fanins(node)
        constants = [f for f in fanins if f in (CONST_FALSE, CONST_TRUE)]
        if constants:
            const = constants[0]
            others = [f for f in fanins if f != const]
            a, b = others[0], others[1]
            _map_two_input(ctx, net_name, a, b, is_or=(const == CONST_TRUE))
        else:
            _map_majority(ctx, net_name, fanins)
        ctx.node_net[node] = net_name

    for po, name in zip(mig.po_signals(), mig.po_names()):
        ctx.netlist.add_po(_po_net(ctx, po), name)
    return ctx.netlist


def _map_two_input(ctx: _MappingContext, net: str, a: int, b: int, is_or: bool) -> None:
    """Map ``a AND b`` / ``a OR b`` choosing NAND/NOR when it saves inverters."""
    library = ctx.library
    both_complemented = is_complemented(a) and is_complemented(b)
    if both_complemented and not is_or and "NOR2" in library:
        # a' · b' = NOR(a, b)
        ctx.netlist.add_cell("NOR2", net, [ctx.literal(negate(a)), ctx.literal(negate(b))])
        return
    if both_complemented and is_or and "NAND2" in library:
        # a' + b' = NAND(a, b)
        ctx.netlist.add_cell("NAND2", net, [ctx.literal(negate(a)), ctx.literal(negate(b))])
        return
    cell = "OR2" if is_or else "AND2"
    if cell not in library:
        # Fall back to NAND/NOR + INV.
        base = "NAND2" if not is_or else "NOR2"
        tmp = f"{net}_x"
        ctx.netlist.add_cell(base, tmp, [ctx.literal(a), ctx.literal(b)])
        ctx.netlist.add_cell("INV", net, [tmp])
        return
    ctx.netlist.add_cell(cell, net, [ctx.literal(a), ctx.literal(b)])


def _map_majority(ctx: _MappingContext, net: str, fanins) -> None:
    """Map a full three-input majority node."""
    library = ctx.library
    complemented_count = sum(1 for f in fanins if is_complemented(f))
    if "MIN3" in library and complemented_count >= 2:
        # M with two complements is cheaper as MIN3 of the complemented
        # literals: M(a', b', c) = MIN3(a, b, c').
        literals = [ctx.literal(negate(f)) for f in fanins]
        ctx.netlist.add_cell("MIN3", net, literals)
        return
    if "MAJ3" in library:
        ctx.netlist.add_cell("MAJ3", net, [ctx.literal(f) for f in fanins])
        return
    # No majority cells (ablation library): expand into AND/OR gates.
    a, b, c = fanins
    ab = ctx.netlist.add_cell("AND2", f"{net}_ab", [ctx.literal(a), ctx.literal(b)])
    aob = ctx.netlist.add_cell("OR2", f"{net}_aob", [ctx.literal(a), ctx.literal(b)])
    cab = ctx.netlist.add_cell("AND2", f"{net}_cab", [ctx.literal(c), aob])
    ctx.netlist.add_cell("OR2", net, [ab, cab])


# --------------------------------------------------------------------- #
# AIG mapping
# --------------------------------------------------------------------- #
def map_aig(aig, library: Optional[CellLibrary] = None) -> MappedNetlist:
    """Map an AIG onto the standard-cell library."""
    library = library or default_library()
    ctx = _MappingContext(aig.name, library, aig.pi_names())
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        ctx.node_net[node] = name

    matches, absorbed = _match_library_cells(aig, library)
    for node in aig.topological_order():
        if node in absorbed:
            continue
        net_name = f"n{node}"
        match = matches.get(node)
        if match is not None:
            _emit_match(ctx, net_name, match)
            ctx.node_net[node] = net_name
            continue
        a, b = aig.fanins(node)
        _map_two_input(ctx, net_name, a, b, is_or=False)
        ctx.node_net[node] = net_name

    for po, name in zip(aig.po_signals(), aig.po_names()):
        ctx.netlist.add_po(_po_net(ctx, po), name)
    return ctx.netlist


def _po_net(ctx: _MappingContext, po_signal: int) -> str:
    """Net for a primary-output signal (an INV or BUF is emitted if needed)."""
    return ctx.literal(po_signal)
