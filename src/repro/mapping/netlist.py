"""Gate-level mapped netlist and its area / delay / power estimation.

The paper estimates {delay, area, power} "from the synthesized gate-level
netlist, before physical design".  This module is that netlist: a list of
standard-cell instances over named nets, with

* **area** — sum of cell areas (µm²),
* **delay** — longest purely-combinational cell path (ns, zero wire delay),
* **power** — switching power: per-cell activity (2·p·(1−p) of the output
  net under the independence model) times the cell's switching-energy
  coefficient, plus leakage, scaled to µW at a nominal 1 GHz / 0.8 V
  operating point.

The netlist can also be simulated bit-parallel, which the tests use to
prove that technology mapping preserved the Boolean functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .library import Cell, CellLibrary

__all__ = ["CellInstance", "MappedNetlist"]

#: Nominal switching-power scale: energy[fJ] · activity · f[GHz] → µW.
_POWER_SCALE_UW = 1.0


@dataclass
class CellInstance:
    """One placed cell: output net driven as a function of input nets."""

    cell: str
    output: str
    inputs: Tuple[str, ...]


class MappedNetlist:
    """A combinational standard-cell netlist."""

    def __init__(self, name: str, library: CellLibrary) -> None:
        self.name = name
        self.library = library
        self.pi_names: List[str] = []
        self.po_names: List[str] = []
        self.po_nets: List[str] = []
        self.instances: List[CellInstance] = []
        self._net_constants: Dict[str, bool] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_pi(self, name: str) -> str:
        self.pi_names.append(name)
        return name

    def add_constant(self, net: str, value: bool) -> str:
        self._net_constants[net] = value
        return net

    def add_cell(self, cell: str, output: str, inputs: Sequence[str]) -> str:
        if cell not in self.library:
            raise ValueError(f"cell {cell!r} not in library {self.library.name!r}")
        expected = self.library[cell].num_inputs
        if len(inputs) != expected:
            raise ValueError(
                f"cell {cell} expects {expected} inputs, got {len(inputs)}"
            )
        self.instances.append(CellInstance(cell, output, tuple(inputs)))
        return output

    def add_po(self, net: str, name: str) -> None:
        self.po_nets.append(net)
        self.po_names.append(name)

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def num_pis(self) -> int:
        return len(self.pi_names)

    @property
    def num_pos(self) -> int:
        return len(self.po_nets)

    @property
    def num_cells(self) -> int:
        return len(self.instances)

    def cell_histogram(self) -> Dict[str, int]:
        histogram: Dict[str, int] = {}
        for instance in self.instances:
            histogram[instance.cell] = histogram.get(instance.cell, 0) + 1
        return histogram

    # ------------------------------------------------------------------ #
    # Metrics
    # ------------------------------------------------------------------ #
    def area(self) -> float:
        """Total cell area in µm²."""
        return sum(self.library[i.cell].area for i in self.instances)

    def arrival_times(self) -> Dict[str, float]:
        """Per-net arrival time in ns (zero wire delay, PIs arrive at 0)."""
        arrival: Dict[str, float] = {name: 0.0 for name in self.pi_names}
        for net in self._net_constants:
            arrival[net] = 0.0
        for instance in self.instances:
            cell = self.library[instance.cell]
            input_arrival = max(
                (arrival.get(net, 0.0) for net in instance.inputs), default=0.0
            )
            arrival[instance.output] = input_arrival + cell.delay
        return arrival

    def delay(self) -> float:
        """Critical-path delay in ns."""
        if not self.instances:
            return 0.0
        arrival = self.arrival_times()
        return max((arrival.get(net, 0.0) for net in self.po_nets), default=0.0)

    def net_probabilities(
        self, pi_probabilities: Optional[Mapping[str, float]] = None
    ) -> Dict[str, float]:
        """Static 1-probability of every net (fanin-independence model)."""
        pi_probabilities = pi_probabilities or {}
        probs: Dict[str, float] = {
            name: float(pi_probabilities.get(name, 0.5)) for name in self.pi_names
        }
        for net, value in self._net_constants.items():
            probs[net] = 1.0 if value else 0.0
        for instance in self.instances:
            values = [probs.get(net, 0.5) for net in instance.inputs]
            probs[instance.output] = _cell_probability(instance.cell, values)
        return probs

    def power(self, pi_probabilities: Optional[Mapping[str, float]] = None) -> float:
        """Estimated power in µW (switching + leakage)."""
        probs = self.net_probabilities(pi_probabilities)
        total = 0.0
        for instance in self.instances:
            cell = self.library[instance.cell]
            p = probs.get(instance.output, 0.5)
            activity = 2.0 * p * (1.0 - p)
            total += _POWER_SCALE_UW * cell.energy * activity + cell.leakage
        return total

    # ------------------------------------------------------------------ #
    # Simulation (used to verify the mapping)
    # ------------------------------------------------------------------ #
    def simulate_patterns(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        """Bit-parallel simulation through the generated kernel.

        Netlists are append-only (nothing is retargeted in place), so the
        kernel is cached by the construction shape — see
        :func:`repro.codegen.ir.netlist_ir`; mapper verification therefore
        pays per-cell dispatch once, at generation time, not per call.
        """
        return self.compiled_kernel().simulate_auto(pi_patterns, num_bits)

    def compiled_kernel(self):
        """The generated :class:`repro.codegen.SimKernel`, shape-cached."""
        from ..codegen.ir import netlist_shape_key
        from ..codegen.simgen import compile_netlist_kernel

        key = netlist_shape_key(self)
        kernel = self.__dict__.get("_codegen_kernel")
        if kernel is None or self.__dict__.get("_codegen_kernel_key") != key:
            kernel = compile_netlist_kernel(self)
            self._codegen_kernel = kernel
            self._codegen_kernel_key = key
        return kernel

    def simulate_patterns_interpreted(
        self, pi_patterns: Sequence[int], num_bits: int
    ) -> List[int]:
        """Per-cell interpreted simulation (the differential oracle)."""
        if len(pi_patterns) != len(self.pi_names):
            raise ValueError(
                f"expected {len(self.pi_names)} PI patterns, got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values: Dict[str, int] = {}
        for name, pattern in zip(self.pi_names, pi_patterns):
            values[name] = pattern & mask
        for net, constant in self._net_constants.items():
            values[net] = mask if constant else 0
        for instance in self.instances:
            cell = self.library[instance.cell]
            inputs = [values.get(net, 0) for net in instance.inputs]
            values[instance.output] = cell.evaluate(inputs, mask)
        return [values.get(net, 0) for net in self.po_nets]

    def __getstate__(self) -> Dict[str, object]:
        state = self.__dict__.copy()
        # Generated artifacts hold code objects; regenerate after unpickling.
        for key in ("_codegen_kernel", "_codegen_kernel_key",
                    "_codegen_ir", "_codegen_ir_key"):
            state.pop(key, None)
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MappedNetlist(name={self.name!r}, cells={self.num_cells}, "
            f"area={self.area():.2f}um2, delay={self.delay():.3f}ns)"
        )


def _cell_probability(cell_name: str, p: List[float]) -> float:
    """Output 1-probability of a cell under input independence."""
    if cell_name == "INV":
        return 1.0 - p[0]
    if cell_name == "BUF":
        return p[0]
    if cell_name == "NAND2":
        return 1.0 - p[0] * p[1]
    if cell_name == "AND2":
        return p[0] * p[1]
    if cell_name == "NOR2":
        return (1.0 - p[0]) * (1.0 - p[1])
    if cell_name == "OR2":
        return 1.0 - (1.0 - p[0]) * (1.0 - p[1])
    if cell_name in ("XOR2", "XNOR2"):
        x = p[0] * (1.0 - p[1]) + p[1] * (1.0 - p[0])
        return x if cell_name == "XOR2" else 1.0 - x
    if cell_name in ("MAJ3", "MIN3"):
        a, b, c = p
        maj = a * b + a * c + b * c - 2.0 * a * b * c
        return maj if cell_name == "MAJ3" else 1.0 - maj
    raise ValueError(f"unknown cell {cell_name!r}")
