"""The optimization daemon: queue supervision over pure job tasks.

See the package docstring of :mod:`repro.service` for the job
lifecycle, the persistence format and the determinism contract.  The
split mirrors supervised event-loop frameworks: :class:`OptimizationService`
is the supervisor (owns persistent state, admin surface, recovery), and
:func:`_execute_job` is the user context — a pure, picklable function of
one job row that fans out through :func:`repro.parallel.parallel_map`
and never touches service state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..parallel.corpus import (
    RowChannel,
    canonical_fingerprint,
    structural_fingerprint,
)
from ..parallel.executor import parallel_map
from .jobs import (
    Job,
    JobStatus,
    canonical_flow_config,
    decode_network,
    encode_network,
    pass_metrics_from_rows,
    pass_metrics_rows,
    resolve_flow,
)
from .results import ResultCache, result_cache_key

__all__ = ["OptimizationService", "ServiceResult", "JOBS_SUITE", "RESULTS_SUITE"]

JOBS_SUITE = "jobs"
RESULTS_SUITE = "results"


def _execute_job(row: dict) -> dict:
    """Worker task: run one job row's flow; always returns a result row.

    Pure function of the row (the network arrives base64-pickled inside
    it) — the daemon's determinism hangs on this task computing exactly
    what :func:`repro.flows.batch.optimize_many`'s worker task computes
    for the same network and options.  Exceptions are *caught* and
    returned as ``status="failed"`` rows: one poisoned job must fail
    that job, not kill the daemon's whole drain cycle.
    """
    job = Job.from_row(row)
    start = time.perf_counter()
    try:
        network = job.network()
        if job.flow == "mighty":
            from ..flows.mighty import mighty_optimize

            result = mighty_optimize(network, **job.flow_options)
            optimized = network
            initial = (result.initial_size, result.initial_depth)
            passes = result.pass_metrics
        elif job.flow == "resyn2":
            from ..aig.resyn import resyn2

            initial = (network.num_gates, network.depth())
            optimized, stats = resyn2(network)
            passes = stats.pass_metrics
        elif job.flow == "large":
            from ..flows.batch import optimize_large

            large = optimize_large(network, **job.flow_options)
            optimized = large.network
            initial = (large.initial_size, large.initial_depth)
            passes = large.pass_metrics
        else:
            raise ValueError(f"unknown job flow {job.flow!r}")
    except Exception as exc:
        return {
            "job_id": job.job_id,
            "status": JobStatus.FAILED,
            "error": f"{type(exc).__name__}: {exc}",
            "cached": False,
            "runtime_s": time.perf_counter() - start,
        }
    return {
        "job_id": job.job_id,
        "status": JobStatus.DONE,
        "error": None,
        "cached": False,
        "network": encode_network(optimized),
        "initial_size": initial[0],
        "initial_depth": initial[1],
        "final_size": optimized.num_gates,
        "final_depth": optimized.depth(),
        "result_fingerprint": structural_fingerprint(optimized),
        "pass_metrics": pass_metrics_rows(passes),
        "runtime_s": time.perf_counter() - start,
    }


@dataclass
class ServiceResult:
    """Decoded result of one job, as handed back by :meth:`result`."""

    job_id: str
    name: str
    flow: str
    status: str
    cached: bool
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    runtime_s: float
    result_fingerprint: str
    network: object = None
    pass_metrics: List = field(default_factory=list)
    error: Optional[str] = None


class OptimizationService:
    """A crash-safe optimization daemon over one persistent state dir.

    See :mod:`repro.service` for the full lifecycle/persistence/cache
    contracts.  Constructing the service *is* the recovery path: job
    rows are reloaded, in-flight (``running``) jobs and ``done`` jobs
    whose result row never landed are re-queued, and torn rows are
    skipped — so ``OptimizationService(dir)`` after a kill resumes
    exactly the work that was lost and never re-runs completed rows.
    """

    def __init__(
        self,
        state_dir,
        workers: Optional[int] = None,
        cache_dir=None,
        use_cache: bool = True,
        cache_flush_every: int = 1,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.rows = RowChannel(self.state_dir)
        self.workers = workers
        self.cache: Optional[ResultCache] = (
            ResultCache(
                Path(cache_dir) if cache_dir is not None else self.state_dir / "cache",
                flush_every=cache_flush_every,
            )
            if use_cache
            else None
        )
        #: Jobs whose flow actually ran in this process's drain cycles
        #: (cache hits and recovered completed rows never count).
        self.optimizer_invocations = 0
        self.recovered_running = 0
        self.recovered_missing_result = 0
        self._next_seq = 1
        self._recover()

    # ------------------------------------------------------------------ #
    # Recovery (runs at construction)
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        results = self.rows.read_all(RESULTS_SUITE)
        for row in self.rows.read_all(JOBS_SUITE).values():
            try:
                job = Job.from_row(row)
            except (KeyError, TypeError, ValueError):
                continue  # torn/foreign row: not a job
            seq = self._job_seq(job.job_id)
            if seq is not None:
                self._next_seq = max(self._next_seq, seq + 1)
            if job.status in JobStatus.RESUMABLE:
                # In flight when the previous daemon died: back to the
                # queue (attempts stays, recording the lost run).
                job.status = JobStatus.QUEUED
                job.started_at = None
                self.rows.write(JOBS_SUITE, job.job_id, job.to_row())
                self.recovered_running += 1
            elif job.status == JobStatus.DONE and job.job_id not in results:
                # Marked done but its result row never landed (torn or
                # lost): the claim is unsubstantiated — re-run it.
                job.status = JobStatus.QUEUED
                job.started_at = None
                job.finished_at = None
                job.cached = False
                self.rows.write(JOBS_SUITE, job.job_id, job.to_row())
                self.recovered_missing_result += 1

    @staticmethod
    def _job_seq(job_id: str) -> Optional[int]:
        if job_id.startswith("j"):
            try:
                return int(job_id[1:])
            except ValueError:
                return None
        return None

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        network,
        flow: str = "auto",
        flow_options: Optional[Dict] = None,
        deadline_s: Optional[float] = None,
        name: Optional[str] = None,
    ) -> str:
        """Enqueue one optimization job; returns its job id.

        Non-blocking: the job row is persisted and the call returns.  If
        the result cache already holds this (circuit, flow config) pair
        the job completes *at submit time* — the cached network is
        written as this job's result row (``cached=True``) and no
        optimization pass will ever run for it.
        """
        resolved = resolve_flow(network, flow)
        options = dict(flow_options or {})
        if resolved == "resyn2" and options:
            raise ValueError(
                f"flow 'resyn2' takes no flow options, got {sorted(options)}"
            )
        canonical_flow_config(resolved, options)  # validate JSON-ability early
        job_id = f"j{self._next_seq:06d}"
        self._next_seq += 1
        job = Job(
            job_id=job_id,
            name=name if name is not None else getattr(network, "name", "network"),
            kind=type(network).__name__,
            flow=resolved,
            flow_options=options,
            cache_key=result_cache_key(network, resolved, options),
            canonical_input=canonical_fingerprint(network),
            payload=encode_network(network),
            num_gates=network.num_gates,
            submitted_at=time.time(),
            deadline_s=deadline_s,
        )
        cached = self.cache.get(job.cache_key) if self.cache is not None else None
        if cached is not None:
            job.status = JobStatus.DONE
            job.cached = True
            job.finished_at = time.time()
            self.rows.write(
                RESULTS_SUITE,
                job_id,
                {
                    "job_id": job_id,
                    "status": JobStatus.DONE,
                    "error": None,
                    "cached": True,
                    "network": cached.network_payload,
                    "initial_size": cached.initial_size,
                    "initial_depth": cached.initial_depth,
                    "final_size": cached.final_size,
                    "final_depth": cached.final_depth,
                    "result_fingerprint": cached.result_fingerprint,
                    "pass_metrics": cached.pass_metrics_rows,
                    "runtime_s": 0.0,
                },
            )
        self.rows.write(JOBS_SUITE, job_id, job.to_row())
        return job_id

    def submit_many(
        self,
        corpus,
        flow: str = "auto",
        flow_options: Optional[Dict] = None,
        deadline_s: Optional[float] = None,
    ) -> List[str]:
        """Submit a whole corpus; returns job ids in corpus order."""
        return [
            self.submit(
                network, flow=flow, flow_options=flow_options, deadline_s=deadline_s
            )
            for network in corpus
        ]

    # ------------------------------------------------------------------ #
    # Execution (the daemon loop body)
    # ------------------------------------------------------------------ #
    def run_pending(self, workers: Optional[int] = None) -> Dict[str, int]:
        """Drain the queue once; returns ``{ran, done, failed, expired}``.

        Queued jobs fan out through :func:`repro.parallel.parallel_map`
        (LPT-scheduled by submitted gate count); every job's result row
        is persisted, its job row finalized and its result cached **as
        its shard completes** via the executor's streaming hook, so a
        kill mid-drain loses only the jobs still in flight.
        """
        queued = self.queued_jobs()
        now = time.time()
        runnable: List[Job] = []
        summary = {"ran": 0, "done": 0, "failed": 0, "expired": 0}
        for job in queued:
            if job.expired(now):
                job.status = JobStatus.EXPIRED
                job.finished_at = now
                job.error = (
                    f"queue deadline lapsed ({job.deadline_s:.3f}s) before the job ran"
                )
                self.rows.write(JOBS_SUITE, job.job_id, job.to_row())
                summary["expired"] += 1
            else:
                runnable.append(job)
        if not runnable:
            return summary
        for job in runnable:
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            job.attempts += 1
            self.rows.write(JOBS_SUITE, job.job_id, job.to_row())

        def _stream(index: int, result_row: dict, runtime_s: float, pid: int) -> None:
            status = self._finish_job(runnable[index], result_row)
            summary[status] += 1
            summary["ran"] += 1

        parallel_map(
            _execute_job,
            [job.to_row() for job in runnable],
            workers=self.workers if workers is None else workers,
            costs=[job.num_gates for job in runnable],
            labels=[job.job_id for job in runnable],
            on_result=_stream,
        )
        return summary

    def _finish_job(self, job: Job, result_row: dict) -> str:
        """Persist one finished job (result row first, then the job row).

        Write order is the crash-safety argument: a kill between the two
        writes leaves a ``running`` job with a result row — recovery
        re-queues it, which is wasteful but sound.  The opposite order
        could mark a job ``done`` with no result, which recovery must
        treat as lost work.
        """
        self.rows.write(RESULTS_SUITE, job.job_id, result_row)
        job.status = result_row["status"]
        job.finished_at = time.time()
        job.error = result_row.get("error")
        self.rows.write(JOBS_SUITE, job.job_id, job.to_row())
        if job.status == JobStatus.DONE:
            self.optimizer_invocations += 1
            if self.cache is not None:
                self.cache.put(
                    job.cache_key,
                    decode_network(result_row["network"]),
                    initial_size=result_row["initial_size"],
                    initial_depth=result_row["initial_depth"],
                    flow=job.flow,
                    flow_options=job.flow_options,
                    pass_metrics=result_row.get("pass_metrics"),
                    runtime_s=result_row.get("runtime_s", 0.0),
                )
        return job.status

    def serve(
        self,
        workers: Optional[int] = None,
        poll_s: float = 0.05,
        max_cycles: Optional[int] = None,
        stop_when_idle: bool = False,
    ) -> Dict[str, int]:
        """Minimal daemon loop: poll the queue, drain, repeat.

        ``stop_when_idle`` returns after the first cycle that finds an
        empty queue (the test/benchmark mode); otherwise the loop runs
        ``max_cycles`` times (forever when ``None`` — the deployment
        mode, where another process appends job rows to the shared
        state dir between polls).
        """
        totals = {"ran": 0, "done": 0, "failed": 0, "expired": 0, "cycles": 0}
        while max_cycles is None or totals["cycles"] < max_cycles:
            summary = self.run_pending(workers=workers)
            totals["cycles"] += 1
            for key in ("ran", "done", "failed", "expired"):
                totals[key] += summary[key]
            if not self.queued_jobs():
                if stop_when_idle:
                    break
                time.sleep(poll_s)
        return totals

    # ------------------------------------------------------------------ #
    # Status / admin surface
    # ------------------------------------------------------------------ #
    def job(self, job_id: str) -> Job:
        row = self.rows.read(JOBS_SUITE, job_id)
        if row is None:
            raise KeyError(f"unknown job {job_id!r}")
        return Job.from_row(row)

    def jobs(self) -> List[Job]:
        """Every persisted job, in submission (job-id) order."""
        rows = self.rows.read_all(JOBS_SUITE)
        out = []
        for name in sorted(rows):
            try:
                out.append(Job.from_row(rows[name]))
            except (KeyError, TypeError, ValueError):
                continue
        return out

    def queued_jobs(self) -> List[Job]:
        return [job for job in self.jobs() if job.status == JobStatus.QUEUED]

    def result(self, job_id: str, decode: bool = True) -> ServiceResult:
        """The persisted result of ``job_id`` (raises ``KeyError`` if absent)."""
        job = self.job(job_id)
        row = self.rows.read(RESULTS_SUITE, job_id)
        if row is None:
            raise KeyError(f"job {job_id!r} has no result (status {job.status!r})")
        return ServiceResult(
            job_id=job_id,
            name=job.name,
            flow=job.flow,
            status=str(row.get("status", job.status)),
            cached=bool(row.get("cached", False)),
            initial_size=int(row.get("initial_size", 0)),
            initial_depth=int(row.get("initial_depth", 0)),
            final_size=int(row.get("final_size", 0)),
            final_depth=int(row.get("final_depth", 0)),
            runtime_s=float(row.get("runtime_s", 0.0)),
            result_fingerprint=str(row.get("result_fingerprint", "")),
            network=(
                decode_network(row["network"])
                if decode and row.get("network")
                else None
            ),
            pass_metrics=pass_metrics_from_rows(row.get("pass_metrics")),
            error=row.get("error"),
        )

    def status(self) -> Dict[str, object]:
        """Admin snapshot: queue depths, cache counters, recovery stats."""
        by_status: Dict[str, int] = {status: 0 for status in JobStatus.ALL}
        jobs = self.jobs()
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "state_dir": str(self.state_dir),
            "jobs": len(jobs),
            "by_status": by_status,
            "queue_depth": by_status[JobStatus.QUEUED],
            "results": len(self.rows.read_all(RESULTS_SUITE)),
            "optimizer_invocations": self.optimizer_invocations,
            "recovered_running": self.recovered_running,
            "recovered_missing_result": self.recovered_missing_result,
            "cache": self.cache.stats() if self.cache is not None else None,
        }
