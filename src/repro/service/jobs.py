"""Job model of the optimization service.

A :class:`Job` is one unit of work: a circuit, a resolved flow spec
(flow name + canonical options — the effort knobs), and queue metadata
(status, timestamps, an optional deadline).  Jobs are plain data: they
round-trip losslessly through JSON rows (networks travel as
base64-encoded pickles, which preserve node ids exactly — the bit-
identity contract of :mod:`repro.parallel` extended to persistence),
so the daemon can be killed and restarted around them.
"""

from __future__ import annotations

import base64
import json
import pickle
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "JobStatus",
    "Job",
    "canonical_flow_config",
    "resolve_flow",
    "encode_network",
    "decode_network",
    "pass_metrics_rows",
    "pass_metrics_from_rows",
]


class JobStatus:
    """Lifecycle states of a job (plain string constants, JSON-stable)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    EXPIRED = "expired"

    ALL = (QUEUED, RUNNING, DONE, FAILED, EXPIRED)
    #: States a restarted daemon re-queues (in flight when it died).
    RESUMABLE = (RUNNING,)
    #: States that terminate a job (never re-run).
    TERMINAL = (DONE, FAILED, EXPIRED)


#: Flows a job may carry; "auto" is resolved at submit time.
JOB_FLOWS = ("mighty", "resyn2", "large")


def resolve_flow(network, flow: str) -> str:
    """Resolve ``"auto"`` by network type; validate explicit flows."""
    if flow == "auto":
        from ..aig.aig import Aig

        return "resyn2" if isinstance(network, Aig) else "mighty"
    if flow not in JOB_FLOWS:
        raise ValueError(
            f"unknown flow {flow!r} (expected 'auto' or one of {JOB_FLOWS})"
        )
    return flow


def canonical_flow_config(flow: str, options: Optional[Dict] = None) -> str:
    """Canonical JSON form of a flow spec — half of the cache key.

    Key order is normalized (sorted) and values must be JSON-encodable,
    so two submissions with the same flow and the same option values
    produce byte-identical configs regardless of dict construction
    order.  Canonicalization is deliberately *syntactic*: an option
    spelled explicitly at its default value differs from an omitted one,
    which can only split cache entries (a miss), never alias distinct
    computations (never unsound).
    """
    options = dict(options or {})
    try:
        return json.dumps(
            {"flow": flow, "options": options}, sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"flow options must be JSON-encodable for cache keying: {exc}"
        ) from exc


def encode_network(network) -> str:
    """Base64-encoded pickle of a network (node ids preserved exactly)."""
    return base64.b64encode(pickle.dumps(network)).decode("ascii")


def decode_network(payload: str):
    """Inverse of :func:`encode_network`."""
    return pickle.loads(base64.b64decode(payload.encode("ascii")))


def pass_metrics_rows(metrics) -> List[dict]:
    """JSON-stable projection of a flow's per-pass metrics trace.

    Details are dropped (they may hold non-JSON verdict objects); the
    merged batch reports only consume names, sizes, depths and runtimes.
    """
    return [
        {
            "name": m.name,
            "size_before": m.size_before,
            "size_after": m.size_after,
            "depth_before": m.depth_before,
            "depth_after": m.depth_after,
            "runtime_s": m.runtime_s,
        }
        for m in metrics
    ]


def pass_metrics_from_rows(rows) -> List:
    """Rebuild :class:`repro.flows.engine.PassMetrics` from row form."""
    from ..flows.engine import PassMetrics

    return [PassMetrics(**row) for row in rows or ()]


@dataclass
class Job:
    """One persisted unit of service work (see the package docstring)."""

    job_id: str
    name: str
    kind: str
    flow: str
    flow_options: Dict[str, object] = field(default_factory=dict)
    cache_key: str = ""
    canonical_input: str = ""
    payload: str = ""
    num_gates: int = 0
    status: str = JobStatus.QUEUED
    submitted_at: float = 0.0
    deadline_s: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    cached: bool = False
    error: Optional[str] = None

    def network(self):
        """This job's private copy of the submitted network."""
        return decode_network(self.payload)

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the queue deadline lapsed before the job started."""
        if self.deadline_s is None:
            return False
        now = time.time() if now is None else now
        return now - self.submitted_at > self.deadline_s

    def to_row(self) -> dict:
        return {
            "job_id": self.job_id,
            "name": self.name,
            "kind": self.kind,
            "flow": self.flow,
            "flow_options": dict(self.flow_options),
            "cache_key": self.cache_key,
            "canonical_input": self.canonical_input,
            "payload": self.payload,
            "num_gates": self.num_gates,
            "status": self.status,
            "submitted_at": self.submitted_at,
            "deadline_s": self.deadline_s,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
        }

    @classmethod
    def from_row(cls, row: dict) -> "Job":
        """Rebuild a job from its persisted row (raises on malformed rows)."""
        return cls(
            job_id=str(row["job_id"]),
            name=str(row.get("name", "network")),
            kind=str(row.get("kind", "")),
            flow=str(row["flow"]),
            flow_options=dict(row.get("flow_options") or {}),
            cache_key=str(row.get("cache_key", "")),
            canonical_input=str(row.get("canonical_input", "")),
            payload=str(row.get("payload", "")),
            num_gates=int(row.get("num_gates", 0)),
            status=str(row.get("status", JobStatus.QUEUED)),
            submitted_at=float(row.get("submitted_at", 0.0)),
            deadline_s=(
                None if row.get("deadline_s") is None else float(row["deadline_s"])
            ),
            started_at=(
                None if row.get("started_at") is None else float(row["started_at"])
            ),
            finished_at=(
                None if row.get("finished_at") is None else float(row["finished_at"])
            ),
            attempts=int(row.get("attempts", 0)),
            cached=bool(row.get("cached", False)),
            error=row.get("error"),
        )
