"""Content-addressed result cache of the optimization service.

Generalizes the NPN structure database's disk-cache pattern
(:mod:`repro.network.npn`) to whole optimization results: content-hash
keys, atomic (optionally batched) writes, full validation on load.  One
JSON file per entry under the cache root, so concurrent daemons sharing
a cache directory compose exactly like concurrent :class:`RowChannel`
writers — last complete write wins, readers never see a torn entry.

The key (:func:`result_cache_key`) addresses the *computation*, not the
object: ``(format version, canonical input structure, canonical flow
config)``.  The value stores the optimized network pickled exactly as
the flow produced it, so a cache hit returns a result bit-identical to
re-running the optimizer on the same submission (the service
determinism contract) in O(1) — one file read plus one unpickle, no
optimization pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..cache import atomic_write_json, content_key, load_json
from ..parallel.corpus import canonical_fingerprint, structural_fingerprint
from .jobs import canonical_flow_config, decode_network, encode_network

__all__ = ["CACHE_FORMAT_VERSION", "result_cache_key", "CachedResult", "ResultCache"]

#: Bumped when the cached payload layout changes; part of every key, so
#: a format change starts a fresh cache instead of misreading old files.
CACHE_FORMAT_VERSION = 1


def result_cache_key(network, flow: str, options: Optional[Dict] = None) -> str:
    """The content address of one (circuit, flow config) computation.

    Built on :func:`repro.parallel.corpus.canonical_fingerprint`, which
    is node-id-independent but covers the network kind, PI arity and
    names, PO order, fanin order and complement bits — see the
    package docstring for the full soundness contract.
    """
    return content_key(
        CACHE_FORMAT_VERSION,
        canonical_fingerprint(network),
        canonical_flow_config(flow, options),
    )


@dataclass
class CachedResult:
    """One validated cache entry, decoded."""

    key: str
    network: object
    #: The still-encoded network payload, so a cache-hit path can hand
    #: the result on (result rows store encoded networks) without paying
    #: a re-pickle of the object it just validated.
    network_payload: str
    initial_size: int
    initial_depth: int
    final_size: int
    final_depth: int
    result_fingerprint: str
    flow: str
    flow_options: Dict[str, object] = field(default_factory=dict)
    pass_metrics_rows: List[dict] = field(default_factory=list)
    runtime_s: float = 0.0


class ResultCache:
    """Directory of content-addressed optimization results.

    ``flush_every=1`` (the default) persists each :meth:`put`
    immediately — the crash-safe daemon mode.  Larger values batch
    writes in memory NPN-style (amortizing file churn for bulk
    back-fills) until :meth:`flush`; lookups consult the pending buffer
    first, so batching is invisible to same-process readers.
    """

    def __init__(self, root, flush_every: int = 1) -> None:
        self.root = Path(root)
        self.flush_every = max(1, int(flush_every))
        self._pending: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.invalid = 0

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return key in self._pending or self.path_for(key).is_file()

    def entries(self) -> int:
        """Number of complete on-disk entries plus unflushed ones."""
        on_disk = (
            sum(1 for _ in self.root.glob("*.json")) if self.root.is_dir() else 0
        )
        unflushed = sum(
            1 for key in self._pending if not self.path_for(key).is_file()
        )
        return on_disk + unflushed

    # ------------------------------------------------------------------ #
    # Read side (validate on load)
    # ------------------------------------------------------------------ #
    def get(self, key: str) -> Optional[CachedResult]:
        """The validated entry under ``key``, or ``None`` (a miss).

        Validation replays the idiom of the NPN disk cache: format
        version and key must match, the payload must decode, and the
        decoded network must replay to the stored result fingerprint.
        Anything less is counted ``invalid`` and treated as a miss —
        corruption can cost a re-optimization, never a wrong result.
        """
        payload = self._pending.get(key)
        if payload is None:
            payload = load_json(self.path_for(key))
        if payload is None:
            self.misses += 1
            return None
        result = self._validate(key, payload)
        if result is None:
            self.invalid += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _validate(self, key: str, payload) -> Optional[CachedResult]:
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != CACHE_FORMAT_VERSION:
            return None
        if payload.get("key") != key:
            return None
        try:
            network = decode_network(payload["network"])
            result = CachedResult(
                key=key,
                network=network,
                network_payload=str(payload["network"]),
                initial_size=int(payload["initial_size"]),
                initial_depth=int(payload["initial_depth"]),
                final_size=int(payload["final_size"]),
                final_depth=int(payload["final_depth"]),
                result_fingerprint=str(payload["result_fingerprint"]),
                flow=str(payload["flow"]),
                flow_options=dict(payload.get("flow_options") or {}),
                pass_metrics_rows=list(payload.get("pass_metrics") or ()),
                runtime_s=float(payload.get("runtime_s", 0.0)),
            )
        except Exception:
            return None
        if structural_fingerprint(network) != result.result_fingerprint:
            return None
        if network.num_gates != result.final_size:
            return None
        return result

    # ------------------------------------------------------------------ #
    # Write side (atomic, optionally batched)
    # ------------------------------------------------------------------ #
    def put(
        self,
        key: str,
        network,
        initial_size: int,
        initial_depth: int,
        flow: str,
        flow_options: Optional[Dict] = None,
        pass_metrics: Optional[List[dict]] = None,
        runtime_s: float = 0.0,
    ) -> None:
        """Store one optimized result under its content address."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "network": encode_network(network),
            "initial_size": int(initial_size),
            "initial_depth": int(initial_depth),
            "final_size": network.num_gates,
            "final_depth": network.depth(),
            "result_fingerprint": structural_fingerprint(network),
            "flow": flow,
            "flow_options": dict(flow_options or {}),
            "pass_metrics": list(pass_metrics or ()),
            "runtime_s": float(runtime_s),
            "stored_at": time.time(),
        }
        self._pending[key] = payload
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> int:
        """Persist pending entries atomically; returns entries written."""
        written = 0
        for key, payload in list(self._pending.items()):
            if atomic_write_json(self.path_for(key), payload):
                written += 1
                self.writes += 1
                del self._pending[key]
            # else: best effort — a read-only cache root keeps the entry
            # in the pending buffer, an in-memory cache for this process.
        return written

    def stats(self) -> Dict[str, int]:
        return {
            "entries": self.entries(),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalid": self.invalid,
        }
