"""Optimization-as-a-service: a crash-safe job daemon with a result cache.

Everything below :mod:`repro.flows` is batch-process shaped — one call,
one barrier, all state dies with the process.  This package turns the
optimization stack into a long-running *service*: jobs go in, results
stream out as shards finish, state survives a kill, and previously seen
work is answered from a content-addressed cache without touching the
optimizer.  The runtime shape follows the supervised event-loop /
user-context split of data-acquisition frameworks (typed messages
through a thin supervisor, admin surface on the side): the daemon loop
is deliberately dumb — all intelligence lives in the job model and the
per-job task function, which are pure and process-parallel.

Job lifecycle
-------------
::

    submit() ──► queued ──► running ──► done ──────► (result row, cache)
                   │            │        failed ───► (result row, error)
                   └─ expired   └─ crash ─► re-queued on restart

* :meth:`OptimizationService.submit` takes a network (MIG or AIG), a
  flow spec (``flow="auto"|"mighty"|"resyn2"|"large"`` plus flow
  options — the effort knobs, e.g. ``rounds``/``depth_effort``) and an
  optional queue ``deadline_s``.  Submission is non-blocking: it
  persists one *job row* and returns a job id.  If the result cache
  already holds the (circuit, flow config) pair, the job completes at
  submit time (``cached=True``) without any optimization pass running.
* :meth:`OptimizationService.run_pending` drains the queue through the
  process-parallel executor (:func:`repro.parallel.parallel_map`): jobs
  fan out across workers and every finished job is persisted and
  cached **as its shard completes** (the executor's ``on_result``
  streaming hook) instead of barriering on the whole queue.  A job
  whose queue deadline has lapsed is marked ``expired`` and never runs.
* :meth:`OptimizationService.serve` wraps ``run_pending`` in a polling
  daemon loop; :meth:`OptimizationService.status` is the admin surface
  (queue depths, cache hit/miss counters, optimizer invocations,
  recovery counts).

Persistence format
------------------
All state lives under one ``state_dir`` as atomic one-JSON-file-per-row
stores (the :class:`repro.parallel.corpus.RowChannel` idiom — temp file
+ ``os.replace``, torn files skipped on read):

* ``jobs/<job_id>.json`` — the job row: id, name, network kind, resolved
  flow + canonical flow options, base64-pickled input network, cache
  key, status, timestamps, attempts, error.
* ``results/<job_id>.json`` — the result row: base64-pickled optimized
  network, initial/final size and depth, per-pass metric rows, runtime,
  ``cached`` flag, structural fingerprint of the result.
* ``cache/<cache_key>.json`` — the content-addressed result cache
  (:class:`repro.service.results.ResultCache`), validate-on-load.

A killed daemon restarts losslessly: ``running`` jobs (in flight at the
crash) and ``done`` jobs whose result row never landed are re-queued;
``done`` jobs with persisted results are never re-run.  Torn files in
any store degrade to a skipped row / cache miss, never to an error.

Cache-key contract
------------------
Completed results are cached under
``content_key(format_version, canonical_fingerprint(network),
canonical_flow_config(flow, options))`` — see
:func:`repro.service.results.result_cache_key`.
:func:`repro.parallel.corpus.canonical_fingerprint` renumbers nodes by a
post-order traversal from the POs, so **structurally identical networks
built in different orders (different raw node ids) hit the same cache
entry**, while the network kind (MIG vs AIG), the PI arity (referenced
or not), PI/PO names and order, fanin order and complement bits, and
every flow option are all part of the key and can never collide.  Cached
payloads are validated on load (format version, key match, fingerprint
replay of the decoded network); corruption is a cache miss.

Determinism contract
--------------------
The service extends the :mod:`repro.parallel` contract: a corpus
submitted through the daemon returns networks **bit-identical** (node
ids, fanins, POs, structural fingerprints) to a direct
:func:`repro.flows.batch.optimize_many` run at any worker count —
including the cached-resubmission path, because the cache stores the
optimized network pickled exactly as the flow produced it.
``tests/service/`` asserts this at 1, 2 and 4 workers.
"""

from .daemon import OptimizationService, ServiceResult
from .jobs import (
    Job,
    JobStatus,
    canonical_flow_config,
    decode_network,
    encode_network,
)
from .results import CachedResult, ResultCache, result_cache_key

__all__ = [
    "OptimizationService",
    "ServiceResult",
    "Job",
    "JobStatus",
    "canonical_flow_config",
    "encode_network",
    "decode_network",
    "ResultCache",
    "CachedResult",
    "result_cache_key",
]
