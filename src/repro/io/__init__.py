"""File I/O: flattened structural Verilog reader / writers."""

from .verilog import read_verilog, write_mig_verilog, write_netlist_verilog

__all__ = ["read_verilog", "write_mig_verilog", "write_netlist_verilog"]
