"""The ``resyn2``-style AIG optimization script used as the paper's baseline.

ABC's ``resyn2`` alternates balancing, rewriting and refactoring passes::

    b; rw; rf; b; rw; rwz; b; rfz; rwz; b

This module provides the equivalent driver on top of the passes available
in this reproduction (:func:`repro.aig.balance.balance` and
:func:`repro.aig.rewrite.rewrite` / ``refactor``), together with a small
stats record so flows and benchmarks can report what the baseline did.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

from .aig import Aig
from .balance import balance
from .rewrite import refactor, rewrite

__all__ = ["ResynStats", "resyn2", "run_script"]


@dataclass
class ResynStats:
    """Summary of one baseline optimization run."""

    initial_size: int
    final_size: int
    initial_depth: int
    final_depth: int
    passes: List[str]
    runtime_s: float


#: The default pass sequence (an abbreviation of ABC's resyn2 script).
RESYN2_SCRIPT: Sequence[str] = (
    "balance",
    "rewrite",
    "refactor",
    "balance",
    "rewrite",
    "balance",
)

_PASSES: dict = {
    "balance": balance,
    "rewrite": rewrite,
    "refactor": refactor,
}


def run_script(aig: Aig, script: Sequence[str]) -> tuple:
    """Run a named pass sequence; returns ``(optimized_aig, stats)``."""
    start = time.perf_counter()
    initial_size = aig.num_gates
    initial_depth = aig.depth()
    current = aig
    executed: List[str] = []
    for name in script:
        try:
            pass_fn: Callable[[Aig], Aig] = _PASSES[name]
        except KeyError as exc:
            raise ValueError(f"unknown AIG pass {name!r}") from exc
        candidate = pass_fn(current)
        # Keep a pass only if it does not regress both size and depth.
        if (candidate.num_gates, candidate.depth()) <= (
            current.num_gates,
            current.depth(),
        ) or candidate.depth() < current.depth() or candidate.num_gates < current.num_gates:
            current = candidate
        executed.append(name)
    stats = ResynStats(
        initial_size=initial_size,
        final_size=current.num_gates,
        initial_depth=initial_depth,
        final_depth=current.depth(),
        passes=executed,
        runtime_s=time.perf_counter() - start,
    )
    return current, stats


def resyn2(aig: Aig) -> tuple:
    """Run the default ``resyn2``-style script; returns ``(aig, stats)``."""
    return run_script(aig, RESYN2_SCRIPT)
