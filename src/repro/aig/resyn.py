"""The ``resyn2``-style AIG optimization script used as the paper's baseline.

ABC's ``resyn2`` alternates balancing, rewriting and refactoring passes::

    b; rw; rf; b; rw; rwz; b; rfz; rwz; b

This module declares the equivalent driver as a chain of
:class:`~repro.flows.engine.RebuildPass` objects over the flow engine:
every script element becomes a named pass whose candidate network is kept
only when it does not regress, and the engine records the per-pass
size / depth / runtime metrics that the flows and benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .aig import Aig
from .balance import balance
from .rewrite import refactor, rewrite

__all__ = ["ResynStats", "resyn2", "run_script", "RESYN2_SCRIPT"]


@dataclass
class ResynStats:
    """Summary of one baseline optimization run."""

    initial_size: int
    final_size: int
    initial_depth: int
    final_depth: int
    passes: List[str]
    runtime_s: float
    pass_metrics: List = field(default_factory=list)


#: The default pass sequence (an abbreviation of ABC's resyn2 script).
RESYN2_SCRIPT: Sequence[str] = (
    "balance",
    "rewrite",
    "refactor",
    "balance",
    "rewrite",
    "balance",
)

_PASSES: dict = {
    "balance": balance,
    "rewrite": rewrite,
    "refactor": refactor,
}


def _keeps_or_improves(candidate: Aig, current: Aig) -> bool:
    """The baseline's acceptance rule: keep a pass unless it regresses.

    A candidate is adopted when it does not worsen the ``(size, depth)``
    pair, or when it strictly improves either metric on its own.
    """
    return (
        (candidate.num_gates, candidate.depth())
        <= (current.num_gates, current.depth())
        or candidate.depth() < current.depth()
        or candidate.num_gates < current.num_gates
    )


def run_script(aig: Aig, script: Sequence[str]) -> tuple:
    """Run a named pass sequence; returns ``(optimized_aig, stats)``.

    The input AIG is never modified: rebuild passes chain fresh networks,
    exactly like ABC's scripts.
    """
    from ..flows.engine import RebuildPass, run_rebuild_chain

    passes = []
    for name in script:
        try:
            pass_fn = _PASSES[name]
        except KeyError as exc:
            raise ValueError(f"unknown AIG pass {name!r}") from exc
        passes.append(RebuildPass(name, pass_fn, accept=_keeps_or_improves))

    optimized, result = run_rebuild_chain(aig, passes, name="aig_script")
    stats = ResynStats(
        initial_size=result.initial_size,
        final_size=result.final_size,
        initial_depth=result.initial_depth,
        final_depth=result.final_depth,
        passes=list(script),
        runtime_s=result.runtime_s,
        pass_metrics=result.passes,
    )
    return optimized, stats


def resyn2(aig: Aig) -> tuple:
    """Run the default ``resyn2``-style script; returns ``(aig, stats)``."""
    return run_script(aig, RESYN2_SCRIPT)
