"""AND-Inverter Graph (AIG) logic network.

The paper's main experimental baseline is "AIG optimization performed by
the ABC academic tool".  This module provides the AIG substrate: a
homogeneous network of two-input AND nodes with complemented edges, with
structural hashing and constant/idempotence folding at construction time —
the same conventions as :class:`repro.core.mig.Mig`, restricted to
conjunctions (Theorem 3.1: an AIG is the special case of a MIG whose third
operand is a constant).

Storage, hashing, fanout/ref-count tracking, substitution and the cached
topology/levels machinery all come from the shared
:class:`repro.network.base.LogicNetwork` kernel; only the AND-node
semantics live here.

The baseline optimization passes (balance / rewrite / refactor, the
``resyn2``-style script) live in :mod:`repro.aig.resyn`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.signal import (
    CONST_FALSE,
    CONST_TRUE,
    negate,
)
from ..network.base import LogicNetwork

__all__ = ["Aig"]


class Aig(LogicNetwork):
    """An AND-Inverter Graph with structural hashing.

    Node 0 is the constant-0 node, primary inputs follow, and two-input AND
    gates are appended as created.  Signals use the shared
    ``(node << 1) | complement`` encoding of :mod:`repro.core.signal`.
    """

    GATE_KIND = "AND"
    # AND2 over the two fanin edge values: on-set {11}.
    UNIFORM_GATE_TT = 0x8

    def __init__(self) -> None:
        super().__init__()
        self.name = "aig"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def and_(self, a: int, b: int) -> int:
        """Create (or reuse) the AND node ``a ∧ b`` with trivial folding."""
        self._validate_signal(a)
        self._validate_signal(b)
        simplified = _simplify_and(a, b)
        if simplified is not None:
            return simplified
        key = (a, b) if a < b else (b, a)
        return self._create_gate(key)

    # Derived operators ------------------------------------------------- #
    def or_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(a), negate(b)))

    def nand_(self, a: int, b: int) -> int:
        return negate(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return self.and_(negate(a), negate(b))

    def xor_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(self.and_(a, negate(b))), negate(self.and_(negate(a), b))))

    def xnor_(self, a: int, b: int) -> int:
        return negate(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        return self.or_(self.and_(sel, t), self.and_(negate(sel), e))

    def maj_(self, a: int, b: int, c: int) -> int:
        """Three-input majority expressed with AND/OR (4 AND nodes)."""
        return self.or_(self.and_(a, b), self.and_(c, self.or_(a, b)))

    def and3_(self, a: int, b: int, c: int) -> int:
        return self.and_(self.and_(a, b), c)

    def or3_(self, a: int, b: int, c: int) -> int:
        return self.or_(self.or_(a, b), c)

    # ------------------------------------------------------------------ #
    # Inspection (AIG-specific accounting)
    # ------------------------------------------------------------------ #
    @property
    def num_gates(self) -> int:
        """Number of AND nodes reachable from the primary outputs.

        Unlike :class:`~repro.core.mig.Mig` (whose optimizers reclaim dead
        logic eagerly), the AIG passes are rebuild-based, so the paper's
        size metric counts only the PO-reachable cone.  Served from the
        cached topological order, so it is O(1) between structural changes.
        """
        return len(self._topology())

    def is_and(self, node: int) -> bool:
        return self._fanins[node] is not None

    def gates(self) -> Iterator[int]:
        """Iterate over PO-reachable AND nodes in topological order."""
        return iter(self.topological_order())

    # ------------------------------------------------------------------ #
    # Kernel hooks (AND semantics)
    # ------------------------------------------------------------------ #
    def _gate_simplify(self, fanins: Tuple[int, ...]) -> Optional[int]:
        return _simplify_and(*fanins)

    def _strash_candidates(
        self, fanins: Tuple[int, ...]
    ) -> Iterable[Tuple[Tuple[int, ...], bool]]:
        a, b = fanins
        yield ((a, b) if a < b else (b, a)), False

    def _gate_key(self, fanins: Tuple[int, ...]) -> Tuple[int, ...]:
        a, b = fanins
        return (a, b) if a < b else (b, a)

    def _normalize_gate(self, fanins: Tuple[int, ...]) -> Tuple[Tuple[int, ...], bool]:
        return self._gate_key(fanins), False

    def _eval_gate(self, values: List[int], fanins: Tuple[int, ...], mask: int) -> int:
        a, b = fanins
        return self._edge_value(values, a, mask) & self._edge_value(values, b, mask)

    def _compile_gate_eval(self, fanins: Tuple[int, ...]):
        # Pre-split fanin nodes and complement flags (see Mig's variant):
        # two list loads, up to two XORs and one AND per pattern.
        a, b = fanins
        na, nb = a >> 1, b >> 1
        ca, cb = a & 1, b & 1

        def evaluate(values: List[int], mask: int) -> int:
            va = values[na] ^ mask if ca else values[na]
            vb = values[nb] ^ mask if cb else values[nb]
            return va & vb

        return evaluate

    def _build_gate(self, fanins: Tuple[int, ...]) -> int:
        return self.and_(*fanins)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )


# ---------------------------------------------------------------------- #
# Module-level helpers
# ---------------------------------------------------------------------- #
def _simplify_and(a: int, b: int) -> Optional[int]:
    """Constant folding / idempotence / complement rules of the AND node."""
    if a == CONST_FALSE or b == CONST_FALSE or a == negate(b):
        return CONST_FALSE
    if a == CONST_TRUE:
        return b
    if b == CONST_TRUE:
        return a
    if a == b:
        return a
    return None
