"""AND-Inverter Graph (AIG) logic network.

The paper's main experimental baseline is "AIG optimization performed by
the ABC academic tool".  This module provides the AIG substrate: a
homogeneous network of two-input AND nodes with complemented edges, with
structural hashing and constant/idempotence folding at construction time —
the same conventions as :class:`repro.core.mig.Mig`, restricted to
conjunctions (Theorem 3.1: an AIG is the special case of a MIG whose third
operand is a constant).

The baseline optimization passes (balance / rewrite / refactor, the
``resyn2``-style script) live in :mod:`repro.aig.resyn`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    make_signal,
    negate,
    negate_if,
    node_of,
    signal_repr,
)

__all__ = ["Aig"]


class Aig:
    """An AND-Inverter Graph with structural hashing.

    Node 0 is the constant-0 node, primary inputs follow, and two-input AND
    gates are appended as created.  Signals use the shared
    ``(node << 1) | complement`` encoding of :mod:`repro.core.signal`.
    """

    def __init__(self) -> None:
        self._fanins: List[Optional[Tuple[int, int]]] = [None]
        self._pis: List[int] = []
        self._pi_names: List[str] = []
        self._pos: List[int] = []
        self._po_names: List[str] = []
        self._strash: Dict[Tuple[int, int], int] = {}
        self.name: str = "aig"

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_pi(self, name: Optional[str] = None) -> int:
        node = len(self._fanins)
        self._fanins.append(None)
        self._pis.append(node)
        self._pi_names.append(name if name is not None else f"pi{len(self._pis) - 1}")
        return make_signal(node)

    def add_po(self, signal: int, name: Optional[str] = None) -> int:
        self._validate_signal(signal)
        index = len(self._pos)
        self._pos.append(signal)
        self._po_names.append(name if name is not None else f"po{index}")
        return index

    def constant(self, value: bool) -> int:
        return CONST_TRUE if value else CONST_FALSE

    def and_(self, a: int, b: int) -> int:
        """Create (or reuse) the AND node ``a ∧ b`` with trivial folding."""
        self._validate_signal(a)
        self._validate_signal(b)
        if a == CONST_FALSE or b == CONST_FALSE or a == negate(b):
            return CONST_FALSE
        if a == CONST_TRUE:
            return b
        if b == CONST_TRUE:
            return a
        if a == b:
            return a
        key = (a, b) if a < b else (b, a)
        existing = self._strash.get(key)
        if existing is not None:
            return make_signal(existing)
        node = len(self._fanins)
        self._fanins.append(key)
        self._strash[key] = node
        return make_signal(node)

    # Derived operators ------------------------------------------------- #
    def not_(self, a: int) -> int:
        return negate(a)

    def or_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(a), negate(b)))

    def nand_(self, a: int, b: int) -> int:
        return negate(self.and_(a, b))

    def nor_(self, a: int, b: int) -> int:
        return self.and_(negate(a), negate(b))

    def xor_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(self.and_(a, negate(b))), negate(self.and_(negate(a), b))))

    def xnor_(self, a: int, b: int) -> int:
        return negate(self.xor_(a, b))

    def mux_(self, sel: int, t: int, e: int) -> int:
        return self.or_(self.and_(sel, t), self.and_(negate(sel), e))

    def maj_(self, a: int, b: int, c: int) -> int:
        """Three-input majority expressed with AND/OR (4 AND nodes)."""
        return self.or_(self.and_(a, b), self.and_(c, self.or_(a, b)))

    def and3_(self, a: int, b: int, c: int) -> int:
        return self.and_(self.and_(a, b), c)

    def or3_(self, a: int, b: int, c: int) -> int:
        return self.or_(self.or_(a, b), c)

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    @property
    def num_pis(self) -> int:
        return len(self._pis)

    @property
    def num_pos(self) -> int:
        return len(self._pos)

    @property
    def num_gates(self) -> int:
        """Number of AND nodes reachable from the primary outputs."""
        return len(self._reachable_gates())

    @property
    def num_nodes(self) -> int:
        return len(self._fanins)

    @property
    def size(self) -> int:
        return self.num_gates

    def pi_nodes(self) -> List[int]:
        return list(self._pis)

    def pi_signals(self) -> List[int]:
        return [make_signal(n) for n in self._pis]

    def po_signals(self) -> List[int]:
        return list(self._pos)

    def pi_names(self) -> List[str]:
        return list(self._pi_names)

    def po_names(self) -> List[str]:
        return list(self._po_names)

    def is_constant(self, node: int) -> bool:
        return node == CONST_NODE

    def is_pi(self, node: int) -> bool:
        return self._fanins[node] is None and node != CONST_NODE

    def is_and(self, node: int) -> bool:
        return self._fanins[node] is not None

    def fanins(self, node: int) -> Tuple[int, int]:
        fanins = self._fanins[node]
        if fanins is None:
            raise ValueError(f"node {node} is not an AND node")
        return fanins

    def gates(self) -> Iterator[int]:
        """Iterate over PO-reachable AND nodes in topological order."""
        return iter(self._reachable_gates())

    # ------------------------------------------------------------------ #
    # Topology and metrics
    # ------------------------------------------------------------------ #
    def _reachable_gates(self) -> List[int]:
        order: List[int] = []
        visited = [False] * len(self._fanins)
        visited[CONST_NODE] = True
        for node in self._pis:
            visited[node] = True
        for po in self._pos:
            root = node_of(po)
            if visited[root]:
                continue
            stack: List[Tuple[int, bool]] = [(root, False)]
            while stack:
                node, expanded = stack.pop()
                if expanded:
                    order.append(node)
                    continue
                if visited[node]:
                    continue
                visited[node] = True
                stack.append((node, True))
                for f in self._fanins[node]:
                    fn = node_of(f)
                    if not visited[fn] and self._fanins[fn] is not None:
                        stack.append((fn, False))
        return order

    def topological_order(self) -> List[int]:
        return self._reachable_gates()

    def levels(self) -> List[int]:
        level = [0] * len(self._fanins)
        for node in self._reachable_gates():
            a, b = self._fanins[node]
            level[node] = 1 + max(level[node_of(a)], level[node_of(b)])
        return level

    def depth(self) -> int:
        if not self._pos:
            return 0
        level = self.levels()
        return max(level[node_of(po)] for po in self._pos)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def simulate_patterns(self, pi_patterns: Sequence[int], num_bits: int) -> List[int]:
        if len(pi_patterns) != len(self._pis):
            raise ValueError(
                f"expected {len(self._pis)} PI patterns, got {len(pi_patterns)}"
            )
        mask = (1 << num_bits) - 1
        values = [0] * len(self._fanins)
        for node, pattern in zip(self._pis, pi_patterns):
            values[node] = pattern & mask
        for node in self._reachable_gates():
            a, b = self._fanins[node]
            va = self._edge_value(values, a, mask)
            vb = self._edge_value(values, b, mask)
            values[node] = va & vb
        return [self._edge_value(values, po, mask) for po in self._pos]

    def simulate(self, assignment: Sequence[bool]) -> List[bool]:
        patterns = [1 if bit else 0 for bit in assignment]
        return [bool(o & 1) for o in self.simulate_patterns(patterns, 1)]

    def truth_tables(self) -> List[int]:
        n = len(self._pis)
        if n > 20:
            raise ValueError("exhaustive simulation limited to 20 inputs")
        num_bits = 1 << n
        patterns = []
        for i in range(n):
            block = (1 << (1 << i)) - 1
            pattern = 0
            period = 1 << (i + 1)
            for start in range(1 << i, num_bits, period):
                pattern |= block << start
            patterns.append(pattern)
        return self.simulate_patterns(patterns, num_bits)

    @staticmethod
    def _edge_value(values: List[int], signal: int, mask: int) -> int:
        v = values[node_of(signal)]
        return (~v) & mask if is_complemented(signal) else v

    # ------------------------------------------------------------------ #
    # Copy
    # ------------------------------------------------------------------ #
    def copy(self) -> "Aig":
        other = Aig()
        other.name = self.name
        mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
        for node, name in zip(self._pis, self._pi_names):
            mapping[node] = other.add_pi(name)
        for node in self._reachable_gates():
            a, b = self._fanins[node]
            mapping[node] = other.and_(
                negate_if(mapping[node_of(a)], is_complemented(a)),
                negate_if(mapping[node_of(b)], is_complemented(b)),
            )
        for po, name in zip(self._pos, self._po_names):
            other.add_po(negate_if(mapping[node_of(po)], is_complemented(po)), name)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates}, depth={self.depth()})"
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _validate_signal(self, signal: int) -> None:
        node = node_of(signal)
        if node >= len(self._fanins) or node < 0:
            raise ValueError(f"signal {signal_repr(signal)} references unknown node")
