"""Signal probability and switching activity for AIGs.

Mirrors :mod:`repro.analysis.activity` for the AND-Inverter baseline so
that the Table I "Activity" column can be produced for the AIG flow with
the same model (``2·p·(1−p)`` per gate, fanin independence).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.signal import CONST_NODE, is_complemented, node_of
from .aig import Aig

__all__ = ["signal_probabilities", "total_switching_activity"]


def signal_probabilities(
    aig: Aig, pi_probabilities: Optional[Mapping[str, float]] = None
) -> Dict[int, float]:
    """Probability of each PO-reachable node being logic 1."""
    probs: Dict[int, float] = {CONST_NODE: 0.0}
    pi_probabilities = pi_probabilities or {}
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        p = float(pi_probabilities.get(name, 0.5))
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability of input {name!r} out of range: {p}")
        probs[node] = p
    for node in aig.topological_order():
        a, b = aig.fanins(node)
        pa = _edge_probability(probs, a)
        pb = _edge_probability(probs, b)
        probs[node] = pa * pb
    return probs


def total_switching_activity(
    aig: Aig, pi_probabilities: Optional[Mapping[str, float]] = None
) -> float:
    """Total switching activity of all AND gates."""
    probs = signal_probabilities(aig, pi_probabilities)
    return sum(
        2.0 * probs[node] * (1.0 - probs[node]) for node in aig.topological_order()
    )


def _edge_probability(probs: Mapping[int, float], signal: int) -> float:
    p = probs[node_of(signal)]
    return 1.0 - p if is_complemented(signal) else p
