"""Cut-based AIG rewriting (the ABC ``rewrite`` / ``refactor`` stand-in).

For every AND node the pass enumerates the k-feasible cuts (k ≤ 4),
NPN-canonicalizes each cut function and looks it up in the precomputed
structure database (:mod:`repro.network.npn`); the cone is replaced by the
database structure whenever the *gain* — nodes freed by deleting the
root's fanout-free cone minus nodes actually added after structural-hash
sharing — is positive.  Zero-gain replacements are applied as well, which
canonicalizes equivalent cones onto one structure so that later nodes
strash into them, mirroring ABC's ``rewrite`` policy.  The engine itself
is the network-generic :func:`repro.network.rewrite.cut_rewrite`; this
module only fixes the AIG conventions (database kind, rebuild-style API).

Like ABC's scripts the public passes never mutate their argument: the
input AIG is copied (compacting and re-strashing it) and the copy is
rewritten in place.

Repeated in-place sweeps (:func:`rewrite_aig_inplace` called in rounds,
or ``rewrite``/``refactor`` alternating on a long-lived AIG) share the
network's incremental :class:`~repro.network.cuts.CutManager`: only the
cones touched since the previous sweep are re-enumerated, and a sweep
that already converged at the current mutation serial returns without
re-scanning at all.  The rebuild-style ``rewrite``/``refactor`` wrappers
start from a fresh copy, so their first (and only) sweep is necessarily a
full enumeration — use the in-place API for multi-round workloads.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..network.cuts import release_cut_state
from ..network.rewrite import cut_rewrite
from .aig import Aig

__all__ = ["rewrite", "refactor", "rewrite_aig_inplace"]


def rewrite_aig_inplace(
    aig: Aig,
    k: int = 4,
    cut_limit: int = 8,
    allow_zero_gain: bool = True,
    max_level_growth: Optional[int] = None,
    max_size_growth: int = 0,
    incremental: bool = True,
) -> Dict[str, int]:
    """Run one Boolean cut-rewriting sweep over ``aig`` in place.

    ``max_level_growth`` defaults to ``None`` (size-first, the ABC
    ``rewrite`` convention); a negative value selects depth mode over the
    top-k structure lists, with ``max_size_growth`` bounding the nodes a
    depth-improving move may spend.
    """
    return cut_rewrite(
        aig,
        "aig",
        k=k,
        cut_limit=cut_limit,
        allow_zero_gain=allow_zero_gain,
        max_level_growth=max_level_growth,
        max_size_growth=max_size_growth,
        incremental=incremental,
    )


def rewrite(aig: Aig) -> Aig:
    """Return a rewritten copy of ``aig`` (4-input cut rewriting)."""
    result = aig.copy()
    rewrite_aig_inplace(result)
    # One sweep on a fresh copy cannot reuse anything later: drop the cut
    # cache and listener instead of pinning them on the returned network.
    release_cut_state(result)
    return result


def refactor(aig: Aig) -> Aig:
    """The ``refactor`` slot of the resyn2 script.

    ABC's ``refactor`` resynthesises larger cones; within this
    reproduction the same cut rewriting is run with a wider priority-cut
    budget, which looks at more reconvergent cones per node.
    """
    result = aig.copy()
    rewrite_aig_inplace(result, cut_limit=12)
    release_cut_state(result)
    return result
