"""Cut-based AIG rewriting (the ``rewrite`` / ``refactor`` stand-in).

For every AND node the pass looks at the two-level cut rooted at it (up to
four leaves), computes the cut's local truth table and, when the function
is *degenerate* — a constant, a single literal, or a two-literal AND / OR /
XOR — replaces the cone by the cheaper structure.  Together with the
structural hashing that runs while the rewritten network is being rebuilt,
this removes the local redundancy that ABC's ``rewrite`` would also catch,
which is what the baseline flow of Section V-A needs.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from ..core.signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    negate,
    negate_if,
    node_of,
)
from .aig import Aig

__all__ = ["rewrite", "refactor", "cut_function"]


def _two_level_cut(aig: Aig, node: int) -> List[int]:
    """Leaves of the (at most) two-level cut rooted at ``node``."""
    leaves: List[int] = []
    a, b = aig.fanins(node)
    for child in (a, b):
        child_node = node_of(child)
        if aig.is_and(child_node) and not is_complemented(child):
            leaves.extend(aig.fanins(child_node))
        else:
            leaves.append(child)
    # Deduplicate by node, keep first polarity seen.
    unique: List[int] = []
    seen_nodes = set()
    for leaf in leaves:
        if node_of(leaf) not in seen_nodes:
            seen_nodes.add(node_of(leaf))
            unique.append(leaf)
    return unique[:4]


def cut_function(aig: Aig, root: int, leaves: List[int]) -> Optional[int]:
    """Truth table of ``root`` (a node index) over the given cut leaves.

    Returns ``None`` when the cone depends on signals outside the cut.
    """
    values: Dict[int, int] = {CONST_NODE: 0}
    num_bits = 1 << len(leaves)
    mask = (1 << num_bits) - 1
    for index, leaf in enumerate(leaves):
        pattern = 0
        block = (1 << (1 << index)) - 1
        period = 1 << (index + 1)
        for start in range(1 << index, num_bits, period):
            pattern |= block << start
        leaf_node = node_of(leaf)
        values[leaf_node] = (~pattern) & mask if is_complemented(leaf) else pattern

    def eval_node(node: int, depth: int) -> Optional[int]:
        if node in values:
            return values[node]
        if depth > 8 or not aig.is_and(node):
            return None
        a, b = aig.fanins(node)
        va = eval_node(node_of(a), depth + 1)
        vb = eval_node(node_of(b), depth + 1)
        if va is None or vb is None:
            return None
        if is_complemented(a):
            va = (~va) & mask
        if is_complemented(b):
            vb = (~vb) & mask
        values[node] = va & vb
        return values[node]

    return eval_node(root, 0)


def _match_degenerate(
    table: int, leaves: List[int], builder: Aig, mapped: List[int]
) -> Optional[int]:
    """Return a cheap replacement signal for a degenerate cut function."""
    n = len(leaves)
    num_bits = 1 << n
    mask = (1 << num_bits) - 1
    if table == 0:
        return CONST_FALSE
    if table == mask:
        return CONST_TRUE

    columns = []
    for index in range(n):
        pattern = 0
        block = (1 << (1 << index)) - 1
        period = 1 << (index + 1)
        for start in range(1 << index, num_bits, period):
            pattern |= block << start
        columns.append(pattern)

    for index in range(n):
        if table == columns[index]:
            return mapped[index]
        if table == (~columns[index]) & mask:
            return negate(mapped[index])

    for i, j in itertools.combinations(range(n), 2):
        for pi, pj in itertools.product((False, True), repeat=2):
            ci = (~columns[i]) & mask if pi else columns[i]
            cj = (~columns[j]) & mask if pj else columns[j]
            si = negate_if(mapped[i], pi)
            sj = negate_if(mapped[j], pj)
            if table == ci & cj:
                return builder.and_(si, sj)
            if table == (ci | cj) & mask:
                return builder.or_(si, sj)
        if table == (columns[i] ^ columns[j]) & mask:
            return builder.xor_(mapped[i], mapped[j])
        if table == (~(columns[i] ^ columns[j])) & mask:
            return builder.xnor_(mapped[i], mapped[j])
    return None


def rewrite(aig: Aig) -> Aig:
    """Return a rewritten copy of ``aig`` with degenerate cuts simplified."""
    result = Aig()
    result.name = aig.name
    mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        mapping[node] = result.add_pi(name)

    for node in aig.topological_order():
        a, b = aig.fanins(node)
        default = result.and_(
            negate_if(mapping[node_of(a)], is_complemented(a)),
            negate_if(mapping[node_of(b)], is_complemented(b)),
        )
        leaves = _two_level_cut(aig, node)
        replacement = None
        if 2 <= len(leaves) <= 4 and all(node_of(l) in mapping for l in leaves):
            table = cut_function(aig, node, leaves)
            if table is not None:
                mapped = [
                    negate_if(mapping[node_of(l)], is_complemented(l)) for l in leaves
                ]
                replacement = _match_degenerate(table, leaves, result, mapped)
        mapping[node] = replacement if replacement is not None else default

    for po, name in zip(aig.po_signals(), aig.po_names()):
        result.add_po(
            negate_if(mapping[node_of(po)], is_complemented(po)), name
        )
    return result


def refactor(aig: Aig) -> Aig:
    """Alias of :func:`rewrite` kept for flow-script readability.

    ABC's ``refactor`` resynthesises larger cones; within the scope of this
    reproduction the same degenerate-cut simplification is reused, which is
    documented as a substitution in DESIGN.md.
    """
    return rewrite(aig)
