"""AND-Inverter Graph substrate and the ABC-style baseline optimizer."""

from .aig import Aig
from .balance import balance
from .rewrite import refactor, rewrite, rewrite_aig_inplace
from .resyn import RESYN2_SCRIPT, ResynStats, resyn2, run_script

__all__ = [
    "Aig",
    "balance",
    "rewrite",
    "refactor",
    "rewrite_aig_inplace",
    "resyn2",
    "run_script",
    "ResynStats",
    "RESYN2_SCRIPT",
]
