"""AIG balancing (the ``balance`` pass of the ABC-style baseline flow).

Balancing re-associates maximal AND-trees so that late-arriving operands
end up close to the root: the classic delay-oriented AIG optimization.
The pass is rebuild-based — a new AIG is constructed bottom-up, which also
re-applies structural hashing and constant folding along the way.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from ..core.signal import (
    CONST_FALSE,
    CONST_NODE,
    CONST_TRUE,
    is_complemented,
    negate,
    negate_if,
    node_of,
)
from .aig import Aig

__all__ = ["balance", "collect_conjuncts"]


def collect_conjuncts(aig: Aig, signal: int, limit: int = 128) -> List[int]:
    """Return the leaves of the maximal AND-tree rooted at ``signal``.

    The tree is grown through *regular* (non-complemented) edges into AND
    nodes; complemented edges and primary inputs terminate the expansion.
    Duplicate leaves are removed (idempotence) and a complementary pair
    collapses the whole conjunction to constant 0.
    """
    leaves: List[int] = []
    seen = set()
    stack = [signal]
    while stack:
        current = stack.pop()
        node = node_of(current)
        if (
            not is_complemented(current)
            and aig.is_and(node)
            and len(leaves) + len(stack) < limit
        ):
            a, b = aig.fanins(node)
            stack.append(a)
            stack.append(b)
            continue
        if negate(current) in seen:
            return [CONST_FALSE]
        if current not in seen:
            seen.add(current)
            leaves.append(current)
    return leaves


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced copy of ``aig``."""
    result = Aig()
    result.name = aig.name
    mapping: Dict[int, int] = {CONST_NODE: CONST_FALSE}
    for node, name in zip(aig.pi_nodes(), aig.pi_names()):
        mapping[node] = result.add_pi(name)

    levels: Dict[int, int] = {CONST_NODE: 0}
    for node in aig.pi_nodes():
        levels[node_of(mapping[node])] = 0

    memo: Dict[int, int] = {}

    def new_level(signal: int) -> int:
        return levels.get(node_of(signal), 0)

    def build(signal: int) -> int:
        """Map an old signal to a balanced new signal."""
        node = node_of(signal)
        if node in memo:
            return negate_if(memo[node], is_complemented(signal))
        if not aig.is_and(node):
            mapped = mapping[node]
            memo[node] = mapped
            return negate_if(mapped, is_complemented(signal))

        leaves = collect_conjuncts(aig, node * 2)
        built = [build(leaf) for leaf in leaves]
        if CONST_FALSE in built:
            memo[node] = CONST_FALSE
            return negate_if(CONST_FALSE, is_complemented(signal))
        built = [s for s in built if s != CONST_TRUE] or [CONST_TRUE]

        # Huffman-style combination: always merge the two earliest-arriving
        # operands so the latest one sits closest to the root.
        heap = [(new_level(s), index, s) for index, s in enumerate(built)]
        heapq.heapify(heap)
        counter = len(built)
        while len(heap) > 1:
            la, _, sa = heapq.heappop(heap)
            lb, _, sb = heapq.heappop(heap)
            merged = result.and_(sa, sb)
            levels[node_of(merged)] = max(
                levels.get(node_of(merged), 0), max(la, lb) + 1
            )
            heapq.heappush(heap, (levels[node_of(merged)], counter, merged))
            counter += 1
        root = heap[0][2]
        memo[node] = root
        return negate_if(root, is_complemented(signal))

    for po, name in zip(aig.po_signals(), aig.po_names()):
        result.add_po(build(po), name)
    return result
