"""Random and structured MIG generation helpers.

Used by the test-suite (equivalence-preservation property tests need many
diverse networks), by the examples, and by the synthetic benchmark suite in
:mod:`repro.bench_circuits` as a building block for "random logic" blocks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Type

from .mig import Mig
from .signal import make_signal, negate, node_of

__all__ = [
    "random_mig",
    "random_aoig_mig",
    "random_network",
    "mutate_network",
    "rebuild_shuffled",
    "mig_from_truth_tables",
]


def random_mig(
    num_pis: int,
    num_gates: int,
    num_pos: Optional[int] = None,
    seed: int = 1,
    complemented_edge_probability: float = 0.3,
) -> Mig:
    """Generate a pseudo-random MIG with roughly ``num_gates`` majority nodes.

    Gates pick three distinct already-existing signals as fanins (so the
    result is a DAG by construction) and edges are complemented with the
    given probability.  Because structural hashing and Ω.M folding run at
    creation time, the actual gate count can be slightly lower than
    requested.
    """
    if num_pis < 3:
        raise ValueError("random_mig needs at least 3 primary inputs")
    rng = random.Random(seed)
    mig = Mig()
    mig.name = f"random_{num_pis}_{num_gates}_{seed}"
    signals: List[int] = [mig.add_pi(f"x{i}") for i in range(num_pis)]

    for _ in range(num_gates):
        a, b, c = rng.sample(signals, 3)
        if rng.random() < complemented_edge_probability:
            a = negate(a)
        if rng.random() < complemented_edge_probability:
            b = negate(b)
        new = mig.maj(a, b, c)
        signals.append(new)

    gate_signals = signals[num_pis:]
    if not gate_signals:
        gate_signals = signals
    if num_pos is None:
        num_pos = max(1, len(gate_signals) // 8)
    # Prefer signals late in the construction so outputs see deep logic.
    chosen = gate_signals[-num_pos:]
    for index, sig in enumerate(chosen):
        mig.add_po(sig, f"y{index}")
    return mig


def random_aoig_mig(
    num_pis: int,
    num_gates: int,
    num_pos: Optional[int] = None,
    seed: int = 1,
) -> Mig:
    """Generate a random AND/OR/INV network encoded as a MIG.

    Every gate is either ``AND`` or ``OR`` (a majority node with one constant
    fanin), which mimics the "MIG obtained by transposing an AOIG" starting
    point used throughout the paper's examples.
    """
    if num_pis < 2:
        raise ValueError("random_aoig_mig needs at least 2 primary inputs")
    rng = random.Random(seed)
    mig = Mig()
    mig.name = f"random_aoig_{num_pis}_{num_gates}_{seed}"
    signals: List[int] = [mig.add_pi(f"x{i}") for i in range(num_pis)]

    for _ in range(num_gates):
        a, b = rng.sample(signals, 2)
        if rng.random() < 0.3:
            a = negate(a)
        if rng.random() < 0.3:
            b = negate(b)
        new = mig.and_(a, b) if rng.random() < 0.5 else mig.or_(a, b)
        signals.append(new)

    gate_signals = signals[num_pis:] or signals
    if num_pos is None:
        num_pos = max(1, len(gate_signals) // 8)
    for index, sig in enumerate(gate_signals[-num_pos:]):
        mig.add_po(sig, f"y{index}")
    return mig


def random_network(
    network_cls: Type = Mig,
    num_pis: int = 6,
    num_gates: int = 30,
    num_pos: Optional[int] = None,
    seed: int = 1,
    gate_mix: str = "aoig",
    complemented_edge_probability: float = 0.3,
    depth_bias: float = 0.0,
):
    """Seeded random network over any :class:`LogicNetwork` subclass.

    The generic generator behind the test-suite's shared fuzz fixture
    (``tests/conftest.py::network_forge``): one construction recipe for
    MIGs *and* AIGs, parameterized by

    * ``gate_mix`` — ``"aoig"`` (AND/OR only, the paper's transposed-AOIG
      starting point), ``"maj"`` (pure majority gates; AIGs synthesize
      them from AND/OR), or ``"mixed"`` (AND/OR/XOR/MAJ/MUX soup, the
      hardest case for strashing and cut enumeration);
    * ``depth_bias`` — probability of drawing fanins from the most recent
      quarter of the signal pool, which stretches the network depth-wise
      instead of producing wide shallow DAGs.

    Strashing and gate-level simplification run at creation time, so the
    realised gate count can be below ``num_gates``.
    """
    if num_pis < 3:
        raise ValueError("random_network needs at least 3 primary inputs")
    if gate_mix not in ("aoig", "maj", "mixed"):
        raise ValueError(f"unknown gate_mix {gate_mix!r}")
    rng = random.Random(seed)
    net = network_cls()
    net.name = f"forge_{gate_mix}_{num_pis}_{num_gates}_{seed}"
    signals: List[int] = [net.add_pi(f"x{i}") for i in range(num_pis)]
    maj = getattr(net, "maj", None) or getattr(net, "maj_", None)

    def pick(count: int) -> List[int]:
        if depth_bias and rng.random() < depth_bias and len(signals) > 4:
            pool = signals[-max(4, len(signals) // 4):]
        else:
            pool = signals
        chosen = rng.sample(pool, min(count, len(pool)))
        while len(chosen) < count:
            chosen.append(rng.choice(signals))
        return [
            negate(s) if rng.random() < complemented_edge_probability else s
            for s in chosen
        ]

    for _ in range(num_gates):
        if gate_mix == "maj":
            kind = "maj"
        elif gate_mix == "aoig":
            kind = rng.choice(("and", "or"))
        else:
            kind = rng.choice(("and", "or", "xor", "maj", "mux"))
        if kind == "maj":
            signals.append(maj(*pick(3)))
        elif kind == "mux":
            signals.append(net.mux_(*pick(3)))
        elif kind == "xor":
            signals.append(net.xor_(*pick(2)))
        elif kind == "or":
            signals.append(net.or_(*pick(2)))
        else:
            signals.append(net.and_(*pick(2)))

    gate_signals = signals[num_pis:] or signals
    if num_pos is None:
        num_pos = max(1, len(gate_signals) // 8)
    # Guard the slice: gate_signals[-0:] would be the *whole* list.
    chosen = gate_signals[-num_pos:] if num_pos > 0 else []
    for index, sig in enumerate(chosen):
        net.add_po(sig, f"y{index}")
    return net


def rebuild_shuffled(network, seed: int = 1):
    """Rebuild the PO-reachable cone in a seeded random topological order.

    Returns a new network of the same class computing the same DAG —
    same PI/PO names and order, same gate fanin structure and complement
    bits — but with gates *created* in a different (uniformly drawn
    among valid) topological order, so raw node ids generally differ.
    The fuzz counterpart of the service cache-key contract: the rebuilt
    network must hit the same
    :func:`repro.parallel.corpus.canonical_fingerprint` (content
    address) while its id-exact
    :func:`~repro.parallel.corpus.structural_fingerprint` drifts.
    """
    rng = random.Random(seed)
    clone = type(network)()
    clone.name = network.name

    mapping = {0: 0}  # old constant node -> constant-0 signal
    for old_node, name in zip(network.pi_nodes(), network.pi_names()):
        mapping[old_node] = clone.add_pi(name)

    def map_signal(signal: int) -> int:
        return mapping[node_of(signal)] ^ (signal & 1)

    gates = [n for n in network.topological_order() if network.is_gate(n)]
    gate_set = set(gates)
    deps = {n: 0 for n in gates}
    dependents = {n: [] for n in gates}
    for node in gates:
        for fanin in network.fanins(node):
            source = node_of(fanin)
            if source in gate_set:
                deps[node] += 1
                dependents[source].append(node)

    ready = [n for n in gates if deps[n] == 0]
    while ready:
        node = ready.pop(rng.randrange(len(ready)))
        fanins = network.fanins(node)
        new_fanins = [map_signal(f) for f in fanins]
        if len(fanins) == 3:
            mapping[node] = clone.maj(*new_fanins)
        elif len(fanins) == 2:
            mapping[node] = clone.and_(*new_fanins)
        else:  # pragma: no cover - no current kernel has other arities
            raise ValueError(f"unsupported gate arity {len(fanins)}")
        for parent in dependents[node]:
            deps[parent] -= 1
            if deps[parent] == 0:
                ready.append(parent)

    for po, name in zip(network.po_signals(), network.po_names()):
        clone.add_po(map_signal(po), name)
    return clone


def mutate_network(network, seed: int = 1, in_place: bool = False):
    """Seeded single-gate mutation of a copy — or of ``network`` itself
    when ``in_place=True``.

    Returns ``(mutant, description)``.  One of three fault classes is
    injected — a complemented primary output, a complemented fanin edge,
    or a rewired fanin — mimicking the single-gate bugs an optimization
    pass could realistically introduce.  Used by the differential tests
    and the SAT-CEC acceptance harness to prove that every complete
    equivalence backend refutes broken networks with replayable
    counterexamples.

    ``in_place=True`` mutates ``network`` itself instead of a copy (and
    returns it) — the edit-sequence driver of the incremental-cut
    property tests, which need faults injected into a live network whose
    caches are being maintained.

    A mutation is *almost always* a functional change but can be masked
    by downstream don't-cares; callers that need a guaranteed-different
    mutant should confirm with an independent check and draw a new seed
    otherwise.
    """
    rng = random.Random(seed)
    mutant = network if in_place else network.copy()
    gates = list(mutant.topological_order())
    kinds = []
    if mutant.num_pos:
        kinds.append("negate_po")
    if gates:
        kinds.extend(("negate_fanin", "rewire_fanin"))
    if not kinds:
        raise ValueError("cannot mutate a network with no gates and no POs")
    kind = rng.choice(kinds)

    if kind == "negate_po":
        index = rng.randrange(mutant.num_pos)
        mutant.set_po(index, negate(mutant.po_signals()[index]))
        return mutant, {"kind": kind, "po": index}

    node = gates[rng.randrange(len(gates))]
    fanins = list(mutant.fanins(node))
    slot = rng.randrange(len(fanins))

    if kind == "negate_fanin":
        fanins[slot] = negate(fanins[slot])
        mutant.replace_fanins(node, tuple(fanins))
        return mutant, {"kind": kind, "node": node, "slot": slot}

    candidates = [make_signal(n) for n in mutant.pi_nodes()]
    candidates.extend(make_signal(g) for g in gates if g != node)
    for _ in range(16):
        target = candidates[rng.randrange(len(candidates))]
        if rng.random() < 0.5:
            target = negate(target)
        if node_of(target) == node_of(fanins[slot]):
            continue
        rewired = list(fanins)
        rewired[slot] = target
        try:
            mutant.replace_fanins(node, tuple(rewired))
        except ValueError:
            continue  # would create a combinational cycle; redraw
        return mutant, {"kind": kind, "node": node, "slot": slot}

    # All rewire attempts hit cycles: fall back to a PO polarity fault.
    mutant.set_po(0, negate(mutant.po_signals()[0]))
    return mutant, {"kind": "negate_po", "po": 0}


def mig_from_truth_tables(truth_tables: Sequence[int], num_vars: int) -> Mig:
    """Build a MIG from explicit truth tables (Shannon decomposition).

    Mostly used in tests to create MIGs with known functions; the resulting
    structure is a (non-optimized) multiplexer tree, a good stress input for
    the optimizers.
    """
    mig = Mig()
    mig.name = f"tt_{num_vars}vars"
    pis = [mig.add_pi(f"x{i}") for i in range(num_vars)]

    def build(table: int, var_index: int, num_bits: int) -> int:
        if num_bits == 1:
            return mig.constant(bool(table & 1))
        half = num_bits // 2
        low_mask = (1 << half) - 1
        low = table & low_mask
        high = (table >> half) & low_mask
        if low == high:
            return build(low, var_index + 1, half)
        t_high = build(high, var_index + 1, half)
        t_low = build(low, var_index + 1, half)
        # Variable ordering: bit k of the assignment index is variable k, so
        # the *most significant* half corresponds to the last variable.
        sel = pis[num_vars - 1 - var_index]
        return mig.mux_(sel, t_high, t_low)

    for index, table in enumerate(truth_tables):
        mig.add_po(build(table, 0, 1 << num_vars), f"y{index}")
    return mig
