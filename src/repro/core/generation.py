"""Random and structured MIG generation helpers.

Used by the test-suite (equivalence-preservation property tests need many
diverse networks), by the examples, and by the synthetic benchmark suite in
:mod:`repro.bench_circuits` as a building block for "random logic" blocks.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .mig import Mig
from .signal import negate

__all__ = ["random_mig", "random_aoig_mig", "mig_from_truth_tables"]


def random_mig(
    num_pis: int,
    num_gates: int,
    num_pos: Optional[int] = None,
    seed: int = 1,
    complemented_edge_probability: float = 0.3,
) -> Mig:
    """Generate a pseudo-random MIG with roughly ``num_gates`` majority nodes.

    Gates pick three distinct already-existing signals as fanins (so the
    result is a DAG by construction) and edges are complemented with the
    given probability.  Because structural hashing and Ω.M folding run at
    creation time, the actual gate count can be slightly lower than
    requested.
    """
    if num_pis < 3:
        raise ValueError("random_mig needs at least 3 primary inputs")
    rng = random.Random(seed)
    mig = Mig()
    mig.name = f"random_{num_pis}_{num_gates}_{seed}"
    signals: List[int] = [mig.add_pi(f"x{i}") for i in range(num_pis)]

    for _ in range(num_gates):
        a, b, c = rng.sample(signals, 3)
        if rng.random() < complemented_edge_probability:
            a = negate(a)
        if rng.random() < complemented_edge_probability:
            b = negate(b)
        new = mig.maj(a, b, c)
        signals.append(new)

    gate_signals = signals[num_pis:]
    if not gate_signals:
        gate_signals = signals
    if num_pos is None:
        num_pos = max(1, len(gate_signals) // 8)
    # Prefer signals late in the construction so outputs see deep logic.
    chosen = gate_signals[-num_pos:]
    for index, sig in enumerate(chosen):
        mig.add_po(sig, f"y{index}")
    return mig


def random_aoig_mig(
    num_pis: int,
    num_gates: int,
    num_pos: Optional[int] = None,
    seed: int = 1,
) -> Mig:
    """Generate a random AND/OR/INV network encoded as a MIG.

    Every gate is either ``AND`` or ``OR`` (a majority node with one constant
    fanin), which mimics the "MIG obtained by transposing an AOIG" starting
    point used throughout the paper's examples.
    """
    if num_pis < 2:
        raise ValueError("random_aoig_mig needs at least 2 primary inputs")
    rng = random.Random(seed)
    mig = Mig()
    mig.name = f"random_aoig_{num_pis}_{num_gates}_{seed}"
    signals: List[int] = [mig.add_pi(f"x{i}") for i in range(num_pis)]

    for _ in range(num_gates):
        a, b = rng.sample(signals, 2)
        if rng.random() < 0.3:
            a = negate(a)
        if rng.random() < 0.3:
            b = negate(b)
        new = mig.and_(a, b) if rng.random() < 0.5 else mig.or_(a, b)
        signals.append(new)

    gate_signals = signals[num_pis:] or signals
    if num_pos is None:
        num_pos = max(1, len(gate_signals) // 8)
    for index, sig in enumerate(gate_signals[-num_pos:]):
        mig.add_po(sig, f"y{index}")
    return mig


def mig_from_truth_tables(truth_tables: Sequence[int], num_vars: int) -> Mig:
    """Build a MIG from explicit truth tables (Shannon decomposition).

    Mostly used in tests to create MIGs with known functions; the resulting
    structure is a (non-optimized) multiplexer tree, a good stress input for
    the optimizers.
    """
    mig = Mig()
    mig.name = f"tt_{num_vars}vars"
    pis = [mig.add_pi(f"x{i}") for i in range(num_vars)]

    def build(table: int, var_index: int, num_bits: int) -> int:
        if num_bits == 1:
            return mig.constant(bool(table & 1))
        half = num_bits // 2
        low_mask = (1 << half) - 1
        low = table & low_mask
        high = (table >> half) & low_mask
        if low == high:
            return build(low, var_index + 1, half)
        t_high = build(high, var_index + 1, half)
        t_low = build(low, var_index + 1, half)
        # Variable ordering: bit k of the assignment index is variable k, so
        # the *most significant* half corresponds to the last variable.
        sel = pis[num_vars - 1 - var_index]
        return mig.mux_(sel, t_high, t_low)

    for index, table in enumerate(truth_tables):
        mig.add_po(build(table, 0, 1 << num_vars), f"y{index}")
    return mig
