"""Signal encoding shared by all homogeneous logic networks in :mod:`repro`.

A *signal* is an edge in a logic network: a reference to a node together
with an optional complementation attribute (the "bubble" on MIG/AIG edges).
Signals are encoded as plain non-negative integers::

    signal = (node_index << 1) | complement_bit

This mirrors the encoding used by ABC and mockturtle and keeps networks
compact: signals can be stored in tuples, hashed, and compared without
allocating wrapper objects.  The helpers in this module are the only place
that knows about the encoding; all other code goes through them.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = [
    "make_signal",
    "node_of",
    "is_complemented",
    "negate",
    "negate_if",
    "regular",
    "complemented",
    "signal_repr",
    "sort_signals",
    "CONST_FALSE",
    "CONST_TRUE",
    "CONST_NODE",
]

#: Index of the constant node present in every network.
CONST_NODE = 0

#: The constant-0 signal (regular edge to the constant node).
CONST_FALSE = 0

#: The constant-1 signal (complemented edge to the constant node).
CONST_TRUE = 1


def make_signal(node: int, complement: bool = False) -> int:
    """Build a signal pointing at ``node`` with the given polarity."""
    if node < 0:
        raise ValueError(f"node index must be non-negative, got {node}")
    return (node << 1) | (1 if complement else 0)


def node_of(signal: int) -> int:
    """Return the node index referenced by ``signal``."""
    return signal >> 1


def is_complemented(signal: int) -> bool:
    """Return ``True`` when ``signal`` carries the complement attribute."""
    return bool(signal & 1)


def negate(signal: int) -> int:
    """Return the complement of ``signal`` (toggle the inverter bubble)."""
    return signal ^ 1


def negate_if(signal: int, condition: bool) -> int:
    """Return ``signal`` complemented when ``condition`` is true."""
    return signal ^ 1 if condition else signal


def regular(signal: int) -> int:
    """Return the non-complemented version of ``signal``."""
    return signal & ~1


def complemented(signal: int) -> int:
    """Return the complemented version of ``signal``."""
    return signal | 1


def signal_repr(signal: int) -> str:
    """Human-readable rendering used in debugging and error messages."""
    if signal == CONST_FALSE:
        return "0"
    if signal == CONST_TRUE:
        return "1"
    prefix = "~" if is_complemented(signal) else ""
    return f"{prefix}n{node_of(signal)}"


def sort_signals(signals: Iterable[int]) -> Tuple[int, ...]:
    """Return ``signals`` sorted into the canonical (ascending) order."""
    return tuple(sorted(signals))
